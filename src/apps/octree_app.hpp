/**
 * @file
 * The Octree evaluation workload (paper Sec. 4.1): seven stages of mixed
 * computational patterns following Karras 2012, from Morton encoding of
 * a streaming point cloud to the final parent-linked octree. The final
 * stage depends on several earlier outputs, so the application is
 * declared as a task graph and linearized by topological sort (paper
 * Sec. 3.1).
 */

#ifndef BT_APPS_OCTREE_APP_HPP
#define BT_APPS_OCTREE_APP_HPP

#include <cstdint>

#include "core/application.hpp"

namespace bt::apps {

/** Point-cloud distribution of the synthetic input stream. */
enum class PointDistribution
{
    Uniform,   ///< uniform in the unit cube
    Clustered, ///< Gaussian clusters (more duplicate/nearby codes)
};

/** Octree workload configuration. */
struct OctreeConfig
{
    std::int64_t numPoints = 1 << 18; ///< points per task (paper scale)
    PointDistribution distribution = PointDistribution::Uniform;
    int numClusters = 16; ///< for the clustered distribution

    /** Attach the structural validator (sorted/unique/radix/octree). */
    bool withValidator = false;
};

/** Build the seven-stage octree application. */
core::Application octreeApp(OctreeConfig cfg = {});

} // namespace bt::apps

#endif // BT_APPS_OCTREE_APP_HPP
