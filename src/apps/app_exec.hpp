/**
 * @file
 * Executor adapters binding a stage's KernelCtx to the kernel layer.
 *
 * Application stage bodies build their CpuExec/GpuExec through these
 * helpers so every kernel call site picks up the chunk's worker team
 * uniformly. Device stages forward the team too: today GPU chunks own no
 * team (native_executor gives them none, so the launch stays serial and
 * deterministic), but an executor that does grant one gets pooled
 * functional execution of device kernels with no app changes.
 */

#ifndef BT_APPS_APP_EXEC_HPP
#define BT_APPS_APP_EXEC_HPP

#include "core/application.hpp"
#include "kernels/exec.hpp"

namespace bt::apps {

/** Host-side executor for a stage running on this chunk's team. */
inline kernels::CpuExec
hostExec(const core::KernelCtx& ctx)
{
    return kernels::CpuExec{ctx.pool};
}

/** Device-side executor; forwards the chunk's team (see file docs). */
inline kernels::GpuExec
deviceExec(const core::KernelCtx& ctx)
{
    kernels::GpuExec exec;
    exec.pool = ctx.pool;
    exec.observer = ctx.observer;
    return exec;
}

} // namespace bt::apps

#endif // BT_APPS_APP_EXEC_HPP
