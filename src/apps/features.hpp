/**
 * @file
 * Feature-extraction case-study application (beyond the paper's three
 * workloads): an ORB-like corner/descriptor pipeline with seven stages
 * of mixed computational patterns -
 *
 *   blur_h -> blur_v -> sobel -> harris -> nms -> compact -> brief
 *
 * Regular stencils (blurs, Sobel), window reductions (Harris),
 * divergent suppression (NMS), a scan/compaction, and gather-heavy
 * descriptor extraction. Built entirely on the public Stage /
 * Application API to demonstrate that the framework generalizes past
 * the paper's evaluation set.
 */

#ifndef BT_APPS_FEATURES_HPP
#define BT_APPS_FEATURES_HPP

#include <cstdint>

#include "core/application.hpp"

namespace bt::apps {

/** Feature-extraction workload configuration. */
struct FeaturesConfig
{
    int width = 640;
    int height = 480;

    /** Harris response threshold for NMS. */
    float threshold = 0.01f;

    /** Attach the reference validator (tests only; re-runs the whole
     *  pipeline serially per task). */
    bool withValidator = false;
};

/** Build the seven-stage feature-extraction application. */
core::Application featuresApp(FeaturesConfig cfg = {});

} // namespace bt::apps

#endif // BT_APPS_FEATURES_HPP
