#include "apps/app_check.hpp"

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "common/logging.hpp"

namespace bt::apps {

check::Report
checkApplication(const core::Application& app,
                 const check::CheckerConfig& config, std::uint64_t seed)
{
    check::Checker checker(config);
    const auto task = app.makeTask(0, seed);
    {
        const check::ContextScope app_scope(checker, app.name());
        core::KernelCtx ctx{*task, nullptr, &checker};
        for (const auto& stage : app.stages()) {
            const check::ContextScope stage_scope(checker,
                                                  stage.name());
            stage.runGpu(ctx);
        }
    }
    const std::string err = app.validate(*task);
    if (!err.empty())
        checker.addValidationFailure(app.name(), err);
    return checker.takeReport();
}

check::Report
checkScaledApp(std::string_view name, const check::CheckerConfig& config)
{
    if (name == "dense") {
        return checkApplication(
            alexnetDense({.batch = 1, .withValidator = true}), config);
    }
    if (name == "sparse") {
        return checkApplication(alexnetSparse({.batch = 2,
                                               .sparse = true,
                                               .density = 0.05,
                                               .withValidator = true}),
                                config);
    }
    if (name == "octree") {
        OctreeConfig cfg;
        cfg.numPoints = 1 << 12;
        cfg.distribution = PointDistribution::Clustered;
        cfg.withValidator = true;
        return checkApplication(octreeApp(cfg), config);
    }
    BT_PANIC("app.unknown", "unknown app for checked run: ", name);
}

} // namespace bt::apps
