/**
 * @file
 * The two AlexNet evaluation workloads (paper Sec. 4.1): a CIFAR-sized
 * AlexNet with nine pipeline stages - four conv layers each followed by
 * 2x2 max pooling, and a final fully connected classifier.
 *
 *  - AlexNet-dense: dense convolutions, one image per task (regular,
 *    dense linear algebra).
 *  - AlexNet-sparse: the same network magnitude-pruned to CSR weights,
 *    batches of images per task (irregular sparse computation).
 *
 * Weights are seeded-random (the paper's accuracy is irrelevant to
 * scheduling; the computation pattern is what matters) and shared
 * read-only across all TaskObjects.
 */

#ifndef BT_APPS_ALEXNET_HPP
#define BT_APPS_ALEXNET_HPP

#include <cstdint>

#include "core/application.hpp"

namespace bt::apps {

/** Configuration of either AlexNet variant. */
struct AlexNetConfig
{
    int batch = 1;              ///< images per task
    bool sparse = false;        ///< CSR-pruned convolutions
    double density = 0.01;      ///< kept weight fraction when sparse
    std::uint64_t weightSeed = 42;

    /**
     * Attach the reference validator (recomputes the whole network
     * serially per task - use only with small batches in tests).
     */
    bool withValidator = false;
};

/** Paper configuration: dense, one image per task. */
core::Application alexnetDense(AlexNetConfig cfg = {});

/** Paper configuration: sparse, 128 images per task. */
core::Application alexnetSparse(AlexNetConfig cfg = {.batch = 128,
                                                     .sparse = true});

} // namespace bt::apps

#endif // BT_APPS_ALEXNET_HPP
