#include "apps/octree_app.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "apps/app_exec.hpp"
#include "kernels/morton.hpp"
#include "kernels/octree.hpp"
#include "kernels/prefix_sum.hpp"
#include "kernels/radix_tree.hpp"
#include "kernels/sort.hpp"
#include "kernels/unique.hpp"

namespace bt::apps {

namespace {

using kernels::OctreeView;
using kernels::RadixTreeView;
using platform::Pattern;
using platform::WorkProfile;

/** Radix-tree SoA view over the task's pre-allocated buffers. */
RadixTreeView
treeView(core::TaskObject& task, std::int64_t k)
{
    const auto internal = static_cast<std::size_t>(k > 1 ? k - 1 : 0);
    RadixTreeView v;
    v.left = task.view<std::int32_t>("rt_left").subspan(0, internal);
    v.right = task.view<std::int32_t>("rt_right").subspan(0, internal);
    v.parent
        = task.view<std::int32_t>("rt_parent").subspan(0, internal);
    v.leafParent = task.view<std::int32_t>("rt_leafparent")
                       .subspan(0, static_cast<std::size_t>(k));
    v.prefixLen
        = task.view<std::int32_t>("rt_prefixlen").subspan(0, internal);
    v.first = task.view<std::int32_t>("rt_first").subspan(0, internal);
    v.last = task.view<std::int32_t>("rt_last").subspan(0, internal);
    return v;
}

/** Octree SoA view over the task's pre-allocated buffers. */
OctreeView
octView(core::TaskObject& task)
{
    OctreeView v;
    v.prefix = task.view<std::uint32_t>("oct_prefix");
    v.level = task.view<std::int32_t>("oct_level");
    v.parent = task.view<std::int32_t>("oct_parent");
    v.childMask = task.view<std::uint32_t>("oct_childmask");
    v.firstCode = task.view<std::int32_t>("oct_first");
    v.codeCount = task.view<std::int32_t>("oct_count");
    return v;
}

void
fillPoints(core::TaskObject& task, const OctreeConfig& cfg,
           std::int64_t task_index, std::uint64_t seed)
{
    auto points = task.view<float>("points");
    const std::int64_t n = cfg.numPoints;
    BT_ASSERT(points.size() >= static_cast<std::size_t>(3 * n));
    Rng rng(hashCombine(seed ^ 0x0c7ee, static_cast<std::uint64_t>(
        task_index)));

    if (cfg.distribution == PointDistribution::Uniform) {
        for (std::int64_t i = 0; i < 3 * n; ++i)
            points[static_cast<std::size_t>(i)]
                = static_cast<float>(rng.nextDouble());
        return;
    }

    // Clustered: Gaussian blobs around per-task cluster centers.
    const int clusters = std::max(1, cfg.numClusters);
    std::vector<float> centers(static_cast<std::size_t>(clusters) * 3);
    for (auto& c : centers)
        c = static_cast<float>(rng.nextRange(0.1, 0.9));
    for (std::int64_t i = 0; i < n; ++i) {
        const std::size_t c = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint64_t>(clusters)));
        for (int d = 0; d < 3; ++d) {
            const double v = centers[c * 3 + static_cast<std::size_t>(
                d)] + rng.nextGaussian() * 0.03;
            points[static_cast<std::size_t>(3 * i + d)]
                = static_cast<float>(std::clamp(v, 0.0, 0.999999));
        }
    }
}

/** Attach declared IO to a freshly built stage (bt::lint metadata). */
core::Stage
withIo(core::Stage s, core::StageIo io)
{
    s.setIo(std::move(io));
    return s;
}

WorkProfile
profileOf(const char* stage, double n)
{
    WorkProfile w;
    const std::string s(stage);
    if (s == "morton") {
        w = {30.0 * n, 16.0 * n, 0.999, Pattern::Dense};
    } else if (s == "sort") {
        // Four LSD passes: histogram + scatter - the scatter pattern
        // is what mobile GPUs handle worst (paper Fig. 1).
        w = {40.0 * n, 64.0 * n, 0.95, Pattern::Irregular};
    } else if (s == "unique") {
        w = {8.0 * n, 24.0 * n, 0.90, Pattern::Sparse};
    } else if (s == "radix_tree") {
        // Per-node binary searches: compute-heavy but regular enough
        // for GPUs (the paper's Fig. 1 shows the GPU winning here).
        w = {80.0 * n, 28.0 * n, 0.98, Pattern::Mixed};
    } else if (s == "edge_count") {
        // Parent-chain walks: divergent but read-only traversal -
        // costly on CPUs and GPUs alike, unlike the scatter-bound sort.
        w = {10.0 * n, 16.0 * n, 0.97, Pattern::Mixed};
    } else if (s == "prefix_sum") {
        w = {6.0 * n, 24.0 * n, 0.85, Pattern::Sparse};
    } else if (s == "build_octree") {
        w = {50.0 * n, 48.0 * n, 0.92, Pattern::Mixed};
    } else {
        BT_PANIC("app.unknown_stage", "unknown octree stage ", s);
    }
    return w;
}

} // namespace

core::Application
octreeApp(OctreeConfig cfg)
{
    BT_ASSERT(cfg.numPoints >= 1);
    const std::int64_t n = cfg.numPoints;
    const double nd = static_cast<double>(n);

    core::Application app("Octree", "PC", "Mixed Sparse & Dense");

    // Static buffer metadata for bt::lint, matching the task factory's
    // worst-case allocations below. Stage accesses whose extent depends
    // on the runtime unique-code count k use bytes = -1.
    const auto u32 = static_cast<std::int64_t>(sizeof(std::uint32_t));
    const std::int64_t codeBytes = n * u32;
    const std::int64_t pairBytes = 2 * n * u32;
    const std::int64_t nodeBytes = kernels::maxOctreeNodes(n) * u32;
    app.declareBuffer({"points",
                       3 * n * static_cast<std::int64_t>(sizeof(float)),
                       /*input=*/true});
    app.declareBuffer({"morton", codeBytes});
    app.declareBuffer({"sorted", codeBytes});
    app.declareBuffer({"sort_scratch", codeBytes, false, false,
                       /*scratch=*/true});
    app.declareBuffer({"unique", codeBytes});
    app.declareBuffer({"flags", codeBytes, false, false,
                       /*scratch=*/true});
    for (const char* name : {"rt_left", "rt_right", "rt_parent",
                             "rt_leafparent", "rt_prefixlen",
                             "rt_first", "rt_last"})
        app.declareBuffer({name, codeBytes});
    app.declareBuffer({"counts", pairBytes});
    app.declareBuffer({"offsets", pairBytes});
    for (const char* name : {"oct_prefix", "oct_level", "oct_parent",
                             "oct_childmask", "oct_first", "oct_count"})
        app.declareBuffer({name, nodeBytes, false, /*output=*/true});

    // Stages are declared as a task graph: the pipeline is mostly
    // linear, but Build Octree consumes the outputs of Duplicate
    // Removal (codes), Build Radix Tree, and Prefix Sum directly.
    core::TaskGraph graph;

    const int s_morton = graph.addNode(withIo(core::Stage(
        "morton", profileOf("morton", nd),
        [n](core::KernelCtx& ctx) {
            kernels::mortonEncodeCpu(hostExec(ctx),
                                     ctx.task.view<const float>(
                                         "points"),
                                     ctx.task.view<std::uint32_t>(
                                         "morton"),
                                     n);
        },
        [n](core::KernelCtx& ctx) {
            kernels::mortonEncodeGpu(deviceExec(ctx),
                                     ctx.task.view<const float>(
                                         "points"),
                                     ctx.task.view<std::uint32_t>(
                                         "morton"),
                                     n);
        }),
        {{{"points",
           3 * n * static_cast<std::int64_t>(sizeof(float))}},
         {{"morton", codeBytes}}}));

    auto sortInto = [n](core::TaskObject& task) {
        const auto src = task.view<const std::uint32_t>("morton");
        auto dst = task.view<std::uint32_t>("sorted");
        std::memcpy(dst.data(), src.data(),
                    static_cast<std::size_t>(n) * sizeof(std::uint32_t));
        return dst.subspan(0, static_cast<std::size_t>(n));
    };
    const int s_sort = graph.addNode(withIo(core::Stage(
        "sort", profileOf("sort", nd),
        [sortInto](core::KernelCtx& ctx) {
            auto keys = sortInto(ctx.task);
            kernels::radixSortCpu(hostExec(ctx), keys,
                                  ctx.task.view<std::uint32_t>(
                                      "sort_scratch"));
        },
        [sortInto](core::KernelCtx& ctx) {
            auto keys = sortInto(ctx.task);
            kernels::radixSortGpu(keys,
                                  ctx.task.view<std::uint32_t>(
                                      "sort_scratch"),
                                  ctx.observer);
        }),
        {{{"morton", codeBytes}},
         {{"sorted", codeBytes}, {"sort_scratch", codeBytes}}}));

    const int s_unique = graph.addNode(withIo(core::Stage(
        "unique", profileOf("unique", nd),
        [n](core::KernelCtx& ctx) {
            const auto sorted = ctx.task.view<const std::uint32_t>(
                "sorted").subspan(0, static_cast<std::size_t>(n));
            const std::int64_t k = kernels::uniqueCpu(
                hostExec(ctx), sorted,
                ctx.task.view<std::uint32_t>("unique"),
                ctx.task.view<std::uint32_t>("flags"));
            ctx.task.setScalar("unique_count", k);
        },
        [n](core::KernelCtx& ctx) {
            const auto sorted = ctx.task.view<const std::uint32_t>(
                "sorted").subspan(0, static_cast<std::size_t>(n));
            const std::int64_t k = kernels::uniqueGpu(
                sorted, ctx.task.view<std::uint32_t>("unique"),
                ctx.task.view<std::uint32_t>("flags"), ctx.observer);
            ctx.task.setScalar("unique_count", k);
        }),
        {{{"sorted", codeBytes}},
         {{"unique", -1}, {"flags", -1}}}));

    auto uniqueCodes = [](core::TaskObject& task, std::int64_t k) {
        return task.view<const std::uint32_t>("unique").subspan(
            0, static_cast<std::size_t>(k));
    };
    const int s_tree = graph.addNode(withIo(core::Stage(
        "radix_tree", profileOf("radix_tree", nd),
        [uniqueCodes](core::KernelCtx& ctx) {
            const std::int64_t k = ctx.task.scalar("unique_count");
            kernels::buildRadixTreeCpu(hostExec(ctx),
                                       uniqueCodes(ctx.task, k), k,
                                       treeView(ctx.task, k));
        },
        [uniqueCodes](core::KernelCtx& ctx) {
            const std::int64_t k = ctx.task.scalar("unique_count");
            kernels::buildRadixTreeGpu(deviceExec(ctx),
                                       uniqueCodes(ctx.task, k), k,
                                       treeView(ctx.task, k));
        }),
        {{{"unique", -1}},
         {{"rt_left", -1},
          {"rt_right", -1},
          {"rt_parent", -1},
          {"rt_leafparent", -1},
          {"rt_prefixlen", -1},
          {"rt_first", -1},
          {"rt_last", -1}}}));

    const int s_edges = graph.addNode(withIo(core::Stage(
        "edge_count", profileOf("edge_count", nd),
        [](core::KernelCtx& ctx) {
            const std::int64_t k = ctx.task.scalar("unique_count");
            kernels::countOctreeNodesCpu(
                hostExec(ctx), treeView(ctx.task, k), k,
                ctx.task.view<std::uint32_t>("counts"));
        },
        [](core::KernelCtx& ctx) {
            const std::int64_t k = ctx.task.scalar("unique_count");
            kernels::countOctreeNodesGpu(
                deviceExec(ctx), treeView(ctx.task, k), k,
                ctx.task.view<std::uint32_t>("counts"));
        }),
        {{{"rt_left", -1},
          {"rt_right", -1},
          {"rt_parent", -1},
          {"rt_leafparent", -1},
          {"rt_prefixlen", -1},
          {"rt_first", -1},
          {"rt_last", -1}},
         {{"counts", -1}}}));

    const int s_scan = graph.addNode(withIo(core::Stage(
        "prefix_sum", profileOf("prefix_sum", nd),
        [](core::KernelCtx& ctx) {
            const std::int64_t k = ctx.task.scalar("unique_count");
            const auto counts = ctx.task.view<const std::uint32_t>(
                "counts").subspan(0, static_cast<std::size_t>(
                    2 * k - 1));
            const std::uint64_t total = kernels::exclusiveScanCpu(
                hostExec(ctx), counts,
                ctx.task.view<std::uint32_t>("offsets"));
            ctx.task.setScalar("oct_total",
                               static_cast<std::int64_t>(total));
        },
        [](core::KernelCtx& ctx) {
            const std::int64_t k = ctx.task.scalar("unique_count");
            const auto counts = ctx.task.view<const std::uint32_t>(
                "counts").subspan(0, static_cast<std::size_t>(
                    2 * k - 1));
            const std::uint64_t total = kernels::exclusiveScanGpu(
                counts, ctx.task.view<std::uint32_t>("offsets"),
                ctx.observer);
            ctx.task.setScalar("oct_total",
                               static_cast<std::int64_t>(total));
        }),
        {{{"counts", -1}}, {{"offsets", -1}}}));

    auto buildBody = [uniqueCodes](core::KernelCtx& ctx, bool gpu) {
        const std::int64_t k = ctx.task.scalar("unique_count");
        const std::uint64_t total = static_cast<std::uint64_t>(
            ctx.task.scalar("oct_total"));
        const auto counts
            = ctx.task.view<const std::uint32_t>("counts");
        const auto offsets
            = ctx.task.view<const std::uint32_t>("offsets");
        std::int64_t nodes;
        if (gpu)
            nodes = kernels::buildOctreeGpu(
                deviceExec(ctx), uniqueCodes(ctx.task, k), k,
                treeView(ctx.task, k), counts, offsets, total,
                octView(ctx.task));
        else
            nodes = kernels::buildOctreeCpu(
                hostExec(ctx), uniqueCodes(ctx.task, k), k,
                treeView(ctx.task, k), counts, offsets, total,
                octView(ctx.task));
        ctx.task.setScalar("oct_nodes", nodes);
    };
    const int s_build = graph.addNode(withIo(
        core::Stage(
            "build_octree", profileOf("build_octree", nd),
            [buildBody](core::KernelCtx& ctx) { buildBody(ctx, false); },
            [buildBody](core::KernelCtx& ctx) { buildBody(ctx, true); }),
        {{{"unique", -1},
          {"rt_left", -1},
          {"rt_right", -1},
          {"rt_parent", -1},
          {"rt_leafparent", -1},
          {"rt_prefixlen", -1},
          {"rt_first", -1},
          {"rt_last", -1},
          {"counts", -1},
          {"offsets", -1}},
         {{"oct_prefix", -1},
          {"oct_level", -1},
          {"oct_parent", -1},
          {"oct_childmask", -1},
          {"oct_first", -1},
          {"oct_count", -1}}}));

    // Pipeline chain plus the extra data dependencies of the final
    // stage (paper Sec. 3.1: it reads stages 3, 4 and 6 directly).
    graph.addEdge(s_morton, s_sort);
    graph.addEdge(s_sort, s_unique);
    graph.addEdge(s_unique, s_tree);
    graph.addEdge(s_tree, s_edges);
    graph.addEdge(s_edges, s_scan);
    graph.addEdge(s_scan, s_build);
    graph.addEdge(s_unique, s_build);
    graph.addEdge(s_tree, s_build);
    std::move(graph).linearizeInto(app);

    // TaskObject layout: every buffer pre-allocated at worst case.
    app.setTaskFactory([cfg, n](std::int64_t task_index,
                                std::uint64_t seed) {
        auto task = std::make_unique<core::TaskObject>();
        const auto nu = static_cast<std::size_t>(n);
        task->addBuffer("points", 3 * nu * sizeof(float));
        for (const char* name : {"morton", "sorted", "sort_scratch",
                                 "unique", "flags"})
            task->addBuffer(name, nu * sizeof(std::uint32_t));
        for (const char* name : {"rt_left", "rt_right", "rt_parent",
                                 "rt_leafparent", "rt_prefixlen",
                                 "rt_first", "rt_last"})
            task->addBuffer(name, nu * sizeof(std::int32_t));
        for (const char* name : {"counts", "offsets"})
            task->addBuffer(name, 2 * nu * sizeof(std::uint32_t));
        const auto max_nodes = static_cast<std::size_t>(
            kernels::maxOctreeNodes(n));
        for (const char* name : {"oct_prefix", "oct_level",
                                 "oct_parent", "oct_childmask",
                                 "oct_first", "oct_count"})
            task->addBuffer(name, max_nodes * sizeof(std::uint32_t));
        fillPoints(*task, cfg, task_index, seed);
        return task;
    });
    app.setTaskRefresher([cfg](core::TaskObject& task,
                               std::int64_t task_index,
                               std::uint64_t seed) {
        fillPoints(task, cfg, task_index, seed);
    });

    if (cfg.withValidator) {
        app.setValidator([n](const core::TaskObject& task)
                             -> std::string {
            auto& mutable_task = const_cast<core::TaskObject&>(task);
            const std::int64_t k = task.scalar("unique_count");
            if (k < 1 || k > n)
                return "unique_count out of range";
            const auto sorted = task.view<const std::uint32_t>(
                "sorted");
            for (std::int64_t i = 0; i + 1 < n; ++i)
                if (sorted[static_cast<std::size_t>(i)]
                    > sorted[static_cast<std::size_t>(i + 1)])
                    return "sorted output not ascending";
            const auto unique = task.view<const std::uint32_t>(
                "unique");
            for (std::int64_t i = 0; i + 1 < k; ++i)
                if (unique[static_cast<std::size_t>(i)]
                    >= unique[static_cast<std::size_t>(i + 1)])
                    return "unique output not strictly increasing";

            const auto codes = unique.subspan(
                0, static_cast<std::size_t>(k));
            const std::string tree_err = kernels::validateRadixTree(
                codes, k, treeView(mutable_task, k));
            if (!tree_err.empty())
                return "radix tree: " + tree_err;

            const std::int64_t nodes = task.scalar("oct_nodes");
            const std::string oct_err = kernels::validateOctree(
                codes, k, octView(mutable_task), nodes);
            if (!oct_err.empty())
                return "octree: " + oct_err;
            return "";
        });
    }
    return app;
}

} // namespace bt::apps
