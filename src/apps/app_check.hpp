/**
 * @file
 * Checked execution of whole applications: run every stage's device
 * kernel over one task under a bt::check::Checker, validate the
 * outputs, and return the report. This is the sweep bt_explorer
 * --check and CI run over the example workloads.
 */

#ifndef BT_APPS_APP_CHECK_HPP
#define BT_APPS_APP_CHECK_HPP

#include <cstdint>
#include <string_view>

#include "check/checker.hpp"
#include "core/application.hpp"

namespace bt::apps {

/**
 * Run every stage of @p app (device kernels, in pipeline order) over
 * one freshly created task under bt::check instrumentation. Each stage
 * gets its own context frame, so findings read "App/stage: ...". When
 * the application has a validator attached, it runs on the checked
 * outputs and a rejection becomes a ValidationFailure finding.
 */
check::Report checkApplication(const core::Application& app,
                               const check::CheckerConfig& config = {},
                               std::uint64_t seed = 1);

/**
 * Checked run of a named example workload - "dense", "sparse" or
 * "octree" - at a reduced, validator-enabled scale (checked execution
 * is serial and shadow-tracked, so paper-scale inputs are pointless).
 * Panics on an unknown name.
 */
check::Report checkScaledApp(std::string_view name,
                             const check::CheckerConfig& config = {});

} // namespace bt::apps

#endif // BT_APPS_APP_CHECK_HPP
