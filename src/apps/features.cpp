#include "apps/features.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "apps/app_exec.hpp"
#include "kernels/image.hpp"
#include "kernels/prefix_sum.hpp"

namespace bt::apps {

namespace {

using kernels::ImageShape;
using platform::Pattern;
using platform::WorkProfile;

/**
 * Synthetic input: a handful of bright Gaussian blobs over a gradient
 * background, so Harris finds a stable population of corners.
 */
void
fillImage(core::TaskObject& task, const ImageShape& shape,
          std::int64_t task_index, std::uint64_t seed)
{
    auto img = task.view<float>("image");
    Rng rng(hashCombine(seed ^ 0xfea7, static_cast<std::uint64_t>(
        task_index)));
    for (int y = 0; y < shape.h; ++y)
        for (int x = 0; x < shape.w; ++x)
            img[static_cast<std::size_t>(y) * shape.w + x]
                = 0.1f
                + 0.1f * static_cast<float>(x + y)
                    / static_cast<float>(shape.w + shape.h);
    const int blobs = 24;
    for (int b = 0; b < blobs; ++b) {
        const int cx = 8 + static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(shape.w - 16)));
        const int cy = 8 + static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(shape.h - 16)));
        const float amp = static_cast<float>(rng.nextRange(0.4, 0.9));
        for (int dy = -4; dy <= 4; ++dy) {
            for (int dx = -4; dx <= 4; ++dx) {
                const float r2 = static_cast<float>(dx * dx + dy * dy);
                img[static_cast<std::size_t>(cy + dy) * shape.w + cx
                    + dx] += amp * std::exp(-r2 / 4.0f);
            }
        }
    }
}

/** Compaction shared by both backends: scan flags, scatter indices. */
template <typename ScanFn>
void
compactCorners(core::TaskObject& task, const ImageShape& shape,
               const ScanFn& scan, const kernels::CpuExec* cpu_exec)
{
    const auto flags = task.view<const std::uint32_t>("flags")
                           .subspan(0, static_cast<std::size_t>(
                                           shape.pixels()));
    auto offsets = task.view<std::uint32_t>("offsets");
    const std::uint64_t count = scan(flags, offsets);
    auto corners = task.view<std::uint32_t>("corners");
    auto scatter = [&](std::int64_t i) {
        if (flags[static_cast<std::size_t>(i)])
            corners[offsets[static_cast<std::size_t>(i)]]
                = static_cast<std::uint32_t>(i);
    };
    if (cpu_exec)
        cpu_exec->forEach(shape.pixels(), scatter);
    else
        kernels::GpuExec{}.forEach(shape.pixels(), scatter);
    task.setScalar("corner_count", static_cast<std::int64_t>(count));
}

WorkProfile
profileOf(const std::string& s, double px)
{
    WorkProfile w;
    if (s == "blur_h" || s == "blur_v") {
        w = {10.0 * px, 8.0 * px, 0.999, Pattern::Dense};
    } else if (s == "sobel") {
        w = {20.0 * px, 12.0 * px, 0.999, Pattern::Dense};
    } else if (s == "harris") {
        w = {40.0 * px, 12.0 * px, 0.99, Pattern::Mixed};
    } else if (s == "nms") {
        // Divergent early-out comparisons.
        w = {12.0 * px, 8.0 * px, 0.98, Pattern::Irregular};
    } else if (s == "compact") {
        w = {6.0 * px, 16.0 * px, 0.85, Pattern::Sparse};
    } else if (s == "brief") {
        // ~0.5% corner density, 512 clamped gathers per corner.
        w = {3.0 * px, 10.0 * px, 0.95, Pattern::Irregular};
    } else {
        BT_PANIC("app.unknown_stage", "unknown features stage ", s);
    }
    return w;
}

} // namespace

core::Application
featuresApp(FeaturesConfig cfg)
{
    BT_ASSERT(cfg.width >= 32 && cfg.height >= 32);
    const ImageShape shape{cfg.width, cfg.height};
    const double px = static_cast<double>(shape.pixels());
    const float threshold = cfg.threshold;

    core::Application app("FeatureExtract", "Image",
                          "Stencils, divergence & gathers");

    auto addStage = [&](const std::string& name, auto cpu, auto gpu) {
        app.addStage(core::Stage(name, profileOf(name, px),
                                 std::move(cpu), std::move(gpu)));
    };

    addStage(
        "blur_h",
        [shape](core::KernelCtx& ctx) {
            kernels::blurHCpu(hostExec(ctx), shape,
                              ctx.task.view<const float>("image"),
                              ctx.task.view<float>("blur_tmp"));
        },
        [shape](core::KernelCtx& ctx) {
            kernels::blurHGpu(deviceExec(ctx), shape,
                              ctx.task.view<const float>("image"),
                              ctx.task.view<float>("blur_tmp"));
        });
    addStage(
        "blur_v",
        [shape](core::KernelCtx& ctx) {
            kernels::blurVCpu(hostExec(ctx), shape,
                              ctx.task.view<const float>("blur_tmp"),
                              ctx.task.view<float>("blurred"));
        },
        [shape](core::KernelCtx& ctx) {
            kernels::blurVGpu(deviceExec(ctx), shape,
                              ctx.task.view<const float>("blur_tmp"),
                              ctx.task.view<float>("blurred"));
        });
    addStage(
        "sobel",
        [shape](core::KernelCtx& ctx) {
            kernels::sobelCpu(hostExec(ctx), shape,
                              ctx.task.view<const float>("blurred"),
                              ctx.task.view<float>("gx"),
                              ctx.task.view<float>("gy"));
        },
        [shape](core::KernelCtx& ctx) {
            kernels::sobelGpu(deviceExec(ctx), shape,
                              ctx.task.view<const float>("blurred"),
                              ctx.task.view<float>("gx"),
                              ctx.task.view<float>("gy"));
        });
    addStage(
        "harris",
        [shape](core::KernelCtx& ctx) {
            kernels::harrisCpu(hostExec(ctx), shape,
                               ctx.task.view<const float>("gx"),
                               ctx.task.view<const float>("gy"),
                               ctx.task.view<float>("response"));
        },
        [shape](core::KernelCtx& ctx) {
            kernels::harrisGpu(deviceExec(ctx), shape,
                               ctx.task.view<const float>("gx"),
                               ctx.task.view<const float>("gy"),
                               ctx.task.view<float>("response"));
        });
    addStage(
        "nms",
        [shape, threshold](core::KernelCtx& ctx) {
            kernels::nmsCpu(hostExec(ctx), shape,
                            ctx.task.view<const float>("response"),
                            threshold,
                            ctx.task.view<std::uint32_t>("flags"));
        },
        [shape, threshold](core::KernelCtx& ctx) {
            kernels::nmsGpu(deviceExec(ctx), shape,
                            ctx.task.view<const float>("response"),
                            threshold,
                            ctx.task.view<std::uint32_t>("flags"));
        });
    addStage(
        "compact",
        [shape](core::KernelCtx& ctx) {
            const kernels::CpuExec exec{ctx.pool};
            compactCorners(
                ctx.task, shape,
                [&](std::span<const std::uint32_t> in,
                    std::span<std::uint32_t> out) {
                    return kernels::exclusiveScanCpu(exec, in, out);
                },
                &exec);
        },
        [shape](core::KernelCtx& ctx) {
            compactCorners(
                ctx.task, shape,
                [&](std::span<const std::uint32_t> in,
                    std::span<std::uint32_t> out) {
                    return kernels::exclusiveScanGpu(in, out,
                                                     ctx.observer);
                },
                nullptr);
        });
    addStage(
        "brief",
        [shape](core::KernelCtx& ctx) {
            const std::int64_t n = ctx.task.scalar("corner_count");
            kernels::briefCpu(
                hostExec(ctx), shape,
                ctx.task.view<const float>("blurred"),
                ctx.task.view<const std::uint32_t>("corners"), n,
                ctx.task.view<std::uint32_t>("descriptors"));
        },
        [shape](core::KernelCtx& ctx) {
            const std::int64_t n = ctx.task.scalar("corner_count");
            kernels::briefGpu(
                deviceExec(ctx), shape,
                ctx.task.view<const float>("blurred"),
                ctx.task.view<const std::uint32_t>("corners"), n,
                ctx.task.view<std::uint32_t>("descriptors"));
        });

    app.setTaskFactory([shape, cfg](std::int64_t task_index,
                                    std::uint64_t seed) {
        auto task = std::make_unique<core::TaskObject>();
        const auto px_count
            = static_cast<std::size_t>(shape.pixels());
        for (const char* name :
             {"image", "blur_tmp", "blurred", "gx", "gy", "response"})
            task->addBuffer(name, px_count * sizeof(float));
        for (const char* name : {"flags", "offsets", "corners"})
            task->addBuffer(name, px_count * sizeof(std::uint32_t));
        // NMS admits at most one corner per 2x2 block (strict 3x3
        // dominance), so px/4 corners bounds the descriptor store;
        // keep a 2x safety margin.
        task->addBuffer("descriptors",
                        px_count / 2 * kernels::kDescriptorWords
                            * sizeof(std::uint32_t));
        (void)cfg;
        fillImage(*task, shape, task_index, seed);
        return task;
    });
    app.setTaskRefresher([shape](core::TaskObject& task,
                                 std::int64_t task_index,
                                 std::uint64_t seed) {
        fillImage(task, shape, task_index, seed);
    });

    if (cfg.withValidator) {
        app.setValidator([shape, threshold](
                             const core::TaskObject& task)
                             -> std::string {
            auto& t = const_cast<core::TaskObject&>(task);
            const auto px_count
                = static_cast<std::size_t>(shape.pixels());
            std::vector<float> tmp(px_count), blurred(px_count),
                gx(px_count), gy(px_count), response(px_count);
            kernels::blurHReference(shape, t.view<const float>(
                                               "image"),
                                    tmp);
            kernels::blurVReference(shape, tmp, blurred);
            kernels::sobelReference(shape, blurred, gx, gy);
            kernels::harrisReference(shape, gx, gy, response);
            std::vector<std::uint32_t> flags(px_count);
            kernels::nmsReference(shape, response, threshold, flags);

            const auto got_flags
                = t.view<const std::uint32_t>("flags");
            std::int64_t expect_count = 0;
            for (std::size_t i = 0; i < px_count; ++i) {
                if (got_flags[i] != flags[i])
                    return "nms flag mismatch at pixel "
                        + std::to_string(i);
                expect_count += flags[i];
            }
            if (expect_count == 0)
                return "degenerate input: no corners found";
            if (t.scalar("corner_count") != expect_count)
                return "corner count mismatch";

            // Corners are the flagged pixels in scan order; verify a
            // sample of descriptors against the reference kernel.
            const auto corners
                = t.view<const std::uint32_t>("corners");
            const auto descs
                = t.view<const std::uint32_t>("descriptors");
            std::vector<std::uint32_t> want(
                kernels::kDescriptorWords);
            for (std::int64_t c = 0; c < expect_count;
                 c += std::max<std::int64_t>(1, expect_count / 7)) {
                if (!flags[corners[static_cast<std::size_t>(c)]])
                    return "corner index not flagged";
                kernels::briefCpu(
                    kernels::CpuExec{nullptr}, shape, blurred,
                    corners.subspan(static_cast<std::size_t>(c), 1), 1,
                    want);
                for (int wrd = 0; wrd < kernels::kDescriptorWords;
                     ++wrd)
                    if (descs[static_cast<std::size_t>(
                            c * kernels::kDescriptorWords + wrd)]
                        != want[static_cast<std::size_t>(wrd)])
                        return "descriptor mismatch at corner "
                            + std::to_string(c);
            }
            return "";
        });
    }
    return app;
}

} // namespace bt::apps
