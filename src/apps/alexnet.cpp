#include "apps/alexnet.hpp"

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "apps/app_exec.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/csr.hpp"
#include "kernels/linear.hpp"
#include "kernels/pooling.hpp"
#include "kernels/sparse_conv.hpp"

namespace bt::apps {

namespace {

using kernels::ConvShape;
using kernels::CsrMatrix;
using kernels::Shape3;
using platform::Pattern;
using platform::WorkProfile;

/** CIFAR-sized AlexNet layer plan. */
constexpr std::array<ConvShape, 4> kConvPlan{
    ConvShape{Shape3{3, 32, 32}, 64},
    ConvShape{Shape3{64, 16, 16}, 192},
    ConvShape{Shape3{192, 8, 8}, 256},
    ConvShape{Shape3{256, 4, 4}, 256},
};
constexpr int kFcIn = 256 * 2 * 2;
constexpr int kFcOut = 10;

/** Immutable network parameters shared by every TaskObject. */
struct Weights
{
    struct ConvLayer
    {
        std::vector<float> w;
        std::vector<float> b;
        CsrMatrix csr; ///< only populated in the sparse variant
    };
    std::array<ConvLayer, 4> conv;
    std::vector<float> fcW;
    std::vector<float> fcB;
    bool sparse = false;
};

std::shared_ptr<const Weights>
makeWeights(const AlexNetConfig& cfg)
{
    auto weights = std::make_shared<Weights>();
    weights->sparse = cfg.sparse;
    Rng rng(cfg.weightSeed);

    auto gaussianFill = [&rng](std::vector<float>& v, std::size_t n,
                               double scale) {
        v.resize(n);
        for (auto& x : v)
            x = static_cast<float>(rng.nextGaussian() * scale);
    };

    for (std::size_t l = 0; l < kConvPlan.size(); ++l) {
        const ConvShape& shape = kConvPlan[l];
        auto& layer = weights->conv[l];
        const double scale
            = 1.0 / std::sqrt(static_cast<double>(shape.in.c) * 9.0);
        gaussianFill(layer.w,
                     static_cast<std::size_t>(shape.weightElems()),
                     scale);
        gaussianFill(layer.b, static_cast<std::size_t>(shape.outC),
                     0.01);
        if (cfg.sparse)
            layer.csr = kernels::pruneToCsr(layer.w, shape.outC,
                                            shape.in.c * 9,
                                            cfg.density);
    }
    gaussianFill(weights->fcW,
                 static_cast<std::size_t>(kFcIn) * kFcOut,
                 1.0 / std::sqrt(static_cast<double>(kFcIn)));
    gaussianFill(weights->fcB, kFcOut, 0.01);
    return weights;
}

/** Activation buffer names along the pipeline; act0 is the input. */
std::string
actName(int i)
{
    return "act" + std::to_string(i);
}

/** Shapes of act0..act8 (conv preserves spatial, pool halves it). */
std::array<Shape3, 9>
activationShapes()
{
    std::array<Shape3, 9> shapes{};
    shapes[0] = kConvPlan[0].in;
    for (std::size_t l = 0; l < 4; ++l) {
        shapes[2 * l + 1] = kConvPlan[l].out();
        shapes[2 * l + 2] = kernels::pooledShape(kConvPlan[l].out());
    }
    return shapes;
}

void
fillInput(core::TaskObject& task, int batch, std::int64_t task_index,
          std::uint64_t seed)
{
    auto input = task.view<float>(actName(0));
    Rng rng(hashCombine(seed, static_cast<std::uint64_t>(task_index)));
    const std::size_t n = static_cast<std::size_t>(batch)
        * static_cast<std::size_t>(kConvPlan[0].in.elems());
    BT_ASSERT(input.size() >= n);
    for (std::size_t i = 0; i < n; ++i)
        input[i] = static_cast<float>(rng.nextDouble());
}

/** Serial reference of the full network for the validator. */
void
referenceForward(const Weights& weights, std::span<const float> image,
                 std::span<float> logits)
{
    std::vector<float> cur(image.begin(), image.end());
    std::vector<float> next;
    for (std::size_t l = 0; l < 4; ++l) {
        const ConvShape& shape = kConvPlan[l];
        next.assign(static_cast<std::size_t>(shape.out().elems()), 0.0f);
        if (weights.sparse) {
            kernels::sparseConvReference(shape, cur,
                                         weights.conv[l].csr,
                                         weights.conv[l].b, next);
        } else {
            kernels::conv2dReference(shape, cur, weights.conv[l].w,
                                     weights.conv[l].b, next);
        }
        cur.swap(next);
        const Shape3 pooled = kernels::pooledShape(shape.out());
        next.assign(static_cast<std::size_t>(pooled.elems()), 0.0f);
        kernels::maxpoolReference(shape.out(), cur, next);
        cur.swap(next);
    }
    kernels::linearReference(kFcIn, kFcOut, cur, weights.fcW,
                             weights.fcB, logits);
}

/**
 * Fraction of activation traffic that actually reaches DRAM: the small
 * CIFAR feature maps are mostly L2-resident between producing and
 * consuming stages, so only a slice of the nominal bytes is streamed.
 */
constexpr double kActCacheFactor = 0.35;

/**
 * The host-side direct convolution costs ~4x its useful flops: the
 * SIMD row-saxpy body (kernels/simd_body.hpp) recovers the issue-width
 * gap of the old scalar loops (which sat near 8x), but the tap-sweep
 * formulation still streams the output plane once per (ic, ky, kx) tap
 * and so stays well short of the packed-GEMM roofline the lean kernels
 * reach. Measured as the conv2dCpu / conv2dGemmCpu ratio on the
 * BM_Conv2dDense vs BM_GemmConv micro pair (BENCH_kernels.json); the
 * GPU kernel maps near-roofline. This reproduces the paper's wide
 * CPU/GPU dense gap without distorting lean dense stages such as
 * Morton encoding or pooling.
 */
constexpr double kDirectConvCpuScale = 4.0;

WorkProfile
convProfile(const ConvShape& shape, int batch, bool sparse,
            std::int64_t nnz)
{
    WorkProfile w;
    const double spatial = static_cast<double>(shape.in.h) * shape.in.w;
    const double act_bytes = 4.0 * batch * kActCacheFactor
        * (static_cast<double>(shape.in.elems())
           + static_cast<double>(shape.out().elems()));
    if (sparse) {
        w.flops = 2.0 * static_cast<double>(nnz) * spatial * batch;
        w.bytes = act_bytes + 8.0 * static_cast<double>(nnz);
        w.pattern = Pattern::Sparse;
        w.parallelFraction = 0.99;
    } else {
        w.flops = 2.0 * 9.0 * shape.in.c * shape.outC * spatial * batch;
        w.bytes
            = act_bytes + 4.0 * static_cast<double>(shape.weightElems());
        w.pattern = Pattern::Dense;
        w.parallelFraction = 0.995;
        w.cpuWorkScale = kDirectConvCpuScale;
    }
    return w;
}

WorkProfile
poolProfile(const Shape3& in, int batch)
{
    const Shape3 out = kernels::pooledShape(in);
    WorkProfile w;
    w.flops = 3.0 * static_cast<double>(out.elems()) * batch;
    w.bytes = 4.0 * batch * kActCacheFactor
        * (static_cast<double>(in.elems())
           + static_cast<double>(out.elems()));
    w.pattern = Pattern::Dense;
    w.parallelFraction = 0.97;
    return w;
}

WorkProfile
fcProfile(int batch, bool sparse)
{
    WorkProfile w;
    w.flops = 2.0 * kFcIn * kFcOut * batch;
    w.bytes = 4.0 * (static_cast<double>(kFcIn) * kFcOut
                     + batch * (kFcIn + kFcOut));
    w.pattern = sparse ? Pattern::Sparse : Pattern::Dense;
    w.parallelFraction = 0.90;
    return w;
}

core::Application
buildAlexNet(const AlexNetConfig& cfg)
{
    BT_ASSERT(cfg.batch >= 1);
    const auto weights = makeWeights(cfg);
    const auto shapes = activationShapes();
    const int batch = cfg.batch;

    core::Application app(
        cfg.sparse ? "AlexNet-Sparse" : "AlexNet-Dense", "Image",
        cfg.sparse ? "Sparse Linear Algebra" : "Dense Linear Algebra");

    // Static IO metadata for bt::lint: every activation plus the
    // logits, with the exact sizes the task factory allocates below.
    // (Weights live in shared_ptr closures, not in the TaskObject.)
    const auto actBytes = [&shapes, batch](int a) {
        return static_cast<std::int64_t>(
                   shapes[static_cast<std::size_t>(a)].elems())
            * batch * static_cast<std::int64_t>(sizeof(float));
    };
    app.declareBuffer({actName(0), actBytes(0), /*input=*/true});
    for (int a = 1; a < 9; ++a)
        app.declareBuffer({actName(a), actBytes(a)});
    app.declareBuffer(
        {"out", static_cast<std::int64_t>(kFcOut) * batch
                    * static_cast<std::int64_t>(sizeof(float)),
         false, /*output=*/true});

    // Stages: conv/pool x4, then the classifier.
    for (std::size_t l = 0; l < 4; ++l) {
        const ConvShape shape = kConvPlan[l];
        const int in_act = static_cast<int>(2 * l);
        const std::int64_t nnz
            = cfg.sparse ? weights->conv[l].csr.nnz() : 0;

        auto conv_body = [weights, shape, batch, l, in_act,
                          sparse = cfg.sparse](core::KernelCtx& ctx,
                                               bool gpu) {
            const auto in = ctx.task.view<const float>(actName(in_act));
            auto out = ctx.task.view<float>(actName(in_act + 1));
            const auto in_sz = static_cast<std::size_t>(
                shape.in.elems());
            const auto out_sz = static_cast<std::size_t>(
                shape.out().elems());
            for (int b = 0; b < batch; ++b) {
                const auto ib = in.subspan(
                    static_cast<std::size_t>(b) * in_sz, in_sz);
                const auto ob = out.subspan(
                    static_cast<std::size_t>(b) * out_sz, out_sz);
                if (sparse) {
                    if (gpu)
                        kernels::sparseConvGpu(deviceExec(ctx), shape,
                                               ib, weights->conv[l].csr,
                                               weights->conv[l].b, ob);
                    else
                        kernels::sparseConvCpu(
                            hostExec(ctx), shape, ib,
                            weights->conv[l].csr, weights->conv[l].b,
                            ob);
                } else {
                    if (gpu)
                        kernels::conv2dGpu(deviceExec(ctx), shape, ib,
                                           weights->conv[l].w,
                                           weights->conv[l].b, ob);
                    else
                        kernels::conv2dCpu(hostExec(ctx),
                                           shape, ib, weights->conv[l].w,
                                           weights->conv[l].b, ob);
                }
            }
        };
        core::Stage conv_stage(
            "conv" + std::to_string(l + 1),
            convProfile(shape, batch, cfg.sparse, nnz),
            [conv_body](core::KernelCtx& ctx) { conv_body(ctx, false); },
            [conv_body](core::KernelCtx& ctx) { conv_body(ctx, true); });
        conv_stage.setIo({{{actName(in_act), actBytes(in_act)}},
                          {{actName(in_act + 1), actBytes(in_act + 1)}}});
        app.addStage(std::move(conv_stage));

        const Shape3 conv_out = shape.out();
        auto pool_body = [conv_out, batch, in_act](core::KernelCtx& ctx,
                                                   bool gpu) {
            const auto in
                = ctx.task.view<const float>(actName(in_act + 1));
            auto out = ctx.task.view<float>(actName(in_act + 2));
            const auto in_sz = static_cast<std::size_t>(
                conv_out.elems());
            const auto out_sz = static_cast<std::size_t>(
                kernels::pooledShape(conv_out).elems());
            for (int b = 0; b < batch; ++b) {
                const auto ib = in.subspan(
                    static_cast<std::size_t>(b) * in_sz, in_sz);
                const auto ob = out.subspan(
                    static_cast<std::size_t>(b) * out_sz, out_sz);
                if (gpu)
                    kernels::maxpoolGpu(deviceExec(ctx), conv_out, ib,
                                        ob);
                else
                    kernels::maxpoolCpu(hostExec(ctx),
                                        conv_out, ib, ob);
            }
        };
        core::Stage pool_stage(
            "pool" + std::to_string(l + 1), poolProfile(conv_out, batch),
            [pool_body](core::KernelCtx& ctx) { pool_body(ctx, false); },
            [pool_body](core::KernelCtx& ctx) { pool_body(ctx, true); });
        pool_stage.setIo({{{actName(in_act + 1), actBytes(in_act + 1)}},
                          {{actName(in_act + 2), actBytes(in_act + 2)}}});
        app.addStage(std::move(pool_stage));
    }

    auto fc_body = [weights, batch](core::KernelCtx& ctx, bool gpu) {
        const auto in = ctx.task.view<const float>(actName(8));
        auto out = ctx.task.view<float>("out");
        for (int b = 0; b < batch; ++b) {
            const auto ib = in.subspan(
                static_cast<std::size_t>(b) * kFcIn, kFcIn);
            const auto ob = out.subspan(
                static_cast<std::size_t>(b) * kFcOut, kFcOut);
            if (gpu)
                kernels::linearGpu(deviceExec(ctx), kFcIn, kFcOut, ib,
                                   weights->fcW, weights->fcB, ob);
            else
                kernels::linearCpu(hostExec(ctx), kFcIn,
                                   kFcOut, ib, weights->fcW,
                                   weights->fcB, ob);
        }
    };
    core::Stage fc_stage(
        "fc", fcProfile(batch, cfg.sparse),
        [fc_body](core::KernelCtx& ctx) { fc_body(ctx, false); },
        [fc_body](core::KernelCtx& ctx) { fc_body(ctx, true); });
    fc_stage.setIo({{{actName(8), actBytes(8)}},
                    {{"out", static_cast<std::int64_t>(kFcOut) * batch
                                 * static_cast<std::int64_t>(
                                     sizeof(float))}}});
    app.addStage(std::move(fc_stage));

    // TaskObject layout: all activations plus the logits.
    app.setTaskFactory([shapes, batch](std::int64_t task_index,
                                       std::uint64_t seed) {
        auto task = std::make_unique<core::TaskObject>();
        for (int a = 0; a < 9; ++a)
            task->addBuffer(actName(a),
                            static_cast<std::size_t>(
                                shapes[static_cast<std::size_t>(a)]
                                    .elems())
                                * batch * sizeof(float));
        task->addBuffer("out", static_cast<std::size_t>(kFcOut) * batch
                                   * sizeof(float));
        fillInput(*task, batch, task_index, seed);
        return task;
    });
    app.setTaskRefresher([batch](core::TaskObject& task,
                                 std::int64_t task_index,
                                 std::uint64_t seed) {
        fillInput(task, batch, task_index, seed);
    });

    if (cfg.withValidator) {
        app.setValidator([weights, batch](const core::TaskObject& task)
                             -> std::string {
            const auto input = task.view<const float>(actName(0));
            const auto out = task.view<const float>("out");
            const auto in_sz = static_cast<std::size_t>(
                kConvPlan[0].in.elems());
            std::vector<float> expect(kFcOut);
            for (int b = 0; b < batch; ++b) {
                referenceForward(
                    *weights,
                    input.subspan(static_cast<std::size_t>(b) * in_sz,
                                  in_sz),
                    expect);
                for (int o = 0; o < kFcOut; ++o) {
                    const float got = out[static_cast<std::size_t>(
                        b * kFcOut + o)];
                    const float want
                        = expect[static_cast<std::size_t>(o)];
                    const float tol = 1e-3f
                        + 1e-4f * std::fabs(want);
                    if (std::fabs(got - want) > tol)
                        return "logit mismatch at image "
                            + std::to_string(b) + " class "
                            + std::to_string(o) + ": got "
                            + std::to_string(got) + " want "
                            + std::to_string(want);
                }
            }
            return "";
        });
    }
    return app;
}

} // namespace

core::Application
alexnetDense(AlexNetConfig cfg)
{
    cfg.sparse = false;
    return buildAlexNet(cfg);
}

core::Application
alexnetSparse(AlexNetConfig cfg)
{
    cfg.sparse = true;
    return buildAlexNet(cfg);
}

} // namespace bt::apps
