/**
 * @file
 * Device-wide cooperative primitives, written the way GPU libraries write
 * them: multi-kernel phase structure with per-thread chunks and a partials
 * array standing in for inter-block communication. These are the building
 * blocks of the GPU backends for Sort, Prefix Sum and Duplicate Removal in
 * the Octree application.
 */

#ifndef BT_SIMT_ALGORITHMS_HPP
#define BT_SIMT_ALGORITHMS_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "simt/instrument.hpp"
#include "simt/simt.hpp"

namespace bt::simt {

/** Device-wide sum of 32-bit values (tree reduction over thread chunks). */
std::uint64_t deviceReduce(std::span<const std::uint32_t> in);

/**
 * Device-wide exclusive prefix sum. in and out may alias. Implemented as
 * the classic three-phase scan: per-chunk partial sums, scan of partials,
 * per-chunk rescan with offsets.
 * @return the total sum (the value that would follow the last element).
 */
std::uint64_t deviceExclusiveScan(std::span<const std::uint32_t> in,
                                  std::span<std::uint32_t> out);

/**
 * Device-wide histogram of (key >> shift) & (buckets-1).
 * @param counts must have `buckets` entries; it is zeroed first.
 */
void deviceHistogram(std::span<const std::uint32_t> keys, int shift,
                     std::uint32_t buckets,
                     std::span<std::uint32_t> counts);

/**
 * One stable LSD radix-sort pass over `radixBits`-wide digits at
 * @p shift: per-chunk digit histograms, a scan producing per-chunk bucket
 * offsets, then a stable scatter. This mirrors the canonical GPU radix
 * sort (Satish et al.) with thread-chunks in place of thread blocks.
 */
void deviceRadixPass(std::span<const std::uint32_t> in,
                     std::span<std::uint32_t> out, int shift,
                     int radix_bits);

/**
 * Full LSD radix sort of 32-bit keys using ping-pong buffers.
 * @param scratch must be at least in.size() elements.
 */
void deviceRadixSort(std::span<std::uint32_t> keys,
                     std::span<std::uint32_t> scratch,
                     int radix_bits = 8);

/**
 * Checked overloads (bt::check): identical phase structure instantiated
 * over tracked views, with internal scratch (partials, private
 * histograms) registered as tracked regions under @p obs so races, OOB
 * accesses and order-dependence inside the primitives are caught too.
 * Results are bit-identical to the raw overloads.
 */
std::uint64_t deviceReduce(TrackedSpan<const std::uint32_t> in,
                           LaunchObserver& obs);

std::uint64_t deviceExclusiveScan(TrackedSpan<const std::uint32_t> in,
                                  TrackedSpan<std::uint32_t> out,
                                  LaunchObserver& obs);

void deviceHistogram(TrackedSpan<const std::uint32_t> keys, int shift,
                     std::uint32_t buckets,
                     TrackedSpan<std::uint32_t> counts,
                     LaunchObserver& obs);

void deviceRadixPass(TrackedSpan<const std::uint32_t> in,
                     TrackedSpan<std::uint32_t> out, int shift,
                     int radix_bits, LaunchObserver& obs);

void deviceRadixSort(TrackedSpan<std::uint32_t> keys,
                     TrackedSpan<std::uint32_t> scratch,
                     LaunchObserver& obs, int radix_bits = 8);

} // namespace bt::simt

#endif // BT_SIMT_ALGORITHMS_HPP
