/**
 * @file
 * SIMT-style kernel launch layer: the framework's stand-in for CUDA and
 * Vulkan compute (see DESIGN.md, substitution table).
 *
 * GPU kernels in this codebase are written exactly as they would be in
 * CUDA: a grid of thread blocks, each thread identified by
 * (blockIdx, threadIdx), usually iterating a grid-stride loop. Cooperative
 * algorithms (scan, histogram, radix sort) are phase-structured as multiple
 * kernel launches - the standard way GPU code expresses device-wide
 * barriers - so no intra-block barrier primitive is needed.
 *
 * Execution is functional and deterministic on the host; timing of GPU
 * work is the job of the platform performance model, not this layer.
 */

#ifndef BT_SIMT_SIMT_HPP
#define BT_SIMT_SIMT_HPP

#include <cstdint>
#include <functional>

namespace bt::sched { class ThreadPool; }

namespace bt::simt {

/** Grid geometry of one kernel launch (1-D, like all kernels here). */
struct LaunchConfig
{
    int gridDim = 1;   ///< number of thread blocks
    int blockDim = 64; ///< threads per block

    /** Total threads in the launch. */
    std::int64_t
    totalThreads() const
    {
        return static_cast<std::int64_t>(gridDim) * blockDim;
    }

    /** Geometry covering @p n items with @p block threads per block. */
    static LaunchConfig cover(std::int64_t n, int block = 64,
                              int max_grid = 1024);
};

/** Identity of one SIMT thread inside a launch. */
struct WorkItem
{
    int blockIdx = 0;
    int threadIdx = 0;
    int blockDim = 1;
    int gridDim = 1;

    /** Flattened global thread id, CUDA's blockIdx*blockDim+threadIdx. */
    std::int64_t
    globalId() const
    {
        return static_cast<std::int64_t>(blockIdx) * blockDim + threadIdx;
    }

    /** Total threads; the stride of a grid-stride loop. */
    std::int64_t
    globalSize() const
    {
        return static_cast<std::int64_t>(gridDim) * blockDim;
    }
};

/** A device kernel body, invoked once per thread in the grid. */
using Kernel = std::function<void(const WorkItem&)>;

/**
 * Launch @p kernel over @p cfg, executing every thread exactly once.
 * Blocks are executed in order; threads within a block in threadIdx order,
 * which makes kernels deterministic (real GPUs give no such ordering, so
 * kernels must not rely on it for correctness - tests shuffle block order
 * to check that).
 */
void launch(const LaunchConfig& cfg, const Kernel& kernel);

/**
 * Launch with blocks distributed over a host thread pool; used to speed up
 * functional execution on many-core hosts. Semantics are identical to the
 * serial launch for data-race-free kernels.
 */
void launch(sched::ThreadPool& pool, const LaunchConfig& cfg,
            const Kernel& kernel);

/**
 * Debug launch that visits blocks in a pseudo-random order derived from
 * @p seed. Kernels whose output changes under this launch have an
 * inter-block ordering bug that a real GPU would expose.
 */
void launchShuffled(const LaunchConfig& cfg, const Kernel& kernel,
                    std::uint64_t seed);

/**
 * Run @p body for every index in [0, n) using a grid-stride loop from
 * @p item - the canonical "for (i = gid; i < n; i += stride)" idiom.
 */
template <typename Body>
inline void
gridStride(const WorkItem& item, std::int64_t n, Body&& body)
{
    const std::int64_t stride = item.globalSize();
    for (std::int64_t i = item.globalId(); i < n; i += stride)
        body(i);
}

} // namespace bt::simt

#endif // BT_SIMT_SIMT_HPP
