/**
 * @file
 * SIMT-style kernel launch layer: the framework's stand-in for CUDA and
 * Vulkan compute (see DESIGN.md, substitution table).
 *
 * GPU kernels in this codebase are written exactly as they would be in
 * CUDA: a grid of thread blocks, each thread identified by
 * (blockIdx, threadIdx), usually iterating a grid-stride loop. Cooperative
 * algorithms (scan, histogram, radix sort) are phase-structured as multiple
 * kernel launches - the standard way GPU code expresses device-wide
 * barriers - so no intra-block barrier primitive is needed.
 *
 * Execution is functional and deterministic on the host; timing of GPU
 * work is the job of the platform performance model, not this layer.
 *
 * Dispatch tiers (see docs/DISPATCH.md): the templated launch overloads
 * instantiate the kernel functor statically, so the per-thread call
 * inlines into the block loop; the std::function overloads are thin
 * wrappers kept for ABI-stable callers and pay one type-erased indirect
 * call per SIMT thread. Hot paths must use the templated tier.
 */

#ifndef BT_SIMT_SIMT_HPP
#define BT_SIMT_SIMT_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hpp"
#include "sched/thread_pool.hpp"

namespace bt::simt {

/** Grid geometry of one kernel launch (1-D, like all kernels here). */
struct LaunchConfig
{
    int gridDim = 1;   ///< number of thread blocks
    int blockDim = 64; ///< threads per block

    /** Total threads in the launch. */
    std::int64_t
    totalThreads() const
    {
        return static_cast<std::int64_t>(gridDim) * blockDim;
    }

    /**
     * Geometry covering @p n items with @p block threads per block. Safe
     * for the whole std::int64_t range of @p n: the block count is
     * computed without the rounding addition that could overflow, then
     * clamped to @p max_grid.
     */
    static LaunchConfig cover(std::int64_t n, int block = 64,
                              int max_grid = 1024);
};

/** Identity of one SIMT thread inside a launch. */
struct WorkItem
{
    int blockIdx = 0;
    int threadIdx = 0;
    int blockDim = 1;
    int gridDim = 1;

    /** Flattened global thread id, CUDA's blockIdx*blockDim+threadIdx. */
    std::int64_t
    globalId() const
    {
        return static_cast<std::int64_t>(blockIdx) * blockDim + threadIdx;
    }

    /** Total threads; the stride of a grid-stride loop. */
    std::int64_t
    globalSize() const
    {
        return static_cast<std::int64_t>(gridDim) * blockDim;
    }
};

/** A type-erased device kernel body (the slow, ABI-stable tier). */
using Kernel = std::function<void(const WorkItem&)>;

/**
 * Execute every thread of block @p block of @p cfg against @p kernel.
 * Statically instantiated per kernel type: with a concrete functor the
 * per-thread call inlines into this loop and costs nothing.
 */
template <typename F>
inline void
runBlock(const LaunchConfig& cfg, F& kernel, int block)
{
    WorkItem item;
    item.blockIdx = block;
    item.blockDim = cfg.blockDim;
    item.gridDim = cfg.gridDim;
    for (int t = 0; t < cfg.blockDim; ++t) {
        item.threadIdx = t;
        kernel(static_cast<const WorkItem&>(item));
    }
}

/**
 * Launch @p kernel over @p cfg, executing every thread exactly once.
 * Blocks are executed in order; threads within a block in threadIdx order,
 * which makes kernels deterministic (real GPUs give no such ordering, so
 * kernels must not rely on it for correctness - tests shuffle block order
 * to check that).
 */
template <typename F>
inline void
launch(const LaunchConfig& cfg, F&& kernel)
{
    BT_ASSERT(cfg.gridDim > 0 && cfg.blockDim > 0, "empty launch");
    for (int b = 0; b < cfg.gridDim; ++b)
        runBlock(cfg, kernel, b);
}

/**
 * Launch with blocks distributed over a host thread pool; used to speed up
 * functional execution on many-core hosts. Semantics are identical to the
 * serial launch for data-race-free kernels. Blocks are handed to workers
 * in contiguous batches through the pool's chunked parallelForBlocks, so
 * per-block scheduling costs amortize over a whole batch.
 */
template <typename F>
inline void
launch(sched::ThreadPool& pool, const LaunchConfig& cfg, F&& kernel)
{
    BT_ASSERT(cfg.gridDim > 0 && cfg.blockDim > 0, "empty launch");
    pool.parallelForBlocks(
        0, cfg.gridDim, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t b = lo; b < hi; ++b)
                runBlock(cfg, kernel, static_cast<int>(b));
        });
}

/**
 * Pseudo-random block visitation order for @p grid_dim blocks; the
 * deterministic Fisher-Yates permutation behind launchShuffled.
 */
std::vector<int> shuffledBlockOrder(int grid_dim, std::uint64_t seed);

/**
 * Debug launch that visits blocks in a pseudo-random order derived from
 * @p seed. Kernels whose output changes under this launch have an
 * inter-block ordering bug that a real GPU would expose.
 */
template <typename F>
inline void
launchShuffled(const LaunchConfig& cfg, F&& kernel, std::uint64_t seed)
{
    BT_ASSERT(cfg.gridDim > 0 && cfg.blockDim > 0, "empty launch");
    for (int b : shuffledBlockOrder(cfg.gridDim, seed))
        runBlock(cfg, kernel, b);
}

/** Erased-tier launch: one indirect call per SIMT thread. */
void launch(const LaunchConfig& cfg, const Kernel& kernel);

/** Erased-tier pooled launch. */
void launch(sched::ThreadPool& pool, const LaunchConfig& cfg,
            const Kernel& kernel);

/** Erased-tier shuffled launch. */
void launchShuffled(const LaunchConfig& cfg, const Kernel& kernel,
                    std::uint64_t seed);

/**
 * Run @p body for every index in [0, n) using a grid-stride loop from
 * @p item - the canonical "for (i = gid; i < n; i += stride)" idiom.
 */
template <typename Body>
inline void
gridStride(const WorkItem& item, std::int64_t n, Body&& body)
{
    const std::int64_t stride = item.globalSize();
    for (std::int64_t i = item.globalId(); i < n; i += stride)
        body(i);
}

} // namespace bt::simt

#endif // BT_SIMT_SIMT_HPP
