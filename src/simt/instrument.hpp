/**
 * @file
 * Instrumentation protocol for checked SIMT execution (bt::check).
 *
 * This header defines the *contract* between the kernel layer and a
 * checker: an abstract LaunchObserver that receives every buffer
 * registration, launch, thread switch and element access, plus the
 * TrackedSpan/TrackedRef accessor types kernels substitute for raw
 * std::span when an observer is attached. The concrete checker (shadow
 * memory, race rules, reporting) lives in src/check; this file has no
 * dependency on it, so the simt and kernels layers stay below bt_check
 * in the link order.
 *
 * The checked path reuses the templated zero-overhead launch tier:
 * launchChecked() wraps the kernel functor and calls the same
 * simt::launch / simt::launchShuffled templates the fast path uses.
 * Kernels instantiate their device body twice - once over raw spans
 * (the uninstrumented hot path, codegen untouched) and once over
 * TrackedSpans - and branch between the two exactly once per kernel
 * call, so uninstrumented dispatch never pays a single extra branch
 * per element.
 */

#ifndef BT_SIMT_INSTRUMENT_HPP
#define BT_SIMT_INSTRUMENT_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <type_traits>

#include "simt/simt.hpp"

namespace bt::simt {

/** What an instrumented element access does to memory. */
enum class AccessKind
{
    Read,
    Write,
    AtomicRmw, ///< read-modify-write through an atomic operation
};

/**
 * How a kernel maps threads to its @p items (drives the geometry lint):
 *  - GridStride: "for (i = gid; i < n; i += stride)" - any geometry
 *    covers all items, but blocks beyond ceil(n/blockDim) are dead;
 *  - Direct: "i = gid" with no stride loop - the launch must supply at
 *    least n threads or the tail is silently skipped;
 *  - Chunked: contiguous per-thread chunks "[n*t/T, n*(t+1)/T)" - covers
 *    all items by construction for any thread count.
 */
enum class GeometryStyle
{
    GridStride,
    Direct,
    Chunked,
};

/**
 * Receiver for instrumented execution events. Implemented by
 * check::Checker; kernels only see this interface.
 *
 * Element indices reported through onAccess/onOutOfBounds are relative
 * to the *registered region*, not to any subspan a kernel sliced from
 * it (TrackedSpan::subspan keeps the region-relative offset).
 */
class LaunchObserver
{
  public:
    virtual ~LaunchObserver() = default;

    /** Enter/leave a named kernel scope (may nest, e.g. unique > scan). */
    virtual void beginKernel(std::string_view name) = 0;
    virtual void endKernel() = 0;

    /**
     * Register @p elems elements of @p elem_bytes at @p base under
     * @p name; returns a region id for onAccess. Registering the exact
     * same (base, elems, elem_bytes) again returns the existing id, so
     * in-place kernels (scan with in == out) alias onto one region.
     */
    virtual int registerRegion(const void* base, std::int64_t elems,
                               std::size_t elem_bytes,
                               std::string_view name, bool readonly)
        = 0;

    /**
     * Drop @p region from order-dependence snapshots; its memory is
     * about to go out of scope (kernel-internal scratch). Recorded
     * findings survive.
     */
    virtual void retireRegion(int region) = 0;

    /** A launch of @p cfg intending to process @p items begins. */
    virtual void onLaunchBegin(const LaunchConfig& cfg, std::int64_t items,
                               GeometryStyle style)
        = 0;

    /** The launch switches to SIMT thread @p item. */
    virtual void onThreadBegin(const WorkItem& item) = 0;

    /** The launch completed (device-wide barrier). */
    virtual void onLaunchEnd() = 0;

    /** Shuffled re-executions to run for the launch just ended. */
    virtual int rerunCount() const = 0;
    virtual std::uint64_t rerunSeed(int rerun) const = 0;
    virtual void onRerunBegin(int rerun) = 0;
    virtual void onRerunEnd(int rerun) = 0;

    /** In-bounds element access on @p region. */
    virtual void onAccess(int region, std::int64_t index, AccessKind kind)
        = 0;

    /** Out-of-bounds access: @p index is outside [0, elems). */
    virtual void onOutOfBounds(int region, std::int64_t index,
                               AccessKind kind)
        = 0;
};

/**
 * Proxy for one element of a TrackedSpan: converting to the value type
 * records a Read, assigning records a Write, compound assignment and
 * increment record both. Out-of-bounds elements report on *access* (so
 * the read/write kind is known) and are quarantined: reads yield a
 * zero-initialized value, writes are dropped.
 */
template <typename T>
class TrackedRef
{
  public:
    using value_type = std::remove_const_t<T>;

    TrackedRef(T* slot, LaunchObserver* obs, int region,
               std::int64_t index, bool in_bounds)
        : slot_(slot), obs_(obs), region_(region), index_(index),
          inBounds_(in_bounds)
    {
    }

    operator value_type() const // NOLINT(google-explicit-constructor)
    {
        record(AccessKind::Read);
        return inBounds_ ? *slot_ : value_type{};
    }

    TrackedRef&
    operator=(value_type v)
    {
        record(AccessKind::Write);
        if (inBounds_)
            *slot_ = v;
        return *this;
    }

    TrackedRef&
    operator+=(value_type v)
    {
        record(AccessKind::Read);
        record(AccessKind::Write);
        if (inBounds_)
            *slot_ += v;
        return *this;
    }

    TrackedRef&
    operator++()
    {
        return *this += value_type{1};
    }

    value_type
    operator++(int)
    {
        record(AccessKind::Read);
        record(AccessKind::Write);
        if (!inBounds_)
            return value_type{};
        const value_type old = *slot_;
        *slot_ += value_type{1};
        return old;
    }

    /** Atomic fetch_or; serial under the checker, recorded as RMW. */
    value_type
    fetchOr(value_type bits)
    {
        record(AccessKind::AtomicRmw);
        if (!inBounds_)
            return value_type{};
        const value_type old = *slot_;
        *slot_ = static_cast<value_type>(old | bits);
        return old;
    }

  private:
    void
    record(AccessKind kind) const
    {
        if (inBounds_)
            obs_->onAccess(region_, index_, kind);
        else
            obs_->onOutOfBounds(region_, index_, kind);
    }

    T* slot_;
    LaunchObserver* obs_;
    int region_;
    std::int64_t index_;
    bool inBounds_;
};

/**
 * Bounds-checked, access-recording stand-in for std::span<T>. Mirrors
 * the slice of the std::span interface the kernels use (operator[],
 * size, data, subspan, first) so device bodies template over the span
 * type. Indexing a const element type returns the value directly (after
 * recording the read); a mutable element type returns a TrackedRef.
 */
template <typename T>
class TrackedSpan
{
  public:
    using value_type = std::remove_const_t<T>;

    TrackedSpan() = default;

    TrackedSpan(std::span<T> data, LaunchObserver& obs,
                std::string_view name)
        : data_(data.data()), size_(data.size()), obs_(&obs),
          region_(obs.registerRegion(data.data(),
                                     static_cast<std::int64_t>(data.size()),
                                     sizeof(value_type), name,
                                     std::is_const_v<T>))
    {
    }

    /** Const view of a mutable tracked span (same region). */
    template <typename U = T,
              typename = std::enable_if_t<std::is_const_v<U>>>
    TrackedSpan(const TrackedSpan<value_type>& other) // NOLINT
        : data_(other.data()), size_(other.size()),
          obs_(other.observer()), region_(other.region()),
          offset_(other.offset())
    {
    }

    auto
    operator[](std::size_t i) const
    {
        const bool ok = i < size_;
        if constexpr (std::is_const_v<T>) {
            if (!ok) {
                obs_->onOutOfBounds(region_, index(i), AccessKind::Read);
                return value_type{};
            }
            obs_->onAccess(region_, index(i), AccessKind::Read);
            return static_cast<value_type>(data_[i]);
        } else {
            return TrackedRef<T>(ok ? data_ + i : nullptr, obs_,
                                 region_, index(i), ok);
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T* data() const { return data_; }

    TrackedSpan
    subspan(std::size_t off, std::size_t count = std::dynamic_extent) const
    {
        BT_ASSERT(off <= size_, "tracked subspan offset out of range");
        TrackedSpan s(*this);
        s.data_ += off;
        s.offset_ += off;
        s.size_ = (count == std::dynamic_extent) ? size_ - off
                                                 : count;
        BT_ASSERT(s.size_ <= size_ - off, "tracked subspan too long");
        return s;
    }

    TrackedSpan first(std::size_t count) const { return subspan(0, count); }

    LaunchObserver* observer() const { return obs_; }
    int region() const { return region_; }
    std::size_t offset() const { return offset_; }

  private:
    std::int64_t
    index(std::size_t i) const
    {
        return static_cast<std::int64_t>(offset_ + i);
    }

    T* data_ = nullptr;
    std::size_t size_ = 0;
    LaunchObserver* obs_ = nullptr;
    int region_ = -1;
    std::size_t offset_ = 0; ///< of data_ within the registered region
};

/** Wrap @p s as a tracked region named @p name under @p obs. */
template <typename T>
inline TrackedSpan<T>
tracked(std::span<T> s, LaunchObserver& obs, std::string_view name)
{
    return TrackedSpan<T>(s, obs, name);
}

/**
 * Atomic fetch-OR on element @p i, usable from device bodies templated
 * over the span type: the raw overload is a real std::atomic_ref RMW
 * (pooled launches), the tracked overload records an AtomicRmw and
 * performs the operation plainly (checked execution is serial).
 */
template <typename T>
inline T
atomicFetchOr(std::span<T> s, std::size_t i, T bits)
{
    std::atomic_ref<T> ref(s[i]);
    return ref.fetch_or(bits, std::memory_order_relaxed);
}

template <typename T>
inline T
atomicFetchOr(const TrackedSpan<T>& s, std::size_t i, T bits)
{
    return s[i].fetchOr(bits);
}

/** RAII kernel scope: names every finding recorded inside it. */
class KernelScope
{
  public:
    KernelScope(LaunchObserver& obs, std::string_view name) : obs_(obs)
    {
        obs_.beginKernel(name);
    }
    ~KernelScope() { obs_.endKernel(); }
    KernelScope(const KernelScope&) = delete;
    KernelScope& operator=(const KernelScope&) = delete;

  private:
    LaunchObserver& obs_;
};

/**
 * Checked launch: the tracked overload of simt::launch. Runs the
 * sequential templated launch under the observer, then re-executes the
 * same kernel under observer-chosen shuffled block orders (the
 * block-order harness; the observer diffs the outputs bit-exactly
 * around each rerun). Reuses the zero-overhead templated tier - the
 * only additions are one onThreadBegin per SIMT thread and whatever
 * the kernel's TrackedSpans record.
 */
template <typename F>
inline void
launchChecked(const LaunchConfig& cfg, F&& kernel, LaunchObserver& obs,
              std::int64_t items, GeometryStyle style)
{
    obs.onLaunchBegin(cfg, items, style);
    auto wrapped = [&](const WorkItem& item) {
        obs.onThreadBegin(item);
        kernel(item);
    };
    launch(cfg, wrapped);
    obs.onLaunchEnd();
    const int reruns = obs.rerunCount();
    for (int r = 0; r < reruns; ++r) {
        obs.onRerunBegin(r);
        launchShuffled(cfg, wrapped, obs.rerunSeed(r));
        obs.onRerunEnd(r);
    }
}

} // namespace bt::simt

#endif // BT_SIMT_INSTRUMENT_HPP
