#include "simt/algorithms.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::simt {

namespace {

/// Number of worker threads a device-wide primitive launches. Chosen to
/// look like a small integrated GPU (16 "blocks" of 64 threads).
constexpr int kGrid = 16;
constexpr int kBlock = 64;

/// Chunk bounds for thread `tid` of `threads` over n items.
struct Chunk
{
    std::int64_t lo;
    std::int64_t hi;
};

Chunk
chunkOf(std::int64_t tid, std::int64_t threads, std::int64_t n)
{
    return Chunk{n * tid / threads, n * (tid + 1) / threads};
}

} // namespace

std::uint64_t
deviceReduce(std::span<const std::uint32_t> in)
{
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();
    std::vector<std::uint64_t> partials(
        static_cast<std::size_t>(threads), 0);

    // Kernel 1: each thread reduces its contiguous chunk.
    launch(cfg, [&](const WorkItem& item) {
        const auto [lo, hi] = chunkOf(item.globalId(), threads, n);
        std::uint64_t acc = 0;
        for (std::int64_t i = lo; i < hi; ++i)
            acc += in[static_cast<std::size_t>(i)];
        partials[static_cast<std::size_t>(item.globalId())] = acc;
    });

    // Kernel 2: single thread folds the partials (tiny array).
    std::uint64_t total = 0;
    launch(LaunchConfig{1, 1}, [&](const WorkItem&) {
        std::uint64_t acc = 0;
        for (std::uint64_t p : partials)
            acc += p;
        total = acc;
    });
    return total;
}

std::uint64_t
deviceExclusiveScan(std::span<const std::uint32_t> in,
                    std::span<std::uint32_t> out)
{
    BT_ASSERT(out.size() >= in.size(), "scan output too small");
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();
    std::vector<std::uint64_t> partials(
        static_cast<std::size_t>(threads), 0);

    // Phase 1: per-chunk sums.
    launch(cfg, [&](const WorkItem& item) {
        const auto [lo, hi] = chunkOf(item.globalId(), threads, n);
        std::uint64_t acc = 0;
        for (std::int64_t i = lo; i < hi; ++i)
            acc += in[static_cast<std::size_t>(i)];
        partials[static_cast<std::size_t>(item.globalId())] = acc;
    });

    // Phase 2: exclusive scan of the partials array (single thread; the
    // array has `threads` entries, negligible work).
    std::uint64_t total = 0;
    launch(LaunchConfig{1, 1}, [&](const WorkItem&) {
        std::uint64_t run = 0;
        for (auto& p : partials) {
            const std::uint64_t v = p;
            p = run;
            run += v;
        }
        total = run;
    });

    // Phase 3: per-chunk exclusive rescan seeded with the chunk offset.
    // Chunks are written back-to-front inside the loop so in/out may
    // alias element-wise (each index is read before written).
    launch(cfg, [&](const WorkItem& item) {
        const auto [lo, hi] = chunkOf(item.globalId(), threads, n);
        std::uint64_t run
            = partials[static_cast<std::size_t>(item.globalId())];
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t v = in[static_cast<std::size_t>(i)];
            out[static_cast<std::size_t>(i)]
                = static_cast<std::uint32_t>(run);
            run += v;
        }
    });
    return total;
}

void
deviceHistogram(std::span<const std::uint32_t> keys, int shift,
                std::uint32_t buckets, std::span<std::uint32_t> counts)
{
    BT_ASSERT(counts.size() >= buckets, "histogram output too small");
    BT_ASSERT((buckets & (buckets - 1)) == 0, "buckets must be power of 2");
    const std::uint32_t mask = buckets - 1;
    const std::int64_t n = static_cast<std::int64_t>(keys.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();

    // Per-thread private histograms (the "shared memory" copy).
    std::vector<std::uint32_t> priv(
        static_cast<std::size_t>(threads) * buckets, 0);

    launch(cfg, [&](const WorkItem& item) {
        const std::int64_t tid = item.globalId();
        const auto [lo, hi] = chunkOf(tid, threads, n);
        std::uint32_t* mine
            = &priv[static_cast<std::size_t>(tid) * buckets];
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t d
                = (keys[static_cast<std::size_t>(i)] >> shift) & mask;
            ++mine[d];
        }
    });

    // Reduction kernel: one thread per bucket folds the private copies.
    launch(LaunchConfig::cover(buckets, kBlock),
           [&](const WorkItem& item) {
               gridStride(item, buckets, [&](std::int64_t b) {
                   std::uint32_t acc = 0;
                   for (std::int64_t t = 0; t < threads; ++t)
                       acc += priv[static_cast<std::size_t>(t) * buckets
                                   + static_cast<std::size_t>(b)];
                   counts[static_cast<std::size_t>(b)] = acc;
               });
           });
}

void
deviceRadixPass(std::span<const std::uint32_t> in,
                std::span<std::uint32_t> out, int shift, int radix_bits)
{
    BT_ASSERT(out.size() >= in.size(), "radix pass output too small");
    BT_ASSERT(radix_bits >= 1 && radix_bits <= 16);
    const std::uint32_t buckets = 1u << radix_bits;
    const std::uint32_t mask = buckets - 1;
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();

    // Phase 1: per-chunk digit histograms.
    std::vector<std::uint32_t> hist(
        static_cast<std::size_t>(threads) * buckets, 0);
    launch(cfg, [&](const WorkItem& item) {
        const std::int64_t tid = item.globalId();
        const auto [lo, hi] = chunkOf(tid, threads, n);
        std::uint32_t* mine
            = &hist[static_cast<std::size_t>(tid) * buckets];
        for (std::int64_t i = lo; i < hi; ++i)
            ++mine[(in[static_cast<std::size_t>(i)] >> shift) & mask];
    });

    // Phase 2: column-major exclusive scan of hist -> scatter offsets.
    // Order (bucket-major, then thread) preserves stability: lower chunks
    // of the same digit scatter first.
    launch(LaunchConfig{1, 1}, [&](const WorkItem&) {
        std::uint64_t run = 0;
        for (std::uint32_t b = 0; b < buckets; ++b) {
            for (std::int64_t t = 0; t < threads; ++t) {
                auto& cell = hist[static_cast<std::size_t>(t) * buckets
                                  + b];
                const std::uint32_t v = cell;
                cell = static_cast<std::uint32_t>(run);
                run += v;
            }
        }
    });

    // Phase 3: stable scatter; each thread walks its chunk in order.
    launch(cfg, [&](const WorkItem& item) {
        const std::int64_t tid = item.globalId();
        const auto [lo, hi] = chunkOf(tid, threads, n);
        std::uint32_t* mine
            = &hist[static_cast<std::size_t>(tid) * buckets];
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t key = in[static_cast<std::size_t>(i)];
            const std::uint32_t d = (key >> shift) & mask;
            out[mine[d]++] = key;
        }
    });
}

void
deviceRadixSort(std::span<std::uint32_t> keys,
                std::span<std::uint32_t> scratch, int radix_bits)
{
    BT_ASSERT(scratch.size() >= keys.size(), "radix scratch too small");
    BT_ASSERT(32 % radix_bits == 0, "radix bits must divide 32");
    std::span<std::uint32_t> src = keys;
    std::span<std::uint32_t> dst = scratch.subspan(0, keys.size());
    for (int shift = 0; shift < 32; shift += radix_bits) {
        deviceRadixPass(src, dst, shift, radix_bits);
        std::swap(src, dst);
    }
    // 32/radix_bits passes: if odd, the result sits in scratch.
    if (src.data() != keys.data())
        std::copy(src.begin(), src.end(), keys.begin());
}

} // namespace bt::simt
