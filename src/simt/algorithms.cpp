#include "simt/algorithms.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::simt {

namespace {

/// Number of worker threads a device-wide primitive launches. Chosen to
/// look like a small integrated GPU (16 "blocks" of 64 threads).
constexpr int kGrid = 16;
constexpr int kBlock = 64;

/// Chunk bounds for thread `tid` of `threads` over n items.
struct Chunk
{
    std::int64_t lo;
    std::int64_t hi;
};

Chunk
chunkOf(std::int64_t tid, std::int64_t threads, std::int64_t n)
{
    return Chunk{n * tid / threads, n * (tid + 1) / threads};
}

/**
 * Launch policies: the device-wide primitives below are written once as
 * templates over a launcher and their span types. RawLauncher is the
 * production path - plain launches over plain spans, codegen identical
 * to the hand-written originals. CheckedLauncher routes every launch
 * through launchChecked and wraps internal scratch (partials, private
 * histograms) as tracked regions, so the checker sees the full phase
 * structure of each primitive.
 */
struct RawLauncher
{
    template <typename F>
    void
    run(const LaunchConfig& cfg, std::int64_t /*items*/,
        GeometryStyle /*style*/, F&& kernel) const
    {
        launch(cfg, std::forward<F>(kernel));
    }

    template <typename T>
    std::span<T>
    wrap(std::span<T> s, std::string_view /*name*/) const
    {
        return s;
    }

    template <typename V>
    void
    retire(const V& /*view*/) const
    {
    }
};

struct CheckedLauncher
{
    LaunchObserver* obs;

    template <typename F>
    void
    run(const LaunchConfig& cfg, std::int64_t items, GeometryStyle style,
        F&& kernel) const
    {
        launchChecked(cfg, std::forward<F>(kernel), *obs, items, style);
    }

    template <typename T>
    TrackedSpan<T>
    wrap(std::span<T> s, std::string_view name) const
    {
        return TrackedSpan<T>(s, *obs, name);
    }

    template <typename T>
    void
    retire(const TrackedSpan<T>& view) const
    {
        obs->retireRegion(view.region());
    }
};

template <typename L, typename InV>
std::uint64_t
reduceImpl(const L& l, const InV& in)
{
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();
    std::vector<std::uint64_t> storage(
        static_cast<std::size_t>(threads), 0);
    auto partials = l.wrap(std::span<std::uint64_t>(storage),
                           "reduce.partials");

    // Kernel 1: each thread reduces its contiguous chunk.
    l.run(cfg, n, GeometryStyle::Chunked, [&](const WorkItem& item) {
        const auto [lo, hi] = chunkOf(item.globalId(), threads, n);
        std::uint64_t acc = 0;
        for (std::int64_t i = lo; i < hi; ++i)
            acc += in[static_cast<std::size_t>(i)];
        partials[static_cast<std::size_t>(item.globalId())] = acc;
    });

    // Kernel 2: single thread folds the partials (tiny array).
    std::uint64_t total = 0;
    l.run(LaunchConfig{1, 1}, threads, GeometryStyle::Chunked,
          [&](const WorkItem&) {
              std::uint64_t acc = 0;
              for (std::int64_t t = 0; t < threads; ++t)
                  acc += partials[static_cast<std::size_t>(t)];
              total = acc;
          });
    l.retire(partials);
    return total;
}

template <typename L, typename InV, typename OutV>
std::uint64_t
scanImpl(const L& l, const InV& in, const OutV& out)
{
    BT_ASSERT(out.size() >= in.size(), "scan output too small");
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();
    std::vector<std::uint64_t> storage(
        static_cast<std::size_t>(threads), 0);
    auto partials = l.wrap(std::span<std::uint64_t>(storage),
                           "scan.partials");

    // Phase 1: per-chunk sums.
    l.run(cfg, n, GeometryStyle::Chunked, [&](const WorkItem& item) {
        const auto [lo, hi] = chunkOf(item.globalId(), threads, n);
        std::uint64_t acc = 0;
        for (std::int64_t i = lo; i < hi; ++i)
            acc += in[static_cast<std::size_t>(i)];
        partials[static_cast<std::size_t>(item.globalId())] = acc;
    });

    // Phase 2: exclusive scan of the partials array (single thread; the
    // array has `threads` entries, negligible work).
    std::uint64_t total = 0;
    l.run(LaunchConfig{1, 1}, threads, GeometryStyle::Chunked,
          [&](const WorkItem&) {
              std::uint64_t run = 0;
              for (std::int64_t t = 0; t < threads; ++t) {
                  const std::size_t s = static_cast<std::size_t>(t);
                  const std::uint64_t v = partials[s];
                  partials[s] = run;
                  run += v;
              }
              total = run;
          });

    // Phase 3: per-chunk exclusive rescan seeded with the chunk offset.
    // Each index is read before written so in/out may alias.
    l.run(cfg, n, GeometryStyle::Chunked, [&](const WorkItem& item) {
        const auto [lo, hi] = chunkOf(item.globalId(), threads, n);
        std::uint64_t run
            = partials[static_cast<std::size_t>(item.globalId())];
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t v = in[static_cast<std::size_t>(i)];
            out[static_cast<std::size_t>(i)]
                = static_cast<std::uint32_t>(run);
            run += v;
        }
    });
    l.retire(partials);
    return total;
}

template <typename L, typename KeyV, typename CountV>
void
histogramImpl(const L& l, const KeyV& keys, int shift,
              std::uint32_t buckets, const CountV& counts)
{
    BT_ASSERT(counts.size() >= buckets, "histogram output too small");
    BT_ASSERT((buckets & (buckets - 1)) == 0, "buckets must be power of 2");
    const std::uint32_t mask = buckets - 1;
    const std::int64_t n = static_cast<std::int64_t>(keys.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();

    // Per-thread private histograms (the "shared memory" copy).
    std::vector<std::uint32_t> storage(
        static_cast<std::size_t>(threads) * buckets, 0);
    auto priv = l.wrap(std::span<std::uint32_t>(storage),
                       "histogram.priv");

    l.run(cfg, n, GeometryStyle::Chunked, [&](const WorkItem& item) {
        const std::int64_t tid = item.globalId();
        const auto [lo, hi] = chunkOf(tid, threads, n);
        const std::size_t base = static_cast<std::size_t>(tid) * buckets;
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t d
                = (keys[static_cast<std::size_t>(i)] >> shift) & mask;
            priv[base + d] += 1u;
        }
    });

    // Reduction kernel: one thread per bucket folds the private copies.
    l.run(LaunchConfig::cover(buckets, kBlock), buckets,
          GeometryStyle::GridStride, [&](const WorkItem& item) {
              gridStride(item, buckets, [&](std::int64_t b) {
                  std::uint32_t acc = 0;
                  for (std::int64_t t = 0; t < threads; ++t)
                      acc += priv[static_cast<std::size_t>(t) * buckets
                                  + static_cast<std::size_t>(b)];
                  counts[static_cast<std::size_t>(b)] = acc;
              });
          });
    l.retire(priv);
}

template <typename L, typename InV, typename OutV>
void
radixPassImpl(const L& l, const InV& in, const OutV& out, int shift,
              int radix_bits)
{
    BT_ASSERT(out.size() >= in.size(), "radix pass output too small");
    BT_ASSERT(radix_bits >= 1 && radix_bits <= 16);
    const std::uint32_t buckets = 1u << radix_bits;
    const std::uint32_t mask = buckets - 1;
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    const LaunchConfig cfg{kGrid, kBlock};
    const std::int64_t threads = cfg.totalThreads();

    // Phase 1: per-chunk digit histograms.
    std::vector<std::uint32_t> storage(
        static_cast<std::size_t>(threads) * buckets, 0);
    auto hist = l.wrap(std::span<std::uint32_t>(storage), "radix.hist");
    l.run(cfg, n, GeometryStyle::Chunked, [&](const WorkItem& item) {
        const std::int64_t tid = item.globalId();
        const auto [lo, hi] = chunkOf(tid, threads, n);
        const std::size_t base = static_cast<std::size_t>(tid) * buckets;
        for (std::int64_t i = lo; i < hi; ++i)
            hist[base
                 + ((in[static_cast<std::size_t>(i)] >> shift) & mask)]
                += 1u;
    });

    // Phase 2: column-major exclusive scan of hist -> scatter offsets.
    // Order (bucket-major, then thread) preserves stability: lower chunks
    // of the same digit scatter first.
    l.run(LaunchConfig{1, 1},
          static_cast<std::int64_t>(buckets) * threads,
          GeometryStyle::Chunked, [&](const WorkItem&) {
              std::uint64_t run = 0;
              for (std::uint32_t b = 0; b < buckets; ++b) {
                  for (std::int64_t t = 0; t < threads; ++t) {
                      const std::size_t cell
                          = static_cast<std::size_t>(t) * buckets + b;
                      const std::uint32_t v = hist[cell];
                      hist[cell] = static_cast<std::uint32_t>(run);
                      run += v;
                  }
              }
          });

    // Phase 3: stable scatter; each thread walks its chunk in order.
    l.run(cfg, n, GeometryStyle::Chunked, [&](const WorkItem& item) {
        const std::int64_t tid = item.globalId();
        const auto [lo, hi] = chunkOf(tid, threads, n);
        const std::size_t base = static_cast<std::size_t>(tid) * buckets;
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t key = in[static_cast<std::size_t>(i)];
            const std::uint32_t d = (key >> shift) & mask;
            const std::uint32_t pos = hist[base + d];
            hist[base + d] = pos + 1;
            out[pos] = key;
        }
    });
    l.retire(hist);
}

template <typename L, typename KeyV, typename ScratchV>
void
radixSortImpl(const L& l, const KeyV& keys, const ScratchV& scratch,
              int radix_bits)
{
    BT_ASSERT(scratch.size() >= keys.size(), "radix scratch too small");
    BT_ASSERT(32 % radix_bits == 0, "radix bits must divide 32");
    auto src = keys;
    auto dst = scratch.subspan(0, keys.size());
    for (int shift = 0; shift < 32; shift += radix_bits) {
        radixPassImpl(l, src, dst, shift, radix_bits);
        std::swap(src, dst);
    }
    // 32/radix_bits passes: if odd, the result sits in scratch. The
    // copy-back is a host-side access between launches (barrier-legal).
    if (src.data() != keys.data()) {
        for (std::size_t i = 0; i < keys.size(); ++i)
            keys[i] = src[i];
    }
}

} // namespace

std::uint64_t
deviceReduce(std::span<const std::uint32_t> in)
{
    return reduceImpl(RawLauncher{}, in);
}

std::uint64_t
deviceReduce(TrackedSpan<const std::uint32_t> in, LaunchObserver& obs)
{
    return reduceImpl(CheckedLauncher{&obs}, in);
}

std::uint64_t
deviceExclusiveScan(std::span<const std::uint32_t> in,
                    std::span<std::uint32_t> out)
{
    return scanImpl(RawLauncher{}, in, out);
}

std::uint64_t
deviceExclusiveScan(TrackedSpan<const std::uint32_t> in,
                    TrackedSpan<std::uint32_t> out, LaunchObserver& obs)
{
    return scanImpl(CheckedLauncher{&obs}, in, out);
}

void
deviceHistogram(std::span<const std::uint32_t> keys, int shift,
                std::uint32_t buckets, std::span<std::uint32_t> counts)
{
    histogramImpl(RawLauncher{}, keys, shift, buckets, counts);
}

void
deviceHistogram(TrackedSpan<const std::uint32_t> keys, int shift,
                std::uint32_t buckets, TrackedSpan<std::uint32_t> counts,
                LaunchObserver& obs)
{
    histogramImpl(CheckedLauncher{&obs}, keys, shift, buckets, counts);
}

void
deviceRadixPass(std::span<const std::uint32_t> in,
                std::span<std::uint32_t> out, int shift, int radix_bits)
{
    radixPassImpl(RawLauncher{}, in, out, shift, radix_bits);
}

void
deviceRadixPass(TrackedSpan<const std::uint32_t> in,
                TrackedSpan<std::uint32_t> out, int shift, int radix_bits,
                LaunchObserver& obs)
{
    radixPassImpl(CheckedLauncher{&obs}, in, out, shift, radix_bits);
}

void
deviceRadixSort(std::span<std::uint32_t> keys,
                std::span<std::uint32_t> scratch, int radix_bits)
{
    radixSortImpl(RawLauncher{}, keys, scratch, radix_bits);
}

void
deviceRadixSort(TrackedSpan<std::uint32_t> keys,
                TrackedSpan<std::uint32_t> scratch, LaunchObserver& obs,
                int radix_bits)
{
    radixSortImpl(CheckedLauncher{&obs}, keys, scratch, radix_bits);
}

} // namespace bt::simt
