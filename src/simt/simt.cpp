#include "simt/simt.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "sched/thread_pool.hpp"

namespace bt::simt {

LaunchConfig
LaunchConfig::cover(std::int64_t n, int block, int max_grid)
{
    BT_ASSERT(block > 0 && max_grid > 0);
    LaunchConfig cfg;
    cfg.blockDim = block;
    if (n <= 0) {
        cfg.gridDim = 1;
        return cfg;
    }
    // Round up without the `n + block - 1` addition, which overflows for
    // n near INT64_MAX and used to clamp to a garbage (negative) grid.
    const std::int64_t blocks = n / block + (n % block != 0 ? 1 : 0);
    cfg.gridDim = static_cast<int>(std::min<std::int64_t>(blocks, max_grid));
    return cfg;
}

std::vector<int>
shuffledBlockOrder(int grid_dim, std::uint64_t seed)
{
    std::vector<int> order(static_cast<std::size_t>(grid_dim));
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed);
    // Fisher-Yates with the framework RNG for reproducibility.
    for (std::size_t i = order.size(); i > 1; --i) {
        const std::size_t j
            = static_cast<std::size_t>(rng.nextBounded(i));
        std::swap(order[i - 1], order[j]);
    }
    return order;
}

// The erased tier funnels back into the templated tier with the
// std::function as the functor: one indirect call per thread, exactly the
// cost profile ABI-stable callers signed up for.

void
launch(const LaunchConfig& cfg, const Kernel& kernel)
{
    launch(cfg, [&kernel](const WorkItem& item) { kernel(item); });
}

void
launch(sched::ThreadPool& pool, const LaunchConfig& cfg,
       const Kernel& kernel)
{
    launch(pool, cfg, [&kernel](const WorkItem& item) { kernel(item); });
}

void
launchShuffled(const LaunchConfig& cfg, const Kernel& kernel,
               std::uint64_t seed)
{
    launchShuffled(cfg, [&kernel](const WorkItem& item) { kernel(item); },
                   seed);
}

} // namespace bt::simt
