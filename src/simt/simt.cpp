#include "simt/simt.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "sched/thread_pool.hpp"

namespace bt::simt {

LaunchConfig
LaunchConfig::cover(std::int64_t n, int block, int max_grid)
{
    BT_ASSERT(block > 0 && max_grid > 0);
    LaunchConfig cfg;
    cfg.blockDim = block;
    if (n <= 0) {
        cfg.gridDim = 1;
        return cfg;
    }
    const std::int64_t blocks = (n + block - 1) / block;
    cfg.gridDim = static_cast<int>(std::min<std::int64_t>(blocks, max_grid));
    return cfg;
}

namespace {

void
runBlock(const LaunchConfig& cfg, const Kernel& kernel, int block)
{
    WorkItem item;
    item.blockIdx = block;
    item.blockDim = cfg.blockDim;
    item.gridDim = cfg.gridDim;
    for (int t = 0; t < cfg.blockDim; ++t) {
        item.threadIdx = t;
        kernel(item);
    }
}

} // namespace

void
launch(const LaunchConfig& cfg, const Kernel& kernel)
{
    BT_ASSERT(cfg.gridDim > 0 && cfg.blockDim > 0, "empty launch");
    for (int b = 0; b < cfg.gridDim; ++b)
        runBlock(cfg, kernel, b);
}

void
launch(sched::ThreadPool& pool, const LaunchConfig& cfg,
       const Kernel& kernel)
{
    BT_ASSERT(cfg.gridDim > 0 && cfg.blockDim > 0, "empty launch");
    pool.parallelFor(0, cfg.gridDim, [&](std::int64_t b) {
        runBlock(cfg, kernel, static_cast<int>(b));
    });
}

void
launchShuffled(const LaunchConfig& cfg, const Kernel& kernel,
               std::uint64_t seed)
{
    BT_ASSERT(cfg.gridDim > 0 && cfg.blockDim > 0, "empty launch");
    std::vector<int> order(static_cast<std::size_t>(cfg.gridDim));
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed);
    // Fisher-Yates with the framework RNG for reproducibility.
    for (std::size_t i = order.size(); i > 1; --i) {
        const std::size_t j
            = static_cast<std::size_t>(rng.nextBounded(i));
        std::swap(order[i - 1], order[j]);
    }
    for (int b : order)
        runBlock(cfg, kernel, b);
}

} // namespace bt::simt
