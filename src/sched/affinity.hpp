/**
 * @file
 * CPU-affinity plumbing, the stand-in for the paper's
 * sched_setaffinity()/pthread_setaffinity_np() usage.
 *
 * On Linux hosts the calls are real; platforms that refuse a pinning
 * request (the paper notes OnePlus only exposes 5 of 8 cores) surface the
 * failure so callers can degrade gracefully, exactly as BT-Implementer
 * must on unrooted Android.
 */

#ifndef BT_SCHED_AFFINITY_HPP
#define BT_SCHED_AFFINITY_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace bt::sched {

/** A set of logical core IDs a thread may run on. */
class CpuSet
{
  public:
    CpuSet() = default;

    /** Construct from explicit core IDs. */
    explicit CpuSet(std::vector<int> core_ids);

    /** Contiguous range [first, first + count). */
    static CpuSet range(int first, int count);

    /** Add a core ID (idempotent). */
    void add(int core_id);

    /** Whether the set contains @p core_id. */
    bool contains(int core_id) const;

    /** Core IDs in ascending order. */
    const std::vector<int>& cores() const { return ids; }

    bool empty() const { return ids.empty(); }
    std::size_t size() const { return ids.size(); }

    /** Render as e.g. "{0,1,4-7}" for logs and tables. */
    std::string toString() const;

  private:
    std::vector<int> ids;
};

/**
 * Bind the calling thread to @p set.
 * @return true on success; false when the kernel rejects the mask (e.g.
 *         cores offline or restricted), in which case the thread keeps its
 *         previous affinity.
 */
bool bindCurrentThread(const CpuSet& set);

/** Query the calling thread's current affinity mask. */
CpuSet currentThreadAffinity();

/** Number of online logical cores on this host. */
int onlineCoreCount();

} // namespace bt::sched

#endif // BT_SCHED_AFFINITY_HPP
