/**
 * @file
 * Work-sharing thread pool with an OpenMP-style parallelFor.
 *
 * The paper's CPU kernels use `#pragma omp parallel for`; this pool is the
 * framework's equivalent: a fixed team of long-lived workers (avoiding
 * per-stage thread creation, as the paper notes OpenMP's pool does), an
 * optional affinity set applied to every worker, and a blocking fork-join
 * parallelFor that chunks the iteration space.
 *
 * Dispatch design (see docs/DISPATCH.md): the templated parallelFor /
 * parallelForBlocks instantiate the loop body statically and hand it to
 * the workers as one raw function pointer + context per region, so the
 * only indirect call is per *chunk*, never per index. Workers pull
 * contiguous chunks from an atomic counter (dynamic schedule), which both
 * balances uneven iterations and batches many blocks per wake-up. The
 * std::function overloads remain as thin ABI-stable wrappers.
 */

#ifndef BT_SCHED_THREAD_POOL_HPP
#define BT_SCHED_THREAD_POOL_HPP

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "sched/affinity.hpp"

namespace bt::sched {

/**
 * Fixed-size fork-join thread pool.
 *
 * parallelFor blocks the caller until the whole range is processed. The
 * pool is reusable across calls; only one parallel region may be active at
 * a time (matching the dispatcher-thread usage pattern where each chunk
 * owns its team).
 */
class ThreadPool
{
  public:
    /** Statically-instantiated region body: fn(ctx, lo, hi). */
    using RangeFn = void (*)(void* ctx, std::int64_t lo, std::int64_t hi);

    /**
     * Spawn @p num_threads workers. If @p affinity is non-empty every
     * worker binds to that core set (best effort; failures are recorded).
     */
    explicit ThreadPool(int num_threads, CpuSet affinity = CpuSet());

    /** Join and destroy all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Team size, including the calling thread's share of the work. */
    int threads() const { return teamSize; }

    /** Whether every worker successfully bound to the affinity set. */
    bool affinityApplied() const { return boundOk; }

    /**
     * Execute fn(i) for every i in [begin, end), dynamically chunked
     * across the team. Blocks until complete. fn must be safe to call
     * concurrently for distinct indices. The body is dispatched
     * statically; the scheduling boundary is one indirect call per chunk.
     */
    template <typename Fn,
              std::enable_if_t<std::is_invocable_v<Fn&, std::int64_t>,
                               int> = 0>
    void
    parallelFor(std::int64_t begin, std::int64_t end, Fn&& fn)
    {
        parallelForBlocks(begin, end,
                          [&fn](std::int64_t lo, std::int64_t hi) {
                              for (std::int64_t i = lo; i < hi; ++i)
                                  fn(i);
                          });
    }

    /**
     * Block variant: fn(lo, hi) is invoked once per contiguous chunk of
     * the range, letting kernels keep per-chunk accumulators and giving
     * the compiler a tight inner loop to vectorize. Chunks are claimed
     * dynamically, so a caller must not assume any particular chunk
     * geometry - only that chunks are contiguous, disjoint, and cover
     * [begin, end) exactly once.
     */
    template <typename Fn,
              std::enable_if_t<std::is_invocable_v<Fn&, std::int64_t,
                                                   std::int64_t>,
                               int> = 0>
    void
    parallelForBlocks(std::int64_t begin, std::int64_t end, Fn&& fn)
    {
        using F = std::remove_reference_t<Fn>;
        runRegion(begin, end,
                  [](void* ctx, std::int64_t lo, std::int64_t hi) {
                      (*static_cast<F*>(ctx))(lo, hi);
                  },
                  const_cast<void*>(
                      static_cast<const void*>(std::addressof(fn))));
    }

    /** Erased thin wrapper kept for ABI-stable callers. */
    void parallelFor(std::int64_t begin, std::int64_t end,
                     const std::function<void(std::int64_t)>& fn);

    /** Erased thin wrapper kept for ABI-stable callers. */
    void parallelForBlocks(
        std::int64_t begin, std::int64_t end,
        const std::function<void(std::int64_t, std::int64_t)>& fn);

  private:
    void workerLoop(int worker_id);

    /**
     * Run one fork-join region: wake the team, have everyone (caller
     * included) pull chunks of ~`chunk` indices from the shared atomic
     * cursor, and return once the range is exhausted and all workers have
     * quiesced.
     */
    void runRegion(std::int64_t begin, std::int64_t end, RangeFn fn,
                   void* ctx);

    /** Chunk size heuristic: ~8 chunks per team member, at least 1. */
    std::int64_t
    chunkSizeFor(std::int64_t n) const
    {
        return std::max<std::int64_t>(
            1, n / (static_cast<std::int64_t>(teamSize) * 8));
    }

    int teamSize;
    CpuSet pinSet;
    std::atomic<bool> boundOk{true};
    std::atomic<bool> stopping{false};

    // Fork-join state. Region parameters are published under mtx; the
    // chunk cursor is the only contended word while a region runs.
    std::mutex mtx;
    std::condition_variable workReady;
    std::condition_variable workDone;
    std::uint64_t generation = 0; ///< bumped per parallel region
    int doneWorkers = 0;          ///< workers finished in this region
    std::atomic<std::int64_t> nextChunk{0}; ///< next unclaimed index
    std::int64_t regionEnd = 0;
    std::int64_t regionChunk = 1;
    RangeFn regionFn = nullptr;
    void* regionCtx = nullptr;

    std::vector<std::thread> workers;
};

} // namespace bt::sched

#endif // BT_SCHED_THREAD_POOL_HPP
