/**
 * @file
 * Work-sharing thread pool with an OpenMP-style parallelFor.
 *
 * The paper's CPU kernels use `#pragma omp parallel for`; this pool is the
 * framework's equivalent: a fixed team of long-lived workers (avoiding
 * per-stage thread creation, as the paper notes OpenMP's pool does), an
 * optional affinity set applied to every worker, and a blocking fork-join
 * parallelFor that chunks the iteration space.
 */

#ifndef BT_SCHED_THREAD_POOL_HPP
#define BT_SCHED_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/affinity.hpp"

namespace bt::sched {

/**
 * Fixed-size fork-join thread pool.
 *
 * parallelFor blocks the caller until the whole range is processed. The
 * pool is reusable across calls; only one parallel region may be active at
 * a time (matching the dispatcher-thread usage pattern where each chunk
 * owns its team).
 */
class ThreadPool
{
  public:
    /**
     * Spawn @p num_threads workers. If @p affinity is non-empty every
     * worker binds to that core set (best effort; failures are recorded).
     */
    explicit ThreadPool(int num_threads, CpuSet affinity = CpuSet());

    /** Join and destroy all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Team size, including the calling thread's share of the work. */
    int threads() const { return teamSize; }

    /** Whether every worker successfully bound to the affinity set. */
    bool affinityApplied() const { return boundOk; }

    /**
     * Execute fn(i) for every i in [begin, end), split into contiguous
     * blocks across the team. Blocks until complete. fn must be safe to
     * call concurrently for distinct indices.
     */
    void parallelFor(std::int64_t begin, std::int64_t end,
                     const std::function<void(std::int64_t)>& fn);

    /**
     * Block-level variant: fn(block_begin, block_end) is invoked once per
     * contiguous block, letting kernels keep per-block accumulators.
     */
    void parallelForBlocks(
        std::int64_t begin, std::int64_t end,
        const std::function<void(std::int64_t, std::int64_t)>& fn);

  private:
    void workerLoop(int worker_id);
    void runRegion(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t,
                                            std::int64_t)>& fn);

    int teamSize;
    CpuSet pinSet;
    std::atomic<bool> boundOk{true};
    std::atomic<bool> stopping{false};

    // Fork-join state, guarded by mtx.
    std::mutex mtx;
    std::condition_variable workReady;
    std::condition_variable workDone;
    std::uint64_t generation = 0; ///< bumped per parallel region
    int slotCounter = 0;          ///< hands each worker a unique block
    int doneWorkers = 0;          ///< workers finished in this region
    std::int64_t regionBegin = 0;
    std::int64_t regionEnd = 0;
    const std::function<void(std::int64_t, std::int64_t)>* regionFn
        = nullptr;

    std::vector<std::thread> workers;
};

} // namespace bt::sched

#endif // BT_SCHED_THREAD_POOL_HPP
