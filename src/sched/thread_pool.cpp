#include "sched/thread_pool.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::sched {

ThreadPool::ThreadPool(int num_threads, CpuSet affinity)
    : teamSize(std::max(1, num_threads)), pinSet(std::move(affinity))
{
    // The calling thread participates in every region, so spawn one fewer
    // worker than the team size.
    const int helpers = teamSize - 1;
    workers.reserve(static_cast<std::size_t>(helpers));
    for (int w = 0; w < helpers; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });

    if (!pinSet.empty() && !bindCurrentThread(pinSet))
        boundOk.store(false, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping.store(true, std::memory_order_relaxed);
        ++generation;
    }
    workReady.notify_all();
    for (auto& t : workers)
        t.join();
}

void
ThreadPool::workerLoop(int worker_id)
{
    (void)worker_id;
    if (!pinSet.empty() && !bindCurrentThread(pinSet))
        boundOk.store(false, std::memory_order_relaxed);

    std::uint64_t seen = 0;
    while (true) {
        RangeFn fn = nullptr;
        void* ctx = nullptr;
        std::int64_t end = 0, chunk = 1;
        {
            std::unique_lock<std::mutex> lock(mtx);
            workReady.wait(lock, [&] {
                return generation != seen
                    || stopping.load(std::memory_order_relaxed);
            });
            if (stopping.load(std::memory_order_relaxed))
                return;
            seen = generation;
            fn = regionFn;
            ctx = regionCtx;
            end = regionEnd;
            chunk = regionChunk;
        }

        if (fn) {
            // Dynamic schedule: claim contiguous chunks until the range
            // is dry. One atomic RMW and one indirect call per chunk.
            for (;;) {
                const std::int64_t lo = nextChunk.fetch_add(
                    chunk, std::memory_order_relaxed);
                if (lo >= end)
                    break;
                fn(ctx, lo, std::min(lo + chunk, end));
            }
        }

        {
            std::lock_guard<std::mutex> lock(mtx);
            ++doneWorkers;
            workDone.notify_one();
        }
    }
}

void
ThreadPool::runRegion(std::int64_t begin, std::int64_t end, RangeFn fn,
                      void* ctx)
{
    BT_ASSERT(begin <= end, "inverted parallelFor range");
    if (begin == end)
        return;

    const std::int64_t chunk = chunkSizeFor(end - begin);
    if (workers.empty() || end - begin <= chunk) {
        fn(ctx, begin, end);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        regionFn = fn;
        regionCtx = ctx;
        regionEnd = end;
        regionChunk = chunk;
        nextChunk.store(begin, std::memory_order_relaxed);
        doneWorkers = 0;
        ++generation;
    }
    workReady.notify_all();

    // The calling thread pulls chunks like any worker.
    for (;;) {
        const std::int64_t lo
            = nextChunk.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= end)
            break;
        fn(ctx, lo, std::min(lo + chunk, end));
    }

    std::unique_lock<std::mutex> lock(mtx);
    workDone.wait(lock, [&] {
        return doneWorkers == static_cast<int>(workers.size());
    });
    regionFn = nullptr;
    regionCtx = nullptr;
}

void
ThreadPool::parallelFor(std::int64_t begin, std::int64_t end,
                        const std::function<void(std::int64_t)>& fn)
{
    // Thin wrapper over the templated tier: the erased call happens once
    // per index here, matching the historical contract.
    parallelForBlocks(begin, end,
                      [&fn](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i)
                              fn(i);
                      });
}

void
ThreadPool::parallelForBlocks(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn)
{
    parallelForBlocks<const std::function<void(std::int64_t,
                                               std::int64_t)>&>(
        begin, end, fn);
}

} // namespace bt::sched
