#include "sched/thread_pool.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::sched {

ThreadPool::ThreadPool(int num_threads, CpuSet affinity)
    : teamSize(std::max(1, num_threads)), pinSet(std::move(affinity))
{
    // The calling thread participates in every region, so spawn one fewer
    // worker than the team size.
    const int helpers = teamSize - 1;
    workers.reserve(static_cast<std::size_t>(helpers));
    for (int w = 0; w < helpers; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });

    if (!pinSet.empty() && !bindCurrentThread(pinSet))
        boundOk.store(false, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping.store(true, std::memory_order_relaxed);
        ++generation;
    }
    workReady.notify_all();
    for (auto& t : workers)
        t.join();
}

void
ThreadPool::workerLoop(int worker_id)
{
    (void)worker_id;
    if (!pinSet.empty() && !bindCurrentThread(pinSet))
        boundOk.store(false, std::memory_order_relaxed);

    std::uint64_t seen = 0;
    while (true) {
        const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
        std::int64_t lo = 0, hi = 0;
        int my_slot = 0;
        {
            std::unique_lock<std::mutex> lock(mtx);
            workReady.wait(lock, [&] {
                return generation != seen
                    || stopping.load(std::memory_order_relaxed);
            });
            if (stopping.load(std::memory_order_relaxed))
                return;
            seen = generation;
            fn = regionFn;
            lo = regionBegin;
            hi = regionEnd;
            my_slot = --slotCounter; // claim a unique block index
        }

        if (fn) {
            // Block decomposition: worker w takes block (my_slot + 1); the
            // caller thread always takes block 0.
            const std::int64_t n = hi - lo;
            const std::int64_t team = teamSize;
            const std::int64_t block = my_slot + 1;
            const std::int64_t b0 = lo + n * block / team;
            const std::int64_t b1 = lo + n * (block + 1) / team;
            if (b0 < b1)
                (*fn)(b0, b1);
        }

        {
            std::lock_guard<std::mutex> lock(mtx);
            ++doneWorkers;
            workDone.notify_one();
        }
    }
}

void
ThreadPool::runRegion(std::int64_t begin, std::int64_t end,
                      const std::function<void(std::int64_t,
                                               std::int64_t)>& fn)
{
    BT_ASSERT(begin <= end, "inverted parallelFor range");
    if (begin == end)
        return;

    if (workers.empty()) {
        fn(begin, end);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        regionBegin = begin;
        regionEnd = end;
        regionFn = &fn;
        slotCounter = static_cast<int>(workers.size());
        doneWorkers = 0;
        ++generation;
    }
    workReady.notify_all();

    // The calling thread processes block 0.
    const std::int64_t n = end - begin;
    const std::int64_t team = teamSize;
    const std::int64_t b1 = begin + n / team;
    if (begin < b1)
        fn(begin, b1);

    std::unique_lock<std::mutex> lock(mtx);
    workDone.wait(lock, [&] {
        return doneWorkers == static_cast<int>(workers.size());
    });
    regionFn = nullptr;
}

void
ThreadPool::parallelFor(std::int64_t begin, std::int64_t end,
                        const std::function<void(std::int64_t)>& fn)
{
    parallelForBlocks(begin, end,
                      [&fn](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i)
                              fn(i);
                      });
}

void
ThreadPool::parallelForBlocks(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn)
{
    runRegion(begin, end, fn);
}

} // namespace bt::sched
