#include "sched/affinity.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/logging.hpp"

namespace bt::sched {

CpuSet::CpuSet(std::vector<int> core_ids) : ids(std::move(core_ids))
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (int id : ids)
        BT_ASSERT(id >= 0, "negative core id");
}

CpuSet
CpuSet::range(int first, int count)
{
    BT_ASSERT(first >= 0 && count >= 0);
    std::vector<int> v(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        v[static_cast<std::size_t>(i)] = first + i;
    return CpuSet(std::move(v));
}

void
CpuSet::add(int core_id)
{
    BT_ASSERT(core_id >= 0);
    auto it = std::lower_bound(ids.begin(), ids.end(), core_id);
    if (it == ids.end() || *it != core_id)
        ids.insert(it, core_id);
}

bool
CpuSet::contains(int core_id) const
{
    return std::binary_search(ids.begin(), ids.end(), core_id);
}

std::string
CpuSet::toString() const
{
    std::ostringstream os;
    os << '{';
    std::size_t i = 0;
    while (i < ids.size()) {
        // Collapse runs into "a-b" spans.
        std::size_t j = i;
        while (j + 1 < ids.size() && ids[j + 1] == ids[j] + 1)
            ++j;
        if (i > 0)
            os << ',';
        if (j == i)
            os << ids[i];
        else
            os << ids[i] << '-' << ids[j];
        i = j + 1;
    }
    os << '}';
    return os.str();
}

bool
bindCurrentThread(const CpuSet& set)
{
    if (set.empty())
        return false;
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    for (int id : set.cores())
        CPU_SET(static_cast<unsigned>(id), &mask);
    return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
    return false; // No affinity control on this platform.
#endif
}

CpuSet
currentThreadAffinity()
{
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (pthread_getaffinity_np(pthread_self(), sizeof(mask), &mask) != 0)
        return CpuSet();
    CpuSet set;
    for (int id = 0; id < CPU_SETSIZE; ++id)
        if (CPU_ISSET(static_cast<unsigned>(id), &mask))
            set.add(id);
    return set;
#else
    return CpuSet();
#endif
}

int
onlineCoreCount()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

} // namespace bt::sched
