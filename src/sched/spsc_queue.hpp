/**
 * @file
 * Lock-free single-producer single-consumer ring buffer.
 *
 * This is the hand-off primitive between pipeline dispatcher threads in the
 * BT-Implementer (Sec. 3.4 of the paper): each queue edge carries
 * TaskObject pointers from one chunk's dispatcher to the next. The
 * implementation is the classic Lamport ring with C++11 acquire/release
 * ordering and cache-line-separated indices.
 */

#ifndef BT_SCHED_SPSC_QUEUE_HPP
#define BT_SCHED_SPSC_QUEUE_HPP

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

#include "common/logging.hpp"

namespace bt::sched {

/**
 * Bounded wait-free SPSC queue. Exactly one thread may call the producer
 * side (tryPush) and exactly one the consumer side (tryPop) at a time.
 *
 * @tparam T element type; must be nothrow-movable.
 */
template <typename T>
class SpscQueue
{
  public:
    /**
     * @param capacity_ maximum number of elements held at once; one slot
     *        is reserved internally to distinguish full from empty.
     */
    explicit SpscQueue(std::size_t capacity_)
        : slots(capacity_ + 1), buffer(capacity_ + 1)
    {
        BT_ASSERT(capacity_ > 0, "queue capacity must be positive");
    }

    SpscQueue(const SpscQueue&) = delete;
    SpscQueue& operator=(const SpscQueue&) = delete;

    /** Usable capacity. */
    std::size_t capacity() const { return slots - 1; }

    /**
     * Attempt to enqueue. Producer-side only.
     * @return false when the queue is full.
     */
    bool
    tryPush(T value)
    {
        const std::size_t h = head.load(std::memory_order_relaxed);
        const std::size_t next = increment(h);
        if (next == tail.load(std::memory_order_acquire))
            return false; // full
        buffer[h] = std::move(value);
        head.store(next, std::memory_order_release);
        return true;
    }

    /**
     * Attempt to dequeue. Consumer-side only.
     * @return std::nullopt when the queue is empty.
     */
    std::optional<T>
    tryPop()
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        if (t == head.load(std::memory_order_acquire))
            return std::nullopt; // empty
        T value = std::move(buffer[t]);
        tail.store(increment(t), std::memory_order_release);
        return value;
    }

    /** Approximate element count; exact only when both sides are quiet. */
    std::size_t
    sizeApprox() const
    {
        const std::size_t h = head.load(std::memory_order_acquire);
        const std::size_t t = tail.load(std::memory_order_acquire);
        return h >= t ? h - t : h + slots - t;
    }

    /** True when no elements are visible to the consumer. */
    bool
    emptyApprox() const
    {
        return head.load(std::memory_order_acquire)
            == tail.load(std::memory_order_acquire);
    }

  private:
    std::size_t
    increment(std::size_t idx) const
    {
        ++idx;
        return idx == slots ? 0 : idx;
    }

    std::size_t slots;
    std::vector<T> buffer;
    alignas(64) std::atomic<std::size_t> head{0}; ///< next write slot
    alignas(64) std::atomic<std::size_t> tail{0}; ///< next read slot
};

} // namespace bt::sched

#endif // BT_SCHED_SPSC_QUEUE_HPP
