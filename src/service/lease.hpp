/**
 * @file
 * Per-tenant PU leasing for co-scheduled pipelines.
 *
 * When several tenants' pipelines run concurrently on one SoC, letting
 * each plan over the full device makes every co-runner fight for the
 * same bottleneck PUs (the shared-memory-contention problem of Dagli &
 * Belviranli). Instead, the serving front end *leases* disjoint PU-class
 * subsets to co-runners, derived from the ambient load:
 *
 *  - at light load a single tenant leases the whole SoC (maximum
 *    speedup, nothing to collide with);
 *  - as load rises, the PU classes are partitioned round-robin into
 *    more lease groups, so co-scheduled pipelines land on disjoint
 *    hardware instead of interfering.
 *
 * Leases feed the optimizer through its PlannerSpec::allowedPus
 * hook - the same graceful-degradation mechanism fault recovery uses -
 * so each tenant's schedule is planned, not clamped, within its lease.
 * The (bucket, group, groups) triple is part of the schedule-cache key,
 * which keeps the derivation deterministic and the cached plans
 * byte-identical to fresh ones.
 */

#ifndef BT_SERVICE_LEASE_HPP
#define BT_SERVICE_LEASE_HPP

#include <vector>

#include "platform/soc.hpp"

namespace bt::service {

/**
 * Quantize an instantaneous in-flight request count into one of
 * @p buckets ambient-load levels. Full scale is twice the worker count:
 * at inflight <= workers the service is below saturation (low buckets);
 * queue build-up beyond that climbs toward the top bucket.
 */
int quantizeLoad(int inflight, int workers, int buckets);

/** Deterministic partition of a SoC's PU classes among co-runners. */
class PuLeaseManager
{
  public:
    /**
     * @param max_groups most co-runner partitions ever formed; clamped
     *        to the PU-class count (every lease keeps >= 1 PU).
     */
    PuLeaseManager(const platform::SocDescription& soc, int max_groups);

    /** Partition count at ambient-load bucket @p load_bucket: 1 at
     *  bucket 0, one more per bucket, capped at maxGroups(). */
    int groupsAt(int load_bucket) const;

    /**
     * PU classes leased to group @p group of @p groups (round-robin by
     * class index: group g of n gets every PU with index % n == g).
     * Disjoint across groups and covering the device.
     */
    std::vector<int> lease(int group, int groups) const;

    int maxGroups() const { return maxGroups_; }
    int numPus() const { return numPus_; }

  private:
    int numPus_;
    int maxGroups_;
};

} // namespace bt::service

#endif // BT_SERVICE_LEASE_HPP
