/**
 * @file
 * bt::Service - a multi-tenant serving front end over the framework.
 *
 * bt::Framework plans and runs exactly one pipeline per call; a server
 * faces a *stream* of inference requests from many concurrent sessions
 * sharing one SoC. Service adds the three pieces that turn the planner
 * + runtime into a serving system:
 *
 *  1. an admission/batching front end: a bounded queue accepting
 *     requests from any thread (overflow = dropped, counted), with
 *     optional same-application batching so queued requests amortize
 *     one pipeline ramp-up;
 *  2. a worker pool co-scheduling pipelines over the shared SoC model,
 *     with per-tenant PU leases (lease.hpp) derived from the ambient
 *     load and fed through the optimizer's allowedPus hook, so
 *     co-runners partition the PU classes instead of colliding;
 *  3. a concurrent schedule cache (schedule_cache.hpp) keyed by
 *     (application, platform, load bucket, lease, planner fingerprint)
 *     that takes the profile -> optimize planner entirely off the
 *     request hot path: plan once on miss, serve every subsequent
 *     request from a reader-locked shard.
 *
 * Per-request execution runs on the virtual-time backend against the
 * interference-aware device model; each run's TraceTimeline is tagged
 * with its session id and merged into one service-wide timeline, so
 * concurrent sessions stay distinguishable in the Chrome export.
 * See docs/SERVICE.md for architecture and bench methodology.
 */

#ifndef BT_SERVICE_SERVICE_HPP
#define BT_SERVICE_SERVICE_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/application.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "lint/diagnostic.hpp"
#include "platform/perf_model.hpp"
#include "runtime/run_types.hpp"
#include "runtime/virtual_backend.hpp"
#include "service/lease.hpp"
#include "service/schedule_cache.hpp"

namespace bt::service {

/** Outcome of one served request, delivered to its onDone callback. */
struct RequestResult
{
    std::int64_t id = -1; ///< admission order, service-wide
    int session = -1;
    bool ok = false; ///< executed and validated clean

    bool cacheHit = false; ///< schedule came from the cache
    bool planned = false;  ///< this request paid a planner run

    double queueSeconds = 0.0;   ///< admission -> worker pickup (wall)
    double serviceSeconds = 0.0; ///< pickup -> completion (wall)
    double latencySeconds = 0.0; ///< admission -> completion (wall)

    core::Schedule schedule; ///< what actually ran
    runtime::RunResult run;  ///< unified result of the pipeline run
};

/** One inference request from a tenant session. */
struct Request
{
    int session = 0;  ///< tenant session id (tags the trace)
    std::string app;  ///< registered Application name

    /** Invoked on the worker thread when the request completes. */
    std::function<void(const RequestResult&)> onDone;
};

/** Per-tenant serving options (see registerApp). */
struct TenantOptions
{
    /**
     * Real-time tenant: its leased slices are throttle-protected. It
     * plans and runs as if uncontended (ambient bucket 0) - the
     * service reserves its share of the C6 slack - while best-effort
     * co-tenants absorb the degradation its traffic causes.
     */
    bool realTime = false;
};

/** Every serving knob, one struct. */
struct ServiceConfig
{
    int workers = 4;        ///< co-scheduled pipeline executors
    int queueCapacity = 256; ///< admission bound; overflow = dropped

    /** Ambient-load quantization levels for the cache key / leases. */
    int loadBuckets = 4;

    /** Most PU-lease partitions ever formed; 0 = min(workers, PUs). */
    int maxLeaseGroups = 0;

    /**
     * Contention-aware leases: when tenants share the SoC (more than
     * one lease group), each plan is budgeted an equal share of the
     * DRAM roofline (the C6 constraint) and predicted under its
     * co-runners' ambient bandwidth, instead of pretending disjoint
     * PU leases make tenants independent. Single-group operation is
     * bit-identical either way.
     */
    bool contentionAware = true;

    /** Serve plans from the schedule cache (false = plan per request,
     *  the cold-path baseline the load bench compares against). */
    bool cacheEnabled = true;
    ScheduleCacheConfig cache;

    /** Max same-application requests coalesced into one pipeline run
     *  (1 = no batching). Batched requests share a completion time. */
    int maxBatch = 1;

    core::ProfilerConfig profiler;
    core::PlannerSpec optimizer;

    /** Per-request execution knobs (tasks per request, noise salt,
     *  faults...). recordTrace/sessionId are managed by the service. */
    runtime::RunConfig run;

    /** Run the measurement-driven autotuning level when planning
     *  (costlier cold path; candidates are executed, not just ranked). */
    bool autotune = false;

    /** Merge per-request traces (up to maxTracedRequests) into the
     *  report's service-wide timeline. */
    bool collectTraces = false;
    std::size_t maxTracedRequests = 64;
};

/** Aggregate serving statistics, snapshot by Service::report(). */
struct ServiceReport
{
    std::int64_t submitted = 0;
    std::int64_t completed = 0;
    std::int64_t dropped = 0; ///< admission-queue overflow
    std::int64_t failed = 0;  ///< completed but invalid outputs
    /** Applications refused by registerApp: their static lint found
     *  errors, so they never became tenants. */
    std::int64_t tenantsRejected = 0;

    double wallSeconds = 0.0;    ///< start() to stop() (or to now)
    double throughputRps = 0.0;  ///< completed / wallSeconds

    double p50Ms = 0.0; ///< median end-to-end request latency
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;

    std::int64_t plans = 0;     ///< planner invocations
    double planSeconds = 0.0;   ///< total wall time spent planning
    std::int64_t batches = 0;   ///< pipeline runs (>= 1 request each)

    /** Configured planner engine ("solver" / "exhaustive" /
     *  "annealed"). */
    std::string plannerEngine;
    /** Plans where an exact engine was configured but the tenant's
     *  schedule space exceeded exactSpaceLimit, so the service fell
     *  back to the annealed engine instead of failing. */
    std::int64_t annealedFallbacks = 0;

    ScheduleCacheStats cache;

    /** Requests completed per session id. */
    std::map<int, std::int64_t> perSession;

    /** Merged session-tagged timeline (collectTraces runs only). */
    runtime::TraceTimeline trace;

    /** Machine-readable form (counters + cache stats). */
    void writeJson(std::ostream& os) const;
};

/**
 * The serving front end. Lifecycle: construct over a device, register
 * applications, start(), submit() from any thread, drain()/stop(),
 * report(). A stopped service can be start()ed again (counters and the
 * cache persist across rounds).
 */
class Service
{
  public:
    explicit Service(const platform::SocDescription& soc,
                     ServiceConfig cfg = {});
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /**
     * Register a tenant workload; not allowed while running. The
     * application is statically linted at admission (bt::lint): a
     * tenant whose pipeline, planner spec or run config lints with
     * errors is refused - returns false, counts toward the report's
     * tenantsRejected, and never serves. Warnings admit.
     */
    bool registerApp(core::Application app);

    /** Register with per-tenant options (e.g. a real-time tenant). */
    bool registerApp(core::Application app, TenantOptions opts);

    /** The admission lint registerApp would run for (@p app, @p opts):
     *  errors there mean registerApp(app, opts) returns false. */
    lint::Report lintTenant(const core::Application& app,
                            TenantOptions opts = {}) const;

    /** Spawn the worker pool and begin accepting requests. */
    void start();

    /**
     * Admit @p req (thread-safe, non-blocking). False = queue full;
     * the request was dropped and counted.
     */
    bool submit(Request req);

    /** Block until the queue is empty and every worker is idle. */
    void drain();

    /** drain(), then join the worker pool. Idempotent. */
    void stop();

    bool running() const { return running_; }

    /** Snapshot of the aggregate statistics (any time, any thread). */
    ServiceReport report() const;

    const ScheduleCache& cache() const { return cache_; }
    const platform::PerfModel& model() const { return model_; }

    /**
     * The plan the service would use for (app, bucket, group, groups):
     * cache key derivation + planner, without touching the cache. Lets
     * tests verify cached entries are byte-identical to fresh plans.
     */
    CachedPlan freshPlan(const std::string& app_name, int load_bucket,
                         int lease_group, int lease_groups) const;

    /** The cache key the service derives for that same tuple. */
    ScheduleKey keyFor(const std::string& app_name, int load_bucket,
                       int lease_group, int lease_groups) const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        Request req;
        std::int64_t id = 0;
        Clock::time_point admitted;
    };

    void workerLoop(int worker_index);
    void serveBatch(std::vector<Pending> batch, int worker_index);
    const core::Application& appOf(const std::string& name) const;
    bool tenantRealTime(const std::string& app_name) const;

    /**
     * Deterministic equal-share ambient policy: the DRAM demand a
     * tenant of @p app_name should assume its co-runners draw when
     * the leases are partitioned into @p groups. Roofline * (n-1)/n
     * for best-effort tenants sharing with n-1 others; 0 for a
     * real-time tenant, a single group, or contentionAware = false.
     */
    double ambientFor(const std::string& app_name, int groups) const;

    /**
     * The exact planner spec a fresh plan of (app, group, groups)
     * would run: the base config plus the per-plan lease, contention
     * knobs, and - when the tenant's schedule space is too large for
     * an exact engine - the annealed fallback. keyFor() fingerprints
     * this spec, so the key contract - one key, one byte-identical
     * plan - holds: an annealed plan can never be served where an
     * exact one was requested, or vice versa.
     */
    core::PlannerSpec plannerSpecFor(const std::string& app_name,
                                     int lease_group,
                                     int lease_groups) const;

    platform::SocDescription soc_;
    ServiceConfig cfg_;
    platform::PerfModel model_;
    runtime::VirtualTimeBackend backend_;
    PuLeaseManager leases_;

    std::unordered_map<std::string, core::Application> apps_;
    std::unordered_map<std::string, TenantOptions> tenantOpts_;

    ScheduleCache cache_;

    // Admission queue.
    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::condition_variable idleCv_;
    std::deque<Pending> queue_;
    int busyWorkers_ = 0;
    bool stopping_ = false;

    std::vector<std::thread> workers_;
    std::atomic<bool> running_{false};
    std::atomic<int> inflight_{0};
    std::atomic<std::int64_t> nextId_{0};
    std::atomic<std::int64_t> submitted_{0};
    std::atomic<std::int64_t> dropped_{0};
    std::atomic<std::int64_t> completed_{0};
    std::atomic<std::int64_t> failed_{0};
    std::atomic<std::int64_t> tenantsRejected_{0};
    std::atomic<std::int64_t> plans_{0};
    std::atomic<std::int64_t> batches_{0};
    /** Mutable: freshPlan is const (a test hook) but still counts. */
    mutable std::atomic<std::int64_t> annealedFallbacks_{0};

    Clock::time_point startTime_;
    double wallSecondsStopped_ = 0.0;

    // Latency / per-session / plan-cost accounting.
    mutable std::mutex statsMutex_;
    std::vector<double> latencies_;
    std::map<int, std::int64_t> perSession_;
    double planSeconds_ = 0.0;

    // Merged service-wide timeline (collectTraces).
    mutable std::mutex traceMutex_;
    runtime::TraceTimeline trace_;
    std::size_t tracedRequests_ = 0;
};

} // namespace bt::service

#endif // BT_SERVICE_SERVICE_HPP
