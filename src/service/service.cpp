#include "service/service.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/autotuner.hpp"
#include "core/schedule.hpp"
#include "core/sim_executor.hpp"
#include "lint/lint.hpp"

namespace bt::service {

namespace {

double
secondsBetween(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

void
ServiceReport::writeJson(std::ostream& os) const
{
    os << "{\n";
    os << "  \"submitted\": " << submitted << ",\n";
    os << "  \"completed\": " << completed << ",\n";
    os << "  \"dropped\": " << dropped << ",\n";
    os << "  \"failed\": " << failed << ",\n";
    os << "  \"tenants_rejected\": " << tenantsRejected << ",\n";
    os << "  \"wall_seconds\": " << wallSeconds << ",\n";
    os << "  \"throughput_rps\": " << throughputRps << ",\n";
    os << "  \"latency_ms\": { \"p50\": " << p50Ms << ", \"p99\": "
       << p99Ms << ", \"mean\": " << meanMs << ", \"max\": " << maxMs
       << " },\n";
    os << "  \"plans\": " << plans << ",\n";
    os << "  \"plan_seconds\": " << planSeconds << ",\n";
    os << "  \"batches\": " << batches << ",\n";
    os << "  \"planner\": { \"engine\": \"" << plannerEngine
       << "\", \"annealed_fallbacks\": " << annealedFallbacks
       << " },\n";
    os << "  \"cache\": { \"hits\": " << cache.hits << ", \"misses\": "
       << cache.misses << ", \"evictions\": " << cache.evictions
       << ", \"insertions\": " << cache.insertions
       << ", \"raced_insertions\": " << cache.racedInsertions
       << ", \"size\": " << cache.size << ", \"hit_rate\": "
       << cache.hitRate() << " },\n";
    os << "  \"sessions\": {";
    bool first = true;
    for (const auto& [session, count] : perSession) {
        os << (first ? " " : ", ") << '"' << session << "\": " << count;
        first = false;
    }
    os << " }\n";
    os << "}\n";
}

Service::Service(const platform::SocDescription& soc, ServiceConfig cfg)
    : soc_(soc), cfg_(std::move(cfg)), model_(soc_), backend_(model_),
      leases_(soc_, cfg_.maxLeaseGroups > 0
                  ? cfg_.maxLeaseGroups
                  : std::min(std::max(cfg_.workers, 1), soc_.numPus())),
      cache_(cfg_.cache)
{
    BT_ASSERT(cfg_.workers >= 1, "service needs at least one worker");
    BT_ASSERT(cfg_.queueCapacity >= 1, "admission queue needs capacity");
    BT_ASSERT(cfg_.loadBuckets >= 1, "need at least one load bucket");
    BT_ASSERT(cfg_.maxBatch >= 1, "batch size must be positive");
}

Service::~Service()
{
    stop();
}

bool
Service::registerApp(core::Application app)
{
    return registerApp(std::move(app), TenantOptions{});
}

lint::Report
Service::lintTenant(const core::Application& app,
                    TenantOptions opts) const
{
    // Mirror plannerSpecFor's large-tenant fallback: a schedule space
    // an exact engine would refuse is annealed at serve time, not
    // failed, so it must not read as an admission error either.
    core::PlannerSpec spec = cfg_.optimizer;
    if (spec.exactnessPreserving() && spec.exactSpaceLimit > 0
        && core::scheduleSpaceSize(app.numStages(), soc_.numPus())
            > spec.exactSpaceLimit)
        spec.engine = core::PlannerEngine::Annealed;

    lint::TenantLintInput tenant;
    tenant.realTime = opts.realTime;
    tenant.contentionAware = cfg_.contentionAware;
    tenant.leaseGroups = leases_.maxGroups();
    return lint::lintTenant(soc_, app, spec, cfg_.run, tenant);
}

bool
Service::registerApp(core::Application app, TenantOptions opts)
{
    BT_ASSERT(!running_, "cannot register apps on a running service");
    const lint::Report report = lintTenant(app, opts);
    if (report.errors() > 0) {
        tenantsRejected_.fetch_add(1, std::memory_order_relaxed);
        warn("tenant '", app.name(),
             "' refused at admission - static lint found errors: ",
             report.summary());
        return false;
    }
    std::string name = app.name();
    tenantOpts_.insert_or_assign(name, opts);
    apps_.insert_or_assign(std::move(name), std::move(app));
    return true;
}

bool
Service::tenantRealTime(const std::string& app_name) const
{
    const auto it = tenantOpts_.find(app_name);
    return it != tenantOpts_.end() && it->second.realTime;
}

double
Service::ambientFor(const std::string& app_name, int groups) const
{
    if (!cfg_.contentionAware || groups <= 1
        || tenantRealTime(app_name))
        return 0.0;
    const double roofline = model_.contention().rooflineGbps();
    return roofline * static_cast<double>(groups - 1)
        / static_cast<double>(groups);
}

const core::Application&
Service::appOf(const std::string& name) const
{
    const auto it = apps_.find(name);
    BT_ASSERT(it != apps_.end(), "request names an unregistered app");
    return it->second;
}

ScheduleKey
Service::keyFor(const std::string& app_name, int load_bucket,
                int lease_group, int lease_groups) const
{
    ScheduleKey key;
    key.app = app_name;
    key.platform = soc_.name;
    key.loadBucket = load_bucket;
    key.lease = lease_group;
    key.leaseGroups = lease_groups;
    key.bandwidthBucket = model_.contention().bucketOf(
        ambientFor(app_name, lease_groups));
    key.plannerFingerprint
        = plannerSpecFor(app_name, lease_group, lease_groups)
              .fingerprint();
    return key;
}

core::PlannerSpec
Service::plannerSpecFor(const std::string& app_name, int lease_group,
                        int lease_groups) const
{
    core::PlannerSpec spec = cfg_.optimizer;
    spec.allowedPus = leases_.lease(lease_group, lease_groups);

    // Contention-aware co-placement: with n lease groups sharing the
    // SoC, each tenant's plan gets an equal 1/n share of the DRAM
    // roofline as its C6 budget and is predicted under the remaining
    // (n-1)/n as ambient demand. A real-time tenant keeps the budget
    // but plans uncontended - its slices are throttle-protected and
    // the co-tenants absorb the degradation. (The budget caps what a
    // tenant *draws*; the ambient a co-tenant *feels* is weighted by
    // the model's contendedDemandWeight inside the slowdown fold.)
    if (cfg_.contentionAware && lease_groups > 1) {
        const double roofline = model_.contention().rooflineGbps();
        spec.contention.budgetGbps
            = roofline / static_cast<double>(lease_groups);
        spec.contention.realTime = tenantRealTime(app_name);
        spec.contention.ambientGbps
            = ambientFor(app_name, lease_groups);
    }

    // Large-tenant fallback: an exact engine refuses any schedule
    // space beyond exactSpaceLimit, and relaxing C6 to shrink the
    // space would break the budget contract - so the service anneals
    // the plan instead of failing it. The flip lives in the spec, so
    // keyFor()'s fingerprint covers it (plus the annealing seed and
    // budget): an annealed plan can never be served from a key minted
    // for an exact one.
    if (spec.exactnessPreserving() && spec.exactSpaceLimit > 0) {
        const int allowed = spec.allowedPus.empty()
            ? soc_.numPus()
            : static_cast<int>(spec.allowedPus.size());
        const std::uint64_t space = core::scheduleSpaceSize(
            appOf(app_name).numStages(), allowed);
        if (space > spec.exactSpaceLimit)
            spec.engine = core::PlannerEngine::Annealed;
    }
    return spec;
}

CachedPlan
Service::freshPlan(const std::string& app_name, int /*load_bucket*/,
                   int lease_group, int lease_groups) const
{
    const auto t0 = Clock::now();
    const core::Application& app = appOf(app_name);

    // The planner pass mirrors BetterTogether::run: interference-aware
    // profiling, then lease-constrained schedule generation.
    const core::Profiler profiler(model_, cfg_.profiler);
    const core::ProfileResult profile = profiler.profile(app);

    core::PlannerSpec ocfg
        = plannerSpecFor(app_name, lease_group, lease_groups);
    if (!ocfg.exactnessPreserving()
        && cfg_.optimizer.exactnessPreserving())
        annealedFallbacks_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.contentionAware && lease_groups > 1)
        ocfg.contentionProfile = &profile.contention;
    core::Optimizer optimizer(soc_, profile.interference,
                              std::move(ocfg));
    const std::vector<core::Candidate> candidates = optimizer.optimize();
    BT_ASSERT(!candidates.empty(), "optimizer found no schedule");

    CachedPlan plan;
    if (cfg_.autotune) {
        runtime::RunConfig exec = cfg_.run;
        exec.recordTrace = false;
        exec.sessionId = -1;
        const core::SimExecutor executor(model_, exec);
        const core::AutoTuner tuner(executor);
        const core::TuningReport tuning = tuner.tune(app, candidates);
        plan.schedule = tuning.best().candidate.schedule;
        plan.predictedLatencySeconds = tuning.best().measuredLatency;
        plan.predictedDemandGbps
            = tuning.best().candidate.predictedDemandGbps;
    } else {
        plan.schedule = candidates.front().schedule;
        plan.predictedLatencySeconds = candidates.front().predictedLatency;
        plan.predictedDemandGbps
            = candidates.front().predictedDemandGbps;
    }
    plan.planWallSeconds = secondsBetween(t0, Clock::now());
    return plan;
}

void
Service::start()
{
    BT_ASSERT(!running_, "service already running");
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = false;
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        startTime_ = Clock::now();
    }
    running_ = true;
    workers_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

bool
Service::submit(Request req)
{
    if (!running_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (static_cast<int>(queue_.size()) >= cfg_.queueCapacity) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        Pending pending;
        pending.req = std::move(req);
        pending.id = nextId_.fetch_add(1, std::memory_order_relaxed);
        pending.admitted = Clock::now();
        queue_.push_back(std::move(pending));
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    queueCv_.notify_one();
    return true;
}

void
Service::drain()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && busyWorkers_ == 0; });
}

void
Service::stop()
{
    if (!running_)
        return;
    drain();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
    workers_.clear();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        wallSecondsStopped_ += secondsBetween(startTime_, Clock::now());
    }
    running_ = false;
}

void
Service::workerLoop(int worker_index)
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                BT_ASSERT(stopping_);
                return;
            }
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            // Opportunistic batching: coalesce the contiguous run of
            // same-application requests at the head of the queue (FIFO
            // order is preserved; only the head run is taken).
            while (static_cast<int>(batch.size()) < cfg_.maxBatch
                   && !queue_.empty()
                   && queue_.front().req.app == batch.front().req.app) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            ++busyWorkers_;
        }

        serveBatch(std::move(batch), worker_index);

        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            --busyWorkers_;
            if (queue_.empty() && busyWorkers_ == 0)
                idleCv_.notify_all();
        }
    }
}

void
Service::serveBatch(std::vector<Pending> batch, int worker_index)
{
    const auto pickup = Clock::now();
    const core::Application& app = appOf(batch.front().req.app);

    // Ambient load -> lease partition -> cache key. The bucket is
    // quantized (lease.hpp) so nearby load levels share cache entries.
    const int inflight = inflight_.load(std::memory_order_relaxed);
    const int bucket
        = quantizeLoad(inflight, cfg_.workers, cfg_.loadBuckets);
    const int groups = leases_.groupsAt(bucket);
    const int group = worker_index % groups;
    const ScheduleKey key = keyFor(app.name(), bucket, group, groups);

    CachedPlan plan;
    bool hit = false;
    bool planned = false;
    if (cfg_.cacheEnabled) {
        if (auto cached = cache_.lookup(key)) {
            plan = std::move(*cached);
            hit = true;
        }
    }
    if (!hit) {
        // Plan on the miss path; first writer wins the insert race
        // (both plans are byte-identical by the key contract).
        plan = freshPlan(app.name(), bucket, group, groups);
        planned = true;
        plans_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            planSeconds_ += plan.planWallSeconds;
        }
        if (cfg_.cacheEnabled)
            cache_.insert(key, plan);
    }

    bool recordTrace = false;
    if (cfg_.collectTraces) {
        std::lock_guard<std::mutex> lock(traceMutex_);
        if (tracedRequests_ < cfg_.maxTracedRequests) {
            ++tracedRequests_;
            recordTrace = true;
        }
    }

    runtime::RunConfig rcfg = cfg_.run;
    rcfg.recordTrace = recordTrace;
    rcfg.sessionId = batch.front().req.session;
    // A batch is one pipeline run over the coalesced task stream.
    rcfg.numTasks = cfg_.run.numTasks * static_cast<int>(batch.size());
    // Execute under the same co-runner demand the plan was made for
    // (0 for real-time tenants: their slices are protected).
    rcfg.ambientBandwidthGbps = ambientFor(app.name(), groups);

    const runtime::RunResult run
        = backend_.run(app, plan.schedule, rcfg);
    const auto done = Clock::now();
    const bool ok = run.validationErrors.empty();

    if (recordTrace) {
        Clock::time_point epoch;
        {
            std::lock_guard<std::mutex> statsLock(statsMutex_);
            epoch = startTime_;
        }
        std::lock_guard<std::mutex> lock(traceMutex_);
        trace_.merge(run.trace, secondsBetween(epoch, pickup));
    }

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        for (const Pending& pending : batch) {
            latencies_.push_back(
                secondsBetween(pending.admitted, done));
            ++perSession_[pending.req.session];
        }
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(static_cast<std::int64_t>(batch.size()),
                         std::memory_order_relaxed);
    if (!ok)
        failed_.fetch_add(static_cast<std::int64_t>(batch.size()),
                          std::memory_order_relaxed);
    inflight_.fetch_sub(static_cast<int>(batch.size()),
                        std::memory_order_relaxed);

    for (const Pending& pending : batch) {
        if (!pending.req.onDone)
            continue;
        RequestResult result;
        result.id = pending.id;
        result.session = pending.req.session;
        result.ok = ok;
        result.cacheHit = hit;
        result.planned = planned;
        result.queueSeconds = secondsBetween(pending.admitted, pickup);
        result.serviceSeconds = secondsBetween(pickup, done);
        result.latencySeconds = secondsBetween(pending.admitted, done);
        result.schedule = plan.schedule;
        result.run = run;
        pending.req.onDone(result);
    }
}

ServiceReport
Service::report() const
{
    ServiceReport report;
    report.submitted = submitted_.load(std::memory_order_relaxed);
    report.completed = completed_.load(std::memory_order_relaxed);
    report.dropped = dropped_.load(std::memory_order_relaxed);
    report.failed = failed_.load(std::memory_order_relaxed);
    report.tenantsRejected
        = tenantsRejected_.load(std::memory_order_relaxed);
    report.plans = plans_.load(std::memory_order_relaxed);
    report.batches = batches_.load(std::memory_order_relaxed);
    report.plannerEngine
        = core::plannerEngineName(cfg_.optimizer.engine);
    report.annealedFallbacks
        = annealedFallbacks_.load(std::memory_order_relaxed);
    report.cache = cache_.stats();

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        report.wallSeconds = wallSecondsStopped_;
        if (running_)
            report.wallSeconds
                += secondsBetween(startTime_, Clock::now());
        report.planSeconds = planSeconds_;
        report.perSession = perSession_;
        if (!latencies_.empty()) {
            report.p50Ms = percentile(latencies_, 50.0) * 1e3;
            report.p99Ms = percentile(latencies_, 99.0) * 1e3;
            report.meanMs = mean(latencies_) * 1e3;
            report.maxMs
                = *std::max_element(latencies_.begin(), latencies_.end())
                * 1e3;
        }
    }
    if (report.wallSeconds > 0.0)
        report.throughputRps
            = static_cast<double>(report.completed) / report.wallSeconds;

    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        report.trace = trace_;
    }
    return report;
}

} // namespace bt::service
