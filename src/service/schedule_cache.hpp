/**
 * @file
 * Concurrent schedule cache for the multi-tenant serving front end.
 *
 * Planning a deployment (profile -> optimize) costs milliseconds;
 * executing one request costs tens of microseconds. A server that plans
 * per request therefore spends > 90% of its time in the planner. The
 * cache takes the planner entirely off the request hot path: plans are
 * keyed by (application, platform, ambient-load bucket, PU lease,
 * planner fingerprint) - everything that determines the planner's
 * output - so a key hit is guaranteed byte-identical to a fresh plan
 * (the planner is deterministic; tests enforce the identity).
 *
 * Concurrency: the key space is split across shards, each guarded by a
 * reader-writer lock. Lookups take the shared lock and only touch an
 * atomic recency stamp, so the all-hits steady state of a warm server
 * scales with reader parallelism. Capacity is bounded per shard with
 * least-recently-used eviction (exact within a shard: the per-entry
 * stamp is a global atomic tick, and the evictor scans the shard for
 * the minimum). Hit/miss/eviction counters are lock-free atomics,
 * surfaced in the service report and the load-generator bench.
 */

#ifndef BT_SERVICE_SCHEDULE_CACHE_HPP
#define BT_SERVICE_SCHEDULE_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/schedule.hpp"

namespace bt::service {

/** Everything that determines which schedule the planner returns. */
struct ScheduleKey
{
    std::string app;      ///< Application::name() of the tenant workload
    std::string platform; ///< SocDescription::name of the device
    int loadBucket = 0;   ///< quantized ambient load (see lease.hpp)
    int lease = 0;        ///< PU-lease group the plan was made for
    int leaseGroups = 1;  ///< co-runner partition count at that load

    /** Quantized co-runner DRAM-demand bucket the plan targets (0 =
     *  uncontended / real-time tenant); extends the key so
     *  contention-aware plans stay byte-identical per key. */
    int bandwidthBucket = 0;

    /** core::PlannerSpec::fingerprint() of the planner knobs. */
    std::uint64_t plannerFingerprint = 0;

    bool operator==(const ScheduleKey&) const = default;
};

struct ScheduleKeyHash
{
    std::size_t operator()(const ScheduleKey& k) const;
};

/** One cached planner output. */
struct CachedPlan
{
    core::Schedule schedule;
    double predictedLatencySeconds = 0.0;
    /** Aggregate DRAM demand (GB/s) the plan draws; what co-tenant
     *  budgets are accounted against. */
    double predictedDemandGbps = 0.0;
    double planWallSeconds = 0.0; ///< wall time the planner spent
};

/** Cache sizing knobs. */
struct ScheduleCacheConfig
{
    /** Whole-cache entry bound (rounded up to a multiple of shards). */
    std::size_t capacity = 64;

    /** Lock shards; higher = more reader parallelism, coarser LRU. */
    int shards = 8;
};

/** Lock-free counter snapshot (monotonic since construction). */
struct ScheduleCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;

    /** Insertions that lost a plan-once race (entry already present). */
    std::uint64_t racedInsertions = 0;

    std::size_t size = 0; ///< entries resident right now

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total > 0
            ? static_cast<double>(hits) / static_cast<double>(total)
            : 0.0;
    }
};

/** Sharded, bounded, LRU-evicting concurrent map of planner outputs. */
class ScheduleCache
{
  public:
    explicit ScheduleCache(ScheduleCacheConfig cfg = {});

    /** Hit: a copy of the cached plan (recency updated). Miss: empty. */
    std::optional<CachedPlan> lookup(const ScheduleKey& key);

    /**
     * Insert a freshly planned entry, evicting the shard's LRU entry if
     * the shard is full. Returns false (and keeps the incumbent) when
     * another thread planned the same key first - both plans are
     * byte-identical by the key contract, so first-writer-wins loses
     * nothing.
     */
    bool insert(const ScheduleKey& key, CachedPlan plan);

    ScheduleCacheStats stats() const;
    std::size_t size() const;

    /** Every resident (key, plan) pair; for reports and tests. */
    std::vector<std::pair<ScheduleKey, CachedPlan>> snapshot() const;

    std::size_t capacity() const { return shardCapacity_ * shards_.size(); }

  private:
    struct Entry
    {
        CachedPlan plan;
        std::atomic<std::uint64_t> lastUse{0};
    };

    struct Shard
    {
        mutable std::shared_mutex mutex;
        std::unordered_map<ScheduleKey, std::unique_ptr<Entry>,
                           ScheduleKeyHash>
            map;
    };

    Shard& shardFor(const ScheduleKey& key);

    std::size_t shardCapacity_;
    std::vector<Shard> shards_;

    std::atomic<std::uint64_t> tick_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> insertions_{0};
    std::atomic<std::uint64_t> raced_{0};
};

} // namespace bt::service

#endif // BT_SERVICE_SCHEDULE_CACHE_HPP
