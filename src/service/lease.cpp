#include "service/lease.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::service {

int
quantizeLoad(int inflight, int workers, int buckets)
{
    BT_ASSERT(workers > 0 && buckets > 0);
    if (inflight <= 0)
        return 0;
    const int bucket = ((inflight - 1) * buckets) / (2 * workers);
    return std::min(bucket, buckets - 1);
}

PuLeaseManager::PuLeaseManager(const platform::SocDescription& soc,
                               int max_groups)
    : numPus_(soc.numPus()),
      maxGroups_(std::clamp(max_groups, 1, soc.numPus()))
{
    BT_ASSERT(numPus_ > 0, "device has no PU classes");
}

int
PuLeaseManager::groupsAt(int load_bucket) const
{
    return std::clamp(load_bucket + 1, 1, maxGroups_);
}

std::vector<int>
PuLeaseManager::lease(int group, int groups) const
{
    BT_ASSERT(groups >= 1 && groups <= numPus_, "bad lease partition");
    BT_ASSERT(group >= 0 && group < groups, "lease group out of range");
    if (groups == 1)
        return {}; // whole SoC: empty allowedPus = no restriction
    std::vector<int> pus;
    for (int pu = group; pu < numPus_; pu += groups)
        pus.push_back(pu);
    return pus;
}

} // namespace bt::service
