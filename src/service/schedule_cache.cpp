#include "service/schedule_cache.hpp"

#include <algorithm>
#include <mutex>

#include "common/logging.hpp"

namespace bt::service {

namespace {

void
mixHash(std::size_t& h, std::size_t v)
{
    // boost::hash_combine-style mixing.
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

} // namespace

std::size_t
ScheduleKeyHash::operator()(const ScheduleKey& k) const
{
    std::size_t h = std::hash<std::string>{}(k.app);
    mixHash(h, std::hash<std::string>{}(k.platform));
    mixHash(h, static_cast<std::size_t>(k.loadBucket));
    mixHash(h, static_cast<std::size_t>(k.lease));
    mixHash(h, static_cast<std::size_t>(k.leaseGroups));
    mixHash(h, static_cast<std::size_t>(k.bandwidthBucket));
    mixHash(h, static_cast<std::size_t>(k.plannerFingerprint));
    return h;
}

ScheduleCache::ScheduleCache(ScheduleCacheConfig cfg)
    : shardCapacity_((std::max<std::size_t>(cfg.capacity, 1)
                      + static_cast<std::size_t>(std::max(cfg.shards, 1))
                      - 1)
                     / static_cast<std::size_t>(std::max(cfg.shards, 1))),
      shards_(static_cast<std::size_t>(std::max(cfg.shards, 1)))
{
}

ScheduleCache::Shard&
ScheduleCache::shardFor(const ScheduleKey& key)
{
    const std::size_t h = ScheduleKeyHash{}(key);
    // The map uses the same hash; spread shards over the high bits so
    // shard selection and in-shard bucketing stay independent.
    return shards_[(h >> 17) % shards_.size()];
}

std::optional<CachedPlan>
ScheduleCache::lookup(const ScheduleKey& key)
{
    Shard& shard = shardFor(key);
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    it->second->lastUse.store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->plan;
}

bool
ScheduleCache::insert(const ScheduleKey& key, CachedPlan plan)
{
    Shard& shard = shardFor(key);
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (shard.map.contains(key)) {
        raced_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (shard.map.size() >= shardCapacity_) {
        // Evict the shard's least-recently-used entry.
        auto victim = shard.map.begin();
        std::uint64_t oldest
            = victim->second->lastUse.load(std::memory_order_relaxed);
        for (auto it = std::next(shard.map.begin());
             it != shard.map.end(); ++it) {
            const std::uint64_t use
                = it->second->lastUse.load(std::memory_order_relaxed);
            if (use < oldest) {
                oldest = use;
                victim = it;
            }
        }
        shard.map.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    auto entry = std::make_unique<Entry>();
    entry->plan = std::move(plan);
    entry->lastUse.store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    shard.map.emplace(key, std::move(entry));
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

ScheduleCacheStats
ScheduleCache::stats() const
{
    ScheduleCacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.insertions = insertions_.load(std::memory_order_relaxed);
    st.racedInsertions = raced_.load(std::memory_order_relaxed);
    st.size = size();
    return st;
}

std::size_t
ScheduleCache::size() const
{
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

std::vector<std::pair<ScheduleKey, CachedPlan>>
ScheduleCache::snapshot() const
{
    std::vector<std::pair<ScheduleKey, CachedPlan>> out;
    for (const auto& shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        for (const auto& [key, entry] : shard.map)
            out.emplace_back(key, entry->plan);
    }
    return out;
}

} // namespace bt::service
