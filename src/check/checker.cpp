#include "check/checker.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace bt::check {

namespace {

/** splitmix64 finalizer: decorrelates (seed, launch, rerun) triples. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

void
jsonEscape(std::ostream& os, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\b': os << "\\b"; break;
        case '\f': os << "\\f"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
}

void
writeThread(std::ostream& os, const ThreadId& id)
{
    os << "{\"block\": " << id.block << ", \"thread\": " << id.thread
       << "}";
}

std::string
threadLabel(const ThreadId& id)
{
    if (id.block < 0)
        return "host";
    std::ostringstream os;
    os << "(b" << id.block << ",t" << id.thread << ")";
    return os.str();
}

} // namespace

std::string_view
findingKindName(FindingKind kind)
{
    switch (kind) {
    case FindingKind::WriteWriteRace: return "write_write_race";
    case FindingKind::ReadWriteRace: return "read_write_race";
    case FindingKind::AtomicMixRace: return "atomic_mix_race";
    case FindingKind::OobRead: return "oob_read";
    case FindingKind::OobWrite: return "oob_write";
    case FindingKind::UnderCoveringLaunch: return "under_covering_launch";
    case FindingKind::DeadBlocks: return "dead_blocks";
    case FindingKind::OrderDependence: return "order_dependence";
    case FindingKind::ValidationFailure: return "validation_failure";
    }
    return "unknown";
}

std::string
Finding::toString() const
{
    std::ostringstream os;
    os << "[" << findingKindName(kind) << "] ";
    if (!context.empty())
        os << context << " ";
    os << kernel << " launch " << launch << " (grid " << gridDim << "x"
       << blockDim << ")";
    if (!buffer.empty())
        os << " buffer '" << buffer << "'";
    if (element >= 0)
        os << " element " << element;
    if (second.block >= 0 || second.thread >= 0)
        os << ": threads " << threadLabel(first) << " and "
           << threadLabel(second);
    else if (first.block >= 0 || first.thread >= 0
             || kind == FindingKind::OobRead
             || kind == FindingKind::OobWrite)
        os << ": thread " << threadLabel(first);
    if (!note.empty())
        os << " - " << note;
    if (count > 1)
        os << " (x" << count << ")";
    return os.str();
}

std::string
Report::summary() const
{
    std::ostringstream os;
    if (clean())
        os << "bt::check clean: ";
    else
        os << "bt::check found " << findings.size() << " issue(s)"
           << (suppressed ? " (+suppressed)" : "") << ": ";
    os << stats.kernels << " kernels, " << stats.launches << " launches, "
       << stats.reruns << " shuffled reruns, " << stats.regions
       << " regions, " << stats.accesses << " accesses tracked";
    return os.str();
}

void
Report::print(std::ostream& os) const
{
    os << summary() << "\n";
    for (const Finding& f : findings)
        os << "  " << f.toString() << "\n";
    if (suppressed > 0)
        os << "  ... " << suppressed << " further finding(s) suppressed\n";
}

void
Report::writeJson(std::ostream& os) const
{
    os << "{\"clean\": " << (clean() ? "true" : "false")
       << ", \"suppressed\": " << suppressed << ", \"stats\": {"
       << "\"kernels\": " << stats.kernels
       << ", \"launches\": " << stats.launches
       << ", \"reruns\": " << stats.reruns
       << ", \"regions\": " << stats.regions
       << ", \"accesses\": " << stats.accesses << "}, \"findings\": [";
    bool comma = false;
    for (const Finding& f : findings) {
        if (comma)
            os << ", ";
        comma = true;
        os << "{\"kind\": \"" << findingKindName(f.kind)
           << "\", \"context\": \"";
        jsonEscape(os, f.context);
        os << "\", \"kernel\": \"";
        jsonEscape(os, f.kernel);
        os << "\", \"launch\": " << f.launch
           << ", \"grid_dim\": " << f.gridDim
           << ", \"block_dim\": " << f.blockDim << ", \"buffer\": \"";
        jsonEscape(os, f.buffer);
        os << "\", \"element\": " << f.element << ", \"first\": ";
        writeThread(os, f.first);
        os << ", \"second\": ";
        writeThread(os, f.second);
        os << ", \"count\": " << f.count << ", \"note\": \"";
        jsonEscape(os, f.note);
        os << "\"}";
    }
    os << "]}";
}

void
Report::merge(Report other)
{
    for (Finding& f : other.findings)
        findings.push_back(std::move(f));
    stats.kernels += other.stats.kernels;
    stats.launches += other.stats.launches;
    stats.reruns += other.stats.reruns;
    stats.regions += other.stats.regions;
    stats.accesses += other.stats.accesses;
    suppressed += other.suppressed;
}

Checker::Checker(CheckerConfig config) : config_(config) {}

Checker::~Checker() = default;

void
Checker::pushContext(std::string_view name)
{
    contextStack_.emplace_back(name);
}

void
Checker::popContext()
{
    BT_ASSERT(!contextStack_.empty(), "context underflow");
    contextStack_.pop_back();
}

void
Checker::addValidationFailure(std::string_view context,
                              std::string_view message)
{
    Finding f;
    f.kind = FindingKind::ValidationFailure;
    f.context = context;
    f.kernel = "<validator>";
    f.note = message;
    report_.findings.push_back(std::move(f));
}

Report
Checker::takeReport()
{
    Report out = std::move(report_);
    report_ = Report{};
    regions_.clear();
    contextStack_.clear();
    kernelStack_.clear();
    regionMarks_.clear();
    launchInKernel_ = 0;
    epoch_ = 0;
    inLaunch_ = false;
    passive_ = false;
    current_ = -1;
    return out;
}

void
Checker::beginKernel(std::string_view name)
{
    kernelStack_.emplace_back(name);
    regionMarks_.push_back(regions_.size());
    launchInKernel_ = 0;
    ++report_.stats.kernels;
}

void
Checker::endKernel()
{
    BT_ASSERT(!kernelStack_.empty(), "kernel scope underflow");
    // Regions registered inside the scope may point at scope-local
    // buffers; retire them so later snapshots never touch freed memory.
    for (std::size_t r = regionMarks_.back(); r < regions_.size(); ++r)
        retireRegion(static_cast<int>(r));
    regionMarks_.pop_back();
    kernelStack_.pop_back();
}

int
Checker::registerRegion(const void* base, std::int64_t elems,
                        std::size_t elem_bytes, std::string_view name,
                        bool readonly)
{
    // The same (base, extent) registered twice - e.g. an in-place scan
    // handing one buffer as both input and output - aliases onto one
    // region so the race rules see a single element space.
    for (std::size_t r = 0; r < regions_.size(); ++r) {
        Region& existing = regions_[r];
        if (!existing.retired && existing.base == base
            && existing.elems == elems
            && existing.elemBytes == elem_bytes) {
            existing.readonly = existing.readonly && readonly;
            return static_cast<int>(r);
        }
    }
    Region region;
    region.base = static_cast<const std::byte*>(base);
    region.elems = elems;
    region.elemBytes = elem_bytes;
    region.name = name;
    region.readonly = readonly;
    regions_.push_back(std::move(region));
    ++report_.stats.regions;
    return static_cast<int>(regions_.size() - 1);
}

void
Checker::retireRegion(int region)
{
    Region& r = regions_[static_cast<std::size_t>(region)];
    r.retired = true;
    r.shadow.clear();
    r.shadow.shrink_to_fit();
    r.preLaunch.clear();
    r.preLaunch.shrink_to_fit();
    r.postLaunch.clear();
    r.postLaunch.shrink_to_fit();
}

void
Checker::lintGeometry(const simt::LaunchConfig& cfg, std::int64_t items,
                      simt::GeometryStyle style)
{
    if (items < 0 || cfg.blockDim <= 0 || cfg.gridDim <= 0)
        return;
    const std::int64_t total = cfg.totalThreads();
    const std::int64_t needed
        = items <= 0 ? 1 : (items - 1) / cfg.blockDim + 1;
    if (style == simt::GeometryStyle::Direct && total < items) {
        std::ostringstream note;
        note << "direct-indexed launch supplies " << total
             << " threads for " << items << " items; the last "
             << (items - total) << " item(s) never execute";
        addFinding(FindingKind::UnderCoveringLaunch, "", -1, ThreadId{},
                   ThreadId{}, note.str());
    } else if (style != simt::GeometryStyle::Chunked
               && cfg.gridDim > needed) {
        std::ostringstream note;
        note << "gridDim " << cfg.gridDim << " exceeds the " << needed
             << " block(s) LaunchConfig::cover(" << items << ", "
             << cfg.blockDim << ") would allocate; "
             << (cfg.gridDim - needed) << " block(s) are dead";
        addFinding(FindingKind::DeadBlocks, "", -1, ThreadId{},
                   ThreadId{}, note.str());
    }
}

void
Checker::onLaunchBegin(const simt::LaunchConfig& cfg, std::int64_t items,
                       simt::GeometryStyle style)
{
    cfg_ = cfg;
    ++epoch_;
    inLaunch_ = true;
    current_ = -1;
    ++report_.stats.launches;
    ++launchInKernel_;
    lintGeometry(cfg, items, style);
    if (rerunCount() > 0) {
        // Snapshot every live writable region for the shuffle harness.
        for (Region& region : regions_) {
            if (region.retired || region.readonly)
                continue;
            const std::size_t bytes = static_cast<std::size_t>(
                region.elems) * region.elemBytes;
            region.preLaunch.assign(region.base, region.base + bytes);
        }
    }
}

void
Checker::onThreadBegin(const simt::WorkItem& item)
{
    current_ = item.globalId();
}

void
Checker::onLaunchEnd()
{
    inLaunch_ = false;
    current_ = -1;
    if (rerunCount() > 0) {
        for (Region& region : regions_) {
            if (region.retired || region.readonly)
                continue;
            const std::size_t bytes = static_cast<std::size_t>(
                region.elems) * region.elemBytes;
            region.postLaunch.assign(region.base, region.base + bytes);
        }
    }
}

int
Checker::rerunCount() const
{
    // Single-block launches have only one schedule; nothing to shuffle.
    return cfg_.gridDim > 1 ? config_.reruns : 0;
}

std::uint64_t
Checker::rerunSeed(int rerun) const
{
    return mix(config_.seed ^ mix(epoch_)
               ^ (static_cast<std::uint64_t>(rerun) << 32));
}

void
Checker::onRerunBegin(int /*rerun*/)
{
    ++report_.stats.reruns;
    passive_ = true;
    inLaunch_ = true;
    for (Region& region : regions_) {
        if (region.retired || region.readonly || region.preLaunch.empty())
            continue;
        std::memcpy(const_cast<std::byte*>(region.base),
                    region.preLaunch.data(), region.preLaunch.size());
    }
}

void
Checker::onRerunEnd(int rerun)
{
    passive_ = false;
    inLaunch_ = false;
    current_ = -1;
    for (Region& region : regions_) {
        if (region.retired || region.readonly
            || region.postLaunch.empty())
            continue;
        const std::byte* live = region.base;
        const std::byte* want = region.postLaunch.data();
        const std::size_t bytes = region.postLaunch.size();
        if (std::memcmp(live, want, bytes) != 0) {
            std::int64_t firstDiff = -1;
            std::int64_t diffs = 0;
            for (std::int64_t e = 0; e < region.elems; ++e) {
                const std::size_t off = static_cast<std::size_t>(e)
                                        * region.elemBytes;
                if (std::memcmp(live + off, want + off,
                                region.elemBytes)
                    != 0) {
                    if (firstDiff < 0)
                        firstDiff = e;
                    ++diffs;
                }
            }
            std::ostringstream note;
            note << diffs << " element(s) differ from the sequential "
                 << "run under shuffled block order (rerun " << rerun
                 << ", seed " << rerunSeed(rerun) << ")";
            addFinding(FindingKind::OrderDependence, region.name,
                       firstDiff, ThreadId{}, ThreadId{}, note.str());
        }
        // Leave memory in the sequential-run state either way so the
        // checked execution stays bit-identical to an unchecked one.
        std::memcpy(const_cast<std::byte*>(region.base), want, bytes);
    }
}

Checker::Cell&
Checker::cellFor(Region& region, std::int64_t index)
{
    if (region.shadow.empty())
        region.shadow.resize(static_cast<std::size_t>(region.elems));
    Cell& cell = region.shadow[static_cast<std::size_t>(index)];
    if (cell.epoch != epoch_)
        cell = Cell{-1, -1, -1, -1, epoch_};
    return cell;
}

ThreadId
Checker::decode(std::int64_t thread) const
{
    if (thread < 0)
        return ThreadId{};
    return ThreadId{static_cast<int>(thread / cfg_.blockDim),
                    static_cast<int>(thread % cfg_.blockDim)};
}

std::string
Checker::contextPath() const
{
    std::string path;
    for (const std::string& frame : contextStack_) {
        if (!path.empty())
            path += "/";
        path += frame;
    }
    return path;
}

void
Checker::addFinding(FindingKind kind, const std::string& buffer,
                    std::int64_t element, ThreadId first, ThreadId second,
                    std::string note)
{
    std::string kernel;
    for (const std::string& frame : kernelStack_) {
        if (!kernel.empty())
            kernel += "/";
        kernel += frame;
    }
    if (kernel.empty())
        kernel = "<anonymous>";
    const std::string context = contextPath();

    // Fold repeats of the same defect (same kind, site and buffer) into
    // one finding so a racy element per thread does not flood the report.
    for (Finding& f : report_.findings) {
        if (f.kind == kind && f.kernel == kernel && f.context == context
            && f.launch == launchInKernel_ && f.buffer == buffer) {
            ++f.count;
            return;
        }
    }
    if (static_cast<int>(report_.findings.size())
        >= config_.maxFindings) {
        ++report_.suppressed;
        return;
    }
    Finding f;
    f.kind = kind;
    f.context = context;
    f.kernel = kernel;
    f.launch = launchInKernel_;
    f.gridDim = cfg_.gridDim;
    f.blockDim = cfg_.blockDim;
    f.buffer = buffer;
    f.element = element;
    f.first = first;
    f.second = second;
    f.note = std::move(note);
    report_.findings.push_back(std::move(f));
}

void
Checker::raceOn(FindingKind kind, Region& region, std::int64_t index,
                std::int64_t earlier, std::int64_t current)
{
    addFinding(kind, region.name, index, decode(earlier),
               decode(current), "");
}

void
Checker::onAccess(int region, std::int64_t index, simt::AccessKind kind)
{
    if (passive_)
        return;
    ++report_.stats.accesses;
    Region& r = regions_[static_cast<std::size_t>(region)];
    if (r.retired)
        return;
    // Host-side accesses (outside any launch) are launch boundaries:
    // bounds were already checked by the tracked span, no race state.
    if (!inLaunch_ || current_ < 0)
        return;
    if (r.readonly)
        return;
    const std::int64_t t = current_;
    Cell& cell = cellFor(r, index);
    switch (kind) {
    case simt::AccessKind::Write:
        if (cell.a0 >= 0 && cell.a0 != t)
            raceOn(FindingKind::AtomicMixRace, r, index, cell.a0, t);
        if (cell.w0 >= 0 && cell.w0 != t)
            raceOn(FindingKind::WriteWriteRace, r, index, cell.w0, t);
        else if (cell.r0 >= 0 && cell.r0 != t)
            raceOn(FindingKind::ReadWriteRace, r, index, cell.r0, t);
        else if (cell.r1 >= 0 && cell.r1 != t)
            raceOn(FindingKind::ReadWriteRace, r, index, cell.r1, t);
        if (cell.w0 < 0)
            cell.w0 = t;
        break;
    case simt::AccessKind::Read:
        if (cell.w0 >= 0 && cell.w0 != t)
            raceOn(FindingKind::ReadWriteRace, r, index, cell.w0, t);
        if (cell.a0 >= 0 && cell.a0 != t)
            raceOn(FindingKind::AtomicMixRace, r, index, cell.a0, t);
        // Two distinct reader slots: a later writer can equal at most
        // one of them, so two are enough to always catch read/write.
        if (cell.r0 < 0)
            cell.r0 = t;
        else if (cell.r0 != t && cell.r1 < 0)
            cell.r1 = t;
        break;
    case simt::AccessKind::AtomicRmw:
        if (cell.w0 >= 0 && cell.w0 != t)
            raceOn(FindingKind::AtomicMixRace, r, index, cell.w0, t);
        if (cell.r0 >= 0 && cell.r0 != t)
            raceOn(FindingKind::AtomicMixRace, r, index, cell.r0, t);
        else if (cell.r1 >= 0 && cell.r1 != t)
            raceOn(FindingKind::AtomicMixRace, r, index, cell.r1, t);
        if (cell.a0 < 0)
            cell.a0 = t;
        break;
    }
}

void
Checker::onOutOfBounds(int region, std::int64_t index,
                       simt::AccessKind kind)
{
    if (passive_)
        return;
    ++report_.stats.accesses;
    Region& r = regions_[static_cast<std::size_t>(region)];
    const FindingKind fk = kind == simt::AccessKind::Read
                               ? FindingKind::OobRead
                               : FindingKind::OobWrite;
    std::ostringstream note;
    note << "index " << index << " outside [0, " << r.elems << ") of '"
         << r.name << "' (" << r.elemBytes << "-byte elements)";
    addFinding(fk, r.name, index, decode(current_), ThreadId{},
               note.str());
}

} // namespace bt::check
