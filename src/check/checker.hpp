/**
 * @file
 * bt::check - a compute-sanitizer for the SIMT kernel layer.
 *
 * Checker implements simt::LaunchObserver with a shadow memory: one
 * cell per element of every registered buffer records which SIMT
 * threads of the *current launch* touched it (first writer, two
 * distinct readers, first atomic). From those cells it reports, with
 * kernel name, launch geometry and the offending (blockIdx, threadIdx)
 * pairs:
 *
 *  - intra-launch data races (write/write, read/write, and atomic
 *    operations mixed with plain accesses on the same element by
 *    different threads of one launch; launches are device-wide
 *    barriers, so cross-launch reuse is legal and the shadow state is
 *    re-epoched at every launch);
 *  - out-of-bounds accesses through checked spans/tensor views;
 *  - launch-geometry lint: direct-indexed launches that cannot reach
 *    all n items, and grids with dead blocks beyond what
 *    LaunchConfig::cover would allocate;
 *  - order dependence: every multi-block launch is re-executed under
 *    permuted block schedules (simt::launchShuffled) after restoring
 *    the pre-launch contents of all writable regions, and the outputs
 *    are diffed bit-exactly against the sequential run.
 *
 * See docs/CHECKER.md for how to read a report.
 */

#ifndef BT_CHECK_CHECKER_HPP
#define BT_CHECK_CHECKER_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "simt/instrument.hpp"

namespace bt::check {

enum class FindingKind
{
    WriteWriteRace,
    ReadWriteRace,
    AtomicMixRace, ///< atomic RMW vs plain access on one element
    OobRead,
    OobWrite,
    UnderCoveringLaunch, ///< direct-indexed launch with too few threads
    DeadBlocks,          ///< grid beyond LaunchConfig::cover's need
    OrderDependence,     ///< output changed under a shuffled block order
    ValidationFailure,   ///< app validator rejected the checked run
};

/** Stable machine-readable name ("write_write_race", ...). */
std::string_view findingKindName(FindingKind kind);

/** Decoded SIMT thread identity; block -1 = host-side access. */
struct ThreadId
{
    int block = -1;
    int thread = -1;
};

/** One checker diagnostic; repeats on the same (kernel, launch, kind,
 *  buffer) fold into `count` with the first occurrence's details. */
struct Finding
{
    FindingKind kind{};
    std::string context; ///< app/stage path, e.g. "octree/sort"
    std::string kernel;  ///< innermost kernel scope, e.g. "radix_sort"
    int launch = 0;      ///< launch ordinal within the kernel
    int gridDim = 0;
    int blockDim = 0;
    std::string buffer;      ///< region name
    std::int64_t element = -1; ///< region-relative element index
    ThreadId first;           ///< earlier accessor (races) / accessor
    ThreadId second;          ///< conflicting accessor (races)
    int count = 1;            ///< folded occurrences
    std::string note;

    std::string toString() const;
};

struct CheckStats
{
    int kernels = 0;
    int launches = 0;
    int reruns = 0;
    std::int64_t regions = 0;
    std::int64_t accesses = 0;
};

struct Report
{
    std::vector<Finding> findings;
    CheckStats stats;
    int suppressed = 0; ///< findings dropped past maxFindings

    bool clean() const { return findings.empty() && suppressed == 0; }

    /** One-line human summary. */
    std::string summary() const;

    /** Full human-readable listing. */
    void print(std::ostream& os) const;

    /** Machine-readable report (a JSON object). */
    void writeJson(std::ostream& os) const;

    /** Append another report's findings and stats (multi-app sweeps). */
    void merge(Report other);
};

struct CheckerConfig
{
    int reruns = 2;          ///< shuffled re-executions per launch
    std::uint64_t seed = 0x5eedu; ///< base seed for block permutations
    int maxFindings = 256;   ///< hard cap on stored findings
};

class Checker final : public simt::LaunchObserver
{
  public:
    explicit Checker(CheckerConfig config = {});
    ~Checker() override;

    /** Push/pop a context frame (app or stage name) onto findings. */
    void pushContext(std::string_view name);
    void popContext();

    /** Record an app-level validation failure into the report. */
    void addValidationFailure(std::string_view context,
                              std::string_view message);

    const Report& report() const { return report_; }

    /** Move the report out and reset all checker state. */
    Report takeReport();

    // simt::LaunchObserver
    void beginKernel(std::string_view name) override;
    void endKernel() override;
    int registerRegion(const void* base, std::int64_t elems,
                       std::size_t elem_bytes, std::string_view name,
                       bool readonly) override;
    void retireRegion(int region) override;
    void onLaunchBegin(const simt::LaunchConfig& cfg, std::int64_t items,
                       simt::GeometryStyle style) override;
    void onThreadBegin(const simt::WorkItem& item) override;
    void onLaunchEnd() override;
    int rerunCount() const override;
    std::uint64_t rerunSeed(int rerun) const override;
    void onRerunBegin(int rerun) override;
    void onRerunEnd(int rerun) override;
    void onAccess(int region, std::int64_t index,
                  simt::AccessKind kind) override;
    void onOutOfBounds(int region, std::int64_t index,
                       simt::AccessKind kind) override;

  private:
    /** Per-element shadow cell, valid for the epoch stamped on it. */
    struct Cell
    {
        std::int64_t w0 = -1; ///< first writer thread
        std::int64_t r0 = -1; ///< first reader thread
        std::int64_t r1 = -1; ///< second distinct reader thread
        std::int64_t a0 = -1; ///< first atomic-RMW thread
        std::uint64_t epoch = 0;
    };

    struct Region
    {
        const std::byte* base = nullptr;
        std::int64_t elems = 0;
        std::size_t elemBytes = 0;
        std::string name;
        bool readonly = true;
        bool retired = false;
        std::vector<Cell> shadow;        ///< lazily sized to elems
        std::vector<std::byte> preLaunch;  ///< snapshot for reruns
        std::vector<std::byte> postLaunch; ///< sequential-run output
    };

    Cell& cellFor(Region& region, std::int64_t index);
    ThreadId decode(std::int64_t thread) const;
    std::string contextPath() const;
    void lintGeometry(const simt::LaunchConfig& cfg, std::int64_t items,
                      simt::GeometryStyle style);
    void addFinding(FindingKind kind, const std::string& buffer,
                    std::int64_t element, ThreadId first, ThreadId second,
                    std::string note);
    void raceOn(FindingKind kind, Region& region, std::int64_t index,
                std::int64_t earlier, std::int64_t current);

    CheckerConfig config_;
    Report report_;

    std::vector<Region> regions_;
    std::vector<std::string> contextStack_;
    std::vector<std::string> kernelStack_;
    /// regions_.size() at each beginKernel, to retire scope-local regions
    std::vector<std::size_t> regionMarks_;
    /// per-kernel launch counter (resets at beginKernel)
    int launchInKernel_ = 0;

    simt::LaunchConfig cfg_{};
    std::uint64_t epoch_ = 0;   ///< global launch ordinal
    bool inLaunch_ = false;
    bool passive_ = false;      ///< during shuffled reruns
    std::int64_t current_ = -1; ///< current SIMT thread; -1 = host
};

/** RAII context frame (app or stage name) on a checker. */
class ContextScope
{
  public:
    ContextScope(Checker& checker, std::string_view name)
        : checker_(checker)
    {
        checker_.pushContext(name);
    }
    ~ContextScope() { checker_.popContext(); }
    ContextScope(const ContextScope&) = delete;
    ContextScope& operator=(const ContextScope&) = delete;

  private:
    Checker& checker_;
};

} // namespace bt::check

#endif // BT_CHECK_CHECKER_HPP
