#include "check/fixtures.hpp"

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

namespace bt::check {

namespace {

using simt::GeometryStyle;
using simt::LaunchConfig;
using simt::WorkItem;

bool
hasKind(const Report& report, FindingKind kind)
{
    for (const Finding& f : report.findings)
        if (f.kind == kind)
            return true;
    return false;
}

/** Every thread of every block writes element 0. */
Report
writeWriteRace(const CheckerConfig& config)
{
    Checker checker(config);
    std::vector<std::uint32_t> data(1, 0);
    {
        const simt::KernelScope scope(checker, "fixture.ww_race");
        auto out = simt::tracked(std::span<std::uint32_t>(data), checker,
                                 "out");
        simt::launchChecked(
            LaunchConfig{4, 8},
            [&](const WorkItem& item) {
                out[0] = static_cast<std::uint32_t>(item.globalId());
            },
            checker, 1, GeometryStyle::GridStride);
    }
    return checker.takeReport();
}

/** Thread i writes slot i but reads its neighbour's slot unsynchronized. */
Report
readWriteRace(const CheckerConfig& config)
{
    Checker checker(config);
    constexpr std::int64_t n = 32;
    std::vector<std::uint32_t> data(n);
    std::iota(data.begin(), data.end(), 0u);
    {
        const simt::KernelScope scope(checker, "fixture.rw_race");
        auto buf = simt::tracked(std::span<std::uint32_t>(data), checker,
                                 "buf");
        simt::launchChecked(
            LaunchConfig{4, 8},
            [&](const WorkItem& item) {
                const auto i
                    = static_cast<std::size_t>(item.globalId());
                const std::uint32_t neighbour = buf[(i + 1) % n];
                buf[i] = neighbour + 1;
            },
            checker, n, GeometryStyle::Direct);
    }
    return checker.takeReport();
}

/** Grid-stride loop reads one element past the end. */
Report
oobRead(const CheckerConfig& config)
{
    Checker checker(config);
    constexpr std::int64_t n = 64;
    std::vector<std::uint32_t> in(n, 1);
    std::vector<std::uint32_t> out(n, 0);
    {
        const simt::KernelScope scope(checker, "fixture.oob_read");
        auto tin = simt::tracked(std::span<const std::uint32_t>(in),
                                 checker, "in");
        auto tout = simt::tracked(std::span<std::uint32_t>(out), checker,
                                  "out");
        simt::launchChecked(
            LaunchConfig{2, 8},
            [&](const WorkItem& item) {
                simt::gridStride(item, n, [&](std::int64_t i) {
                    // Off-by-one stencil: i+1 == n falls off the end.
                    const auto s = static_cast<std::size_t>(i);
                    tout[s] = tin[s] + tin[s + 1];
                });
            },
            checker, n, GeometryStyle::GridStride);
    }
    return checker.takeReport();
}

/** Grid-stride loop writes one element past the end. */
Report
oobWrite(const CheckerConfig& config)
{
    Checker checker(config);
    constexpr std::int64_t n = 64;
    std::vector<std::uint32_t> out(n, 0);
    {
        const simt::KernelScope scope(checker, "fixture.oob_write");
        auto tout = simt::tracked(std::span<std::uint32_t>(out), checker,
                                  "out");
        simt::launchChecked(
            LaunchConfig{2, 8},
            [&](const WorkItem& item) {
                simt::gridStride(item, n, [&](std::int64_t i) {
                    // Off-by-one scatter: element n is written.
                    tout[static_cast<std::size_t>(i) + 1]
                        = static_cast<std::uint32_t>(i);
                });
            },
            checker, n, GeometryStyle::GridStride);
    }
    return checker.takeReport();
}

/** Direct-indexed kernel launched with fewer threads than items. */
Report
underCoveringLaunch(const CheckerConfig& config)
{
    Checker checker(config);
    constexpr std::int64_t n = 64;
    std::vector<std::uint32_t> out(n, 0);
    {
        const simt::KernelScope scope(checker, "fixture.under_cover");
        auto tout = simt::tracked(std::span<std::uint32_t>(out), checker,
                                  "out");
        simt::launchChecked(
            LaunchConfig{1, 16}, // 16 threads for 64 items, no stride
            [&](const WorkItem& item) {
                const std::int64_t gid = item.globalId();
                if (gid < n)
                    tout[static_cast<std::size_t>(gid)]
                        = static_cast<std::uint32_t>(gid);
            },
            checker, n, GeometryStyle::Direct);
    }
    return checker.takeReport();
}

/** Grid-stride kernel launched with far more blocks than items need. */
Report
deadBlocks(const CheckerConfig& config)
{
    Checker checker(config);
    constexpr std::int64_t n = 10;
    std::vector<std::uint32_t> out(n, 0);
    {
        const simt::KernelScope scope(checker, "fixture.dead_blocks");
        auto tout = simt::tracked(std::span<std::uint32_t>(out), checker,
                                  "out");
        simt::launchChecked(
            LaunchConfig{16, 64}, // 1024 threads for 10 items
            [&](const WorkItem& item) {
                simt::gridStride(item, n, [&](std::int64_t i) {
                    tout[static_cast<std::size_t>(i)]
                        = static_cast<std::uint32_t>(i);
                });
            },
            checker, n, GeometryStyle::GridStride);
    }
    return checker.takeReport();
}

/**
 * Race-free per-element writes whose *values* depend on block order via
 * an untracked host-side counter - invisible to the shadow tracker,
 * caught only by the shuffled-rerun output diff.
 */
Report
orderDependence(const CheckerConfig& config)
{
    Checker checker(config);
    constexpr std::int64_t n = 32;
    std::vector<std::uint32_t> out(n, 0);
    {
        const simt::KernelScope scope(checker, "fixture.order_dep");
        auto tout = simt::tracked(std::span<std::uint32_t>(out), checker,
                                  "out");
        std::uint32_t ticket = 0;
        simt::launchChecked(
            LaunchConfig{4, 8},
            [&](const WorkItem& item) {
                tout[static_cast<std::size_t>(item.globalId())]
                    = ticket++;
            },
            checker, n, GeometryStyle::Direct);
    }
    return checker.takeReport();
}

FixtureResult
evaluate(std::string name, FindingKind expected, const Report& report)
{
    FixtureResult result;
    result.name = std::move(name);
    result.expected = expected;
    result.flagged = hasKind(report, expected);
    result.totalFindings = report.findings.size();
    return result;
}

} // namespace

std::vector<FixtureResult>
runSeededDefects(const CheckerConfig& config)
{
    std::vector<FixtureResult> results;
    results.push_back(evaluate("ww_race", FindingKind::WriteWriteRace,
                               writeWriteRace(config)));
    results.push_back(evaluate("rw_race", FindingKind::ReadWriteRace,
                               readWriteRace(config)));
    results.push_back(
        evaluate("oob_read", FindingKind::OobRead, oobRead(config)));
    results.push_back(
        evaluate("oob_write", FindingKind::OobWrite, oobWrite(config)));
    results.push_back(evaluate("under_cover",
                               FindingKind::UnderCoveringLaunch,
                               underCoveringLaunch(config)));
    results.push_back(evaluate("dead_blocks", FindingKind::DeadBlocks,
                               deadBlocks(config)));
    results.push_back(evaluate("order_dep", FindingKind::OrderDependence,
                               orderDependence(config)));
    return results;
}

} // namespace bt::check
