/**
 * @file
 * Seeded-defect fixtures for bt::check: small kernels that each contain
 * exactly one deliberate bug (a write/write race, a read/write race, an
 * OOB read, an OOB write, an under-covering launch, dead blocks, and a
 * block-order dependence). The checker must flag every one of them -
 * this is the negative control proving the sanitizer actually fires,
 * run by tests and by `bt_explorer --check-fixtures` in CI.
 */

#ifndef BT_CHECK_FIXTURES_HPP
#define BT_CHECK_FIXTURES_HPP

#include <string>
#include <vector>

#include "check/checker.hpp"

namespace bt::check {

struct FixtureResult
{
    std::string name;
    FindingKind expected{};
    bool flagged = false;         ///< expected kind was reported
    std::size_t totalFindings = 0;
};

/**
 * Run every seeded-defect kernel under a fresh Checker; each result
 * says whether its expected finding kind was reported.
 */
std::vector<FixtureResult>
runSeededDefects(const CheckerConfig& config = {});

} // namespace bt::check

#endif // BT_CHECK_FIXTURES_HPP
