#include "solver/model.hpp"

#include <utility>

#include "common/logging.hpp"

namespace bt::solver {

Var
Model::newVar(std::string name)
{
    if (name.empty())
        name = "v" + std::to_string(names.size());
    names.push_back(std::move(name));
    return static_cast<Var>(names.size() - 1);
}

const std::string&
Model::varName(Var v) const
{
    checkVar(v);
    return names[static_cast<std::size_t>(v)];
}

void
Model::checkVar(Var v) const
{
    BT_ASSERT(v >= 0 && v < numVars(), "variable ", v, " out of range");
}

void
Model::addClause(std::vector<Lit> lits)
{
    for (const auto& l : lits)
        checkLit(l);
    cls.push_back(std::move(lits));
}

void
Model::addExactlyOne(std::vector<Var> vars)
{
    BT_ASSERT(!vars.empty(), "exactly-one over empty set is unsat");
    for (Var v : vars)
        checkVar(v);
    exact1.push_back(std::move(vars));
}

void
Model::addAtMostOne(std::vector<Var> vars)
{
    for (Var v : vars)
        checkVar(v);
    atmost1.push_back(std::move(vars));
}

void
Model::addImplication(std::vector<Lit> antecedents, Lit consequent)
{
    // (a1 & a2 & ...) -> c  ==  (!a1 | !a2 | ... | c)
    std::vector<Lit> clause;
    clause.reserve(antecedents.size() + 1);
    for (const auto& a : antecedents)
        clause.push_back(Lit{a.var, !a.positive});
    clause.push_back(consequent);
    addClause(std::move(clause));
}

void
Model::addLinearLe(std::vector<PbTerm> terms, std::int64_t bound)
{
    for (const auto& t : terms) {
        checkLit(t.lit);
        BT_ASSERT(t.coeff >= 0, "linear constraints need coeffs >= 0");
    }
    linles.push_back(LinearLe{std::move(terms), bound});
}

void
Model::addLinearGe(std::vector<PbTerm> terms, std::int64_t bound)
{
    // sum_i c_i l_i >= b  <=>  sum_i c_i (1 - l_i) <= total - b, i.e. a
    // LinearLe over the complemented literals.
    std::int64_t total = 0;
    for (const auto& t : terms) {
        checkLit(t.lit);
        BT_ASSERT(t.coeff >= 0, "linear constraints need coeffs >= 0");
        total += t.coeff;
    }
    std::vector<PbTerm> comp;
    comp.reserve(terms.size());
    for (const auto& t : terms)
        comp.push_back(PbTerm{Lit{t.lit.var, !t.lit.positive}, t.coeff});
    linles.push_back(LinearLe{std::move(comp), total - bound});
}

void
Model::addUnit(Lit lit)
{
    addClause({lit});
}

} // namespace bt::solver
