/**
 * @file
 * Exact DPLL-style search over a Model: unit propagation for clauses,
 * dedicated propagators for exactly-one / at-most-one groups and
 * pseudo-boolean sums, and complete enumeration with callback objectives.
 *
 * The search keeps a single assignment with an undo trail instead of
 * copying state per branch, and propagation is incremental: each
 * variable carries an occurrence list, and counters per constraint
 * (satisfied / unset literals, accumulated pseudo-boolean lower bound)
 * are updated as assignments are processed off the trail. All the
 * propagation rules are monotone - they only ever add forced
 * assignments - so their fixpoint closure is unique and this reaches
 * exactly the same conclusions (conflict, forced values, branch
 * variable) as a naive whole-model re-scan, node for node. The planner
 * leans on that: it re-enumerates the schedule space once per
 * candidate, so per-node propagation cost is the term that dominates
 * end-to-end planning latency.
 *
 * The schedule-optimization instances (<= ~40 variables, heavily
 * constrained by contiguity) solve in well under a millisecond; the paper
 * reports < 50 ms per Z3 invocation on comparable instances, so this is a
 * faithful - if modest - substitute.
 */

#ifndef BT_SOLVER_SOLVER_HPP
#define BT_SOLVER_SOLVER_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "solver/model.hpp"

namespace bt::solver {

/** A complete assignment of every model variable. */
class Assignment
{
  public:
    explicit Assignment(std::vector<bool> vals) : values(std::move(vals)) {}

    /** Truth value of @p v. */
    bool value(Var v) const { return values[static_cast<std::size_t>(v)]; }

    /** Truth value of @p l. */
    bool
    value(const Lit& l) const
    {
        return l.positive ? value(l.var) : !value(l.var);
    }

    std::size_t size() const { return values.size(); }

  private:
    std::vector<bool> values;
};

/**
 * Exact solver over a Model snapshot. The model is held by reference;
 * callers may add constraints (e.g. blocking clauses) between calls, and
 * the next solve sees them. (Constraints added *during* a running solve -
 * from inside a visitor - are picked up at the next top-level call, not
 * mid-search.)
 */
class Solver
{
  public:
    /** Score a complete assignment; lower is better. */
    using Objective = std::function<double(const Assignment&)>;

    /** Visit a solution; return false to stop the search. */
    using Visitor = std::function<bool(const Assignment&)>;

    explicit Solver(const Model& model_) : model(model_) {}

    /** Find any satisfying assignment, or nullopt if unsatisfiable. */
    std::optional<Assignment> solve();

    /**
     * Find the satisfying assignment minimizing @p objective (exact, by
     * complete enumeration of the propagation-pruned space).
     */
    std::optional<Assignment> minimize(const Objective& objective);

    /** Enumerate all solutions through @p visit (stops when it refuses). */
    void forEachSolution(const Visitor& visit);

    /** Count all satisfying assignments. */
    std::uint64_t countSolutions();

    /** Search-tree nodes expanded by the most recent call. */
    std::uint64_t nodesExplored() const { return nodes; }

  private:
    enum class Tri : std::int8_t { False = 0, True = 1, Unset = -1 };

    /// Constraint kinds a variable occurrence can point into.
    enum class Kind : std::uint8_t { Clause, Group, Linear };

    /// One occurrence of a variable inside a constraint row.
    struct Occ
    {
        std::int64_t coeff;  ///< pseudo-boolean coefficient (Linear only)
        std::int32_t idx;    ///< row in the per-kind flattened arrays
        Kind kind;
        bool positive;       ///< literal polarity (Clause / Linear)
    };

    /// Flatten the model into offset-indexed arrays plus per-variable
    /// occurrence lists. Runs once per top-level call, so blocking
    /// clauses appended between calls are included.
    void compile();
    /// Reset assignment, trail, and constraint counters to all-unset.
    void resetState();
    /// Apply the rules that fire on an empty assignment (unit clauses,
    /// singleton exactly-one groups, oversized pseudo-boolean terms).
    void levelZeroScan();
    /// Record var = val on the trail (or flag a conflict if it is
    /// already assigned the other way). Consequences are deferred until
    /// the entry is processed off the trail.
    void enqueue(Var v, bool val);
    /// Update the counters of every constraint containing @p v and fire
    /// any newly forced assignments or conflicts.
    void applyAssignment(Var v);
    /// Mirror of applyAssignment, counters only (used when undoing).
    void reverseAssignment(Var v);
    /// Drain the trail to fixpoint; false on conflict.
    bool propagate();
    /// Unwind the trail (and counters) back to @p mark.
    void undoTo(std::size_t mark);
    bool search(const Visitor& visit);
    /// compile + reset + level-zero rules, shared by all entry points.
    void beginSearch();

    const Model& model;
    std::uint64_t nodes = 0;

    // Compiled model: per-kind rows flattened into (offsets, payload)
    // pairs for locality, plus per-variable occurrence lists.
    std::vector<Lit> clauseLits;
    std::vector<std::int32_t> clauseOff;
    std::vector<Var> groupVars;
    std::vector<std::int32_t> groupOff;
    std::vector<std::uint8_t> groupExactly;
    std::vector<PbTerm> linTerms;
    std::vector<std::int32_t> linOff;
    std::vector<std::int64_t> linBound;
    std::vector<Occ> occs;
    std::vector<std::int32_t> occOff;

    // Search state. Counters lag pending (enqueued but unprocessed)
    // assignments, so "unset" counts mean "not yet processed"; rules
    // that scan for the remaining unset literal check live values and
    // skip pending vars, whose own processing re-fires the rule.
    std::vector<Tri> value;
    std::vector<Var> trail;
    std::size_t qhead = 0;
    bool conflict = false;
    std::vector<std::int32_t> clauseTrue;
    std::vector<std::int32_t> clauseUnset;
    std::vector<std::int32_t> groupTrue;
    std::vector<std::int32_t> groupUnset;
    std::vector<std::int64_t> linLower;
};

} // namespace bt::solver

#endif // BT_SOLVER_SOLVER_HPP
