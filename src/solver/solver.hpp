/**
 * @file
 * Exact DPLL-style search over a Model: unit propagation for clauses,
 * dedicated propagators for exactly-one / at-most-one groups and
 * pseudo-boolean sums, and complete enumeration with callback objectives.
 *
 * The schedule-optimization instances (<= ~40 variables, heavily
 * constrained by contiguity) solve in well under a millisecond; the paper
 * reports < 50 ms per Z3 invocation on comparable instances, so this is a
 * faithful - if modest - substitute.
 */

#ifndef BT_SOLVER_SOLVER_HPP
#define BT_SOLVER_SOLVER_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "solver/model.hpp"

namespace bt::solver {

/** A complete assignment of every model variable. */
class Assignment
{
  public:
    explicit Assignment(std::vector<bool> vals) : values(std::move(vals)) {}

    /** Truth value of @p v. */
    bool value(Var v) const { return values[static_cast<std::size_t>(v)]; }

    /** Truth value of @p l. */
    bool
    value(const Lit& l) const
    {
        return l.positive ? value(l.var) : !value(l.var);
    }

    std::size_t size() const { return values.size(); }

  private:
    std::vector<bool> values;
};

/**
 * Exact solver over a Model snapshot. The model is held by reference;
 * callers may add constraints (e.g. blocking clauses) between calls, and
 * the next solve sees them.
 */
class Solver
{
  public:
    /** Score a complete assignment; lower is better. */
    using Objective = std::function<double(const Assignment&)>;

    /** Visit a solution; return false to stop the search. */
    using Visitor = std::function<bool(const Assignment&)>;

    explicit Solver(const Model& model_) : model(model_) {}

    /** Find any satisfying assignment, or nullopt if unsatisfiable. */
    std::optional<Assignment> solve();

    /**
     * Find the satisfying assignment minimizing @p objective (exact, by
     * complete enumeration of the propagation-pruned space).
     */
    std::optional<Assignment> minimize(const Objective& objective);

    /** Enumerate all solutions through @p visit (stops when it refuses). */
    void forEachSolution(const Visitor& visit);

    /** Count all satisfying assignments. */
    std::uint64_t countSolutions();

    /** Search-tree nodes expanded by the most recent call. */
    std::uint64_t nodesExplored() const { return nodes; }

  private:
    enum class Tri : std::int8_t { False = 0, True = 1, Unset = -1 };

    struct SearchState
    {
        std::vector<Tri> value;
    };

    /// Result of one propagation pass.
    enum class Prop { Conflict, Fixpoint };

    Prop propagate(SearchState& st) const;
    bool search(SearchState& st, const Visitor& visit);
    Tri litValue(const SearchState& st, const Lit& l) const;

    const Model& model;
    std::uint64_t nodes = 0;
};

} // namespace bt::solver

#endif // BT_SOLVER_SOLVER_HPP
