/**
 * @file
 * Declarative 0/1 constraint model, the input language of the solver.
 *
 * This module replaces the paper's use of Z3's Python API (Sec. 3.3): the
 * schedule formulation needs boolean decision variables x_{i,c}, clauses,
 * exactly-one groups (C1), implications (C2), pseudo-boolean sums
 * (C3a/C3b, C5), and min/max objectives (O1). All of that is expressible
 * here, and the solver is exact, so it returns the same optima Z3 would.
 */

#ifndef BT_SOLVER_MODEL_HPP
#define BT_SOLVER_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace bt::solver {

/** Index of a boolean decision variable. */
using Var = int;

/** A possibly negated variable occurrence. */
struct Lit
{
    Var var = -1;
    bool positive = true;
};

/** Positive literal of @p v. */
inline Lit pos(Var v) { return Lit{v, true}; }
/** Negative literal of @p v. */
inline Lit neg(Var v) { return Lit{v, false}; }

/** One weighted term of a pseudo-boolean sum over a literal. */
struct PbTerm
{
    Lit lit;
    std::int64_t coeff = 0; ///< must be nonnegative
};

/**
 * A conjunction of constraint kinds over boolean variables. Constraints
 * can be appended at any time; solvers read the model on each solve call,
 * which is how the optimizer adds blocking clauses between iterations.
 */
class Model
{
  public:
    /** Create a fresh variable. @p name is for diagnostics only. */
    Var newVar(std::string name = "");

    int numVars() const { return static_cast<int>(names.size()); }

    /** Diagnostic name of @p v. */
    const std::string& varName(Var v) const;

    /** At least one of @p lits must hold. Empty clause = unsatisfiable. */
    void addClause(std::vector<Lit> lits);

    /** Exactly one of @p vars must be true. */
    void addExactlyOne(std::vector<Var> vars);

    /** At most one of @p vars may be true. */
    void addAtMostOne(std::vector<Var> vars);

    /** (AND of @p antecedents) implies @p consequent. */
    void addImplication(std::vector<Lit> antecedents, Lit consequent);

    /** Sum of coeff*lit over @p terms <= @p bound (coeffs >= 0). */
    void addLinearLe(std::vector<PbTerm> terms, std::int64_t bound);

    /**
     * Sum of coeff*lit over @p terms >= @p bound. Stored as the
     * equivalent LinearLe over complemented literals.
     */
    void addLinearGe(std::vector<PbTerm> terms, std::int64_t bound);

    /** Force @p lit to hold. */
    void addUnit(Lit lit);

    // Read access for the solver.
    struct LinearLe
    {
        std::vector<PbTerm> terms;
        std::int64_t bound;
    };

    const std::vector<std::vector<Lit>>& clauses() const { return cls; }
    const std::vector<std::vector<Var>>& exactlyOnes() const
    {
        return exact1;
    }
    const std::vector<std::vector<Var>>& atMostOnes() const
    {
        return atmost1;
    }
    const std::vector<LinearLe>& linearLes() const { return linles; }

  private:
    void checkVar(Var v) const;
    void checkLit(const Lit& l) const { checkVar(l.var); }

    std::vector<std::string> names;
    std::vector<std::vector<Lit>> cls;
    std::vector<std::vector<Var>> exact1;
    std::vector<std::vector<Var>> atmost1;
    std::vector<LinearLe> linles;
};

} // namespace bt::solver

#endif // BT_SOLVER_MODEL_HPP
