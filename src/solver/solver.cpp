#include "solver/solver.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace bt::solver {

Solver::Tri
Solver::litValue(const SearchState& st, const Lit& l) const
{
    const Tri v = st.value[static_cast<std::size_t>(l.var)];
    if (v == Tri::Unset)
        return Tri::Unset;
    const bool b = (v == Tri::True);
    return (l.positive ? b : !b) ? Tri::True : Tri::False;
}

Solver::Prop
Solver::propagate(SearchState& st) const
{
    // Naive fixpoint iteration over all constraints. Instance sizes in
    // this codebase are tiny, so simplicity beats watched literals.
    bool changed = true;
    auto assign = [&](const Lit& l) -> bool {
        const Tri cur = litValue(st, l);
        if (cur == Tri::False)
            return false;
        if (cur == Tri::Unset) {
            st.value[static_cast<std::size_t>(l.var)]
                = l.positive ? Tri::True : Tri::False;
            changed = true;
        }
        return true;
    };

    while (changed) {
        changed = false;

        for (const auto& clause : model.clauses()) {
            int unset = 0;
            const Lit* last_unset = nullptr;
            bool satisfied = false;
            for (const auto& l : clause) {
                const Tri v = litValue(st, l);
                if (v == Tri::True) {
                    satisfied = true;
                    break;
                }
                if (v == Tri::Unset) {
                    ++unset;
                    last_unset = &l;
                }
            }
            if (satisfied)
                continue;
            if (unset == 0)
                return Prop::Conflict;
            if (unset == 1 && !assign(*last_unset))
                return Prop::Conflict;
        }

        auto amoPass = [&](const std::vector<Var>& vars,
                           bool exactly) -> bool {
            int trues = 0;
            int unset = 0;
            for (Var v : vars) {
                const Tri t = st.value[static_cast<std::size_t>(v)];
                if (t == Tri::True)
                    ++trues;
                else if (t == Tri::Unset)
                    ++unset;
            }
            if (trues > 1)
                return false;
            if (trues == 1) {
                // Force all remaining to false.
                for (Var v : vars) {
                    auto& t = st.value[static_cast<std::size_t>(v)];
                    if (t == Tri::Unset) {
                        t = Tri::False;
                        changed = true;
                    }
                }
            } else if (exactly) {
                if (unset == 0)
                    return false; // no true possible
                if (unset == 1) {
                    for (Var v : vars) {
                        auto& t = st.value[static_cast<std::size_t>(v)];
                        if (t == Tri::Unset) {
                            t = Tri::True;
                            changed = true;
                        }
                    }
                }
            }
            return true;
        };

        for (const auto& group : model.exactlyOnes())
            if (!amoPass(group, true))
                return Prop::Conflict;
        for (const auto& group : model.atMostOnes())
            if (!amoPass(group, false))
                return Prop::Conflict;

        for (const auto& le : model.linearLes()) {
            // Minimum achievable sum = sum over terms already true.
            std::int64_t lower = 0;
            for (const auto& t : le.terms)
                if (litValue(st, t.lit) == Tri::True)
                    lower += t.coeff;
            if (lower > le.bound)
                return Prop::Conflict;
            // Any unset term whose coefficient would overflow the bound
            // must be false.
            for (const auto& t : le.terms) {
                if (litValue(st, t.lit) == Tri::Unset
                    && lower + t.coeff > le.bound) {
                    if (!assign(Lit{t.lit.var, !t.lit.positive}))
                        return Prop::Conflict;
                }
            }
        }
    }
    return Prop::Fixpoint;
}

bool
Solver::search(SearchState& st, const Visitor& visit)
{
    ++nodes;
    if (propagate(st) == Prop::Conflict)
        return true; // keep searching elsewhere

    // Find the first unassigned variable.
    Var branch = -1;
    for (Var v = 0; v < model.numVars(); ++v) {
        if (st.value[static_cast<std::size_t>(v)] == Tri::Unset) {
            branch = v;
            break;
        }
    }

    if (branch < 0) {
        // Complete assignment: report it.
        std::vector<bool> vals(st.value.size());
        for (std::size_t i = 0; i < st.value.size(); ++i)
            vals[i] = (st.value[i] == Tri::True);
        return visit(Assignment(std::move(vals)));
    }

    for (const Tri choice : {Tri::True, Tri::False}) {
        SearchState child = st;
        child.value[static_cast<std::size_t>(branch)] = choice;
        if (!search(child, visit))
            return false;
    }
    return true;
}

std::optional<Assignment>
Solver::solve()
{
    nodes = 0;
    std::optional<Assignment> found;
    SearchState st;
    st.value.assign(static_cast<std::size_t>(model.numVars()),
                    Tri::Unset);
    search(st, [&](const Assignment& a) {
        found = a;
        return false; // stop at first solution
    });
    return found;
}

std::optional<Assignment>
Solver::minimize(const Objective& objective)
{
    BT_ASSERT(objective, "minimize needs an objective");
    nodes = 0;
    std::optional<Assignment> best;
    double best_score = std::numeric_limits<double>::infinity();
    SearchState st;
    st.value.assign(static_cast<std::size_t>(model.numVars()),
                    Tri::Unset);
    search(st, [&](const Assignment& a) {
        const double score = objective(a);
        if (score < best_score) {
            best_score = score;
            best = a;
        }
        return true; // exhaustive
    });
    return best;
}

void
Solver::forEachSolution(const Visitor& visit)
{
    BT_ASSERT(visit, "forEachSolution needs a visitor");
    nodes = 0;
    SearchState st;
    st.value.assign(static_cast<std::size_t>(model.numVars()),
                    Tri::Unset);
    search(st, visit);
}

std::uint64_t
Solver::countSolutions()
{
    std::uint64_t count = 0;
    forEachSolution([&](const Assignment&) {
        ++count;
        return true;
    });
    return count;
}

} // namespace bt::solver
