#include "solver/solver.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace bt::solver {

void
Solver::compile()
{
    const std::size_t nv = static_cast<std::size_t>(model.numVars());

    clauseLits.clear();
    clauseOff.clear();
    clauseOff.push_back(0);
    for (const auto& clause : model.clauses()) {
        clauseLits.insert(clauseLits.end(), clause.begin(), clause.end());
        clauseOff.push_back(static_cast<std::int32_t>(clauseLits.size()));
    }

    groupVars.clear();
    groupOff.clear();
    groupExactly.clear();
    groupOff.push_back(0);
    for (const auto& group : model.exactlyOnes()) {
        groupVars.insert(groupVars.end(), group.begin(), group.end());
        groupOff.push_back(static_cast<std::int32_t>(groupVars.size()));
        groupExactly.push_back(1);
    }
    for (const auto& group : model.atMostOnes()) {
        groupVars.insert(groupVars.end(), group.begin(), group.end());
        groupOff.push_back(static_cast<std::int32_t>(groupVars.size()));
        groupExactly.push_back(0);
    }

    linTerms.clear();
    linOff.clear();
    linBound.clear();
    linOff.push_back(0);
    for (const auto& le : model.linearLes()) {
        linTerms.insert(linTerms.end(), le.terms.begin(), le.terms.end());
        linOff.push_back(static_cast<std::int32_t>(linTerms.size()));
        linBound.push_back(le.bound);
    }

    // Occurrence lists: count per variable, prefix-sum, then fill.
    occOff.assign(nv + 1, 0);
    for (const auto& l : clauseLits)
        ++occOff[static_cast<std::size_t>(l.var) + 1];
    for (Var v : groupVars)
        ++occOff[static_cast<std::size_t>(v) + 1];
    for (const auto& t : linTerms)
        ++occOff[static_cast<std::size_t>(t.lit.var) + 1];
    for (std::size_t v = 0; v < nv; ++v)
        occOff[v + 1] += occOff[v];

    occs.resize(static_cast<std::size_t>(occOff[nv]));
    std::vector<std::int32_t> cursor(occOff.begin(), occOff.end() - 1);
    for (std::size_t c = 0; c + 1 < clauseOff.size(); ++c) {
        for (std::int32_t i = clauseOff[c]; i < clauseOff[c + 1]; ++i) {
            const Lit& l = clauseLits[static_cast<std::size_t>(i)];
            occs[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(l.var)]++)]
                = Occ{0, static_cast<std::int32_t>(c), Kind::Clause,
                      l.positive};
        }
    }
    for (std::size_t g = 0; g + 1 < groupOff.size(); ++g) {
        for (std::int32_t i = groupOff[g]; i < groupOff[g + 1]; ++i) {
            const Var v = groupVars[static_cast<std::size_t>(i)];
            occs[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(v)]++)]
                = Occ{0, static_cast<std::int32_t>(g), Kind::Group, true};
        }
    }
    for (std::size_t l = 0; l + 1 < linOff.size(); ++l) {
        for (std::int32_t i = linOff[l]; i < linOff[l + 1]; ++i) {
            const PbTerm& t = linTerms[static_cast<std::size_t>(i)];
            occs[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(t.lit.var)]++)]
                = Occ{t.coeff, static_cast<std::int32_t>(l), Kind::Linear,
                      t.lit.positive};
        }
    }
}

void
Solver::resetState()
{
    value.assign(static_cast<std::size_t>(model.numVars()), Tri::Unset);
    trail.clear();
    qhead = 0;
    conflict = false;

    const std::size_t num_clauses = clauseOff.size() - 1;
    clauseTrue.assign(num_clauses, 0);
    clauseUnset.resize(num_clauses);
    for (std::size_t c = 0; c < num_clauses; ++c)
        clauseUnset[c] = clauseOff[c + 1] - clauseOff[c];

    const std::size_t num_groups = groupOff.size() - 1;
    groupTrue.assign(num_groups, 0);
    groupUnset.resize(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g)
        groupUnset[g] = groupOff[g + 1] - groupOff[g];

    linLower.assign(linBound.size(), 0);
}

void
Solver::levelZeroScan()
{
    for (std::size_t c = 0; c + 1 < clauseOff.size(); ++c) {
        const std::int32_t len = clauseOff[c + 1] - clauseOff[c];
        if (len == 0)
            conflict = true;
        else if (len == 1) {
            const Lit& l
                = clauseLits[static_cast<std::size_t>(clauseOff[c])];
            enqueue(l.var, l.positive);
        }
    }
    for (std::size_t g = 0; g + 1 < groupOff.size(); ++g) {
        if (!groupExactly[g])
            continue;
        const std::int32_t len = groupOff[g + 1] - groupOff[g];
        if (len == 0)
            conflict = true;
        else if (len == 1)
            enqueue(groupVars[static_cast<std::size_t>(groupOff[g])],
                    true);
    }
    for (std::size_t l = 0; l + 1 < linOff.size(); ++l) {
        const std::int64_t bound = linBound[l];
        if (bound < 0)
            conflict = true;
        for (std::int32_t i = linOff[l]; i < linOff[l + 1]; ++i) {
            const PbTerm& t = linTerms[static_cast<std::size_t>(i)];
            if (t.coeff > bound)
                enqueue(t.lit.var, !t.lit.positive);
        }
    }
}

void
Solver::enqueue(Var v, bool val)
{
    Tri& t = value[static_cast<std::size_t>(v)];
    if (t != Tri::Unset) {
        if ((t == Tri::True) != val)
            conflict = true;
        return;
    }
    t = val ? Tri::True : Tri::False;
    trail.push_back(v);
}

void
Solver::applyAssignment(Var v)
{
    const bool val = (value[static_cast<std::size_t>(v)] == Tri::True);
    const std::int32_t begin = occOff[static_cast<std::size_t>(v)];
    const std::int32_t end = occOff[static_cast<std::size_t>(v) + 1];
    // Even after a conflict is flagged, counter updates run to
    // completion so undoTo can reverse them symmetrically.
    for (std::int32_t o = begin; o < end; ++o) {
        const Occ& occ = occs[static_cast<std::size_t>(o)];
        const std::size_t idx = static_cast<std::size_t>(occ.idx);
        switch (occ.kind) {
        case Kind::Clause:
            if (occ.positive == val) {
                ++clauseTrue[idx];
            } else {
                --clauseUnset[idx];
                if (clauseTrue[idx] == 0) {
                    if (clauseUnset[idx] == 0) {
                        conflict = true;
                    } else if (clauseUnset[idx] == 1) {
                        // Unit: force the remaining literal (a pending
                        // assignment may already cover it; skip then).
                        for (std::int32_t i = clauseOff[idx];
                             i < clauseOff[idx + 1]; ++i) {
                            const Lit& l
                                = clauseLits[static_cast<std::size_t>(i)];
                            if (value[static_cast<std::size_t>(l.var)]
                                == Tri::Unset) {
                                enqueue(l.var, l.positive);
                                break;
                            }
                        }
                    }
                }
            }
            break;
        case Kind::Group:
            --groupUnset[idx];
            if (val) {
                if (++groupTrue[idx] > 1) {
                    conflict = true;
                } else {
                    // First true: the rest of the group must be false.
                    for (std::int32_t i = groupOff[idx];
                         i < groupOff[idx + 1]; ++i) {
                        const Var u
                            = groupVars[static_cast<std::size_t>(i)];
                        if (value[static_cast<std::size_t>(u)]
                            == Tri::Unset)
                            enqueue(u, false);
                    }
                }
            } else if (groupExactly[idx] && groupTrue[idx] == 0) {
                if (groupUnset[idx] == 0) {
                    conflict = true;
                } else if (groupUnset[idx] == 1) {
                    for (std::int32_t i = groupOff[idx];
                         i < groupOff[idx + 1]; ++i) {
                        const Var u
                            = groupVars[static_cast<std::size_t>(i)];
                        if (value[static_cast<std::size_t>(u)]
                            == Tri::Unset) {
                            enqueue(u, true);
                            break;
                        }
                    }
                }
            }
            break;
        case Kind::Linear:
            if (occ.positive == val) {
                const std::int64_t lower = (linLower[idx] += occ.coeff);
                const std::int64_t bound = linBound[idx];
                if (lower > bound) {
                    conflict = true;
                } else {
                    // Any unset term that would overflow the bound must
                    // be false.
                    for (std::int32_t i = linOff[idx];
                         i < linOff[idx + 1]; ++i) {
                        const PbTerm& t
                            = linTerms[static_cast<std::size_t>(i)];
                        if (value[static_cast<std::size_t>(t.lit.var)]
                                == Tri::Unset
                            && lower + t.coeff > bound)
                            enqueue(t.lit.var, !t.lit.positive);
                    }
                }
            }
            break;
        }
    }
}

void
Solver::reverseAssignment(Var v)
{
    const bool val = (value[static_cast<std::size_t>(v)] == Tri::True);
    const std::int32_t begin = occOff[static_cast<std::size_t>(v)];
    const std::int32_t end = occOff[static_cast<std::size_t>(v) + 1];
    for (std::int32_t o = begin; o < end; ++o) {
        const Occ& occ = occs[static_cast<std::size_t>(o)];
        const std::size_t idx = static_cast<std::size_t>(occ.idx);
        switch (occ.kind) {
        case Kind::Clause:
            if (occ.positive == val)
                --clauseTrue[idx];
            else
                ++clauseUnset[idx];
            break;
        case Kind::Group:
            ++groupUnset[idx];
            if (val)
                --groupTrue[idx];
            break;
        case Kind::Linear:
            if (occ.positive == val)
                linLower[idx] -= occ.coeff;
            break;
        }
    }
}

bool
Solver::propagate()
{
    while (!conflict && qhead < trail.size())
        applyAssignment(trail[qhead++]);
    return !conflict;
}

void
Solver::undoTo(std::size_t mark)
{
    for (std::size_t i = trail.size(); i-- > mark;) {
        const Var v = trail[i];
        if (i < qhead)
            reverseAssignment(v);
        value[static_cast<std::size_t>(v)] = Tri::Unset;
    }
    trail.resize(mark);
    qhead = mark;
    conflict = false;
}

bool
Solver::search(const Visitor& visit)
{
    ++nodes;
    if (!propagate())
        return true; // conflict: keep searching elsewhere

    // Find the first unassigned variable.
    Var branch = -1;
    const Var nv = model.numVars();
    for (Var v = 0; v < nv; ++v) {
        if (value[static_cast<std::size_t>(v)] == Tri::Unset) {
            branch = v;
            break;
        }
    }

    if (branch < 0) {
        // Complete assignment: report it.
        std::vector<bool> vals(value.size());
        for (std::size_t i = 0; i < value.size(); ++i)
            vals[i] = (value[i] == Tri::True);
        return visit(Assignment(std::move(vals)));
    }

    for (const bool choice : {true, false}) {
        const std::size_t mark = trail.size();
        enqueue(branch, choice);
        const bool keep_going = search(visit);
        undoTo(mark);
        if (!keep_going)
            return false;
    }
    return true;
}

void
Solver::beginSearch()
{
    nodes = 0;
    compile();
    resetState();
    levelZeroScan();
}

std::optional<Assignment>
Solver::solve()
{
    beginSearch();
    std::optional<Assignment> found;
    search([&](const Assignment& a) {
        found = a;
        return false; // stop at first solution
    });
    return found;
}

std::optional<Assignment>
Solver::minimize(const Objective& objective)
{
    BT_ASSERT(objective, "minimize needs an objective");
    beginSearch();
    std::optional<Assignment> best;
    double best_score = std::numeric_limits<double>::infinity();
    search([&](const Assignment& a) {
        const double score = objective(a);
        if (score < best_score) {
            best_score = score;
            best = a;
        }
        return true; // exhaustive
    });
    return best;
}

void
Solver::forEachSolution(const Visitor& visit)
{
    BT_ASSERT(visit, "forEachSolution needs a visitor");
    beginSearch();
    search(visit);
}

std::uint64_t
Solver::countSolutions()
{
    std::uint64_t count = 0;
    forEachSolution([&](const Assignment&) {
        ++count;
        return true;
    });
    return count;
}

} // namespace bt::solver
