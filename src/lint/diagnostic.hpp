/**
 * @file
 * Typed diagnostics of bt::lint - the static analyzer's counterpart to
 * bt::check's Finding/Report pair.
 *
 * A Diagnostic names one statically-detected defect: its kind (a closed
 * enum with stable machine-readable names), a severity, the subject it
 * was found in (application, schedule, spec, run config, fault plan or
 * tenant), and the ids needed to locate it (stage, chunk, PU, buffer).
 * Diagnostics are deterministic: every pass visits its inputs in
 * declaration order and never hashes, so repeated runs - from any
 * number of threads - produce byte-identical reports.
 *
 * Report mirrors bt::check::Report (clean/summary/print/writeJson/
 * merge), so sweep drivers like bt_explorer can treat static and
 * dynamic analysis uniformly.
 */

#ifndef BT_LINT_DIAGNOSTIC_HPP
#define BT_LINT_DIAGNOSTIC_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace bt::lint {

/** Every defect class the analyzer can report. */
enum class DiagnosticKind
{
    // Pass 1: graph/buffer analysis over declared stage IO.
    UseBeforeDef,     ///< stage reads a buffer no earlier stage defines
    DeadOutput,       ///< buffer written but never consumed
    SizeMismatch,     ///< producer/consumer disagree on buffer bytes
    AliasHazard,      ///< cross-task shared buffer written by a stage
    UnknownBuffer,    ///< stage IO names an undeclared buffer
    NoIoDeclarations, ///< app has no static IO metadata (pass skipped)

    // Pass 2: schedule validity.
    ScheduleCoverage,   ///< stages uncovered/overlapping/non-contiguous
    UnknownPu,          ///< chunk assigned to a PU absent from the SoC
    DisallowedPu,       ///< chunk assigned outside allowedPus/lease
    ExactSpaceExceeded, ///< exact engine past exactSpaceLimit

    // Pass 3: handoff/deadlock lint.
    QueueUndersized,    ///< bounded handoff queue can wedge the pipeline
    PipelineUnderfilled, ///< fewer in-flight buffers than chunks
    WarmupExceedsTasks, ///< steady-state window is empty

    // Spec/run-config scalar ranges.
    SpecRange, ///< planner-spec or run-config knob out of range

    // Pass 4: fault-plan consistency.
    FaultRange,           ///< fault-plan field out of range
    DropoutStarvation,    ///< dropouts leave zero capable PUs
    WatchdogTooTight,     ///< timeout factor <= 1 cancels clean runs
    RetryFutile,          ///< retries 0 and failover off under faults
    OverlappingSlowdowns, ///< windows compound on one PU

    // Pass 5: contention/lease feasibility.
    BandwidthOverBudget, ///< C6 demand lower bound exceeds the budget
    LeaseUncovered,      ///< lease admits no usable PU class
    RealTimeShared,      ///< realTime tenant shares with unbounded ones
};

/** Stable machine-readable kind name ("use_before_def", ...). */
std::string_view diagnosticKindName(DiagnosticKind kind);

/** How bad it is. Errors veto deployment; Info never affects clean(). */
enum class Severity
{
    Info,
    Warn,
    Error,
};

/** "info" / "warn" / "error". */
std::string_view severityName(Severity severity);

/** One statically-detected defect. */
struct Diagnostic
{
    DiagnosticKind kind{};
    Severity severity = Severity::Error;
    std::string subject; ///< app/tenant name, "schedule", "spec", ...
    std::string buffer;  ///< buffer name (graph pass), else empty
    int stage = -1;      ///< stage index, -1 = not stage-specific
    int chunk = -1;      ///< chunk index, -1 = not chunk-specific
    int pu = -1;         ///< PU class index, -1 = not PU-specific
    std::string message; ///< human-readable description + remediation

    /** e.g. "error[use_before_def] octree/sort: buffer 'x' ...". */
    std::string toString() const;
};

/** What the analyzer looked at (merged across passes and subjects). */
struct LintStats
{
    int subjects = 0;   ///< applications/tenants analyzed
    int stages = 0;     ///< stages walked by the graph pass
    int buffers = 0;    ///< declared buffers examined
    int chunks = 0;     ///< schedule chunks examined
    int faultRules = 0; ///< fault-plan entries examined
    int passes = 0;     ///< pass executions folded into this report

    void add(const LintStats& other);
};

/** The folded result of one or more lint passes. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    LintStats stats;

    int errors() const;
    int warnings() const;
    int infos() const;

    /** No errors and no warnings (Info diagnostics are allowed). */
    bool clean() const { return errors() == 0 && warnings() == 0; }

    /** One-line human summary. */
    std::string summary() const;

    /** Full human-readable listing. */
    void print(std::ostream& os) const;

    /** Machine-readable report (a JSON object). */
    void writeJson(std::ostream& os) const;

    /** Append another report's diagnostics and stats. Concatenation,
     *  so merging is associative and order-preserving. */
    void merge(Report other);
};

} // namespace bt::lint

#endif // BT_LINT_DIAGNOSTIC_HPP
