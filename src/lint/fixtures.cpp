#include "lint/fixtures.hpp"

#include <utility>

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "lint/lint.hpp"
#include "platform/soc.hpp"

namespace bt::lint {

namespace {

using core::Application;
using core::BufferAccess;
using core::BufferDecl;
using core::KernelCtx;
using core::PlannerSpec;
using core::Schedule;
using core::Stage;
using core::StageIo;
using platform::Pattern;
using platform::PuKind;
using platform::PuModel;
using platform::SocDescription;
using platform::WorkProfile;
using runtime::RunConfig;

/** A tiny two-class SoC (one CPU, one GPU); enough for every pass. */
SocDescription
fixtureSoc()
{
    SocDescription soc;
    soc.name = "lint-fixture";
    soc.vendor = "none";
    soc.gpuApi = "none";
    PuModel cpu;
    cpu.label = "cpu";
    cpu.hardware = "fixture CPU";
    cpu.kind = PuKind::Cpu;
    cpu.cores = 4;
    cpu.freqGhz = 2.0;
    cpu.opsPerCycle = 8.0;
    cpu.memBwGbps = 10.0;
    PuModel gpu = cpu;
    gpu.label = "gpu";
    gpu.hardware = "fixture GPU";
    gpu.kind = PuKind::Gpu;
    gpu.cores = 8;
    gpu.memBwGbps = 20.0;
    soc.pus = {cpu, gpu};
    soc.mem.dramBwGbps = 25.0;
    return soc;
}

/** A no-op stage with the given name, work profile and declared IO. */
Stage
ioStage(const std::string& name, const WorkProfile& work, StageIo io)
{
    Stage s(name, work, [](KernelCtx&) {}, nullptr);
    s.setIo(std::move(io));
    return s;
}

/** Memory-light default work profile. */
WorkProfile
lightWork()
{
    return {1e6, 1e4, 0.9, Pattern::Dense};
}

/** A well-formed two-stage app the defect variants perturb. */
Application
baseApp(const std::string& name)
{
    Application app(name, "fixture", "two declared stages");
    app.declareBuffer({"in", 4096, /*input=*/true});
    app.declareBuffer({"mid", 4096});
    app.declareBuffer({"out", 4096, false, /*output=*/true});
    app.addStage(ioStage("produce", lightWork(),
                         {{{"in", 4096}}, {{"mid", 4096}}}));
    app.addStage(ioStage("consume", lightWork(),
                         {{{"mid", 4096}}, {{"out", 4096}}}));
    return app;
}

FixtureResult
fold(std::string name, DiagnosticKind expected, Report report)
{
    FixtureResult fr;
    fr.name = std::move(name);
    fr.expected = expected;
    fr.totalFindings = report.diagnostics.size();
    for (const auto& d : report.diagnostics)
        fr.flagged = fr.flagged || d.kind == expected;
    fr.report = std::move(report);
    return fr;
}

} // namespace

std::vector<FixtureResult>
runSeededDefects()
{
    const SocDescription soc = fixtureSoc();
    std::vector<FixtureResult> results;

    // --- Pass 1: graph/buffer analysis ---------------------------------
    {
        // "consume" reads 'mid' but nothing ever writes it.
        Application app("use_before_def", "fixture", "");
        app.declareBuffer({"in", 4096, true});
        app.declareBuffer({"mid", 4096});
        app.declareBuffer({"out", 4096, false, true});
        app.addStage(ioStage("produce", lightWork(),
                             {{{"in", 4096}}, {{"out", 4096}}}));
        app.addStage(ioStage("consume", lightWork(),
                             {{{"mid", 4096}}, {{"out", 4096}}}));
        results.push_back(fold("use_before_def",
                               DiagnosticKind::UseBeforeDef,
                               lintApplication(app)));
    }
    {
        // 'mid' is written but no stage consumes it and it is neither
        // an output nor scratch.
        Application app("dead_output", "fixture", "");
        app.declareBuffer({"in", 4096, true});
        app.declareBuffer({"mid", 4096});
        app.declareBuffer({"out", 4096, false, true});
        app.addStage(ioStage("produce", lightWork(),
                             {{{"in", 4096}}, {{"mid", 4096}}}));
        app.addStage(ioStage("consume", lightWork(),
                             {{{"in", 4096}}, {{"out", 4096}}}));
        results.push_back(fold("dead_output",
                               DiagnosticKind::DeadOutput,
                               lintApplication(app)));
    }
    {
        // Producer writes 4096 bytes of 'mid'; consumer reads 8192.
        Application bad("size_mismatch", "fixture", "");
        bad.declareBuffer({"in", 4096, true});
        bad.declareBuffer({"mid", 4096});
        bad.declareBuffer({"out", 4096, false, true});
        bad.addStage(ioStage("produce", lightWork(),
                             {{{"in", 4096}}, {{"mid", 4096}}}));
        bad.addStage(ioStage("consume", lightWork(),
                             {{{"mid", 8192}}, {{"out", 4096}}}));
        results.push_back(fold("size_mismatch",
                               DiagnosticKind::SizeMismatch,
                               lintApplication(bad)));
    }
    {
        // A cross-task shared table written by one stage and read by
        // another: concurrently-live stages alias one allocation.
        Application app("alias_hazard", "fixture", "");
        app.declareBuffer({"in", 4096, true});
        app.declareBuffer({"table", 4096, false, false, false,
                           /*shared=*/true});
        app.declareBuffer({"out", 4096, false, true});
        app.addStage(ioStage("update", lightWork(),
                             {{{"in", 4096}}, {{"table", 4096}}}));
        app.addStage(ioStage("lookup", lightWork(),
                             {{{"table", 4096}}, {{"out", 4096}}}));
        results.push_back(fold("alias_hazard",
                               DiagnosticKind::AliasHazard,
                               lintApplication(app)));
    }
    {
        // Stage IO names a buffer with no declaration.
        Application app = baseApp("unknown_buffer");
        app.addStage(ioStage("extra", lightWork(),
                             {{{"ghost", 4096}}, {}}));
        results.push_back(fold("unknown_buffer",
                               DiagnosticKind::UnknownBuffer,
                               lintApplication(app)));
    }

    // --- Pass 2: schedule validity -------------------------------------
    {
        // Two-stage app, schedule covering only stage 0.
        const Schedule s(std::vector<core::Chunk>{{0, 0, 0}});
        results.push_back(fold("schedule_coverage",
                               DiagnosticKind::ScheduleCoverage,
                               lintSchedule(s, 2, soc)));
    }
    {
        const Schedule s(std::vector<core::Chunk>{{0, 1, 7}});
        results.push_back(fold("unknown_pu", DiagnosticKind::UnknownPu,
                               lintSchedule(s, 2, soc)));
    }
    {
        PlannerSpec spec;
        spec.allowedPus = {0};
        const Schedule s(
            std::vector<core::Chunk>{{0, 0, 0}, {1, 1, 1}});
        results.push_back(fold("disallowed_pu",
                               DiagnosticKind::DisallowedPu,
                               lintSchedule(s, 2, soc, spec)));
    }
    {
        // 24 stages on 2 PUs is far beyond a limit of 10 schedules.
        PlannerSpec spec;
        spec.exactSpaceLimit = 10;
        results.push_back(fold("exact_space_exceeded",
                               DiagnosticKind::ExactSpaceExceeded,
                               lintPlannerSpec(spec, 24, soc)));
    }

    // --- Passes 3+4: handoff + fault plan ------------------------------
    {
        RunConfig run;
        run.queueCapacity = 0;
        results.push_back(fold("queue_undersized",
                               DiagnosticKind::QueueUndersized,
                               lintRunConfig(run, 2, soc.numPus())));
    }
    {
        RunConfig run;
        run.numBuffers = 1; // two chunks possible, one task in flight
        results.push_back(fold("pipeline_underfilled",
                               DiagnosticKind::PipelineUnderfilled,
                               lintRunConfig(run, 2, soc.numPus())));
    }
    {
        RunConfig run;
        run.numTasks = 30;
        run.warmupTasks = 30;
        results.push_back(fold("warmup_exceeds_tasks",
                               DiagnosticKind::WarmupExceedsTasks,
                               lintRunConfig(run, 2, soc.numPus())));
    }
    {
        PlannerSpec spec;
        spec.numCandidates = 0;
        results.push_back(fold("spec_range", DiagnosticKind::SpecRange,
                               lintPlannerSpec(spec, 2, soc)));
    }
    {
        RunConfig run;
        run.faults.slowdowns.push_back({0, 0.0, 1.0, 1.5});
        results.push_back(fold("fault_range",
                               DiagnosticKind::FaultRange,
                               lintRunConfig(run, 2, soc.numPus())));
    }
    {
        RunConfig run;
        run.faults.dropouts.push_back({0, 0.1});
        run.faults.dropouts.push_back({1, 0.2});
        results.push_back(fold("dropout_starvation",
                               DiagnosticKind::DropoutStarvation,
                               lintRunConfig(run, 2, soc.numPus())));
    }
    {
        RunConfig run;
        run.recovery.timeoutFactor = 0.5;
        results.push_back(fold("watchdog_too_tight",
                               DiagnosticKind::WatchdogTooTight,
                               lintRunConfig(run, 2, soc.numPus())));
    }
    {
        RunConfig run;
        run.recovery.maxRetries = 0;
        run.recovery.failover = false;
        run.faults.transients.push_back({-1, -1, 0.1});
        results.push_back(fold("retry_futile",
                               DiagnosticKind::RetryFutile,
                               lintRunConfig(run, 2, soc.numPus())));
    }
    {
        RunConfig run;
        run.faults.slowdowns.push_back({1, 0.0, 1.0, 0.5});
        run.faults.slowdowns.push_back({1, 0.5, 1.5, 0.5});
        results.push_back(fold("overlapping_slowdowns",
                               DiagnosticKind::OverlappingSlowdowns,
                               lintRunConfig(run, 2, soc.numPus())));
    }

    // --- Pass 5: contention/lease feasibility --------------------------
    {
        // A memory-hungry stage against a budget no PU can stay under.
        Application app("bandwidth_over_budget", "fixture", "");
        app.declareBuffer({"in", 1 << 20, true});
        app.declareBuffer({"out", 1 << 20, false, true});
        app.addStage(ioStage("stream",
                             {1e6, 1e9, 0.95, Pattern::Dense},
                             {{{"in", 1 << 20}}, {{"out", 1 << 20}}}));
        PlannerSpec spec;
        spec.contention.budgetGbps = 0.001;
        results.push_back(fold("bandwidth_over_budget",
                               DiagnosticKind::BandwidthOverBudget,
                               lintContention(app, soc, spec)));
    }
    {
        // The lease names only PU classes this SoC does not have.
        PlannerSpec spec;
        spec.allowedPus = {5, 6};
        results.push_back(fold("lease_uncovered",
                               DiagnosticKind::LeaseUncovered,
                               lintPlannerSpec(spec, 2, soc)));
    }
    {
        // realTime tenant on a service with unbounded co-runners.
        const Application app = baseApp("real_time_shared");
        TenantLintInput tenant;
        tenant.realTime = true;
        tenant.contentionAware = false;
        tenant.leaseGroups = 2;
        results.push_back(fold("real_time_shared",
                               DiagnosticKind::RealTimeShared,
                               lintTenant(soc, app, {}, {}, tenant)));
    }

    return results;
}

} // namespace bt::lint
