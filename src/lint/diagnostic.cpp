#include "lint/diagnostic.hpp"

#include <iterator>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace bt::lint {

namespace {

void
jsonEscape(std::ostream& os, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c; break;
        }
    }
}

} // namespace

std::string_view
diagnosticKindName(DiagnosticKind kind)
{
    switch (kind) {
    case DiagnosticKind::UseBeforeDef: return "use_before_def";
    case DiagnosticKind::DeadOutput: return "dead_output";
    case DiagnosticKind::SizeMismatch: return "size_mismatch";
    case DiagnosticKind::AliasHazard: return "alias_hazard";
    case DiagnosticKind::UnknownBuffer: return "unknown_buffer";
    case DiagnosticKind::NoIoDeclarations: return "no_io_declarations";
    case DiagnosticKind::ScheduleCoverage: return "schedule_coverage";
    case DiagnosticKind::UnknownPu: return "unknown_pu";
    case DiagnosticKind::DisallowedPu: return "disallowed_pu";
    case DiagnosticKind::ExactSpaceExceeded:
        return "exact_space_exceeded";
    case DiagnosticKind::QueueUndersized: return "queue_undersized";
    case DiagnosticKind::PipelineUnderfilled:
        return "pipeline_underfilled";
    case DiagnosticKind::WarmupExceedsTasks:
        return "warmup_exceeds_tasks";
    case DiagnosticKind::SpecRange: return "spec_range";
    case DiagnosticKind::FaultRange: return "fault_range";
    case DiagnosticKind::DropoutStarvation:
        return "dropout_starvation";
    case DiagnosticKind::WatchdogTooTight: return "watchdog_too_tight";
    case DiagnosticKind::RetryFutile: return "retry_futile";
    case DiagnosticKind::OverlappingSlowdowns:
        return "overlapping_slowdowns";
    case DiagnosticKind::BandwidthOverBudget:
        return "bandwidth_over_budget";
    case DiagnosticKind::LeaseUncovered: return "lease_uncovered";
    case DiagnosticKind::RealTimeShared: return "real_time_shared";
    }
    BT_PANIC("lint.kind", "unknown DiagnosticKind ",
             static_cast<int>(kind));
}

std::string_view
severityName(Severity severity)
{
    switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
    }
    BT_PANIC("lint.severity", "unknown Severity ",
             static_cast<int>(severity));
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << '[' << diagnosticKindName(kind)
       << "] " << subject;
    if (!buffer.empty())
        os << " buffer '" << buffer << '\'';
    if (stage >= 0)
        os << " stage " << stage;
    if (chunk >= 0)
        os << " chunk " << chunk;
    if (pu >= 0)
        os << " pu " << pu;
    os << ": " << message;
    return os.str();
}

void
LintStats::add(const LintStats& other)
{
    subjects += other.subjects;
    stages += other.stages;
    buffers += other.buffers;
    chunks += other.chunks;
    faultRules += other.faultRules;
    passes += other.passes;
}

int
Report::errors() const
{
    int n = 0;
    for (const auto& d : diagnostics)
        n += d.severity == Severity::Error ? 1 : 0;
    return n;
}

int
Report::warnings() const
{
    int n = 0;
    for (const auto& d : diagnostics)
        n += d.severity == Severity::Warn ? 1 : 0;
    return n;
}

int
Report::infos() const
{
    int n = 0;
    for (const auto& d : diagnostics)
        n += d.severity == Severity::Info ? 1 : 0;
    return n;
}

std::string
Report::summary() const
{
    std::ostringstream os;
    os << "lint: " << errors() << " error(s), " << warnings()
       << " warning(s), " << infos() << " info(s) across "
       << stats.subjects << " subject(s), " << stats.passes
       << " pass(es)";
    return os.str();
}

void
Report::print(std::ostream& os) const
{
    os << summary() << '\n';
    for (const auto& d : diagnostics)
        os << "  " << d.toString() << '\n';
}

void
Report::writeJson(std::ostream& os) const
{
    os << "{\"clean\": " << (clean() ? "true" : "false")
       << ", \"errors\": " << errors()
       << ", \"warnings\": " << warnings()
       << ", \"infos\": " << infos() << ", \"stats\": {\"subjects\": "
       << stats.subjects << ", \"stages\": " << stats.stages
       << ", \"buffers\": " << stats.buffers
       << ", \"chunks\": " << stats.chunks
       << ", \"fault_rules\": " << stats.faultRules
       << ", \"passes\": " << stats.passes
       << "}, \"diagnostics\": [";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const auto& d = diagnostics[i];
        os << (i ? ", " : "") << "{\"kind\": \""
           << diagnosticKindName(d.kind) << "\", \"severity\": \""
           << severityName(d.severity) << "\", \"subject\": \"";
        jsonEscape(os, d.subject);
        os << "\", \"buffer\": \"";
        jsonEscape(os, d.buffer);
        os << "\", \"stage\": " << d.stage << ", \"chunk\": " << d.chunk
           << ", \"pu\": " << d.pu << ", \"message\": \"";
        jsonEscape(os, d.message);
        os << "\"}";
    }
    os << "]}";
}

void
Report::merge(Report other)
{
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(other.diagnostics.begin()),
                       std::make_move_iterator(other.diagnostics.end()));
    stats.add(other.stats);
}

} // namespace bt::lint
