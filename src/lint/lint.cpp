#include "lint/lint.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "platform/contention.hpp"

namespace bt::lint {

namespace {

Diagnostic
diag(DiagnosticKind kind, Severity severity, std::string subject,
     std::string message)
{
    Diagnostic d;
    d.kind = kind;
    d.severity = severity;
    d.subject = std::move(subject);
    d.message = std::move(message);
    return d;
}

template <typename... Args>
std::string
msg(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** The PU classes @p spec admits on @p num_pus classes, in index
 *  order; out-of-range entries are dropped (lintPlannerSpec reports
 *  them separately). Empty allowedPus = every class. */
std::vector<int>
effectiveAllowed(const std::vector<int>& allowed_pus, int num_pus)
{
    std::vector<int> effective;
    if (allowed_pus.empty()) {
        for (int p = 0; p < num_pus; ++p)
            effective.push_back(p);
        return effective;
    }
    for (int p = 0; p < num_pus; ++p)
        if (std::find(allowed_pus.begin(), allowed_pus.end(), p)
            != allowed_pus.end())
            effective.push_back(p);
    return effective;
}

} // namespace

Report
lintApplication(const core::Application& app)
{
    Report r;
    r.stats.subjects = 1;
    r.stats.passes = 1;

    if (!app.hasIoDeclarations()) {
        Diagnostic d = diag(
            DiagnosticKind::NoIoDeclarations, Severity::Info, app.name(),
            "no declared buffer IO (Stage::setIo / "
            "Application::declareBuffer); graph analysis skipped");
        r.diagnostics.push_back(std::move(d));
        return r;
    }

    const auto& decls = app.buffers();
    r.stats.buffers = static_cast<int>(decls.size());
    r.stats.stages = app.numStages();

    const auto declIndex = [&decls](const std::string& name) {
        for (std::size_t i = 0; i < decls.size(); ++i)
            if (decls[i].name == name)
                return static_cast<int>(i);
        return -1;
    };

    // Per-declared-buffer usage, accumulated in declaration order.
    struct Usage
    {
        bool defined = false; ///< input/shared, or written already
        int firstWriter = -1;
        bool read = false;
        std::vector<int> touchers;         ///< stages reading/writing
        std::vector<std::int64_t> sizes;   ///< distinct declared bytes
    };
    std::vector<Usage> usage(decls.size());
    for (std::size_t i = 0; i < decls.size(); ++i) {
        usage[i].defined = decls[i].input || decls[i].shared;
        if (decls[i].bytes >= 0)
            usage[i].sizes.push_back(decls[i].bytes);
    }

    const auto touch = [](Usage& u, int stage) {
        if (u.touchers.empty() || u.touchers.back() != stage)
            u.touchers.push_back(stage);
    };
    const auto size = [](Usage& u, std::int64_t bytes) {
        if (bytes >= 0
            && std::find(u.sizes.begin(), u.sizes.end(), bytes)
                == u.sizes.end())
            u.sizes.push_back(bytes);
    };

    for (int s = 0; s < app.numStages(); ++s) {
        const core::Stage& stage = app.stage(s);
        // Writes first: a stage's own writes define its later reads
        // (scratch fill-then-use within one kernel).
        for (const auto& w : stage.io().writes) {
            const int b = declIndex(w.name);
            if (b < 0) {
                Diagnostic d = diag(
                    DiagnosticKind::UnknownBuffer, Severity::Error,
                    app.name(),
                    msg("stage writes undeclared buffer '", w.name,
                        "'; add an Application::declareBuffer entry"));
                d.stage = s;
                d.buffer = w.name;
                r.diagnostics.push_back(std::move(d));
                continue;
            }
            Usage& u = usage[static_cast<std::size_t>(b)];
            if (u.firstWriter < 0)
                u.firstWriter = s;
            u.defined = true;
            touch(u, s);
            size(u, w.bytes);
        }
        for (const auto& rd : stage.io().reads) {
            const int b = declIndex(rd.name);
            if (b < 0) {
                Diagnostic d = diag(
                    DiagnosticKind::UnknownBuffer, Severity::Error,
                    app.name(),
                    msg("stage reads undeclared buffer '", rd.name,
                        "'; add an Application::declareBuffer entry"));
                d.stage = s;
                d.buffer = rd.name;
                r.diagnostics.push_back(std::move(d));
                continue;
            }
            Usage& u = usage[static_cast<std::size_t>(b)];
            if (!u.defined) {
                Diagnostic d = diag(
                    DiagnosticKind::UseBeforeDef, Severity::Error,
                    app.name(),
                    msg("stage reads buffer '", rd.name,
                        "' before any stage writes it and it is not "
                        "a task input; mark the declaration input "
                        "or fix the stage order"));
                d.stage = s;
                d.buffer = rd.name;
                r.diagnostics.push_back(std::move(d));
            }
            u.read = true;
            touch(u, s);
            size(u, rd.bytes);
        }
    }

    for (std::size_t i = 0; i < decls.size(); ++i) {
        const core::BufferDecl& d = decls[i];
        const Usage& u = usage[i];
        if (u.firstWriter >= 0 && !u.read && !d.output && !d.scratch) {
            Diagnostic g = diag(
                DiagnosticKind::DeadOutput, Severity::Warn, app.name(),
                msg("buffer '", d.name,
                    "' is written but never consumed; mark the "
                    "declaration output/scratch or drop the write"));
            g.stage = u.firstWriter;
            g.buffer = d.name;
            r.diagnostics.push_back(std::move(g));
        }
        if (d.shared && u.firstWriter >= 0 && u.touchers.size() >= 2) {
            Diagnostic g = diag(
                DiagnosticKind::AliasHazard, Severity::Error,
                app.name(),
                msg("cross-task shared buffer '", d.name,
                    "' is written by stage ", u.firstWriter,
                    " while other stages touch it; concurrently-live "
                    "stages of in-flight tasks alias one allocation - "
                    "make it per-task or read-only"));
            g.stage = u.firstWriter;
            g.buffer = d.name;
            r.diagnostics.push_back(std::move(g));
        }
        if (u.sizes.size() >= 2) {
            std::ostringstream sizes;
            for (std::size_t k = 0; k < u.sizes.size(); ++k)
                sizes << (k ? ", " : "") << u.sizes[k];
            Diagnostic g = diag(
                DiagnosticKind::SizeMismatch, Severity::Error,
                app.name(),
                msg("buffer '", d.name,
                    "' has conflicting declared sizes {", sizes.str(),
                    "} bytes across its declaration and stage "
                    "accesses"));
            g.buffer = d.name;
            r.diagnostics.push_back(std::move(g));
        }
    }
    return r;
}

Report
lintSchedule(const core::Schedule& schedule, int num_stages,
             const platform::SocDescription& soc,
             const core::PlannerSpec& spec)
{
    Report r;
    r.stats.passes = 1;
    r.stats.chunks = schedule.numChunks();
    const int num_pus = soc.numPus();
    const auto& chunks = schedule.chunks();

    if (chunks.empty()) {
        if (num_stages > 0)
            r.diagnostics.push_back(
                diag(DiagnosticKind::ScheduleCoverage, Severity::Error,
                     "schedule",
                     msg("empty schedule for ", num_stages,
                         " stages")));
        return r;
    }

    std::vector<int> chunksOfPu(
        static_cast<std::size_t>(std::max(num_pus, 0)), 0);
    int expect = 0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const core::Chunk& c = chunks[i];
        const int ci = static_cast<int>(i);
        if (c.firstStage > c.lastStage) {
            Diagnostic d = diag(
                DiagnosticKind::ScheduleCoverage, Severity::Error,
                "schedule",
                msg("chunk stage range [", c.firstStage, ", ",
                    c.lastStage, "] is inverted"));
            d.chunk = ci;
            r.diagnostics.push_back(std::move(d));
        } else if (c.firstStage != expect) {
            Diagnostic d = diag(
                DiagnosticKind::ScheduleCoverage, Severity::Error,
                "schedule",
                msg("chunk starts at stage ", c.firstStage,
                    c.firstStage > expect ? " leaving a gap from "
                                          : " overlapping from ",
                    expect));
            d.chunk = ci;
            r.diagnostics.push_back(std::move(d));
        }
        expect = std::max(expect, c.lastStage + 1);

        if (c.pu < 0 || c.pu >= num_pus) {
            Diagnostic d = diag(
                DiagnosticKind::UnknownPu, Severity::Error, "schedule",
                msg("chunk assigned to PU ", c.pu, " but the SoC has ",
                    num_pus, " classes"));
            d.chunk = ci;
            d.pu = c.pu;
            r.diagnostics.push_back(std::move(d));
        } else {
            if (++chunksOfPu[static_cast<std::size_t>(c.pu)] == 2) {
                Diagnostic d = diag(
                    DiagnosticKind::ScheduleCoverage, Severity::Error,
                    "schedule",
                    msg("PU ", c.pu,
                        " appears in two chunks - the contiguity "
                        "constraint (C2) allows one run per class"));
                d.chunk = ci;
                d.pu = c.pu;
                r.diagnostics.push_back(std::move(d));
            }
            if (!spec.allowedPus.empty()
                && std::find(spec.allowedPus.begin(),
                             spec.allowedPus.end(), c.pu)
                    == spec.allowedPus.end()) {
                Diagnostic d = diag(
                    DiagnosticKind::DisallowedPu, Severity::Error,
                    "schedule",
                    msg("chunk assigned to PU ", c.pu,
                        " outside the allowedPus lease"));
                d.chunk = ci;
                d.pu = c.pu;
                r.diagnostics.push_back(std::move(d));
            }
        }
    }
    if (expect != num_stages)
        r.diagnostics.push_back(
            diag(DiagnosticKind::ScheduleCoverage, Severity::Error,
                 "schedule",
                 msg("chunks cover stages [0, ", expect, ") but the "
                     "application has ", num_stages, " stages")));
    return r;
}

Report
lintRunConfig(const runtime::RunConfig& run, int num_stages,
              int num_pus, const std::vector<int>& allowed_pus)
{
    Report r;
    r.stats.passes = 1;
    const runtime::FaultPlan& plan = run.faults;
    r.stats.faultRules = static_cast<int>(
        plan.slowdowns.size() + plan.transients.size()
        + plan.stragglers.size() + plan.dropouts.size());

    if (run.numTasks < 1)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "run",
                 msg("numTasks must be >= 1, got ", run.numTasks)));
    if (run.warmupTasks < 0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "run",
                 msg("warmupTasks must be >= 0, got ",
                     run.warmupTasks)));
    else if (run.numTasks >= 1 && run.warmupTasks >= run.numTasks)
        r.diagnostics.push_back(diag(
            DiagnosticKind::WarmupExceedsTasks, Severity::Warn, "run",
            msg("warmupTasks ", run.warmupTasks, " >= numTasks ",
                run.numTasks,
                " leaves no steady-state completions; the task "
                "interval metric degenerates")));

    // Handoff/deadlock lint. The dispatch structure is one bounded
    // SPSC queue per chunk boundary plus a free pool of numBuffers
    // TaskObjects; with fewer buffers than chunks some dispatcher is
    // always starved, and a capacity below the buffer count could not
    // even hold the free pool at rest.
    const int max_chunks = std::max(1, std::min(num_stages, num_pus));
    if (run.queueCapacity <= 0)
        r.diagnostics.push_back(diag(
            DiagnosticKind::QueueUndersized, Severity::Error, "run",
            msg("queueCapacity must be positive, got ",
                run.queueCapacity,
                "; the host backend refuses a zero-capacity handoff "
                "queue")));
    else if (run.numBuffers > 0 && run.queueCapacity < run.numBuffers)
        r.diagnostics.push_back(diag(
            DiagnosticKind::QueueUndersized, Severity::Warn, "run",
            msg("queueCapacity ", run.queueCapacity,
                " cannot hold the ", run.numBuffers,
                "-buffer free pool; the host backend silently raises "
                "it, but a strictly bounded deployment would wedge")));
    if (run.numBuffers > 0 && run.numBuffers <= max_chunks)
        r.diagnostics.push_back(diag(
            DiagnosticKind::PipelineUnderfilled, Severity::Warn, "run",
            msg("numBuffers ", run.numBuffers, " <= ", max_chunks,
                " possible chunks keeps at least one chunk idle; the "
                "paper's default is chunks + 1 (numBuffers = 0)")));

    // Fault-plan consistency (same ranges FaultPlan::validate panics
    // on, reported as diagnostics instead of aborting).
    const auto fault = [&r](std::string m) {
        r.diagnostics.push_back(diag(DiagnosticKind::FaultRange,
                                     Severity::Error, "faults",
                                     std::move(m)));
    };
    for (const auto& w : plan.slowdowns) {
        if (w.pu < 0 || w.pu >= num_pus)
            fault(msg("slowdown window on unknown PU ", w.pu));
        if (w.endSeconds <= w.startSeconds)
            fault(msg("slowdown window [", w.startSeconds, ", ",
                      w.endSeconds, "] has no positive length"));
        if (w.clockFactor <= 0.0 || w.clockFactor > 1.0)
            fault(msg("slowdown clockFactor must be in (0, 1], got ",
                      w.clockFactor));
    }
    for (std::size_t i = 0; i < plan.slowdowns.size(); ++i)
        for (std::size_t j = i + 1; j < plan.slowdowns.size(); ++j) {
            const auto& a = plan.slowdowns[i];
            const auto& b = plan.slowdowns[j];
            if (a.pu == b.pu && a.startSeconds < b.endSeconds
                && b.startSeconds < a.endSeconds) {
                Diagnostic d = diag(
                    DiagnosticKind::OverlappingSlowdowns,
                    Severity::Warn, "faults",
                    msg("slowdown windows ", i, " and ", j,
                        " overlap on PU ", a.pu,
                        "; their clock factors compound "
                        "multiplicatively - merge them if one "
                        "throttling episode was meant"));
                d.pu = a.pu;
                r.diagnostics.push_back(std::move(d));
            }
        }
    for (const auto& t : plan.transients) {
        if (t.pu < -1 || t.pu >= num_pus)
            fault(msg("transient rule on unknown PU ", t.pu));
        if (t.stage < -1 || (num_stages > 0 && t.stage >= num_stages))
            fault(msg("transient rule on unknown stage ", t.stage));
        if (t.probability < 0.0 || t.probability > 1.0)
            fault(msg("transient probability out of [0, 1]: ",
                      t.probability));
    }
    for (const auto& s : plan.stragglers) {
        if (s.stage < -1 || (num_stages > 0 && s.stage >= num_stages))
            fault(msg("straggler rule on unknown stage ", s.stage));
        if (s.probability < 0.0 || s.probability > 1.0)
            fault(msg("straggler probability out of [0, 1]: ",
                      s.probability));
        if (s.factor < 1.0)
            fault(msg("straggler factor must be >= 1, got ",
                      s.factor));
    }
    for (const auto& d : plan.dropouts) {
        if (d.pu < 0 || d.pu >= num_pus)
            fault(msg("dropout of unknown PU ", d.pu));
        if (d.atSeconds < 0.0)
            fault(msg("dropout in the past (at ", d.atSeconds, "s)"));
    }

    // Dropout starvation: every PU class the lease admits dies.
    if (!plan.dropouts.empty() && num_pus > 0) {
        const std::vector<int> capable
            = effectiveAllowed(allowed_pus, num_pus);
        bool survivor = false;
        for (const int p : capable) {
            bool dropped = false;
            for (const auto& d : plan.dropouts)
                dropped = dropped || d.pu == p;
            survivor = survivor || !dropped;
        }
        if (!capable.empty() && !survivor)
            r.diagnostics.push_back(diag(
                DiagnosticKind::DropoutStarvation, Severity::Error,
                "faults",
                msg("the fault plan drops every PU class the lease "
                    "admits (", capable.size(),
                    " of ", num_pus,
                    "); no failover or degradation target survives")));
    }

    const runtime::RecoveryPolicy& rec = run.recovery;
    if (rec.maxRetries < 0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "run",
                 msg("recovery.maxRetries must be >= 0, got ",
                     rec.maxRetries)));
    if (rec.timeoutFactor > 0.0 && rec.timeoutFactor <= 1.0)
        r.diagnostics.push_back(diag(
            DiagnosticKind::WatchdogTooTight, Severity::Warn, "run",
            msg("recovery.timeoutFactor ", rec.timeoutFactor,
                " <= 1 times out attempts running at profiled speed; "
                "every clean execution is aborted and retried")));
    if (rec.maxRetries == 0 && !rec.failover)
        r.diagnostics.push_back(diag(
            DiagnosticKind::RetryFutile, Severity::Warn, "run",
            "recovery.maxRetries is 0 with failover disabled; any "
            "fault or timeout is immediately unrecoverable"));
    return r;
}

Report
lintPlannerSpec(const core::PlannerSpec& spec, int num_stages,
                const platform::SocDescription& soc)
{
    Report r;
    r.stats.passes = 1;
    const int num_pus = soc.numPus();

    if (spec.numCandidates < 1)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "spec",
                 msg("numCandidates must be >= 1, got ",
                     spec.numCandidates)));
    if (spec.latencySlack < 0.0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "spec",
                 msg("latencySlack must be >= 0, got ",
                     spec.latencySlack)));
    if (spec.gapnessSlack < 0.0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "spec",
                 msg("gapnessSlack must be >= 0, got ",
                     spec.gapnessSlack)));
    if (spec.maxPerTier < 0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "spec",
                 msg("maxPerTier must be >= 0, got ",
                     spec.maxPerTier)));
    if (spec.objective == core::PlannerSpec::Objective::EnergyKDelay
        && spec.energyExponent < 0.0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "spec",
                 msg("energyExponent must be >= 0, got ",
                     spec.energyExponent)));
    if (spec.contention.ambientGbps < 0.0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "spec",
                 msg("contention.ambientGbps must be >= 0, got ",
                     spec.contention.ambientGbps)));
    if (spec.contention.budgetGbps < 0.0)
        r.diagnostics.push_back(
            diag(DiagnosticKind::SpecRange, Severity::Error, "spec",
                 msg("contention.budgetGbps must be >= 0, got ",
                     spec.contention.budgetGbps)));

    for (const int p : spec.allowedPus)
        if (p < 0 || p >= num_pus) {
            Diagnostic d = diag(
                DiagnosticKind::SpecRange, Severity::Error, "spec",
                msg("allowedPus names unknown PU ", p, " (SoC has ",
                    num_pus, " classes)"));
            d.pu = p;
            r.diagnostics.push_back(std::move(d));
        }
    const std::vector<int> effective
        = effectiveAllowed(spec.allowedPus, num_pus);
    if (effective.empty())
        r.diagnostics.push_back(diag(
            DiagnosticKind::LeaseUncovered, Severity::Error, "spec",
            "the lease (allowedPus) admits no PU class of this SoC; "
            "no schedule can be planned inside it"));

    if (spec.exactnessPreserving() && spec.exactSpaceLimit > 0
        && num_stages > 0 && !effective.empty()) {
        const std::uint64_t space = core::scheduleSpaceSize(
            num_stages, static_cast<int>(effective.size()));
        if (space > spec.exactSpaceLimit)
            r.diagnostics.push_back(diag(
                DiagnosticKind::ExactSpaceExceeded, Severity::Error,
                "spec",
                msg("schedule space of ", space,
                    " schedules exceeds exactSpaceLimit ",
                    spec.exactSpaceLimit,
                    "; the exact engines refuse it - switch to "
                    "PlannerEngine::Annealed or raise the limit")));
    }
    return r;
}

Report
lintContention(const core::Application& app,
               const platform::SocDescription& soc,
               const core::PlannerSpec& spec)
{
    Report r;
    r.stats.passes = 1;
    if (spec.contention.budgetGbps <= 0.0)
        return r;

    const std::vector<int> allowed
        = effectiveAllowed(spec.allowedPus, soc.numPus());
    if (allowed.empty() || app.numStages() == 0)
        return r;

    // The frugalest schedule is the single chunk on the allowed PU
    // with the smallest worst-stage demand - the same lower bound the
    // optimizer's C6 pre-check uses (in the same milli-GB/s integer
    // quantization), computed from the analytic demand curves alone.
    const platform::ContentionModel model(soc);
    std::int64_t min_demand = std::numeric_limits<std::int64_t>::max();
    int frugalest = -1;
    for (const int p : allowed) {
        std::int64_t d = 0;
        for (int s = 0; s < app.numStages(); ++s)
            d = std::max(d, platform::ContentionModel::milliGbps(
                                model.demandGbps(app.stage(s).work(),
                                                 soc.pu(p))));
        if (d < min_demand) {
            min_demand = d;
            frugalest = p;
        }
    }
    const std::int64_t budget = platform::ContentionModel::milliGbps(
        spec.contention.budgetGbps);
    if (budget < min_demand) {
        Diagnostic d = diag(
            DiagnosticKind::BandwidthOverBudget, Severity::Error,
            app.name(),
            msg("C6 budget of ", spec.contention.budgetGbps,
                " GB/s is below the aggregate-demand lower bound of ",
                static_cast<double>(min_demand) / 1000.0,
                " GB/s (frugalest single-chunk schedule); the "
                "optimizer would relax C6 and break the budget "
                "contract - raise the budget or shrink the tenant's "
                "memory traffic"));
        d.pu = frugalest;
        r.diagnostics.push_back(std::move(d));
    }
    return r;
}

Report
lintPreflight(const platform::SocDescription& soc,
              const core::Application& app,
              const core::PlannerSpec& spec,
              const runtime::RunConfig& run)
{
    Report r = lintApplication(app);
    r.merge(lintPlannerSpec(spec, app.numStages(), soc));
    r.merge(lintRunConfig(run, app.numStages(), soc.numPus(),
                          spec.allowedPus));
    r.merge(lintContention(app, soc, spec));
    return r;
}

Report
lintTenant(const platform::SocDescription& soc,
           const core::Application& app,
           const core::PlannerSpec& spec,
           const runtime::RunConfig& run,
           const TenantLintInput& tenant)
{
    Report r = lintPreflight(soc, app, spec, run);
    if (tenant.realTime && tenant.leaseGroups > 1
        && !tenant.contentionAware) {
        Diagnostic d = diag(
            DiagnosticKind::RealTimeShared, Severity::Warn, app.name(),
            "realTime tenant on a service without contentionAware "
            "leases: co-runners' bandwidth is unbounded, so the "
            "real-time flag cannot protect this tenant's latency");
        r.diagnostics.push_back(std::move(d));
    }
    return r;
}

} // namespace bt::lint
