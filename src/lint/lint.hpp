/**
 * @file
 * bt::lint - a static analyzer for pipeline configurations.
 *
 * bt::check (the compute-sanitizer) finds defects by *executing*
 * instrumented kernels; bt::lint finds them by *reading* the
 * configuration: the application's declared buffer IO, a schedule, the
 * planner spec, the run config with its fault plan, and the tenant's
 * lease/contention situation. Nothing here profiles, plans or runs a
 * kernel - every pass is pure arithmetic over descriptors, so linting
 * is cheap enough to run as an admission check in front of every
 * bt::Framework::run and bt::Service::registerApp.
 *
 * Five pass families (see docs/LINT.md for the diagnostic catalog):
 *
 *  1. lintApplication - def-before-use over declared stage IO, dead
 *     outputs, producer/consumer size mismatches, cross-task alias
 *     hazards;
 *  2. lintSchedule - chunk coverage/overlap/contiguity, unknown PUs,
 *     assignments outside allowedPus;
 *  3. lintRunConfig - bounded-queue capacities that can wedge the
 *     pipeline, underfilled multi-buffering, empty steady-state
 *     windows, plus the fault-plan consistency family (pass 4);
 *  4. (folded into lintRunConfig) fault-plan ranges, dropout
 *     starvation, too-tight watchdogs, futile retry budgets,
 *     overlapping slowdown windows;
 *  5. lintPlannerSpec / lintContention - spec ranges, exact-engine
 *     space refusals, empty leases, and C6 budgets whose demand lower
 *     bound (min over allowed PUs of the hungriest stage) already
 *     exceeds the budget - computed from ContentionModel's pure math,
 *     no profiling involved.
 *
 * lintPreflight composes 1-5 for one (soc, app, spec, run) tuple;
 * lintTenant adds the serving-side checks (real-time tenants sharing
 * with unbounded co-runners). All functions are const over their
 * inputs and thread-safe: concurrent lints of shared Applications
 * produce byte-identical reports.
 */

#ifndef BT_LINT_LINT_HPP
#define BT_LINT_LINT_HPP

#include "core/application.hpp"
#include "core/optimizer.hpp"
#include "core/schedule.hpp"
#include "lint/diagnostic.hpp"
#include "platform/soc.hpp"
#include "runtime/run_types.hpp"

namespace bt::lint {

/** Pass 1: graph/buffer analysis over the app's declared IO. Apps
 *  without declarations get one Info (NoIoDeclarations) and pass. */
Report lintApplication(const core::Application& app);

/**
 * Pass 2: validity of @p schedule for an app with @p num_stages on
 * @p soc under @p spec's allowedPus (empty = all PUs allowed).
 */
Report lintSchedule(const core::Schedule& schedule, int num_stages,
                    const platform::SocDescription& soc,
                    const core::PlannerSpec& spec = {});

/**
 * Passes 3+4: handoff/deadlock lint of the run config and consistency
 * of its fault plan against @p num_pus. @p allowed_pus narrows the
 * dropout-starvation check to a lease (empty = all PUs capable).
 */
Report lintRunConfig(const runtime::RunConfig& run, int num_stages,
                     int num_pus,
                     const std::vector<int>& allowed_pus = {});

/** Pass 5a: planner-spec ranges, exact-engine refusal, empty leases. */
Report lintPlannerSpec(const core::PlannerSpec& spec, int num_stages,
                       const platform::SocDescription& soc);

/**
 * Pass 5b: C6 feasibility. When @p spec carries a bandwidth budget,
 * compute the *lower bound* of the schedule's aggregate DRAM demand -
 * the frugalest single-chunk schedule draws the hungriest stage's
 * demand on its one PU, minimized over the allowed PUs - from
 * ContentionModel's analytic curves. A budget below that bound cannot
 * be met by any schedule; the optimizer would relax C6 and break the
 * budget contract, so lint rejects it up front.
 */
Report lintContention(const core::Application& app,
                      const platform::SocDescription& soc,
                      const core::PlannerSpec& spec);

/**
 * The Framework preflight: application + spec + run config +
 * contention for one deployment. Runs before anything is profiled,
 * planned or executed.
 */
Report lintPreflight(const platform::SocDescription& soc,
                     const core::Application& app,
                     const core::PlannerSpec& spec,
                     const runtime::RunConfig& run);

/** Serving-side facts lintTenant needs beyond the preflight tuple. */
struct TenantLintInput
{
    bool realTime = false;        ///< TenantOptions::realTime
    bool contentionAware = true;  ///< ServiceConfig::contentionAware
    int leaseGroups = 1;          ///< co-runner partitions possible
};

/**
 * Admission lint for one tenant: the preflight plus serving-layer
 * checks (a realTime tenant admitted where co-runners' bandwidth is
 * unbounded gets no protection from its flag).
 */
Report lintTenant(const platform::SocDescription& soc,
                  const core::Application& app,
                  const core::PlannerSpec& spec,
                  const runtime::RunConfig& run,
                  const TenantLintInput& tenant = {});

} // namespace bt::lint

#endif // BT_LINT_LINT_HPP
