/**
 * @file
 * Seeded-defect fixtures for bt::lint: small in-memory configurations
 * that each contain exactly one deliberate defect - a use-before-def,
 * a dead output, a starving dropout set, an over-budget C6 bound, and
 * so on, one per diagnostic kind. The analyzer must flag every one of
 * them with its expected kind; this is the negative control proving
 * the passes actually fire, run by tests and by
 * `bt_explorer --lint-fixtures` in CI (mirroring PR 5's checker
 * fixtures).
 */

#ifndef BT_LINT_FIXTURES_HPP
#define BT_LINT_FIXTURES_HPP

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace bt::lint {

struct FixtureResult
{
    std::string name;
    DiagnosticKind expected{};
    bool flagged = false;         ///< expected kind was reported
    std::size_t totalFindings = 0;

    /** The full report the fixture's lint produced. */
    Report report;
};

/**
 * Lint every seeded-defect configuration; each result says whether its
 * expected diagnostic kind was reported. Deterministic: same fixtures,
 * same order, byte-identical reports on every call.
 */
std::vector<FixtureResult> runSeededDefects();

} // namespace bt::lint

#endif // BT_LINT_FIXTURES_HPP
