/**
 * @file
 * Umbrella header and one-object entry point for the BetterTogether
 * framework.
 *
 * `#include "bt.hpp"` pulls in everything a user program needs: the
 * application model, the simulated devices, the profile -> optimize ->
 * autotune flow, the unified pipeline runtime (including fault
 * injection and recovery), the native/dynamic executors, and the
 * multi-tenant serving front end (bt::Service).
 *
 * bt::Framework runs the whole paper flow from a single FrameworkConfig
 * that composes the per-component knobs (ProfilerConfig,
 * core::PlannerSpec, runtime::RunConfig). Because RunConfig carries the
 * FaultPlan and RecoveryPolicy, fault-tolerant deployments need no
 * extra API surface - describe the faults in the same config.
 */

#ifndef BT_BT_HPP
#define BT_BT_HPP

#include <string>
#include <utility>

#include "common/logging.hpp"
#include "core/application.hpp"
#include "core/dynamic_executor.hpp"
#include "core/native_executor.hpp"
#include "core/pipeline.hpp"
#include "lint/lint.hpp"
#include "platform/devices.hpp"
#include "platform/perf_model.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/run_types.hpp"
#include "service/service.hpp"

namespace bt {

/** The serving front end, re-exported at the top level: a worker pool,
 *  PU leasing, and a keyed schedule cache over the Framework flow. */
using service::Service;
using service::ServiceConfig;
using service::ServiceReport;

/** Every knob of the full flow, one struct. */
struct FrameworkConfig
{
    core::ProfilerConfig profiler;
    core::PlannerSpec optimizer;

    /** Deployment knobs, shared by every backend - including the
     *  FaultPlan / RecoveryPolicy of the fault-tolerant runtime. */
    runtime::RunConfig run;

    /** Run the measurement-driven autotuning level (paper level 3). */
    bool autotune = true;

    /** Worker threads for the autotuning campaign (1 = serial); the
     *  report is bit-identical at any value. */
    int tunerThreads = 1;
};

/** BetterTogetherReport plus the static preflight's lint findings. */
struct FrameworkReport : core::BetterTogetherReport
{
    /** bt::lint preflight over (app, spec, run config): warnings and
     *  infos land here; errors abort run() before anything executes. */
    lint::Report preflight;
};

/**
 * The one-object API: profile the application, optimize the schedule
 * space, autotune the candidates, and deploy the winner - all against
 * one simulated device and one config.
 */
class Framework
{
  public:
    explicit Framework(const platform::SocDescription& soc,
                       FrameworkConfig cfg = {})
        : soc_(soc), cfg_(std::move(cfg)),
          flow_(soc_, core::BetterTogetherConfig{
                          cfg_.profiler, cfg_.optimizer, cfg_.run,
                          cfg_.autotune, cfg_.tunerThreads})
    {
    }

    /**
     * Statically analyze (@p app, optimizer spec, run config) without
     * executing anything - the same report run() computes first.
     */
    lint::Report
    preflight(const core::Application& app) const
    {
        return lint::lintPreflight(soc_, app, cfg_.optimizer, cfg_.run);
    }

    /**
     * Profile -> optimize -> autotune -> deploy @p app.
     *
     * Runs the static preflight first: errors (a schedule space the
     * exact engines refuse, a C6 budget below the demand floor, a
     * fault plan that starves every PU...) panic with every finding
     * and its remediation before any simulated time is spent;
     * warnings ride along in the report's `preflight` member.
     */
    FrameworkReport
    run(const core::Application& app) const
    {
        lint::Report pre = preflight(app);
        if (pre.errors() > 0) {
            std::string detail;
            for (const auto& d : pre.diagnostics)
                if (d.severity == lint::Severity::Error)
                    detail += "\n  " + d.toString();
            BT_PANIC("lint.preflight", "static preflight of '",
                     app.name(), "' found ", pre.errors(),
                     " error(s); fix them before running:", detail);
        }
        FrameworkReport report;
        static_cast<core::BetterTogetherReport&>(report)
            = flow_.run(app);
        report.preflight = std::move(pre);
        return report;
    }

    /** Homogeneous baseline latency of @p app on PU class @p pu. */
    double
    measureHomogeneous(const core::Application& app, int pu) const
    {
        return flow_.measureHomogeneous(app, pu);
    }

    /** The interference-aware performance model of the device. */
    const platform::PerfModel& model() const { return flow_.model(); }

  private:
    platform::SocDescription soc_;
    FrameworkConfig cfg_;
    core::BetterTogether flow_;
};

} // namespace bt

#endif // BT_BT_HPP
