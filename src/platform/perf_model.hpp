/**
 * @file
 * The analytic performance / interference model of a simulated SoC.
 *
 * Substitutes for the physical devices of the paper (see DESIGN.md): given
 * a stage's WorkProfile, the PU it runs on, and the set of concurrently
 * active stage executions, it returns the stage's execution time. It is a
 * roofline model (max of compute and memory time) extended with the three
 * interference mechanisms the paper measures in Sec. 5.3:
 *
 *  1. demand-proportional sharing of the single DRAM pool (UMA),
 *  2. DVFS governor reactions to system load - including the
 *     counter-intuitive firmware *boost* of mobile GPUs and of the
 *     OnePlus A510 cluster under heavy CPU load,
 *  3. shared-LLC degradation under contention (Jetson).
 *
 * The memory side (bandwidth demand, roofline sharing, LLC factors) is
 * delegated to the shared ContentionModel (contention.hpp), so the
 * solver's C6 constraints, the schedule evaluator's ambient buckets,
 * and the serving layer's leases all reason over the exact same curves
 * this model executes.
 *
 * The model is deterministic; measurement noise is added by its callers
 * (profiler / executor).
 */

#ifndef BT_PLATFORM_PERF_MODEL_HPP
#define BT_PLATFORM_PERF_MODEL_HPP

#include <span>

#include "platform/contention.hpp"
#include "platform/soc.hpp"

namespace bt::platform {

/** One concurrently executing stage, as seen by the model. */
struct Load
{
    const WorkProfile* work = nullptr;
    int pu = -1; ///< PU class index within the SoC
};

/**
 * Stateless evaluator over one SocDescription. All methods are const and
 * thread-compatible.
 */
class PerfModel
{
  public:
    explicit PerfModel(const SocDescription& soc_);

    const SocDescription& soc() const { return desc; }

    /** The shared DRAM-contention model every memory-side number of
     *  this class comes from. */
    const ContentionModel& contention() const { return contention_; }

    /**
     * Execution time (seconds) of active[idx] given that every entry of
     * @p active runs concurrently. Entries sharing a PU timeslice it.
     */
    double timeOf(std::size_t idx, std::span<const Load> active) const;

    /**
     * Throttle-aware variant: @p clock_scale holds one factor per PU
     * class (empty = all 1.0) multiplying its effective compute clock -
     * the fault layer's emulated thermal-throttling windows. Only the
     * compute side slows; memory bandwidth is unaffected.
     */
    double timeOf(std::size_t idx, std::span<const Load> active,
                  std::span<const double> clock_scale) const;

    /**
     * Cross-tenant variant: @p ambient_gbps is DRAM bandwidth demand
     * drawn by co-runners *outside* @p active (other tenants sharing
     * the SoC). It joins the demand fold weighted like any foreign
     * PU's traffic; 0.0 is bit-identical to the two-argument overload.
     */
    double timeOf(std::size_t idx, std::span<const Load> active,
                  std::span<const double> clock_scale,
                  double ambient_gbps) const;

    /** Execution time of @p w on @p pu with nothing else running. */
    double isolatedTime(const WorkProfile& w, int pu) const;

    /**
     * Execution time of @p w on @p pu while every other PU runs the same
     * computation - the profiler's interference-heavy mode (Sec. 3.2).
     */
    double interferenceHeavyTime(const WorkProfile& w, int pu) const;

    /** Interference-heavy time with additional cross-tenant ambient
     *  bandwidth demand on top (the contention-profile stretch basis). */
    double interferenceHeavyTime(const WorkProfile& w, int pu,
                                 double ambient_gbps) const;

    /** Effective clock of @p pu (GHz) when @p busy_others other PU
     *  classes are active. Exposed for the Fig. 7 analysis. */
    double effectiveFreqGhz(int pu, int busy_others) const;

    /**
     * Instantaneous power (watts) of PU @p pu when it is active and
     * @p busy_others other classes are active too: active power scales
     * with the square of the governor's clock factor (voltage tracks
     * frequency under DVFS).
     */
    double activePowerW(int pu, int busy_others) const;

    /**
     * Whole-SoC power given which PU classes are currently executing:
     * base power + per-class active/idle draw.
     */
    double systemPowerW(const std::vector<bool>& pu_active) const;

  private:
    /**
     * The one slowdown-fold implementation every public timeOf overload
     * forwards to (they differ only in defaulted arguments; the
     * regression tests pin the forwarding bit-exact).
     */
    double timeOfImpl(std::size_t idx, std::span<const Load> active,
                      std::span<const double> clock_scale,
                      double ambient_gbps) const;

    /** Compute-side time, before memory effects. */
    double computeTime(const WorkProfile& w, const PuModel& p,
                       double freq_ghz) const;
    /** Standalone memory intensity in [0,1] used for bandwidth demand. */
    double memIntensity(const WorkProfile& w, const PuModel& p) const;

    const SocDescription& desc;
    ContentionModel contention_;
};

} // namespace bt::platform

#endif // BT_PLATFORM_PERF_MODEL_HPP
