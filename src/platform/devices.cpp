#include "platform/devices.hpp"

#include "sched/affinity.hpp"

namespace bt::platform {

namespace {

/// Shorthand for the efficiency array [Dense, Sparse, Irregular, Mixed].
using Eff = std::array<double, kNumPatterns>;

PuModel
makePu(std::string label, std::string hw, PuKind kind, int cores,
       double freq, double ops, Eff eff, double bw, double overhead_us,
       double busy_factor, double active_w, double idle_w,
       sched::CpuSet ids = sched::CpuSet())
{
    PuModel p;
    p.label = std::move(label);
    p.hardware = std::move(hw);
    p.kind = kind;
    p.cores = cores;
    p.freqGhz = freq;
    p.opsPerCycle = ops;
    p.eff = eff;
    p.memBwGbps = bw;
    p.dispatchOverheadUs = overhead_us;
    p.busyFreqFactor = busy_factor;
    p.activePowerW = active_w;
    p.idlePowerW = idle_w;
    p.coreIds = std::move(ids);
    return p;
}

} // namespace

SocDescription
pixel7a()
{
    SocDescription soc;
    soc.name = "Google Pixel 7a";
    soc.vendor = "Google (Arm)";
    soc.gpuApi = "Vulkan";
    soc.seed = 0x9001;
    soc.noiseSigma = 0.030;
    soc.basePowerW = 1.2;
    soc.mem = MemorySystem{34.0, 1.0, 1.0};

    soc.pus.push_back(makePu(
        "little", "4x Cortex-A55 @ 1.80 GHz", PuKind::Cpu,
        /*cores=*/4, /*freq=*/1.80, /*ops=*/4.0,
        Eff{0.080, 0.200, 0.080, 0.090},
        /*bw=*/8.0, /*overhead=*/2.0, /*busy=*/0.72,
        /*activeW=*/0.8, /*idleW=*/0.05, sched::CpuSet::range(0, 4)));
    soc.pus.push_back(makePu(
        "mid", "2x Cortex-A78 @ 2.35 GHz", PuKind::Cpu,
        2, 2.35, 8.0, Eff{0.140, 0.440, 0.150, 0.150},
        20.0, 1.0, 0.83, 1.6, 0.08, sched::CpuSet::range(4, 2)));
    soc.pus.push_back(makePu(
        "big", "2x Cortex-X1 @ 2.85 GHz", PuKind::Cpu,
        2, 2.85, 8.0, Eff{0.153, 0.620, 0.160, 0.170},
        28.0, 1.0, 0.71, 2.8, 0.12, sched::CpuSet::range(6, 2)));
    soc.pus.push_back(makePu(
        "gpu", "Arm Mali-G710 MP7", PuKind::Gpu,
        7, 0.85, 32.0, Eff{0.550, 0.158, 0.002, 0.150},
        25.0, 60.0, 1.60, 3.5, 0.25));
    return soc;
}

SocDescription
oneplus11()
{
    SocDescription soc;
    soc.name = "OnePlus 11";
    soc.vendor = "Qualcomm";
    soc.gpuApi = "Vulkan";
    soc.seed = 0x9002;
    soc.noiseSigma = 0.030;
    soc.basePowerW = 1.3;
    soc.mem = MemorySystem{36.0, 1.0, 1.0};

    // Only 5 of the 8 cores accept affinity pinning on this device (paper
    // Sec. 5.1): the X3, both A715s, and two of the three A510s. The
    // A710 pair is not exposed as a scheduling class.
    soc.pus.push_back(makePu(
        "little", "2x Cortex-A510 @ 2.0 GHz (3rd not pinnable)",
        PuKind::Cpu, 2, 2.00, 2.0, Eff{0.080, 0.260, 0.100, 0.100},
        8.0, 2.0, 1.75, 0.7, 0.05, sched::CpuSet::range(0, 2)));
    soc.pus.push_back(makePu(
        "mid", "2x Cortex-A715 @ 2.8 GHz", PuKind::Cpu,
        2, 2.80, 8.0, Eff{0.150, 0.480, 0.220, 0.210},
        22.0, 1.0, 1.00, 1.8, 0.08, sched::CpuSet::range(3, 2)));
    soc.pus.push_back(makePu(
        "big", "1x Cortex-X3 @ 3.2 GHz", PuKind::Cpu,
        1, 3.20, 16.0, Eff{0.186, 0.620, 0.200, 0.190},
        30.0, 1.0, 0.725, 3.2, 0.12, sched::CpuSet::range(7, 1)));
    soc.pus.push_back(makePu(
        "gpu", "Qualcomm Adreno 740", PuKind::Gpu,
        6, 0.68, 64.0, Eff{0.410, 0.260, 0.002, 0.180},
        28.0, 50.0, 2.90, 4.5, 0.30));
    return soc;
}

SocDescription
jetsonOrinNano()
{
    SocDescription soc;
    soc.name = "Jetson Orin Nano";
    soc.vendor = "NVIDIA";
    soc.gpuApi = "CUDA";
    soc.seed = 0x9003;
    soc.noiseSigma = 0.020;
    soc.basePowerW = 5.0; // 25 W peak across CPU + GPU + uncore
    // Shared CPU/GPU last-level cache: part of the traffic is absorbed
    // when running alone, less so under contention.
    soc.mem = MemorySystem{40.0, 0.50, 0.70};

    soc.pus.push_back(makePu(
        "cpu", "6x Cortex-A78AE @ 1.7 GHz", PuKind::Cpu,
        6, 1.70, 8.0, Eff{0.670, 0.560, 0.260, 0.240},
        25.0, 1.0, 0.705, 9.0, 0.80, sched::CpuSet::range(0, 6)));
    soc.pus.push_back(makePu(
        "gpu", "Ampere iGPU (1024 CUDA cores)", PuKind::Gpu,
        8, 0.625, 128.0, Eff{0.270, 0.400, 0.200, 0.300},
        34.0, 15.0, 0.84, 11.0, 1.20));
    return soc;
}

SocDescription
jetsonOrinNanoLp()
{
    SocDescription soc;
    soc.name = "Jetson Orin Nano (LP)";
    soc.vendor = "NVIDIA";
    soc.gpuApi = "CUDA";
    soc.seed = 0x9004;
    soc.noiseSigma = 0.020;
    soc.basePowerW = 1.5; // 7 W peak in the low-power mode
    soc.mem = MemorySystem{25.0, 0.30, 0.45};

    soc.pus.push_back(makePu(
        "cpu", "4x Cortex-A78AE @ ~0.85 GHz", PuKind::Cpu,
        4, 0.85, 32.0, Eff{0.88, 0.35, 0.10, 0.12},
        22.0, 1.0, 0.845, 2.4, 0.30, sched::CpuSet::range(0, 4)));
    soc.pus.push_back(makePu(
        "gpu", "Ampere iGPU (low-power clocks)", PuKind::Gpu,
        8, 0.30, 128.0, Eff{0.50, 0.45, 0.42, 0.45},
        24.0, 15.0, 0.525, 3.1, 0.40));
    return soc;
}

SocDescription
nativeHost()
{
    SocDescription soc;
    soc.name = "Native host";
    soc.vendor = "local";
    soc.gpuApi = "SIMT emulation";
    soc.seed = 0x9005;
    soc.noiseSigma = 0.0;
    soc.basePowerW = 5.0;

    const int cores = sched::onlineCoreCount();
    soc.mem = MemorySystem{20.0, 1.0, 1.0};
    soc.pus.push_back(makePu(
        "cpu", "host CPU", PuKind::Cpu, cores, 2.0, 8.0,
        Eff{0.3, 0.3, 0.3, 0.3}, 10.0, 1.0, 1.0, 10.0, 1.0,
        sched::CpuSet::range(0, cores)));
    soc.pus.push_back(makePu(
        "gpu", "host SIMT emulation", PuKind::Gpu, cores, 2.0, 8.0,
        Eff{0.3, 0.3, 0.3, 0.3}, 10.0, 5.0, 1.0, 10.0, 1.0));
    return soc;
}

SocDescription
contentionRig()
{
    SocDescription soc;
    soc.name = "Contention rig";
    soc.vendor = "synthetic";
    soc.gpuApi = "SIMT emulation";
    soc.seed = 0x9006;
    soc.noiseSigma = 0.0; // deterministic: planner == backend numbers
    soc.basePowerW = 1.0;
    // DRAM roofline (10 GB/s) far below the 27.6 GB/s the four links
    // can demand together; foreign traffic counts almost in full
    // (0.9), so co-running tenants genuinely fight over the pool.
    soc.mem = MemorySystem{10.0, 1.0, 1.0, 0.9};

    // Interleaved low/high bandwidth classes: round-robin leases over
    // two groups give each tenant one frugal and one hungry PU. The
    // little links (4.8) sit just under an equal two-tenant share of
    // the roofline (5.0), so a C6-budgeted plan has a feasible
    // placement that is *not* bandwidth-starved, while big/gpu links
    // individually exceed the budget.
    soc.pus.push_back(makePu(
        "littleA", "synthetic low-bandwidth CPU", PuKind::Cpu,
        /*cores=*/2, /*freq=*/1.50, /*ops=*/4.0,
        Eff{0.20, 0.20, 0.20, 0.20},
        /*bw=*/4.8, /*overhead=*/1.0, /*busy=*/1.0,
        /*activeW=*/0.8, /*idleW=*/0.05));
    soc.pus.push_back(makePu(
        "littleB", "synthetic low-bandwidth CPU", PuKind::Cpu,
        2, 1.50, 4.0, Eff{0.20, 0.20, 0.20, 0.20},
        4.8, 1.0, 1.0, 0.8, 0.05));
    soc.pus.push_back(makePu(
        "big", "synthetic high-bandwidth CPU", PuKind::Cpu,
        2, 2.80, 8.0, Eff{0.30, 0.30, 0.30, 0.30},
        6.0, 1.0, 1.0, 2.4, 0.10));
    soc.pus.push_back(makePu(
        "gpu", "synthetic high-bandwidth GPU", PuKind::Gpu,
        8, 1.00, 16.0, Eff{0.40, 0.40, 0.40, 0.40},
        12.0, 5.0, 1.0, 3.0, 0.20));
    return soc;
}

SocDescription
manycoreRig()
{
    SocDescription soc;
    soc.name = "Manycore rig";
    soc.vendor = "synthetic";
    soc.gpuApi = "SIMT emulation";
    soc.seed = 0x9007;
    soc.noiseSigma = 0.0; // deterministic: annealed plans reproduce
    soc.basePowerW = 2.0;
    // Roofline (16 GB/s) far under the ~50 GB/s the eight links can
    // draw together; frugal classes sit well below any equal-share
    // budget, so a C6-feasible placement always exists.
    soc.mem = MemorySystem{16.0, 1.0, 1.0, 0.9};

    struct Row
    {
        const char* label;
        PuKind kind;
        double freq, ops, eff, bw, overhead_us, active_w;
    };
    // Staggered speed (freq x ops x eff) and link bandwidth: no class
    // dominates, so good schedules genuinely interleave classes.
    const Row rows[] = {
        {"c0", PuKind::Cpu, 1.20, 4.0, 0.20, 3.0, 1.0, 0.6},
        {"c1", PuKind::Cpu, 1.50, 4.0, 0.24, 3.5, 1.0, 0.8},
        {"c2", PuKind::Cpu, 1.80, 4.0, 0.28, 4.0, 1.0, 1.0},
        {"c3", PuKind::Cpu, 2.10, 8.0, 0.22, 5.0, 1.0, 1.4},
        {"c4", PuKind::Cpu, 2.40, 8.0, 0.26, 6.0, 1.0, 1.8},
        {"c5", PuKind::Cpu, 2.70, 8.0, 0.30, 7.0, 1.0, 2.2},
        {"g0", PuKind::Gpu, 0.90, 16.0, 0.35, 9.0, 4.0, 2.6},
        {"g1", PuKind::Gpu, 1.10, 16.0, 0.40, 12.0, 5.0, 3.0},
    };
    for (const Row& r : rows)
        soc.pus.push_back(makePu(
            r.label, "synthetic class", r.kind, /*cores=*/2, r.freq,
            r.ops, Eff{r.eff, r.eff, r.eff, r.eff}, r.bw,
            r.overhead_us, /*busy=*/1.0, r.active_w, /*idleW=*/0.1));
    return soc;
}

std::vector<SocDescription>
paperDevices()
{
    return {pixel7a(), oneplus11(), jetsonOrinNano(),
            jetsonOrinNanoLp()};
}

} // namespace bt::platform
