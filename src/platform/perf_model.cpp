#include "platform/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hpp"

namespace bt::platform {

PerfModel::PerfModel(const SocDescription& soc_)
    : desc(soc_), contention_(soc_)
{
    desc.validate();
}

double
PerfModel::computeTime(const WorkProfile& w, const PuModel& p,
                       double freq_ghz) const
{
    return contention_.computeSeconds(w, p, freq_ghz);
}

double
PerfModel::memIntensity(const WorkProfile& w, const PuModel& p) const
{
    return contention_.memIntensity(w, p);
}

double
PerfModel::effectiveFreqGhz(int pu, int busy_others) const
{
    const PuModel& p = desc.pu(pu);
    // Firmware governors react in steps: any concurrent load on another
    // PU class trips the boost/throttle state (consistent with the
    // paper's observation that the effect appears as soon as the system
    // is loaded, Sec. 5.3).
    const double factor = busy_others > 0 ? p.busyFreqFactor : 1.0;
    return p.freqGhz * factor;
}

double
PerfModel::activePowerW(int pu, int busy_others) const
{
    const PuModel& p = desc.pu(pu);
    const double factor = effectiveFreqGhz(pu, busy_others) / p.freqGhz;
    return p.activePowerW * factor * factor;
}

double
PerfModel::systemPowerW(const std::vector<bool>& pu_active) const
{
    BT_ASSERT(pu_active.size() == static_cast<std::size_t>(
        desc.numPus()));
    int busy = 0;
    for (bool b : pu_active)
        busy += b;
    double total = desc.basePowerW;
    for (int p = 0; p < desc.numPus(); ++p) {
        if (pu_active[static_cast<std::size_t>(p)])
            total += activePowerW(p, busy - 1);
        else
            total += desc.pu(p).idlePowerW;
    }
    return total;
}

double
PerfModel::timeOf(std::size_t idx, std::span<const Load> active) const
{
    return timeOfImpl(idx, active, {}, 0.0);
}

double
PerfModel::timeOf(std::size_t idx, std::span<const Load> active,
                  std::span<const double> clock_scale) const
{
    return timeOfImpl(idx, active, clock_scale, 0.0);
}

double
PerfModel::timeOf(std::size_t idx, std::span<const Load> active,
                  std::span<const double> clock_scale,
                  double ambient_gbps) const
{
    return timeOfImpl(idx, active, clock_scale, ambient_gbps);
}

double
PerfModel::timeOfImpl(std::size_t idx, std::span<const Load> active,
                      std::span<const double> clock_scale,
                      double ambient_gbps) const
{
    BT_ASSERT(idx < active.size(), "load index out of range");
    BT_ASSERT(ambient_gbps >= 0.0, "ambient demand must be nonnegative");
    const Load& self = active[idx];
    BT_ASSERT(self.work != nullptr);
    const PuModel& p = desc.pu(self.pu);

    // How many *other* PU classes have at least one active load, and how
    // many loads share our own PU (timeslicing).
    std::set<int> other_classes;
    int same_pu = 0;
    for (const auto& l : active) {
        BT_ASSERT(l.work != nullptr);
        if (l.pu == self.pu)
            ++same_pu;
        else
            other_classes.insert(l.pu);
    }
    const int busy_others = static_cast<int>(other_classes.size());
    const bool contended = busy_others > 0 || ambient_gbps > 0.0;

    double freq = effectiveFreqGhz(self.pu, busy_others);
    if (!clock_scale.empty()) {
        BT_ASSERT(clock_scale.size()
                  == static_cast<std::size_t>(desc.numPus()));
        freq *= clock_scale[static_cast<std::size_t>(self.pu)];
    }
    double comp = computeTime(*self.work, p, freq);

    // Memory side: demand-proportional DRAM sharing (ContentionModel).
    const double llc = contention_.llcFactor(contended);
    double demand_total = 0.0;
    for (std::size_t i = 0; i < active.size(); ++i) {
        const Load& l = active[i];
        const PuModel& lp = desc.pu(l.pu);
        const double demand = contention_.demandGbps(*l.work, lp);
        // Other PUs' traffic is partially absorbed by bank-level
        // parallelism; our own demand counts in full.
        demand_total
            += contention_.weightedDemand(demand, l.pu == self.pu);
    }
    // Cross-tenant ambient traffic joins the pool like any foreign
    // PU's demand (adding 0.0 keeps the fold bit-identical).
    demand_total += contention_.weightedDemand(ambient_gbps, false);
    const double scale = contention_.bandwidthScale(demand_total);
    const double bw = p.memBwGbps * scale;
    double mem = (self.work->bytes * llc) / (bw * 1e9);

    // Loads time-sharing one PU stretch both components.
    comp *= same_pu;
    mem *= same_pu;

    return std::max(comp, mem) + p.dispatchOverheadUs * 1e-6;
}

double
PerfModel::isolatedTime(const WorkProfile& w, int pu) const
{
    const Load self{&w, pu};
    return timeOf(0, std::span<const Load>(&self, 1));
}

double
PerfModel::interferenceHeavyTime(const WorkProfile& w, int pu) const
{
    return interferenceHeavyTime(w, pu, 0.0);
}

double
PerfModel::interferenceHeavyTime(const WorkProfile& w, int pu,
                                 double ambient_gbps) const
{
    // The profiler's interference-heavy mode: every other PU class runs
    // the same computation while we measure `pu` (paper Sec. 3.2),
    // optionally with cross-tenant ambient bandwidth demand on top.
    std::vector<Load> loads;
    loads.reserve(static_cast<std::size_t>(desc.numPus()));
    std::size_t self_idx = 0;
    for (int i = 0; i < desc.numPus(); ++i) {
        if (i == pu)
            self_idx = loads.size();
        loads.push_back(Load{&w, i});
    }
    return timeOfImpl(self_idx, loads, {}, ambient_gbps);
}

} // namespace bt::platform
