#include "platform/soc.hpp"

#include <set>

#include "common/logging.hpp"

namespace bt::platform {

const char*
patternName(Pattern p)
{
    switch (p) {
      case Pattern::Dense: return "dense";
      case Pattern::Sparse: return "sparse";
      case Pattern::Irregular: return "irregular";
      case Pattern::Mixed: return "mixed";
    }
    return "?";
}

WorkProfile
WorkProfile::fusedWith(const WorkProfile& next) const
{
    WorkProfile out;
    out.flops = flops + next.flops;
    out.bytes = bytes + next.bytes;
    // Weighted Amdahl fraction: weight by flops so the dominant stage
    // dictates scalability of the fused chunk.
    const double wa = flops + 1.0;
    const double wb = next.flops + 1.0;
    out.parallelFraction = (parallelFraction * wa
                            + next.parallelFraction * wb) / (wa + wb);
    out.cpuWorkScale
        = (cpuWorkScale * wa + next.cpuWorkScale * wb) / (wa + wb);
    out.pattern = flops >= next.flops ? pattern : next.pattern;
    return out;
}

const PuModel&
SocDescription::pu(int pu_index) const
{
    BT_ASSERT(pu_index >= 0 && pu_index < numPus(),
              "pu index ", pu_index, " out of range on ", name);
    return pus[static_cast<std::size_t>(pu_index)];
}

int
SocDescription::findPu(const std::string& label) const
{
    for (int i = 0; i < numPus(); ++i)
        if (pus[static_cast<std::size_t>(i)].label == label)
            return i;
    return -1;
}

double
SocDescription::peakPowerW() const
{
    double total = basePowerW;
    for (const auto& p : pus)
        total += p.activePowerW;
    return total;
}

int
SocDescription::gpuIndex() const
{
    for (int i = 0; i < numPus(); ++i)
        if (pus[static_cast<std::size_t>(i)].kind == PuKind::Gpu)
            return i;
    return -1;
}

int
SocDescription::bigCpuIndex() const
{
    int best = -1;
    double best_peak = 0.0;
    for (int i = 0; i < numPus(); ++i) {
        const auto& p = pus[static_cast<std::size_t>(i)];
        if (p.kind == PuKind::Cpu && p.peakGflops() > best_peak) {
            best = i;
            best_peak = p.peakGflops();
        }
    }
    return best;
}

void
SocDescription::validate() const
{
    BT_ASSERT(!pus.empty(), "SoC ", name, " has no PUs");
    BT_ASSERT(mem.dramBwGbps > 0.0);
    BT_ASSERT(mem.llcFactorIsolated > 0.0
              && mem.llcFactorContended >= mem.llcFactorIsolated,
              "contention must not reduce DRAM traffic");
    std::set<std::string> labels;
    for (const auto& p : pus) {
        BT_ASSERT(!p.label.empty(), "unlabelled PU on ", name);
        BT_ASSERT(labels.insert(p.label).second,
                  "duplicate PU label ", p.label, " on ", name);
        BT_ASSERT(p.cores > 0 && p.freqGhz > 0.0 && p.opsPerCycle > 0.0,
                  "bad rates for PU ", p.label, " on ", name);
        BT_ASSERT(p.memBwGbps > 0.0 && p.busyFreqFactor > 0.0);
        BT_ASSERT(p.activePowerW > 0.0
                      && p.idlePowerW >= 0.0
                      && p.idlePowerW <= p.activePowerW,
                  "inconsistent power model for ", p.label);
        for (double e : p.eff)
            BT_ASSERT(e > 0.0 && e <= 1.0,
                      "efficiency out of (0,1] for ", p.label);
    }
}

} // namespace bt::platform
