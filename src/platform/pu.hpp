/**
 * @file
 * Processing-unit and workload descriptors shared by the performance
 * model, the profiler and the optimizer.
 *
 * A PuModel is one *scheduling class* of the SoC - e.g. "the two
 * Cortex-X1 big cores" or "the Mali-G710 GPU" - matching the paper's
 * profiling-table columns. A WorkProfile is the analytic cost descriptor
 * of one pipeline stage (flops, DRAM traffic, parallelizability,
 * computational pattern); it drives simulated timing while the kernels
 * themselves execute functionally.
 */

#ifndef BT_PLATFORM_PU_HPP
#define BT_PLATFORM_PU_HPP

#include <array>
#include <cstdint>
#include <string>

#include "sched/affinity.hpp"

namespace bt::platform {

/** Broad kind of a processing unit. */
enum class PuKind { Cpu, Gpu };

/**
 * Computational pattern of a stage, the axis along which PUs differ most
 * (paper Sec. 2.1): GPUs excel at Dense, collapse on Irregular; big CPU
 * cores are the opposite.
 */
enum class Pattern : int { Dense = 0, Sparse = 1, Irregular = 2,
                           Mixed = 3 };

constexpr int kNumPatterns = 4;

/** Human-readable pattern name. */
const char* patternName(Pattern p);

/** Analytic cost descriptor of one pipeline stage. */
struct WorkProfile
{
    double flops = 0.0;            ///< arithmetic operations per task
    double bytes = 0.0;            ///< DRAM traffic per task
    double parallelFraction = 1.0; ///< Amdahl parallel fraction in [0,1]
    Pattern pattern = Pattern::Dense;

    /**
     * Implementation-inefficiency multiplier applied to flops when the
     * stage runs on a CPU class: some host kernels (the paper's direct
     * convolution loops, Fig. 3) execute several times more dynamic
     * work than the flop count suggests, while their GPU twins map to
     * near-roofline code. 1.0 = the host kernel is as lean as the
     * device kernel.
     */
    double cpuWorkScale = 1.0;

    /** Merge two profiles executed back to back (chunk fusion). */
    WorkProfile fusedWith(const WorkProfile& next) const;
};

/**
 * One scheduling class of the SoC. `eff[pattern]` is the fraction of peak
 * throughput this PU achieves on that pattern - the main calibration
 * knob.
 */
struct PuModel
{
    std::string label;     ///< "little", "mid", "big", "gpu"
    std::string hardware;  ///< e.g. "2x Cortex-X1"
    PuKind kind = PuKind::Cpu;
    int cores = 1;         ///< CPU cores, or GPU compute units
    double freqGhz = 1.0;
    double opsPerCycle = 1.0;  ///< peak ops per core (or CU) per cycle
    std::array<double, kNumPatterns> eff{1.0, 1.0, 1.0, 1.0};
    double memBwGbps = 1.0;    ///< max DRAM draw of this PU alone
    double dispatchOverheadUs = 0.0; ///< per-kernel launch cost

    /**
     * Multiplicative clock factor applied as the *other* PUs become busy:
     * > 1 models firmware boost (paper observed Mali/Adreno GPUs and the
     * OnePlus A510 cluster speeding up under CPU load, Sec. 5.3); < 1
     * models thermal/power throttling (Jetson low-power mode).
     */
    double busyFreqFactor = 1.0;

    /**
     * Power draw of the whole class running flat out at base clock
     * (watts). Under a governor boost/throttle the active power scales
     * with the square of the clock factor (voltage tracks frequency).
     */
    double activePowerW = 1.0;

    /** Power draw of the class when idle but powered (watts). */
    double idlePowerW = 0.1;

    sched::CpuSet coreIds; ///< host core IDs (empty for GPUs)

    /** Peak GFLOP/s of the whole class at base clock. */
    double peakGflops() const
    {
        return cores * freqGhz * opsPerCycle;
    }
};

} // namespace bt::platform

#endif // BT_PLATFORM_PU_HPP
