#include "platform/contention.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "platform/perf_model.hpp"

namespace bt::platform {

int
ContentionProfile::bucketOf(double ambient_gbps) const
{
    BT_ASSERT(numBuckets >= 2 && rooflineGbps > 0.0);
    if (ambient_gbps <= 0.0)
        return 0;
    const double step = rooflineGbps / (numBuckets - 1);
    const int b = static_cast<int>(std::ceil(ambient_gbps / step));
    return std::min(numBuckets - 1, std::max(1, b));
}

double
ContentionProfile::bucketCeilingGbps(int bucket) const
{
    BT_ASSERT(bucket >= 0 && bucket < numBuckets);
    const double step = rooflineGbps / (numBuckets - 1);
    return bucket * step;
}

std::int64_t
ContentionProfile::aggregateDemandMilli(
    std::span<const int> stage_to_pu) const
{
    BT_ASSERT(static_cast<int>(stage_to_pu.size()) == numStages);
    // A PU's draw is its hungriest assigned stage (stages on one PU run
    // back-to-back, never concurrently), so the aggregate is a sum of
    // per-PU maxima.
    std::int64_t total = 0;
    std::vector<std::int64_t> per_pu(static_cast<std::size_t>(numPus),
                                     0);
    for (int s = 0; s < numStages; ++s) {
        const int pu = stage_to_pu[static_cast<std::size_t>(s)];
        BT_ASSERT(pu >= 0 && pu < numPus);
        auto& best = per_pu[static_cast<std::size_t>(pu)];
        best = std::max(best, demandMilli(s, pu));
    }
    for (const std::int64_t d : per_pu)
        total += d;
    return total;
}

double
ContentionModel::computeSeconds(const WorkProfile& w, const PuModel& p,
                                double freq_ghz) const
{
    const double eff = p.eff[static_cast<std::size_t>(w.pattern)];
    const double single_core_ops = freq_ghz * 1e9 * p.opsPerCycle * eff;
    const double flops = p.kind == PuKind::Cpu
        ? w.flops * w.cpuWorkScale
        : w.flops;
    const double t1 = flops / single_core_ops;
    // Amdahl: serial fraction stays on one core/CU.
    const double pf = std::clamp(w.parallelFraction, 0.0, 1.0);
    return t1 * ((1.0 - pf) + pf / p.cores);
}

double
ContentionModel::memIntensity(const WorkProfile& w,
                              const PuModel& p) const
{
    const double comp = computeSeconds(w, p, p.freqGhz);
    const double mem = (w.bytes * desc.mem.llcFactorIsolated)
        / (p.memBwGbps * 1e9);
    const double denom = std::max(comp, mem);
    if (denom <= 0.0)
        return 0.0;
    return mem / denom;
}

std::int64_t
ContentionModel::milliGbps(double gbps)
{
    return std::llround(gbps * 1000.0);
}

int
ContentionModel::bucketOf(double ambient_gbps) const
{
    if (ambient_gbps <= 0.0)
        return 0;
    const double step = rooflineGbps() / (kBuckets - 1);
    const int b = static_cast<int>(std::ceil(ambient_gbps / step));
    return std::min(kBuckets - 1, std::max(1, b));
}

double
ContentionModel::bucketCeilingGbps(int bucket) const
{
    BT_ASSERT(bucket >= 0 && bucket < kBuckets);
    return bucket * (rooflineGbps() / (kBuckets - 1));
}

ContentionProfile
ContentionModel::profileStages(const PerfModel& model,
                               std::span<const WorkProfile> works) const
{
    BT_ASSERT(&model.soc() == &desc,
              "contention profile needs the model of the same SoC");
    ContentionProfile cp;
    cp.numStages = static_cast<int>(works.size());
    cp.numPus = desc.numPus();
    cp.numBuckets = kBuckets;
    cp.rooflineGbps = rooflineGbps();

    const std::size_t cells = static_cast<std::size_t>(cp.numStages)
        * static_cast<std::size_t>(cp.numPus);
    cp.demandGbps_.assign(cells, 0.0);
    cp.demandMilli_.assign(cells, 0);
    cp.stretch_.assign(cells * static_cast<std::size_t>(cp.numBuckets),
                       1.0);

    for (int s = 0; s < cp.numStages; ++s) {
        const WorkProfile& w = works[static_cast<std::size_t>(s)];
        for (int p = 0; p < cp.numPus; ++p) {
            const std::size_t cell = cp.cellIndex(s, p);
            const double d = demandGbps(w, desc.pu(p));
            cp.demandGbps_[cell] = d;
            cp.demandMilli_[cell] = milliGbps(d);

            // Slowdown stretch per ambient bucket, relative to the
            // interference-heavy baseline the profiling tables are
            // measured under. Bucket 0 stays exactly 1.0 so the
            // uncontended path is bit-identical.
            const double base = model.interferenceHeavyTime(w, p);
            for (int b = 1; b < cp.numBuckets; ++b) {
                const double ambient = bucketCeilingGbps(b);
                cp.stretch_[cell
                                * static_cast<std::size_t>(cp.numBuckets)
                            + static_cast<std::size_t>(b)]
                    = model.interferenceHeavyTime(w, p, ambient) / base;
            }
        }
    }
    return cp;
}

} // namespace bt::platform
