/**
 * @file
 * Catalog of simulated target devices.
 *
 * These are the four evaluation platforms of the paper (Table 2), plus a
 * description of the local host for native pipeline execution. The
 * numeric parameters are calibrated so that the simulated baselines and
 * interference ratios reproduce the shape of the paper's Table 3 and
 * Fig. 7 (see EXPERIMENTS.md for the side-by-side comparison).
 */

#ifndef BT_PLATFORM_DEVICES_HPP
#define BT_PLATFORM_DEVICES_HPP

#include <vector>

#include "platform/soc.hpp"

namespace bt::platform {

/** Google Pixel 7a: 4x A55 + 2x A78 + 2x X1, Mali-G710 MP7, Vulkan. */
SocDescription pixel7a();

/** OnePlus 11: X3 + A715s + A510s (5/8 cores pinnable), Adreno 740. */
SocDescription oneplus11();

/** NVIDIA Jetson Orin Nano 8GB: 6x A78AE, Ampere iGPU, CUDA. */
SocDescription jetsonOrinNano();

/** Jetson Orin Nano in 7W low-power mode: 4 cores at reduced clock. */
SocDescription jetsonOrinNanoLp();

/** The machine this process runs on, for native pipeline execution. */
SocDescription nativeHost();

/**
 * A bandwidth-starved test rig for cross-tenant contention scenarios:
 * four PU classes whose aggregate link bandwidth far exceeds the DRAM
 * roofline, noise-free so planner and backend numbers are exact. Two
 * round-robin lease groups each get one low-bandwidth and one
 * high-bandwidth class, so contention-aware planning has a real
 * placement choice to make. Not a paper device.
 */
SocDescription contentionRig();

/**
 * An 8-class rig for large-instance planning: enough PU classes that
 * even a modest pipeline's schedule space is far beyond exhaustive
 * enumeration (14 stages x 8 PUs ~ 1.7e8 schedules), noise-free so
 * annealed-planner results are exactly reproducible. Link bandwidths
 * are staggered around the DRAM roofline so C6 budgets genuinely
 * constrain placement. Not a paper device.
 */
SocDescription manycoreRig();

/** All four paper devices, in the order the paper's tables use. */
std::vector<SocDescription> paperDevices();

} // namespace bt::platform

#endif // BT_PLATFORM_DEVICES_HPP
