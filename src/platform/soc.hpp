/**
 * @file
 * Whole-SoC description: the "target system specification" input of the
 * BetterTogether flow (paper Fig. 2, step 2), including the affinity map
 * and the shared-memory-system parameters the interference model needs.
 */

#ifndef BT_PLATFORM_SOC_HPP
#define BT_PLATFORM_SOC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "platform/pu.hpp"

namespace bt::platform {

/**
 * Shared memory system of a UMA SoC. All PUs draw from one DRAM pool;
 * llcFactor* scale the DRAM traffic to model a shared last-level cache
 * (present on Jetson, absent on the phones) whose hit rate degrades under
 * contention.
 */
struct MemorySystem
{
    double dramBwGbps = 10.0;
    double llcFactorIsolated = 1.0;  ///< DRAM bytes fraction when alone
    double llcFactorContended = 1.0; ///< ... when other PUs are active

    /**
     * How strongly other PUs' bandwidth demand counts against ours when
     * sharing the controller. 1.0 = ideal proportional sharing; < 1
     * models the slack bank-level parallelism recovers on LPDDR parts.
     */
    double contendedDemandWeight = 0.45;
};

/** Full description of one target device. */
struct SocDescription
{
    std::string name;    ///< "Google Pixel 7a"
    std::string vendor;  ///< "Google (Arm)"
    std::string gpuApi;  ///< "Vulkan" or "CUDA"
    std::vector<PuModel> pus;
    MemorySystem mem;
    double noiseSigma = 0.02;   ///< log-normal measurement noise
    std::uint64_t seed = 1;     ///< base seed for this device's noise

    /** Uncore + DRAM power floor when the SoC is powered on (watts). */
    double basePowerW = 0.5;

    /** Peak whole-SoC power: base + every class active at base clock. */
    double peakPowerW() const;

    /** Number of scheduling classes. */
    int numPus() const { return static_cast<int>(pus.size()); }

    /** Model of class @p pu (bounds-checked). */
    const PuModel& pu(int pu_index) const;

    /** Index of the class labelled @p label, or -1. */
    int findPu(const std::string& label) const;

    /** Index of the first GPU class, or -1. */
    int gpuIndex() const;

    /** Index of the fastest CPU class by peak GFLOP/s, or -1. */
    int bigCpuIndex() const;

    /** Sanity-check invariants (positive rates, unique labels, ...). */
    void validate() const;
};

} // namespace bt::platform

#endif // BT_PLATFORM_SOC_HPP
