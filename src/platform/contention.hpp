/**
 * @file
 * The shared DRAM-contention model of a UMA SoC.
 *
 * Before this module, interference knowledge was scattered: PerfModel
 * folded bandwidth demand privately inside timeOf, the runtime backends
 * applied ad-hoc clock/noise effects, and the serving layer leased PUs
 * without modeling the DRAM pool its co-running tenants actually share.
 * ContentionModel hoists the memory-side math into one place every
 * layer consumes:
 *
 *  - per-(work, PU) *bandwidth demand* curves (GB/s the stage would
 *    draw from DRAM, memBw x memory intensity);
 *  - the shared *roofline* (MemorySystem::dramBwGbps) and the
 *    demand-proportional scale applied when aggregate demand exceeds
 *    it;
 *  - *ambient demand*: bandwidth drawn by co-runners outside the
 *    pipeline being modeled (other tenants on the same SoC), weighted
 *    by contendedDemandWeight exactly like in-pipeline foreign-PU
 *    traffic;
 *  - quantization helpers: ambient demand bucketized into kBuckets
 *    levels (for memoization / cache keys) and demands quantized to
 *    integer milli-GB/s (for the solver's pseudo-boolean C6 family).
 *
 * ContentionProfile is the per-application snapshot the planner layers
 * carry around: per-(stage, PU) demand plus per-bucket slowdown
 * stretch factors, built once by the profiler next to the timing
 * tables. Bucket 0 is always the uncontended baseline with stretch
 * exactly 1.0, so single-tenant planning is bit-identical to a build
 * without this model.
 */

#ifndef BT_PLATFORM_CONTENTION_HPP
#define BT_PLATFORM_CONTENTION_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "platform/soc.hpp"

namespace bt::platform {

class PerfModel;

/**
 * Per-application contention snapshot: bandwidth demand of every
 * (stage, PU) cell plus the slowdown stretch of every (stage, PU,
 * ambient-bucket) triple. Plain arrays with no platform references, so
 * planner layers can copy and carry it next to their profiling tables.
 */
struct ContentionProfile
{
    int numStages = 0;
    int numPus = 0;
    int numBuckets = 0;        ///< ambient-demand quantization levels
    double rooflineGbps = 0.0; ///< shared DRAM bandwidth ceiling

    /** DRAM bandwidth the stage draws on that PU (GB/s). */
    double
    demandGbps(int stage, int pu) const
    {
        return demandGbps_[cellIndex(stage, pu)];
    }

    /** Same demand quantized to integer milli-GB/s (solver C6 terms). */
    std::int64_t
    demandMilli(int stage, int pu) const
    {
        return demandMilli_[cellIndex(stage, pu)];
    }

    /**
     * Multiplicative slowdown of (stage, pu) under the ambient demand
     * of @p bucket, relative to bucket 0. Bucket 0 is exactly 1.0.
     */
    double
    stretch(int stage, int pu, int bucket) const
    {
        return stretch_[cellIndex(stage, pu)
                            * static_cast<std::size_t>(numBuckets)
                        + static_cast<std::size_t>(bucket)];
    }

    /** Quantize an ambient demand into a bucket; conservative (the
     *  bucket ceiling is >= the demand). 0 iff demand <= 0. */
    int bucketOf(double ambient_gbps) const;

    /** Upper edge of @p bucket in GB/s (0.0 for bucket 0). */
    double bucketCeilingGbps(int bucket) const;

    /**
     * Aggregate DRAM demand of a whole assignment in milli-GB/s: the
     * sum over used PUs of the *maximum* stage demand placed on that
     * PU (chunk stages run back-to-back, so a PU's draw is its
     * hungriest stage, not the sum).
     */
    std::int64_t
    aggregateDemandMilli(std::span<const int> stage_to_pu) const;

    // Dense storage, filled by ContentionModel::profileStages.
    std::vector<double> demandGbps_;        ///< [stage][pu]
    std::vector<std::int64_t> demandMilli_; ///< [stage][pu]
    std::vector<double> stretch_;           ///< [stage][pu][bucket]

    std::size_t
    cellIndex(int stage, int pu) const
    {
        return static_cast<std::size_t>(stage)
            * static_cast<std::size_t>(numPus)
            + static_cast<std::size_t>(pu);
    }
};

/**
 * Stateless evaluator of the shared-memory side of one SocDescription.
 * All methods are const and thread-compatible; PerfModel owns one and
 * delegates every memory-leg computation to it, so the numbers here
 * are bit-identical to what timeOf folds internally.
 */
class ContentionModel
{
  public:
    /** Ambient-demand quantization levels (bucket 0 = uncontended). */
    static constexpr int kBuckets = 8;

    explicit ContentionModel(const SocDescription& soc) : desc(soc) {}

    const SocDescription& soc() const { return desc; }

    /** Shared DRAM bandwidth ceiling (GB/s). */
    double rooflineGbps() const { return desc.mem.dramBwGbps; }

    /** Compute-side time of @p w on @p p at @p freq_ghz (Amdahl over
     *  the PU's cores; the roofline's compute leg). */
    double computeSeconds(const WorkProfile& w, const PuModel& p,
                          double freq_ghz) const;

    /** Standalone memory intensity in [0, 1]: the fraction of the
     *  stage's isolated roofline time that is memory-bound. */
    double memIntensity(const WorkProfile& w, const PuModel& p) const;

    /** DRAM bandwidth demand of @p w on @p p (GB/s): the PU's link
     *  bandwidth weighted by the stage's memory intensity. */
    double
    demandGbps(const WorkProfile& w, const PuModel& p) const
    {
        return p.memBwGbps * memIntensity(w, p);
    }

    /** How a foreign PU's (or tenant's) demand counts against ours:
     *  scaled by contendedDemandWeight (bank-level parallelism). */
    double
    weightedDemand(double demand_gbps, bool same_pu) const
    {
        return same_pu ? demand_gbps
                       : demand_gbps * desc.mem.contendedDemandWeight;
    }

    /** Demand-proportional sharing: the factor scaling every PU's
     *  effective bandwidth when aggregate demand exceeds the roofline. */
    double
    bandwidthScale(double total_demand_gbps) const
    {
        return total_demand_gbps > desc.mem.dramBwGbps
            ? desc.mem.dramBwGbps / total_demand_gbps
            : 1.0;
    }

    /** LLC traffic factor in the given contention state. */
    double
    llcFactor(bool contended) const
    {
        return contended ? desc.mem.llcFactorContended
                         : desc.mem.llcFactorIsolated;
    }

    /** Quantize @p gbps to integer milli-GB/s (solver C6 coefficients;
     *  exact integer arithmetic instead of float comparisons). */
    static std::int64_t milliGbps(double gbps);

    /** Quantize an ambient demand into one of kBuckets levels;
     *  conservative (the bucket ceiling is >= the demand). */
    int bucketOf(double ambient_gbps) const;

    /** Upper edge of @p bucket in GB/s (0.0 for bucket 0). */
    double bucketCeilingGbps(int bucket) const;

    /**
     * Build the per-application snapshot for @p works: demand per
     * (stage, PU) and the interference-heavy slowdown stretch per
     * (stage, PU, bucket), measured against @p model (which must be
     * built over the same SoC).
     */
    ContentionProfile
    profileStages(const PerfModel& model,
                  std::span<const WorkProfile> works) const;

  private:
    const SocDescription& desc;
};

} // namespace bt::platform

#endif // BT_PLATFORM_CONTENTION_HPP
