#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace bt::sim {

namespace {
/// Work below this threshold counts as complete (guards float drift).
constexpr double kWorkEpsilon = 1e-12;

/// Typical pipeline sizes: a handful of chunks, each with at most a few
/// in-flight tasks and pending timers.
constexpr std::size_t kReserveActive = 16;
constexpr std::size_t kReserveTimers = 32;
} // namespace

Engine::Engine(RateFn rate_fn) : rateFn(std::move(rate_fn))
{
    BT_ASSERT(rateFn, "engine needs a rate function");
    active.reserve(kReserveActive);
    rateScratch.reserve(kReserveActive);
    finishedScratch.reserve(kReserveActive);
    timerSlots.reserve(kReserveTimers);
    timerHeap.reserve(kReserveTimers);
}

TaskId
Engine::startTask(std::uint64_t tag, double work)
{
    BT_ASSERT(work > 0.0, "task work must be positive, got ", work);
    ActiveTask t;
    t.id = nextId++;
    t.tag = tag;
    t.remaining = work;
    t.rate = 0.0;
    t.started = clock;
    active.push_back(t); // ids are monotonic: vector stays sorted
    ratesStale = true;
    return t.id;
}

bool
Engine::cancelTask(TaskId id)
{
    // The active vector is sorted by id (monotonic starts, order-
    // preserving erases), so the lookup is a binary search.
    const auto it = std::lower_bound(
        active.begin(), active.end(), id,
        [](const ActiveTask& t, TaskId v) { return t.id < v; });
    if (it == active.end() || it->id != id)
        return false;
    active.erase(it);
    ratesStale = true;
    return true;
}

double
Engine::startTime(TaskId id) const
{
    const auto it = std::lower_bound(
        active.begin(), active.end(), id,
        [](const ActiveTask& t, TaskId v) { return t.id < v; });
    if (it != active.end() && it->id == id)
        return it->started;
    // Completion callbacks may ask about the task that just finished;
    // those are staged here until their callbacks return.
    for (const auto& t : finishedScratch)
        if (t.id == id)
            return t.started;
    BT_PANIC("sim.unknown_task", "unknown task id ", id);
}

bool
Engine::timerBefore(std::uint32_t a, std::uint32_t b) const
{
    const TimerSlot& sa = timerSlots[a];
    const TimerSlot& sb = timerSlots[b];
    return sa.at < sb.at || (sa.at == sb.at && sa.seq < sb.seq);
}

void
Engine::heapPush(std::uint32_t slot)
{
    timerHeap.push_back(slot);
    std::size_t i = timerHeap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!timerBefore(timerHeap[i], timerHeap[parent]))
            break;
        std::swap(timerHeap[i], timerHeap[parent]);
        i = parent;
    }
}

std::uint32_t
Engine::heapPop()
{
    const std::uint32_t top = timerHeap.front();
    timerHeap.front() = timerHeap.back();
    timerHeap.pop_back();
    std::size_t i = 0;
    const std::size_t n = timerHeap.size();
    while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = l + 1;
        std::size_t best = i;
        if (l < n && timerBefore(timerHeap[l], timerHeap[best]))
            best = l;
        if (r < n && timerBefore(timerHeap[r], timerHeap[best]))
            best = r;
        if (best == i)
            break;
        std::swap(timerHeap[i], timerHeap[best]);
        i = best;
    }
    return top;
}

void
Engine::scheduleAt(double t, TimerFn fn)
{
    BT_ASSERT(t >= clock - 1e-15, "timer in the past: ", t, " < ", clock);

    // Acquire a slab slot (recycled from the free list when possible)
    // and move the callback straight into it - no per-timer heap block.
    std::uint32_t slot;
    if (freeSlot >= 0) {
        slot = static_cast<std::uint32_t>(freeSlot);
        freeSlot = timerSlots[slot].nextFree;
    } else {
        slot = static_cast<std::uint32_t>(timerSlots.size());
        timerSlots.emplace_back();
    }
    TimerSlot& s = timerSlots[slot];
    s.at = std::max(t, clock);
    s.seq = timerSeq++;
    s.fn = std::move(fn);
    s.nextFree = -1;
    heapPush(slot);
}

void
Engine::refreshRates()
{
    if (!ratesStale || active.empty()) {
        ratesStale = false;
        return;
    }
    rateScratch.assign(active.size(), 0.0);
    rateFn(active, rateScratch);
    for (std::size_t i = 0; i < active.size(); ++i) {
        BT_ASSERT(rateScratch[i] > 0.0,
                  "rate must be positive for task ", active[i].id);
        active[i].rate = rateScratch[i];
    }
    ratesStale = false;
}

void
Engine::advanceTo(double t)
{
    BT_ASSERT(t >= clock - 1e-15);
    const double dt = t - clock;
    if (dt > 0.0) {
        if (advance)
            advance(clock, t);
        for (auto& task : active)
            task.remaining
                = std::max(0.0, task.remaining - task.rate * dt);
    }
    clock = t;
}

bool
Engine::step()
{
    if (active.empty() && timerHeap.empty())
        return false;

    refreshRates();

    // Earliest completion at current rates; remember which task it is
    // so float rounding cannot leave the event without a finisher.
    double completionAt = std::numeric_limits<double>::infinity();
    std::size_t earliest = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
        const double at = clock + active[i].remaining / active[i].rate;
        if (at < completionAt) {
            completionAt = at;
            earliest = i;
        }
    }

    const double timerAt = timerHeap.empty()
        ? std::numeric_limits<double>::infinity()
        : timerSlots[timerHeap.front()].at;

    if (timerAt <= completionAt) {
        advanceTo(timerAt);
        // Pop exactly one timer; its callback may add tasks/timers (the
        // slot is released first so the callback can reuse it). Rates
        // stay valid unless the callback changes the active set or
        // calls invalidateRates() - a timer alone alters nothing the
        // rate function reads.
        const std::uint32_t slot = heapPop();
        TimerFn fn = std::move(timerSlots[slot].fn);
        timerSlots[slot].nextFree = freeSlot;
        freeSlot = static_cast<std::int32_t>(slot);
        fn();
        return true;
    }

    // Guarantee the argmin task registers as finished despite rounding.
    active[earliest].remaining = 0.0;
    advanceTo(completionAt);

    // Collect every task that finished at this instant, remove them from
    // the active set first (order-preserving: the vector stays sorted by
    // id), then fire callbacks (which may start tasks).
    finishedScratch.clear();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
        if (active[i].remaining <= kWorkEpsilon) {
            finishedScratch.push_back(active[i]);
        } else {
            if (keep != i)
                active[keep] = active[i];
            ++keep;
        }
    }
    active.resize(keep);
    BT_ASSERT(!finishedScratch.empty(),
              "completion event with no finished task");
    ratesStale = true;
    for (const auto& task : finishedScratch) {
        if (completion)
            completion(task.id, task.tag);
    }
    finishedScratch.clear();
    return true;
}

double
Engine::run(double horizon)
{
    // A sentinel timer pins the stopping point so the last step cannot
    // overshoot the horizon.
    if (horizon >= 0.0 && horizon > clock)
        scheduleAt(horizon, [] {});
    while (!active.empty() || !timerHeap.empty()) {
        if (horizon >= 0.0 && clock >= horizon)
            break;
        if (!step())
            break;
    }
    return clock;
}

} // namespace bt::sim
