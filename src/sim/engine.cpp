#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace bt::sim {

namespace {
/// Work below this threshold counts as complete (guards float drift).
constexpr double kWorkEpsilon = 1e-12;
} // namespace

Engine::Engine(RateFn rate_fn) : rateFn(std::move(rate_fn))
{
    BT_ASSERT(rateFn, "engine needs a rate function");
}

TaskId
Engine::startTask(std::uint64_t tag, double work)
{
    BT_ASSERT(work > 0.0, "task work must be positive, got ", work);
    ActiveTask t;
    t.id = nextId++;
    t.tag = tag;
    t.remaining = work;
    t.rate = 0.0;
    active.push_back(t);
    startTimes[t.id] = clock;
    ratesStale = true;
    return t.id;
}

bool
Engine::cancelTask(TaskId id)
{
    const auto it
        = std::find_if(active.begin(), active.end(),
                       [id](const ActiveTask& t) { return t.id == id; });
    if (it == active.end())
        return false;
    active.erase(it);
    startTimes.erase(id);
    ratesStale = true;
    return true;
}

double
Engine::startTime(TaskId id) const
{
    auto it = startTimes.find(id);
    BT_ASSERT(it != startTimes.end(), "unknown task id ", id);
    return it->second;
}

void
Engine::scheduleAt(double t, std::function<void()> fn)
{
    BT_ASSERT(t >= clock - 1e-15, "timer in the past: ", t, " < ", clock);
    timers.push(Timer{std::max(t, clock), timerSeq++, std::move(fn)});
}

void
Engine::refreshRates()
{
    if (!ratesStale || active.empty()) {
        ratesStale = false;
        return;
    }
    std::vector<double> rates(active.size(), 0.0);
    rateFn(active, rates);
    for (std::size_t i = 0; i < active.size(); ++i) {
        BT_ASSERT(rates[i] > 0.0, "rate must be positive for task ",
                  active[i].id);
        active[i].rate = rates[i];
    }
    ratesStale = false;
}

void
Engine::advanceTo(double t)
{
    BT_ASSERT(t >= clock - 1e-15);
    const double dt = t - clock;
    if (dt > 0.0) {
        if (advance)
            advance(clock, t);
        for (auto& task : active)
            task.remaining
                = std::max(0.0, task.remaining - task.rate * dt);
    }
    clock = t;
}

bool
Engine::step()
{
    if (active.empty() && timers.empty())
        return false;

    refreshRates();

    // Earliest completion at current rates; remember which task it is
    // so float rounding cannot leave the event without a finisher.
    double completionAt = std::numeric_limits<double>::infinity();
    std::size_t earliest = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
        const double at = clock + active[i].remaining / active[i].rate;
        if (at < completionAt) {
            completionAt = at;
            earliest = i;
        }
    }

    const double timerAt = timers.empty()
        ? std::numeric_limits<double>::infinity()
        : timers.top().at;

    if (timerAt <= completionAt) {
        advanceTo(timerAt);
        // Pop exactly one timer; callbacks may add tasks/timers.
        auto fn = std::move(const_cast<Timer&>(timers.top()).fn);
        timers.pop();
        fn();
        ratesStale = true;
        return true;
    }

    // Guarantee the argmin task registers as finished despite rounding.
    active[earliest].remaining = 0.0;
    advanceTo(completionAt);

    // Collect every task that finished at this instant, remove them from
    // the active set first, then fire callbacks (which may start tasks).
    std::vector<ActiveTask> finished;
    for (auto it = active.begin(); it != active.end();) {
        if (it->remaining <= kWorkEpsilon) {
            finished.push_back(*it);
            it = active.erase(it);
        } else {
            ++it;
        }
    }
    BT_ASSERT(!finished.empty(), "completion event with no finished task");
    ratesStale = true;
    for (const auto& task : finished) {
        if (completion)
            completion(task.id, task.tag);
        startTimes.erase(task.id);
    }
    return true;
}

double
Engine::run(double horizon)
{
    // A sentinel timer pins the stopping point so the last step cannot
    // overshoot the horizon.
    if (horizon >= 0.0 && horizon > clock)
        scheduleAt(horizon, [] {});
    while (!active.empty() || !timers.empty()) {
        if (horizon >= 0.0 && clock >= horizon)
            break;
        if (!step())
            break;
    }
    return clock;
}

} // namespace bt::sim
