/**
 * @file
 * Discrete-event engine with processor-sharing task progress.
 *
 * This is the virtual-time substrate for the simulated SoCs (DESIGN.md
 * substitution table): every "execution" of a pipeline stage is a Task
 * whose progress rate is recomputed each time the set of concurrently
 * active tasks changes. The rate function is supplied by the platform
 * performance model, which is where interference (shared DRAM bandwidth,
 * DVFS boost, etc.) lives. The engine itself only integrates work over
 * time and fires completion callbacks.
 *
 * Rates are piecewise constant between events, so integration is exact:
 * the next event is either a scheduled timer or the earliest task
 * completion at current rates.
 */

#ifndef BT_SIM_ENGINE_HPP
#define BT_SIM_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <span>
#include <vector>

namespace bt::sim {

/** Opaque handle to a running task. */
using TaskId = std::int64_t;

/** Snapshot of one active task, visible to the rate function. */
struct ActiveTask
{
    TaskId id = -1;
    std::uint64_t tag = 0;   ///< caller-defined meaning (e.g. stage|pu key)
    double remaining = 0.0;  ///< work units left
    double rate = 0.0;       ///< current work units per second
};

/**
 * Computes the progress rate (work units per virtual second) of each
 * active task given the whole active set. Invoked whenever the active set
 * changes. Must write a strictly positive rate for every task.
 */
using RateFn = std::function<void(std::span<const ActiveTask> active,
                                  std::span<double> rates_out)>;

/** Fired when a task's work reaches zero. */
using CompletionFn = std::function<void(TaskId, std::uint64_t tag)>;

/**
 * Observes every virtual-time interval [t0, t1) over which the active
 * set was constant; used for time-integrated metrics such as energy.
 */
using AdvanceFn = std::function<void(double t0, double t1)>;

/**
 * Virtual-time engine. Single-threaded: callbacks run inline during
 * run() and may start further tasks or schedule timers.
 */
class Engine
{
  public:
    explicit Engine(RateFn rate_fn);

    /** Current virtual time in seconds. */
    double now() const { return clock; }

    /** Register the completion callback (may be empty). */
    void onComplete(CompletionFn fn) { completion = std::move(fn); }

    /** Register the interval observer (called before state changes). */
    void onAdvance(AdvanceFn fn) { advance = std::move(fn); }

    /**
     * Begin a task with @p work units of work at the current time.
     * @return its id, unique within this engine.
     */
    TaskId startTask(std::uint64_t tag, double work);

    /** Number of currently active tasks. */
    std::size_t activeCount() const { return active.size(); }

    /**
     * Abort @p id: remove it from the active set without firing the
     * completion callback (the fault layer's timeout path).
     * @return whether the task was still active.
     */
    bool cancelTask(TaskId id);

    /** Virtual time at which @p id started. */
    double startTime(TaskId id) const;

    /** Schedule @p fn to run at absolute virtual time @p t (>= now). */
    void scheduleAt(double t, std::function<void()> fn);

    /**
     * Run until no tasks are active and no timers pending, or until
     * virtual time exceeds @p horizon (negative = unbounded).
     * @return final virtual time.
     */
    double run(double horizon = -1.0);

    /**
     * Advance until the next event is processed (one completion or one
     * timer). @return false when nothing is pending.
     */
    bool step();

  private:
    void refreshRates();
    void advanceTo(double t);

    RateFn rateFn;
    CompletionFn completion;
    AdvanceFn advance;
    double clock = 0.0;
    TaskId nextId = 0;

    std::vector<ActiveTask> active;
    std::map<TaskId, double> startTimes;

    struct Timer
    {
        double at;
        std::uint64_t seq; ///< tie-break: FIFO among equal timestamps
        std::function<void()> fn;
        bool operator>(const Timer& o) const
        {
            return at > o.at || (at == o.at && seq > o.seq);
        }
    };
    std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers;
    std::uint64_t timerSeq = 0;
    bool ratesStale = true;
};

} // namespace bt::sim

#endif // BT_SIM_ENGINE_HPP
