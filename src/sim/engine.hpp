/**
 * @file
 * Discrete-event engine with processor-sharing task progress.
 *
 * This is the virtual-time substrate for the simulated SoCs (DESIGN.md
 * substitution table): every "execution" of a pipeline stage is a Task
 * whose progress rate is recomputed each time the set of concurrently
 * active tasks changes. The rate function is supplied by the platform
 * performance model, which is where interference (shared DRAM bandwidth,
 * DVFS boost, etc.) lives. The engine itself only integrates work over
 * time and fires completion callbacks.
 *
 * Rates are piecewise constant between events, so integration is exact:
 * the next event is either a scheduled timer or the earliest task
 * completion at current rates.
 *
 * Hot-path design (this engine runs once per autotuning candidate, so
 * the planning loop executes millions of events):
 *  - timer callbacks are stored in a slab of reusable slots behind a
 *    small-buffer move-only TimerFn, so scheduleAt performs no heap
 *    allocation for typical captures;
 *  - the event queue is an indexed binary heap of slot ids over that
 *    slab (no callback moves during sift);
 *  - the active vector stays sorted by TaskId (ids are monotonic and
 *    erases preserve order), making cancelTask a binary search;
 *  - rates are re-read only when the active set changes or a callback
 *    declares outside rate state dirty via invalidateRates().
 */

#ifndef BT_SIM_ENGINE_HPP
#define BT_SIM_ENGINE_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace bt::sim {

/** Opaque handle to a running task. */
using TaskId = std::int64_t;

/** Snapshot of one active task, visible to the rate function. */
struct ActiveTask
{
    TaskId id = -1;
    std::uint64_t tag = 0;   ///< caller-defined meaning (e.g. stage|pu key)
    double remaining = 0.0;  ///< work units left
    double rate = 0.0;       ///< current work units per second
    double started = 0.0;    ///< virtual time the task began
};

/**
 * Computes the progress rate (work units per virtual second) of each
 * active task given the whole active set. Invoked whenever the active set
 * changes. Must write a strictly positive rate for every task.
 */
using RateFn = std::function<void(std::span<const ActiveTask> active,
                                  std::span<double> rates_out)>;

/** Fired when a task's work reaches zero. */
using CompletionFn = std::function<void(TaskId, std::uint64_t tag)>;

/**
 * Observes every virtual-time interval [t0, t1) over which the active
 * set was constant; used for time-integrated metrics such as energy.
 */
using AdvanceFn = std::function<void(double t0, double t1)>;

/**
 * Move-only callable for timer callbacks with small-buffer storage:
 * typical captures (a handful of pointers and scalars) live inline in
 * the timer slab instead of a std::function heap block per scheduleAt.
 * Larger callables fall back to one owned heap allocation.
 */
class TimerFn
{
  public:
    TimerFn() = default;

    template <typename F,
              std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, TimerFn>
                      && std::is_invocable_v<std::decay_t<F>&>,
                  int> = 0>
    TimerFn(F&& f) // NOLINT(bugprone-forwarding-reference-overload)
    {
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= kInlineSize
                      && alignof(D) <= alignof(std::max_align_t)
                      && std::is_nothrow_move_constructible_v<D>) {
            ::new (storage()) D(std::forward<F>(f));
            ops = &inlineOps<D>;
        } else {
            *static_cast<D**>(storage()) = new D(std::forward<F>(f));
            ops = &heapOps<D>;
        }
    }

    TimerFn(TimerFn&& o) noexcept : ops(o.ops)
    {
        if (ops)
            ops->relocate(o.storage(), storage());
        o.ops = nullptr;
    }

    TimerFn&
    operator=(TimerFn&& o) noexcept
    {
        if (this != &o) {
            reset();
            ops = o.ops;
            if (ops)
                ops->relocate(o.storage(), storage());
            o.ops = nullptr;
        }
        return *this;
    }

    TimerFn(const TimerFn&) = delete;
    TimerFn& operator=(const TimerFn&) = delete;

    ~TimerFn() { reset(); }

    explicit operator bool() const { return ops != nullptr; }

    void
    operator()()
    {
        ops->call(storage());
    }

  private:
    /** Fits the dispatcher's timer lambdas (captures of a reference
     *  frame pointer plus a few ints/doubles) with room to spare. */
    static constexpr std::size_t kInlineSize = 48;

    struct Ops
    {
        void (*call)(void* s);
        /** Move-construct from @p from into @p to and destroy @p from
         *  (trivial pointer copy for the heap representation). */
        void (*relocate)(void* from, void* to);
        void (*destroy)(void* s);
    };

    template <typename D> static constexpr Ops inlineOps{
        [](void* s) { (*static_cast<D*>(s))(); },
        [](void* from, void* to) {
            ::new (to) D(std::move(*static_cast<D*>(from)));
            static_cast<D*>(from)->~D();
        },
        [](void* s) { static_cast<D*>(s)->~D(); },
    };

    template <typename D> static constexpr Ops heapOps{
        [](void* s) { (**static_cast<D**>(s))(); },
        [](void* from, void* to) {
            *static_cast<D**>(to) = *static_cast<D**>(from);
        },
        [](void* s) { delete *static_cast<D**>(s); },
    };

    void
    reset()
    {
        if (ops) {
            ops->destroy(storage());
            ops = nullptr;
        }
    }

    void* storage() { return buf; }

    const Ops* ops = nullptr;
    alignas(std::max_align_t) unsigned char buf[kInlineSize];
};

/**
 * Virtual-time engine. Single-threaded: callbacks run inline during
 * run() and may start further tasks or schedule timers.
 */
class Engine
{
  public:
    explicit Engine(RateFn rate_fn);

    /** Current virtual time in seconds. */
    double now() const { return clock; }

    /** Register the completion callback (may be empty). */
    void onComplete(CompletionFn fn) { completion = std::move(fn); }

    /** Register the interval observer (called before state changes). */
    void onAdvance(AdvanceFn fn) { advance = std::move(fn); }

    /**
     * Begin a task with @p work units of work at the current time.
     * @return its id, unique within this engine.
     */
    TaskId startTask(std::uint64_t tag, double work);

    /** Number of currently active tasks. */
    std::size_t activeCount() const { return active.size(); }

    /**
     * Abort @p id: remove it from the active set without firing the
     * completion callback (the fault layer's timeout path). O(log n)
     * lookup: the active vector is sorted by id.
     * @return whether the task was still active.
     */
    bool cancelTask(TaskId id);

    /** Virtual time at which @p id started. */
    double startTime(TaskId id) const;

    /** Schedule @p fn to run at absolute virtual time @p t (>= now). */
    void scheduleAt(double t, TimerFn fn);

    /**
     * Force rates to be re-read before the next event even though the
     * active set did not change - for timer callbacks that mutate
     * outside state the rate function reads (e.g. a thermal-slowdown
     * window scaling a PU's clock).
     */
    void invalidateRates() { ratesStale = true; }

    /**
     * Run until no tasks are active and no timers pending, or until
     * virtual time exceeds @p horizon (negative = unbounded).
     * @return final virtual time.
     */
    double run(double horizon = -1.0);

    /**
     * Advance until the next event is processed (one completion or one
     * timer). @return false when nothing is pending.
     */
    bool step();

  private:
    /** One slab entry: heap key + callback + free-list link. */
    struct TimerSlot
    {
        double at = 0.0;
        std::uint64_t seq = 0; ///< FIFO tie-break among equal times
        TimerFn fn;
        std::int32_t nextFree = -1;
    };

    void refreshRates();
    void advanceTo(double t);

    bool timerBefore(std::uint32_t a, std::uint32_t b) const;
    void heapPush(std::uint32_t slot);
    std::uint32_t heapPop();

    RateFn rateFn;
    CompletionFn completion;
    AdvanceFn advance;
    double clock = 0.0;
    TaskId nextId = 0;

    std::vector<ActiveTask> active; ///< sorted by id (monotonic starts)

    std::vector<TimerSlot> timerSlots; ///< slab; slots recycled in place
    std::int32_t freeSlot = -1;        ///< head of the free-slot list
    std::vector<std::uint32_t> timerHeap; ///< indexed min-heap of slots
    std::uint64_t timerSeq = 0;
    bool ratesStale = true;

    std::vector<double> rateScratch;     ///< refreshRates output buffer
    std::vector<ActiveTask> finishedScratch; ///< completions in flight
};

} // namespace bt::sim

#endif // BT_SIM_ENGINE_HPP
