#include "core/data_parallel.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.hpp"

namespace bt::core {

std::vector<double>
dataParallelStageTimes(const Application& app,
                       const ProfilingTable& table,
                       DataParallelConfig cfg)
{
    BT_ASSERT(table.numStages() == app.numStages(),
              "table does not match application");
    BT_ASSERT(cfg.splittableFraction >= 0.0
              && cfg.splittableFraction <= 1.0);

    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(app.numStages()));
    for (int s = 0; s < app.numStages(); ++s) {
        double inv_sum = 0.0;
        double fastest = std::numeric_limits<double>::infinity();
        for (int p = 0; p < table.numPus(); ++p) {
            const double t = table.at(s, p);
            BT_ASSERT(t > 0.0);
            inv_sum += 1.0 / t;
            fastest = std::min(fastest, t);
        }
        const double split_part
            = cfg.splittableFraction / inv_sum;
        const double serial_part
            = (1.0 - cfg.splittableFraction) * fastest;
        times.push_back(split_part + serial_part
                        + cfg.syncOverheadSeconds);
    }
    return times;
}

double
dataParallelLatency(const Application& app, const ProfilingTable& table,
                    DataParallelConfig cfg)
{
    const auto times = dataParallelStageTimes(app, table, cfg);
    return std::accumulate(times.begin(), times.end(), 0.0);
}

} // namespace bt::core
