/**
 * @file
 * TaskObject: the unit of data flowing through a pipeline (paper
 * Sec. 3.4). It bundles every UsmBuffer an application needs to carry one
 * streaming input from the first stage to the last - persistent data,
 * pre-allocated scratchpads, and scalar parameters - so dispatcher
 * threads can hand a single pointer through the SPSC queues.
 */

#ifndef BT_CORE_TASK_OBJECT_HPP
#define BT_CORE_TASK_OBJECT_HPP

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "core/usm_buffer.hpp"

namespace bt::core {

/**
 * Named unified-memory buffers plus scalar metadata. Buffers are
 * allocated once (construction time) and recycled across tasks by the
 * multi-buffering executor; scalars carry per-task values such as element
 * counts produced by one stage and consumed by the next.
 */
class TaskObject
{
  public:
    TaskObject() = default;
    TaskObject(const TaskObject&) = delete;
    TaskObject& operator=(const TaskObject&) = delete;
    TaskObject(TaskObject&&) = default;
    TaskObject& operator=(TaskObject&&) = default;

    /** Allocate a buffer of @p bytes under @p name (must be fresh). */
    UsmBuffer& addBuffer(const std::string& name, std::size_t bytes);

    /** Whether a buffer called @p name exists. */
    bool hasBuffer(const std::string& name) const;

    /** Look up a buffer; panics on unknown names (programming error). */
    UsmBuffer& buffer(const std::string& name);
    const UsmBuffer& buffer(const std::string& name) const;

    /** Typed whole-buffer view. */
    template <typename T>
    std::span<T>
    view(const std::string& name)
    {
        return buffer(name).span<T>();
    }

    template <typename T>
    std::span<const T>
    view(const std::string& name) const
    {
        return buffer(name).span<T>();
    }

    /** Set / read an integer scalar (e.g. "unique_count"). */
    void setScalar(const std::string& name, std::int64_t value);
    std::int64_t scalar(const std::string& name) const;
    bool hasScalar(const std::string& name) const;

    /** Sequence number of the streaming input this object carries. */
    std::int64_t taskIndex() const { return index; }
    void setTaskIndex(std::int64_t i) { index = i; }

    /**
     * Prepare for recycling: clears scalars and the task index but keeps
     * all buffer allocations (the paper pre-allocates scratchpads to
     * avoid allocation on the hot path).
     */
    void reset();

  private:
    std::map<std::string, UsmBuffer> buffers;
    std::map<std::string, std::int64_t> scalars;
    std::int64_t index = -1;
};

} // namespace bt::core

#endif // BT_CORE_TASK_OBJECT_HPP
