/**
 * @file
 * Pipeline schedules: the mapping from stages to PUs that the
 * BT-Optimizer produces and the BT-Implementer executes.
 *
 * Under the paper's contiguity constraint (C2), a schedule is an ordered
 * partition of the stage sequence into chunks, each chunk assigned to a
 * distinct PU class. This module provides the data type, predicted-cost
 * queries against a profiling table, and exhaustive enumeration of the
 * whole schedule space (used both as a baseline optimizer and to
 * cross-validate the constraint solver).
 */

#ifndef BT_CORE_SCHEDULE_HPP
#define BT_CORE_SCHEDULE_HPP

#include <string>
#include <vector>

#include "core/profiling_table.hpp"
#include "platform/soc.hpp"

namespace bt::core {

/** A maximal run of contiguous stages mapped to one PU class. */
struct Chunk
{
    int firstStage = 0; ///< inclusive
    int lastStage = 0;  ///< inclusive
    int pu = 0;         ///< PU class index within the SoC

    int numStages() const { return lastStage - firstStage + 1; }
};

/** An ordered chunk partition covering all stages. */
class Schedule
{
  public:
    Schedule() = default;
    explicit Schedule(std::vector<Chunk> chunks_);

    /** Single-chunk schedule: every stage on @p pu (the baselines). */
    static Schedule homogeneous(int num_stages, int pu);

    /** Build from a per-stage PU assignment; panics if it violates the
     *  contiguity constraint (a PU appearing in two separate runs). */
    static Schedule fromAssignment(const std::vector<int>& stage_to_pu);

    const std::vector<Chunk>& chunks() const { return chunks_; }
    int numChunks() const { return static_cast<int>(chunks_.size()); }
    int numStages() const;

    /** PU index executing stage @p s. */
    int puOfStage(int s) const;

    /** Per-stage assignment vector (inverse of fromAssignment). */
    std::vector<int> toAssignment() const;

    /** Well-formedness against a stage count and PU count. */
    bool valid(int num_stages, int num_pus) const;

    /** Predicted runtime of chunk @p c: sum of its stages' table rows. */
    double chunkTime(const ProfilingTable& table, int c) const;

    /** Predicted steady-state task interval: the bottleneck chunk. */
    double bottleneckTime(const ProfilingTable& table) const;

    /** Gapness = longest minus shortest chunk runtime (objective O1). */
    double gapness(const ProfilingTable& table) const;

    /** e.g. "[morton..sort]->big | [tree]->gpu" with PU labels. */
    std::string toString(const platform::SocDescription& soc,
                         const std::vector<std::string>& names) const;

    /** Compact form "0011222" (stage index -> PU digit). */
    std::string compactString() const;

    bool operator==(const Schedule& other) const
    {
        return toAssignment() == other.toAssignment();
    }

  private:
    std::vector<Chunk> chunks_;
};

/**
 * Enumerate every schedule satisfying C1 (one PU per stage) and C2
 * (contiguity, i.e. distinct PUs per chunk): all ordered partitions of
 * the stage sequence into at most @p num_pus chunks with pairwise
 * distinct PU assignments. For 9 stages and 4 PUs this is 2,116
 * schedules.
 */
std::vector<Schedule> enumerateSchedules(int num_stages, int num_pus);

/** Count of schedules enumerateSchedules would return. */
std::uint64_t countSchedules(int num_stages, int num_pus);

/**
 * Closed-form size of the schedule space:
 *
 *     sum_{k=1}^{min(n,m)} C(n-1, k-1) * m! / (m-k)!
 *
 * (choose the k-1 chunk boundaries, then an ordered selection of k
 * distinct PUs). Equal to countSchedules but O(min(n,m)) instead of
 * walking the whole enumeration tree, so it serves as the cheap
 * refusal predicate of the exact planner engines
 * (PlannerSpec::exactSpaceLimit). Saturates at UINT64_MAX for spaces
 * past 2^64.
 */
std::uint64_t scheduleSpaceSize(int num_stages, int num_pus);

} // namespace bt::core

#endif // BT_CORE_SCHEDULE_HPP
