/**
 * @file
 * Unified shared memory buffers (paper Sec. 3.1).
 *
 * On a UMA SoC every PU addresses one DRAM pool, so a buffer is a single
 * allocation visible to host and device kernels with zero copies. The
 * paper fronts this with std::pmr::vector over backend allocators
 * (cudaMallocManaged on CUDA, VkBuffer memory on Vulkan); here the
 * backend allocator abstraction is kept - UsmAllocator - with a host
 * implementation, since the simulated devices share the host address
 * space anyway. Kernels receive raw pointers/spans into these buffers,
 * exactly as in the paper's kernel signatures (Fig. 3).
 */

#ifndef BT_CORE_USM_BUFFER_HPP
#define BT_CORE_USM_BUFFER_HPP

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace bt::core {

/**
 * Backend allocator for unified memory, the seam where
 * cudaMallocManaged / VkDeviceMemory would plug in on real hardware.
 */
class UsmAllocator
{
  public:
    virtual ~UsmAllocator() = default;

    /** Allocate @p bytes with at least 64-byte alignment. */
    virtual void* allocate(std::size_t bytes) = 0;

    /** Release a pointer previously returned by allocate. */
    virtual void deallocate(void* p, std::size_t bytes) = 0;

    /** Process-wide host allocator instance. */
    static UsmAllocator& host();
};

/**
 * One unified-memory allocation. Move-only; owns its storage via the
 * allocator it was created with.
 */
class UsmBuffer
{
  public:
    UsmBuffer() = default;

    /** Allocate @p bytes (zero-initialized) from @p alloc. */
    explicit UsmBuffer(std::size_t bytes,
                       UsmAllocator& alloc = UsmAllocator::host());

    ~UsmBuffer();
    UsmBuffer(UsmBuffer&& other) noexcept;
    UsmBuffer& operator=(UsmBuffer&& other) noexcept;
    UsmBuffer(const UsmBuffer&) = delete;
    UsmBuffer& operator=(const UsmBuffer&) = delete;

    std::size_t sizeBytes() const { return bytes_; }
    bool empty() const { return bytes_ == 0; }

    /** Raw device+host visible base pointer. */
    void* data() { return base; }
    const void* data() const { return base; }

    /** Typed view over the full buffer; size must divide evenly. */
    template <typename T>
    std::span<T>
    span()
    {
        return {static_cast<T*>(base), bytes_ / sizeof(T)};
    }

    template <typename T>
    std::span<const T>
    span() const
    {
        return {static_cast<const T*>(base), bytes_ / sizeof(T)};
    }

    /** Zero the contents. */
    void clear();

  private:
    void release();

    UsmAllocator* allocator = nullptr;
    void* base = nullptr;
    std::size_t bytes_ = 0;
};

} // namespace bt::core

#endif // BT_CORE_USM_BUFFER_HPP
