/**
 * @file
 * Memoized schedule evaluation for the throughput-oriented planning
 * path (BT-Optimizer hot loop).
 *
 * Producing a deployed schedule means scoring tens of thousands of
 * (stage -> PU) assignments: every solver minimize() call walks the
 * whole propagation-pruned space, the exhaustive engine re-scores each
 * enumerated schedule, and fault-time replans repeat both. All of those
 * scores decompose into per-chunk contributions - the predicted time of
 * running stages [first, last] back-to-back on one PU - and the chunk
 * space is tiny (O(stages^2 x PUs)) while the schedule space is
 * exponential. ScheduleEvaluator exploits that:
 *
 *  1. a dense *chunk-time table* filled once by extending each range one
 *     stage at a time - the same left-fold ProfilingTable::rangeTime
 *     computes, so every entry is bit-identical to the from-scratch sum;
 *  2. a *keyed prediction cache*: full Prediction records (latency,
 *     gapness, energy, chunk count) memoized by a packed assignment key,
 *     shared across solver objective callbacks, exhaustive enumeration,
 *     the annealed engine's move loop (anneal.hpp - millions of move
 *     evaluations become cache lookups), and graceful-degradation
 *     replans against the same table.
 *
 * Cross-tenant co-placement rides the same machinery: when constructed
 * with a ContentionProfile, predictions can be asked for under an
 * ambient-bandwidth *bucket* (a co-runner's quantized DRAM demand).
 * Each bucket gets its own chunk-time table - the base table's cells
 * multiplied by the profile's per-(stage, PU, bucket) stretch factors,
 * built lazily on first use - and its own memo, so scoring a schedule
 * against any co-runner level is a cached lookup. Bucket 0 is the
 * uncontended baseline and shares the bit-exactness contract below.
 *
 * Bit-exactness contract: every number an evaluator returns is the
 * exact double the unmemoized path (Schedule::bottleneckTime /
 * Schedule::gapness / Optimizer's from-scratch energy model) would
 * produce. Latency and gapness are max/min folds over cached chunk
 * times; the energy model replicates the from-scratch loop
 * operation-for-operation over the same cached values. Tests
 * cross-validate this over entire schedule spaces.
 *
 * Thread compatibility: the evaluator memoizes internally and is NOT
 * safe for concurrent use. The planning path is single-threaded (only
 * candidate *executions* fan out, see autotuner.hpp); fault-time
 * replans serialize through their backend's recovery lock.
 */

#ifndef BT_CORE_SCHEDULE_EVAL_HPP
#define BT_CORE_SCHEDULE_EVAL_HPP

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/profiling_table.hpp"
#include "core/schedule.hpp"
#include "platform/perf_model.hpp"
#include "platform/soc.hpp"

namespace bt::core {

/** Model-predicted cost of one schedule, independent of its Schedule
 *  object identity (everything Optimizer ranks on). */
struct Prediction
{
    double latency = 0.0;  ///< bottleneck chunk time, seconds
    double gapness = 0.0;  ///< longest minus shortest chunk, seconds
    double energyJ = 0.0;  ///< predicted per-task SoC energy, joules
    int numChunks = 0;     ///< distinct PU classes used
    /** Aggregate DRAM demand of the assignment: sum over used PUs of
     *  the hungriest stage placed there. 0 without a contention
     *  profile. Milli-GB/s (exact integers) plus the GB/s view. */
    std::int64_t demandMilli = 0;
    double demandGbps = 0.0;
};

/** Cache effectiveness counters (for stats and the bench harness). */
struct EvalStats
{
    std::uint64_t hits = 0;        ///< predictions served from the memo
    std::uint64_t misses = 0;      ///< predictions computed and stored
    std::uint64_t unkeyed = 0;     ///< computed without memoization
};

/**
 * Incremental, memoizing evaluator over one (device, profiling table)
 * pair. Construction costs O(stages^2 x PUs); every evaluation after
 * that is O(stages) worst case and O(1) on a cache hit.
 */
class ScheduleEvaluator
{
  public:
    /**
     * @p contention (optional) enables bucketed predictions; it must
     * describe the same (stage, PU) grid as @p table and outlive the
     * evaluator. Without it only bucket 0 is valid.
     */
    ScheduleEvaluator(const platform::SocDescription& soc,
                      const ProfilingTable& table,
                      const platform::PerfModel& power_model,
                      const platform::ContentionProfile* contention
                      = nullptr);

    const ProfilingTable& table() const { return table_; }

    int numStages() const { return numStages_; }
    int numPus() const { return numPus_; }

    /** Whether assignments pack into 64-bit memo keys (instance fits
     *  16 stages x 16 PU classes). The annealed engine reuses the same
     *  condition for its visited-pool dedup keys. */
    bool keyed() const { return keyed_; }

    /** Chunk time of stages [first, last] on @p pu; bit-identical to
     *  table().rangeTime(first, last, pu), O(1). */
    double
    chunkTime(int first, int last, int pu) const
    {
        return chunkTimes_[chunkIndex(first, last, pu)];
    }

    /**
     * Predict @p stage_to_pu (one PU index per stage, contiguity
     * C2-respecting) under ambient bucket @p bucket. Memoized by
     * packed key when the instance fits 16 stages x 16 PU classes;
     * computed directly otherwise.
     */
    const Prediction& predict(std::span<const int> stage_to_pu,
                              int bucket = 0);

    /** Convenience overload scoring a built Schedule. */
    const Prediction& predict(const Schedule& schedule, int bucket = 0);

    /** Memo effectiveness since construction. */
    const EvalStats& stats() const { return stats_; }

  private:
    std::size_t
    chunkIndex(int first, int last, int pu) const
    {
        return (static_cast<std::size_t>(first)
                * static_cast<std::size_t>(numStages_)
                + static_cast<std::size_t>(last))
            * static_cast<std::size_t>(numPus_)
            + static_cast<std::size_t>(pu);
    }

    /** From-scratch-shaped evaluation over the cached chunk times. */
    Prediction evaluate(std::span<const int> stage_to_pu, int bucket);

    /** Chunk-time table of @p bucket, building it on first use. */
    const std::vector<double>& chunkTable(int bucket);

    const platform::SocDescription& soc_;
    const ProfilingTable& table_;
    const platform::PerfModel& powerModel_;
    const platform::ContentionProfile* contention_;
    int numStages_;
    int numPus_;
    bool keyed_; ///< assignments pack into 64 bits

    std::vector<double> chunkTimes_; ///< [first][last][pu], left-fold
    std::unordered_map<std::uint64_t, Prediction> memo_;
    /** Lazily built stretched chunk tables and memos, bucket > 0. */
    std::unordered_map<int, std::vector<double>> bucketChunkTimes_;
    std::unordered_map<int, std::unordered_map<std::uint64_t, Prediction>>
        bucketMemo_;
    Prediction scratch_; ///< returned for unkeyed instances
    EvalStats stats_;
    std::vector<int> assignScratch_; ///< Schedule -> assignment, reused
    std::vector<char> usedScratch_;  ///< energy model's used-PU flags
};

} // namespace bt::core

#endif // BT_CORE_SCHEDULE_EVAL_HPP
