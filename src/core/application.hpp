/**
 * @file
 * The core application abstractions of BetterTogether (paper Sec. 3.1):
 * Stage (a unit of computation with CPU and GPU kernel implementations),
 * Application (a sequence of stages over streaming TaskObjects), and
 * TaskGraph (an acyclic dependency graph linearized by topological sort
 * so non-linear applications, like Octree, fit the pipeline model).
 */

#ifndef BT_CORE_APPLICATION_HPP
#define BT_CORE_APPLICATION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/task_object.hpp"
#include "platform/pu.hpp"
#include "sched/thread_pool.hpp"

namespace bt::simt {
class LaunchObserver; // bt::check instrumentation (simt/instrument.hpp)
} // namespace bt::simt

namespace bt::core {

/** Execution context handed to a kernel implementation. */
struct KernelCtx
{
    TaskObject& task;
    sched::ThreadPool* pool = nullptr; ///< CPU team; nullptr = serial
    /** Non-null runs device kernels under bt::check instrumentation. */
    simt::LaunchObserver* observer = nullptr;
};

/** One backend implementation of a stage. */
using KernelFn = std::function<void(KernelCtx&)>;

/**
 * One declared buffer access of a stage. Kernels are opaque closures,
 * so the runtime cannot see what they touch; stages that *declare*
 * their reads/writes here become statically analyzable by bt::lint
 * (def-before-use, dead outputs, size mismatches) without executing.
 */
struct BufferAccess
{
    std::string name;        ///< TaskObject buffer name
    std::int64_t bytes = -1; ///< bytes touched; -1 = data-dependent
};

/** Declared IO of one stage (empty = undeclared, lint skips it). */
struct StageIo
{
    std::vector<BufferAccess> reads;
    std::vector<BufferAccess> writes;

    bool empty() const { return reads.empty() && writes.empty(); }
};

/**
 * Declared TaskObject buffer of an application: its size and its role
 * in the task lifecycle. `input` buffers are filled by the task
 * factory/refresher, `output` buffers are consumed by the validator or
 * the caller, `scratch` buffers are stage-private workspace, and
 * `shared` marks state aliased across in-flight tasks (e.g. weights) -
 * which bt::lint flags as a hazard if any stage writes it.
 */
struct BufferDecl
{
    std::string name;
    std::int64_t bytes = -1; ///< allocation size; -1 = data-dependent
    bool input = false;
    bool output = false;
    bool scratch = false;
    bool shared = false;
};

/**
 * A pipeline stage: name, analytic work profile (drives the simulated
 * performance model) and its two kernel implementations. Stages without a
 * GPU kernel fall back to the CPU kernel under SIMT emulation, mirroring
 * how a real deployment would keep such stages on the CPU.
 */
class Stage
{
  public:
    Stage(std::string name, platform::WorkProfile work, KernelFn cpu,
          KernelFn gpu);

    const std::string& name() const { return name_; }
    const platform::WorkProfile& work() const { return work_; }

    /** Run the host-side kernel. */
    void runCpu(KernelCtx& ctx) const;

    /** Run the device-side kernel (SIMT backend). */
    void runGpu(KernelCtx& ctx) const;

    /** Dispatch by PU kind. */
    void run(KernelCtx& ctx, platform::PuKind kind) const;

    /** Declare the buffers this stage reads and writes (chainable). */
    Stage& setIo(StageIo io);

    const StageIo& io() const { return io_; }
    bool hasIo() const { return !io_.empty(); }

  private:
    std::string name_;
    platform::WorkProfile work_;
    KernelFn cpu_;
    KernelFn gpu_;
    StageIo io_;
};

/** Creates a fresh TaskObject carrying streaming input @p task_index. */
using TaskFactory = std::function<std::unique_ptr<TaskObject>(
    std::int64_t task_index, std::uint64_t seed)>;

/**
 * Regenerate the *input* of a recycled TaskObject for a new task index
 * without reallocating its buffers.
 */
using TaskRefresher
    = std::function<void(TaskObject&, std::int64_t task_index,
                         std::uint64_t seed)>;

/** Validate final outputs; returns an empty string when correct. */
using TaskValidator = std::function<std::string(const TaskObject&)>;

/**
 * A streaming application: an ordered list of stages plus factories for
 * its TaskObjects. Chunks of contiguous stages are the scheduling unit.
 */
class Application
{
  public:
    Application(std::string name, std::string input_kind,
                std::string characteristics);

    const std::string& name() const { return name_; }
    const std::string& inputKind() const { return inputKind_; }
    const std::string& characteristics() const { return traits_; }

    /** Append a stage to the pipeline. */
    void addStage(Stage stage);

    int numStages() const { return static_cast<int>(stages_.size()); }
    const Stage& stage(int i) const;
    const std::vector<Stage>& stages() const { return stages_; }

    void setTaskFactory(TaskFactory f) { factory_ = std::move(f); }
    void setTaskRefresher(TaskRefresher f) { refresher_ = std::move(f); }
    void setValidator(TaskValidator f) { validator_ = std::move(f); }

    /** Declare one TaskObject buffer (static metadata for bt::lint). */
    void declareBuffer(BufferDecl decl);

    const std::vector<BufferDecl>& buffers() const { return buffers_; }

    /** Any static IO metadata at all (buffer decls or stage IO)? */
    bool hasIoDeclarations() const;

    /** Create the TaskObject for @p task_index. */
    std::unique_ptr<TaskObject> makeTask(std::int64_t task_index,
                                         std::uint64_t seed) const;

    /** Refresh a recycled TaskObject for a new task index. */
    void refreshTask(TaskObject& task, std::int64_t task_index,
                     std::uint64_t seed) const;

    /** Validate a completed task; empty string = OK. */
    std::string validate(const TaskObject& task) const;

    /** Run every stage in order on the CPU backend (reference path). */
    void runAllCpu(TaskObject& task, sched::ThreadPool* pool) const;

  private:
    std::string name_;
    std::string inputKind_;
    std::string traits_;
    std::vector<Stage> stages_;
    std::vector<BufferDecl> buffers_;
    TaskFactory factory_;
    TaskRefresher refresher_;
    TaskValidator validator_;
};

/**
 * Acyclic stage-dependency graph. BetterTogether schedules linear
 * pipelines; applications with richer structure (octree's final stage
 * reads three earlier outputs) declare edges here and are linearized
 * with a deterministic topological sort (paper Sec. 3.1, Task Graph).
 */
class TaskGraph
{
  public:
    /** Add a node; returns its id. */
    int addNode(Stage stage);

    /** Declare that @p from must execute before @p to. */
    void addEdge(int from, int to);

    int numNodes() const { return static_cast<int>(nodes.size()); }

    /**
     * Kahn topological order, smallest node id first among ready nodes
     * (deterministic). Panics on cycles.
     */
    std::vector<int> topologicalOrder() const;

    /** Move the stages into @p app in topological order. */
    void linearizeInto(Application& app) &&;

  private:
    std::vector<Stage> nodes;
    std::vector<std::pair<int, int>> edges;
};

} // namespace bt::core

#endif // BT_CORE_APPLICATION_HPP
