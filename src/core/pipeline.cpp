#include "core/pipeline.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::core {

double
BetterTogetherReport::bestBaselineSeconds() const
{
    return std::min(cpuBaselineSeconds, gpuBaselineSeconds);
}

double
BetterTogetherReport::speedupOverBestBaseline() const
{
    BT_ASSERT(bestLatencySeconds > 0.0);
    return bestBaselineSeconds() / bestLatencySeconds;
}

double
BetterTogetherReport::speedupOverCpu() const
{
    BT_ASSERT(bestLatencySeconds > 0.0);
    return cpuBaselineSeconds / bestLatencySeconds;
}

double
BetterTogetherReport::speedupOverGpu() const
{
    BT_ASSERT(bestLatencySeconds > 0.0);
    return gpuBaselineSeconds / bestLatencySeconds;
}

BetterTogether::BetterTogether(const platform::SocDescription& soc,
                               BetterTogetherConfig cfg)
    : model_(soc), config(cfg)
{
}

double
BetterTogether::measureHomogeneous(const Application& app, int pu) const
{
    const SimExecutor executor(model_, config.executor);
    const auto schedule = Schedule::homogeneous(app.numStages(), pu);
    return executor.execute(app, schedule).taskIntervalSeconds;
}

BetterTogetherReport
BetterTogether::run(const Application& app) const
{
    const auto& soc = model_.soc();
    BetterTogetherReport report;

    // 1) Interference-aware profiling.
    const Profiler profiler(model_, config.profiler);
    report.profile = profiler.profile(app);

    // 2) Schedule generation from the interference table.
    Optimizer optimizer(soc, report.profile.interference,
                        config.optimizer);
    report.candidates = optimizer.optimize();
    BT_ASSERT(!report.candidates.empty(), "optimizer found no schedule");

    // 3) Autotuning: run the candidates, take the measured best.
    const SimExecutor executor(model_, config.executor);
    if (config.autotune) {
        const AutoTuner tuner(executor, 10.0, config.tunerThreads);
        report.tuning = tuner.tune(app, report.candidates);
        report.bestSchedule = report.tuning.best().candidate.schedule;
        report.bestLatencySeconds = report.tuning.best().measuredLatency;
    } else {
        report.bestSchedule = report.candidates.front().schedule;
        report.bestLatencySeconds
            = executor.execute(app, report.bestSchedule)
                  .taskIntervalSeconds;
    }

    // Deployment run of the winner: one more execution that carries
    // the full unified result, including the structured trace timeline.
    report.deployedRun = executor.execute(app, report.bestSchedule);

    // Baselines: the paper compares against big-cores-only (the best
    // CPU configuration in its experiments) and GPU-only DOALL runs.
    report.cpuBaselinePu = soc.bigCpuIndex();
    report.gpuBaselinePu = soc.gpuIndex();
    BT_ASSERT(report.cpuBaselinePu >= 0, "device has no CPU class");
    BT_ASSERT(report.gpuBaselinePu >= 0, "device has no GPU class");
    report.cpuBaselineSeconds
        = measureHomogeneous(app, report.cpuBaselinePu);
    report.gpuBaselineSeconds
        = measureHomogeneous(app, report.gpuBaselinePu);
    return report;
}

} // namespace bt::core
