#include "core/application.hpp"

#include <algorithm>
#include <queue>

#include "common/logging.hpp"

namespace bt::core {

Stage::Stage(std::string name, platform::WorkProfile work, KernelFn cpu,
             KernelFn gpu)
    : name_(std::move(name)), work_(work), cpu_(std::move(cpu)),
      gpu_(std::move(gpu))
{
    BT_ASSERT(!name_.empty(), "stage needs a name");
    BT_ASSERT(static_cast<bool>(cpu_), "stage ", name_,
              " needs a CPU kernel");
    if (!gpu_)
        gpu_ = cpu_; // CPU fallback under SIMT emulation
}

void
Stage::runCpu(KernelCtx& ctx) const
{
    cpu_(ctx);
}

void
Stage::runGpu(KernelCtx& ctx) const
{
    gpu_(ctx);
}

void
Stage::run(KernelCtx& ctx, platform::PuKind kind) const
{
    if (kind == platform::PuKind::Gpu)
        runGpu(ctx);
    else
        runCpu(ctx);
}

Stage&
Stage::setIo(StageIo io)
{
    io_ = std::move(io);
    return *this;
}

Application::Application(std::string name, std::string input_kind,
                         std::string characteristics)
    : name_(std::move(name)), inputKind_(std::move(input_kind)),
      traits_(std::move(characteristics))
{
}

void
Application::addStage(Stage stage)
{
    stages_.push_back(std::move(stage));
}

void
Application::declareBuffer(BufferDecl decl)
{
    BT_ASSERT(!decl.name.empty(), "buffer declaration needs a name");
    for (const auto& d : buffers_)
        BT_ASSERT(d.name != decl.name, "buffer ", decl.name,
                  " declared twice");
    buffers_.push_back(std::move(decl));
}

bool
Application::hasIoDeclarations() const
{
    if (!buffers_.empty())
        return true;
    return std::any_of(stages_.begin(), stages_.end(),
                       [](const Stage& s) { return s.hasIo(); });
}

const Stage&
Application::stage(int i) const
{
    BT_ASSERT(i >= 0 && i < numStages(), "stage index out of range");
    return stages_[static_cast<std::size_t>(i)];
}

std::unique_ptr<TaskObject>
Application::makeTask(std::int64_t task_index, std::uint64_t seed) const
{
    BT_ASSERT(static_cast<bool>(factory_), "application ", name_,
              " has no task factory");
    auto task = factory_(task_index, seed);
    BT_ASSERT(task != nullptr, "task factory returned null");
    task->setTaskIndex(task_index);
    return task;
}

void
Application::refreshTask(TaskObject& task, std::int64_t task_index,
                         std::uint64_t seed) const
{
    BT_ASSERT(static_cast<bool>(refresher_), "application ", name_,
              " has no task refresher");
    task.reset();
    refresher_(task, task_index, seed);
    task.setTaskIndex(task_index);
}

std::string
Application::validate(const TaskObject& task) const
{
    if (!validator_)
        return "";
    return validator_(task);
}

void
Application::runAllCpu(TaskObject& task, sched::ThreadPool* pool) const
{
    KernelCtx ctx{task, pool};
    for (const auto& s : stages_)
        s.runCpu(ctx);
}

int
TaskGraph::addNode(Stage stage)
{
    nodes.push_back(std::move(stage));
    return static_cast<int>(nodes.size() - 1);
}

void
TaskGraph::addEdge(int from, int to)
{
    BT_ASSERT(from >= 0 && from < numNodes());
    BT_ASSERT(to >= 0 && to < numNodes());
    BT_ASSERT(from != to, "self-edge in task graph");
    edges.emplace_back(from, to);
}

std::vector<int>
TaskGraph::topologicalOrder() const
{
    const std::size_t n = nodes.size();
    std::vector<int> indegree(n, 0);
    std::vector<std::vector<int>> succ(n);
    for (const auto& [from, to] : edges) {
        succ[static_cast<std::size_t>(from)].push_back(to);
        ++indegree[static_cast<std::size_t>(to)];
    }

    // Min-heap on node id keeps the order deterministic and stable.
    std::priority_queue<int, std::vector<int>, std::greater<>> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (indegree[i] == 0)
            ready.push(static_cast<int>(i));

    std::vector<int> order;
    order.reserve(n);
    while (!ready.empty()) {
        const int node = ready.top();
        ready.pop();
        order.push_back(node);
        for (int s : succ[static_cast<std::size_t>(node)])
            if (--indegree[static_cast<std::size_t>(s)] == 0)
                ready.push(s);
    }
    BT_ASSERT(order.size() == n, "task graph has a cycle");
    return order;
}

void
TaskGraph::linearizeInto(Application& app) &&
{
    for (int id : topologicalOrder())
        app.addStage(std::move(nodes[static_cast<std::size_t>(id)]));
    nodes.clear();
    edges.clear();
}

} // namespace bt::core
