#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <tuple>

#include "common/logging.hpp"
#include "core/anneal.hpp"
#include "solver/solver.hpp"

namespace bt::core {

const char*
plannerEngineName(PlannerEngine engine)
{
    switch (engine) {
      case PlannerEngine::Exhaustive:
        return "exhaustive";
      case PlannerEngine::Annealed:
        return "annealed";
      default:
        return "solver";
    }
}

PlannerEngine
plannerEngineFromName(const std::string& name)
{
    if (name == "solver" || name == "constraint_solver")
        return PlannerEngine::Solver;
    if (name == "exhaustive")
        return PlannerEngine::Exhaustive;
    if (name == "annealed")
        return PlannerEngine::Annealed;
    bt::fatal("unknown planner engine '", name,
              "' (expected solver|exhaustive|annealed)");
}

std::uint64_t
PlannerSpec::fingerprint() const
{
    // FNV-1a over the semantic knobs, field by field.
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (8 * byte)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    const auto mixDouble = [&mix](double d) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof bits);
        mix(bits);
    };
    mix(static_cast<std::uint64_t>(numCandidates));
    mix(utilizationFilter ? 1 : 0);
    mixDouble(gapnessSlack);
    mixDouble(latencySlack);
    mix(static_cast<std::uint64_t>(maxPerTier));
    // Latency/EnergyDelay keep their pre-PlannerSpec encodings (0/1)
    // so existing cached plans stay addressable.
    mix(static_cast<std::uint64_t>(objective));
    if (objective == Objective::EnergyKDelay)
        mixDouble(energyExponent);
    mix(allowedPus.size());
    for (const int pu : allowedPus)
        mix(static_cast<std::uint64_t>(pu));
    mixDouble(contention.ambientGbps);
    mixDouble(contention.budgetGbps);
    mix(contention.realTime ? 1 : 0);
    // Exact engines (and memoize) are bit-identical by contract and
    // stay out of the hash; a non-exactness-preserving engine's result
    // depends on its identity and every annealing knob, so mix them in.
    if (!exactnessPreserving()) {
        mix(0xA22EA1EDull); // annealed-engine marker
        mix(anneal.seed);
        mix(static_cast<std::uint64_t>(anneal.moveBudget));
        mix(static_cast<std::uint64_t>(anneal.restarts));
        mixDouble(anneal.initialTemperature);
        mixDouble(anneal.finalTemperature);
    }
    return h;
}

namespace {

/// Penalty offsets making the level-2 objective lexicographic: schedules
/// violating the latency/utilization feasibility class sort after those
/// merely exceeding the gapness budget, which sort after fully feasible
/// ones. Latencies are in seconds (~1e-3), so the offsets dominate.
constexpr double kGapnessPenalty = 1e6;
constexpr double kFeasibilityPenalty = 2e6;
/// C6 violations (aggregate demand over budget) sort after everything,
/// including out-of-class schedules.
constexpr double kC6Penalty = 4e6;

/** Variable layout helper: x(i, c) is true iff stage i runs on PU c. */
struct VarGrid
{
    int numStages;
    int numPus;
    std::vector<solver::Var> vars;

    solver::Var
    at(int i, int c) const
    {
        return vars[static_cast<std::size_t>(i)
                    * static_cast<std::size_t>(numPus)
                    + static_cast<std::size_t>(c)];
    }
};

VarGrid
buildScheduleModel(solver::Model& model, int num_stages, int num_pus)
{
    VarGrid grid{num_stages, num_pus, {}};
    grid.vars.reserve(static_cast<std::size_t>(num_stages)
                      * static_cast<std::size_t>(num_pus));
    for (int i = 0; i < num_stages; ++i)
        for (int c = 0; c < num_pus; ++c)
            grid.vars.push_back(model.newVar(
                "x_" + std::to_string(i) + "_" + std::to_string(c)));

    // C1: exactly one PU per stage.
    for (int i = 0; i < num_stages; ++i) {
        std::vector<solver::Var> row;
        for (int c = 0; c < num_pus; ++c)
            row.push_back(grid.at(i, c));
        model.addExactlyOne(std::move(row));
    }

    // C2: contiguity - (x_{i,c} & x_{k,c}) -> x_{j,c} for i < j < k.
    for (int c = 0; c < num_pus; ++c)
        for (int i = 0; i < num_stages; ++i)
            for (int k = i + 2; k < num_stages; ++k)
                for (int j = i + 1; j < k; ++j)
                    model.addImplication(
                        {solver::pos(grid.at(i, c)),
                         solver::pos(grid.at(k, c))},
                        solver::pos(grid.at(j, c)));
    return grid;
}

Schedule
scheduleFromAssignment(const VarGrid& grid,
                       const solver::Assignment& assignment)
{
    std::vector<int> stage_to_pu(static_cast<std::size_t>(
        grid.numStages));
    for (int i = 0; i < grid.numStages; ++i) {
        int chosen = -1;
        for (int c = 0; c < grid.numPus; ++c) {
            if (assignment.value(grid.at(i, c))) {
                BT_ASSERT(chosen < 0, "two PUs for one stage");
                chosen = c;
            }
        }
        BT_ASSERT(chosen >= 0, "stage ", i, " unassigned");
        stage_to_pu[static_cast<std::size_t>(i)] = chosen;
    }
    return Schedule::fromAssignment(stage_to_pu);
}

/** Blocking clause C5: forbid this exact assignment. */
void
blockSchedule(solver::Model& model, const VarGrid& grid,
              const Schedule& schedule)
{
    const auto assignment = schedule.toAssignment();
    std::vector<solver::Lit> clause;
    clause.reserve(assignment.size());
    for (int i = 0; i < grid.numStages; ++i)
        clause.push_back(solver::neg(
            grid.at(i, assignment[static_cast<std::size_t>(i)])));
    model.addClause(std::move(clause));
}

/** (first stage, last stage, pu) identity of one chunk assignment. */
using ChunkKey = std::tuple<int, int, int>;

ChunkKey
keyOf(const Chunk& c)
{
    return {c.firstStage, c.lastStage, c.pu};
}

/** The chunk that determines the schedule's bottleneck latency. */
ChunkKey
bottleneckKey(const Schedule& s, const ProfilingTable& table)
{
    int best = 0;
    double worst = -1.0;
    for (int c = 0; c < s.numChunks(); ++c) {
        const double t = s.chunkTime(table, c);
        if (t > worst) {
            worst = t;
            best = c;
        }
    }
    return keyOf(s.chunks()[static_cast<std::size_t>(best)]);
}

/** Forbid ever assigning this chunk's stages to this PU again. */
void
blockChunk(solver::Model& model, const VarGrid& grid,
           const ChunkKey& key)
{
    const auto [first, last, pu] = key;
    std::vector<solver::Lit> clause;
    for (int i = first; i <= last; ++i)
        clause.push_back(solver::neg(grid.at(i, pu)));
    model.addClause(std::move(clause));
}

/** Stretched copy of @p base: each cell scaled by the contention
 *  profile's slowdown under @p bucket. Empty for bucket 0 (unused;
 *  predictions bind to the base table directly). */
ProfilingTable
makeStretchedTable(const ProfilingTable& base,
                   const platform::ContentionProfile* profile,
                   int bucket)
{
    if (bucket == 0)
        return {};
    ProfilingTable t(base.stages(), base.pus());
    for (int s = 0; s < base.numStages(); ++s) {
        for (int p = 0; p < base.numPus(); ++p) {
            t.set(s, p, base.at(s, p) * profile->stretch(s, p, bucket));
            t.setStddev(s, p, base.stddevAt(s, p));
        }
    }
    return t;
}

/// Transversal-count ceiling before C6 falls back to the pairwise
/// over-approximation (the exact predicate still filters downstream).
constexpr std::int64_t kMaxC6Transversals = 20000;

/**
 * C6: cap the schedule's aggregate DRAM demand - the sum over used PUs
 * of the hungriest stage placed there - at the budget, so co-scheduled
 * tenants cannot oversubscribe the shared roofline.
 *
 * Exact pseudo-boolean encoding: for every transversal sigma picking
 * one stage per allowed PU, add
 *
 *     sum_c  d(sigma(c), c) * x(sigma(c), c)  <=  budget.
 *
 * Under any assignment each such sum counts at most one placed stage
 * per PU, so it never exceeds the schedule's aggregate demand; the
 * transversal picking each PU's hungriest placed stage attains it.
 * The family is therefore equivalent to the aggregate cap. Constraint
 * count is numStages^|allowedPus|; past kMaxC6Transversals we emit
 * only the single- and pairwise-placement bans (a sound relaxation -
 * every clause bans a provably infeasible placement) and rely on the
 * callers' exact demandOk predicate for the rest.
 */
void
addC6(solver::Model& model, const VarGrid& grid,
      const platform::ContentionProfile& profile,
      std::int64_t budget_milli, const std::vector<int>& allowed_pus)
{
    const int n = grid.numStages;
    std::int64_t count = 1;
    for (std::size_t k = 0;
         k < allowed_pus.size() && count <= kMaxC6Transversals; ++k)
        count *= n;
    if (count <= kMaxC6Transversals) {
        std::vector<int> sigma(allowed_pus.size(), 0);
        while (true) {
            std::int64_t total = 0;
            for (std::size_t k = 0; k < sigma.size(); ++k)
                total += profile.demandMilli(
                    sigma[k], allowed_pus[k]);
            if (total > budget_milli) { // non-vacuous only
                std::vector<solver::PbTerm> terms;
                for (std::size_t k = 0; k < sigma.size(); ++k) {
                    const std::int64_t d = profile.demandMilli(
                        sigma[k], allowed_pus[k]);
                    if (d > 0)
                        terms.push_back(
                            {solver::pos(grid.at(sigma[k],
                                                 allowed_pus[k])),
                             d});
                }
                model.addLinearLe(std::move(terms), budget_milli);
            }
            std::size_t k = 0;
            for (; k < sigma.size(); ++k) {
                if (++sigma[k] < n)
                    break;
                sigma[k] = 0;
            }
            if (k == sigma.size())
                break;
        }
        return;
    }

    for (std::size_t a = 0; a < allowed_pus.size(); ++a) {
        const int ca = allowed_pus[a];
        for (int i = 0; i < n; ++i) {
            const std::int64_t di = profile.demandMilli(i, ca);
            if (di > budget_milli) {
                model.addClause({solver::neg(grid.at(i, ca))});
                continue;
            }
            for (std::size_t b = a + 1; b < allowed_pus.size(); ++b) {
                const int cb = allowed_pus[b];
                for (int j = 0; j < n; ++j)
                    if (di + profile.demandMilli(j, cb) > budget_milli)
                        model.addClause(
                            {solver::neg(grid.at(i, ca)),
                             solver::neg(grid.at(j, cb))});
            }
        }
    }
}

} // namespace

Optimizer::Optimizer(const platform::SocDescription& soc_,
                     const ProfilingTable& table_, PlannerSpec spec,
                     ScheduleEvaluator* shared_eval,
                     const platform::ContentionProfile* contention)
    : Optimizer(soc_, table_, [&] {
          spec.sharedEvaluator = shared_eval;
          spec.contentionProfile = contention;
          return std::move(spec);
      }())
{
}

Optimizer::Optimizer(const platform::SocDescription& soc_,
                     const ProfilingTable& table_, PlannerSpec spec)
    : soc(soc_), baseTable_(table_), config(std::move(spec)),
      contention_(config.contentionProfile),
      bucket_(contention_ != nullptr && !config.contention.realTime
                  ? contention_->bucketOf(config.contention.ambientGbps)
                  : 0),
      stretchedStorage_(
          makeStretchedTable(baseTable_, contention_, bucket_)),
      table(bucket_ > 0 ? stretchedStorage_ : baseTable_),
      powerModel(soc_)
{
    BT_ASSERT(baseTable_.numPus() == soc.numPus(),
              "profiling table PU count does not match device");
    BT_ASSERT(config.numCandidates > 0);
    BT_ASSERT(config.gapnessSlack >= 0.0);
    BT_ASSERT(config.latencySlack >= 0.0);
    for (const int p : config.allowedPus)
        BT_ASSERT(p >= 0 && p < soc.numPus(),
                  "allowedPus names unknown PU ", p);
    if (contention_ != nullptr)
        BT_ASSERT(contention_->numStages == baseTable_.numStages()
                      && contention_->numPus == baseTable_.numPus(),
                  "contention profile grid does not match table");

    if (contention_ != nullptr && config.contention.budgetGbps > 0.0) {
        budgetMilli_ = platform::ContentionModel::milliGbps(
            config.contention.budgetGbps);
        // Feasibility pre-check: the frugalest schedule is the single
        // chunk on the allowed PU with the smallest worst-stage
        // demand. A budget below that admits nothing - relax C6 and
        // report it instead of returning an empty candidate list.
        std::int64_t min_demand
            = std::numeric_limits<std::int64_t>::max();
        for (int c = 0; c < soc.numPus(); ++c) {
            if (!puAllowed(c))
                continue;
            std::int64_t d = 0;
            for (int i = 0; i < baseTable_.numStages(); ++i)
                d = std::max(d, contention_->demandMilli(i, c));
            min_demand = std::min(min_demand, d);
        }
        if (budgetMilli_ >= min_demand)
            c6Active_ = true;
        else
            c6Relaxed_ = true;
    }

    if (config.sharedEvaluator != nullptr) {
        BT_ASSERT(&config.sharedEvaluator->table() == &baseTable_,
                  "shared evaluator built over a different table");
        eval_ = config.sharedEvaluator;
    } else if (config.memoize
               || config.engine == PlannerEngine::Annealed) {
        // The annealed engine always evaluates through the memo - its
        // whole premise is that move evaluation is a cache lookup.
        ownedEval_ = std::make_unique<ScheduleEvaluator>(
            soc, baseTable_, powerModel, contention_);
        eval_ = ownedEval_.get();
    }
}

bool
Optimizer::puAllowed(int pu) const
{
    if (config.allowedPus.empty())
        return true;
    return std::find(config.allowedPus.begin(),
                     config.allowedPus.end(), pu)
        != config.allowedPus.end();
}

bool
Optimizer::demandOk(std::span<const int> stage_to_pu) const
{
    if (!c6Active_)
        return true;
    return contention_->aggregateDemandMilli(stage_to_pu)
        <= budgetMilli_;
}

bool
Optimizer::demandOk(const Schedule& s) const
{
    if (!c6Active_)
        return true;
    const auto assign = s.toAssignment();
    return demandOk(std::span<const int>(assign));
}

Candidate
Optimizer::makeCandidate(const Schedule& s) const
{
    if (eval_ != nullptr) {
        const Prediction& p = eval_->predict(s, bucket_);
        Candidate c;
        c.schedule = s;
        c.predictedLatency = p.latency;
        c.predictedGapness = p.gapness;
        c.predictedEnergyJ = p.energyJ;
        c.predictedDemandGbps = p.demandGbps;
        return c;
    }

    Candidate c;
    c.schedule = s;
    c.predictedLatency = s.bottleneckTime(table);
    c.predictedGapness = s.gapness(table);
    if (contention_ != nullptr) {
        // Aggregate demand: per chunk, the hungriest stage; summed.
        std::int64_t demand = 0;
        for (const auto& chunk : s.chunks()) {
            std::int64_t d = 0;
            for (int i = chunk.firstStage; i <= chunk.lastStage; ++i)
                d = std::max(d, contention_->demandMilli(i, chunk.pu));
            demand += d;
        }
        c.predictedDemandGbps = static_cast<double>(demand) / 1000.0;
    }

    // Predicted per-task energy: each used PU is active for its chunk
    // time (duty-cycled against the bottleneck interval), idle for the
    // rest; unused PUs idle throughout; plus the uncore floor.
    const double interval = c.predictedLatency;
    const int busy_others = s.numChunks() - 1;
    double energy = soc.basePowerW * interval;
    std::vector<bool> used(static_cast<std::size_t>(soc.numPus()),
                           false);
    for (int ch = 0; ch < s.numChunks(); ++ch) {
        const int pu = s.chunks()[static_cast<std::size_t>(ch)].pu;
        used[static_cast<std::size_t>(pu)] = true;
        const double active = s.chunkTime(table, ch);
        energy += active * powerModel.activePowerW(pu, busy_others)
            + std::max(0.0, interval - active)
                * soc.pu(pu).idlePowerW;
    }
    for (int p = 0; p < soc.numPus(); ++p)
        if (!used[static_cast<std::size_t>(p)])
            energy += interval * soc.pu(p).idlePowerW;
    c.predictedEnergyJ = energy;
    return c;
}

double
Optimizer::rankScoreOf(double latency, double energy_j) const
{
    switch (config.objective) {
      case PlannerSpec::Objective::EnergyDelay:
        return energy_j * latency;
      case PlannerSpec::Objective::EnergyKDelay:
        // The e^k * d family; k = 1 coincides with EnergyDelay.
        return std::pow(energy_j, config.energyExponent) * latency;
      default:
        return latency;
    }
}

double
Optimizer::rankScore(const Candidate& c) const
{
    return rankScoreOf(c.predictedLatency, c.predictedEnergyJ);
}

int
Optimizer::rankClassOf(double latency, double gapness,
                       int num_chunks) const
{
    if (!config.utilizationFilter)
        return 0;
    if (latency > stats_.latencyBound + 1e-12
        || num_chunks < stats_.requiredPus)
        return 2; // outside the feasibility class
    if (gapness > stats_.gapnessBound + 1e-12)
        return 1; // feasible but over the gapness budget
    return 0;
}

int
Optimizer::rankClass(const Candidate& c) const
{
    return rankClassOf(c.predictedLatency, c.predictedGapness,
                       c.schedule.numChunks());
}

void
Optimizer::sortCandidates(std::vector<Candidate>& cands) const
{
    // Tie-break on the lexicographically smallest stage-to-PU vector,
    // which is exactly the order the DPLL solver (true-first, row-major
    // variables) prefers - keeping both engines' outputs identical.
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                         const int ra = rankClass(a);
                         const int rb = rankClass(b);
                         if (ra != rb)
                             return ra < rb;
                         const double sa = rankScore(a);
                         const double sb = rankScore(b);
                         if (sa != sb)
                             return sa < sb;
                         return a.schedule.toAssignment()
                             < b.schedule.toAssignment();
                     });
}

std::vector<Candidate>
Optimizer::optimize()
{
    stats_ = OptimizeStats{};
    stats_.engine = config.engine;
    stats_.latencyBound = std::numeric_limits<double>::infinity();
    stats_.gapnessBound = std::numeric_limits<double>::infinity();
    stats_.demandBudgetGbps
        = c6Active_ ? config.contention.budgetGbps : 0.0;
    stats_.c6Relaxed = c6Relaxed_;

    int allowed_count = 0;
    for (int c = 0; c < soc.numPus(); ++c)
        allowed_count += puAllowed(c) ? 1 : 0;
    BT_ASSERT(allowed_count > 0, "allowedPus admits no PU");
    stats_.spaceSize
        = scheduleSpaceSize(table.numStages(), allowed_count);
    if (config.exactnessPreserving() && config.exactSpaceLimit > 0
        && stats_.spaceSize > config.exactSpaceLimit)
        BT_PANIC("planner.exact_space", "schedule space of ",
                 stats_.spaceSize, " schedules exceeds exactSpaceLimit ",
                 config.exactSpaceLimit,
                 "; the exact engines refuse instances this large - "
                 "switch to PlannerEngine::Annealed");

    auto cands = config.engine == PlannerEngine::Exhaustive
        ? optimizeExhaustive()
        : config.engine == PlannerEngine::Annealed
            ? optimizeAnnealed()
            : optimizeWithSolver();
    sortCandidates(cands);
    if (static_cast<int>(cands.size()) > config.numCandidates)
        cands.resize(static_cast<std::size_t>(config.numCandidates));
    stats_.candidatesWithinBound = 0;
    for (const auto& c : cands)
        if (rankClass(c) == 0)
            ++stats_.candidatesWithinBound;
    if (eval_ != nullptr) {
        stats_.evalHits = eval_->stats().hits;
        stats_.evalMisses = eval_->stats().misses;
    }
    return cands;
}

std::vector<Candidate>
Optimizer::optimizeWithSolver()
{
    const int n = table.numStages();
    const int m = soc.numPus();

    solver::Model model;
    const VarGrid grid = buildScheduleModel(model, n, m);

    // Dropped / excluded PU classes: unit clauses banning every stage
    // from the disallowed columns (the degradation re-plan hook).
    for (int c = 0; c < m; ++c)
        if (!puAllowed(c))
            for (int i = 0; i < n; ++i)
                model.addClause({solver::neg(grid.at(i, c))});

    // C6: aggregate-bandwidth cap over the allowed columns. The
    // feasibility pre-check in the constructor guarantees the model
    // stays satisfiable.
    if (c6Active_) {
        std::vector<int> allowed;
        for (int c = 0; c < m; ++c)
            if (puAllowed(c))
                allowed.push_back(c);
        addC6(model, grid, *contention_, budgetMilli_, allowed);
    }

    if (eval_ != nullptr) {
        // Throughput path. Every solver level minimizes a fixed
        // objective (the bounds each level derives only feed *later*
        // levels), and the model changes between solves only through
        // blocking clauses, which remove known assignments. So instead
        // of re-running the DPLL enumeration once per level and once
        // per candidate (~numPus + numCandidates + 2 full sweeps),
        // enumerate the feasible space exactly once, memoize every
        // prediction, and replay the level logic over the harvested
        // arrays. Each selection below mirrors Solver::minimize -
        // strict less-than, first solution in DPLL enumeration order
        // wins ties - so the candidate list is bit-identical to the
        // multi-pass from-scratch path.
        std::vector<int> flat; // num_sols * n stage-to-PU assignments
        std::vector<Prediction> preds;
        {
            std::vector<int> assign_scratch(static_cast<std::size_t>(n));
            solver::Solver s(model);
            s.forEachSolution([&](const solver::Assignment& a) {
                for (int i = 0; i < n; ++i) {
                    int chosen = -1;
                    for (int c = 0; c < m; ++c) {
                        if (a.value(grid.at(i, c))) {
                            chosen = c;
                            break; // C1 guarantees exactly one
                        }
                    }
                    BT_ASSERT(chosen >= 0, "stage ", i, " unassigned");
                    assign_scratch[static_cast<std::size_t>(i)] = chosen;
                }
                // C6's fallback encoding over-admits; apply the exact
                // integer predicate here so every downstream level
                // replays over the feasible space only.
                if (!demandOk(assign_scratch))
                    return true;
                flat.insert(flat.end(), assign_scratch.begin(),
                            assign_scratch.end());
                preds.push_back(eval_->predict(
                    std::span<const int>(assign_scratch), bucket_));
                return true;
            });
            stats_.solverNodes += s.nodesExplored();
        }
        const std::size_t num_sols = preds.size();
        BT_ASSERT(num_sols > 0, "schedule space is empty");
        auto assignOf = [&](std::size_t i) {
            return std::span<const int>(
                flat.data() + i * static_cast<std::size_t>(n),
                static_cast<std::size_t>(n));
        };

        // Level 1a: unrestricted latency optimum (defines the Tmax
        // bound).
        double unrestricted
            = std::numeric_limits<double>::infinity();
        for (const Prediction& p : preds)
            unrestricted = std::min(unrestricted, p.latency);
        stats_.unrestrictedLatency = unrestricted;

        if (config.utilizationFilter) {
            stats_.latencyBound = stats_.unrestrictedLatency
                    * (1.0 + config.latencySlack)
                + 1e-12;

            // Level 1b: the highest PU-class count attainable within
            // the latency bound (maximize utilization subject to C3).
            stats_.requiredPus = 1;
            for (int r = std::min(m, n); r >= 1; --r) {
                double best_score
                    = std::numeric_limits<double>::infinity();
                std::size_t best_i = 0;
                for (std::size_t i = 0; i < num_sols; ++i) {
                    const Prediction& p = preds[i];
                    const double sc = p.numChunks < r
                        ? kFeasibilityPenalty + p.latency
                        : p.latency;
                    if (sc < best_score) {
                        best_score = sc;
                        best_i = i;
                    }
                }
                const Prediction& best = preds[best_i];
                if (best.numChunks >= r
                    && best.latency <= stats_.latencyBound) {
                    stats_.requiredPus = r;
                    break;
                }
            }

            // Level 1c: minimal gapness within the feasibility class
            // (objective O1 under C3).
            double best_score
                = std::numeric_limits<double>::infinity();
            std::size_t best_i = 0;
            for (std::size_t i = 0; i < num_sols; ++i) {
                const Prediction& p = preds[i];
                const double sc = (p.numChunks < stats_.requiredPus
                                   || p.latency > stats_.latencyBound)
                    ? kFeasibilityPenalty + p.gapness
                    : p.gapness;
                if (sc < best_score) {
                    best_score = sc;
                    best_i = i;
                }
            }
            stats_.minimalGapness = preds[best_i].gapness;
            stats_.gapnessBound = stats_.minimalGapness
                    * (1.0 + config.gapnessSlack)
                + 1e-9;
        }

        // Level 2: K diverse candidates. Picking a winner "blocks" its
        // exact assignment (C5); saturating a performance tier blocks
        // every assignment that maps the tier's stage range onto its
        // PU - precisely the solutions blockChunk's clause would
        // remove from the model.
        std::vector<Candidate> cands;
        std::vector<char> taken(num_sols, 0);
        std::vector<ChunkKey> blocked_chunks;
        std::map<ChunkKey, int> tier_count;
        auto inBlockedChunk = [&](std::size_t i) {
            const auto a = assignOf(i);
            for (const auto& [first, last, pu] : blocked_chunks) {
                bool covered = true;
                for (int s = first; s <= last && covered; ++s)
                    covered = (a[static_cast<std::size_t>(s)] == pu);
                if (covered)
                    return true;
            }
            return false;
        };
        for (int k = 0; k < config.numCandidates; ++k) {
            double best_score
                = std::numeric_limits<double>::infinity();
            std::size_t best_i = num_sols;
            for (std::size_t i = 0; i < num_sols; ++i) {
                if (taken[i] != 0 || inBlockedChunk(i))
                    continue;
                const Prediction& p = preds[i];
                const int cls
                    = rankClassOf(p.latency, p.gapness, p.numChunks);
                const double score
                    = rankScoreOf(p.latency, p.energyJ);
                const double sc = cls == 2
                    ? kFeasibilityPenalty + score
                    : cls == 1 ? kGapnessPenalty + score : score;
                if (sc < best_score) {
                    best_score = sc;
                    best_i = i;
                }
            }
            if (best_i == num_sols)
                break; // space exhausted
            taken[best_i] = 1;
            const auto a = assignOf(best_i);
            const Schedule sched = Schedule::fromAssignment(
                std::vector<int>(a.begin(), a.end()));
            cands.push_back(makeCandidate(sched));

            if (config.maxPerTier > 0) {
                const ChunkKey tier = bottleneckKey(sched, table);
                if (++tier_count[tier] >= config.maxPerTier)
                    blocked_chunks.push_back(tier);
            }
        }
        return cands;
    }

    // From-scratch path. The C6 fallback encoding can leave violating
    // assignments in the model; every callback pushes them past all
    // feasible scores (kC6Penalty), so a violating winner proves the
    // feasible space is exhausted - mirroring the harvest filter above.
    auto latencyOf = [&](const solver::Assignment& a) {
        const Schedule sched = scheduleFromAssignment(grid, a);
        if (!demandOk(sched))
            return kC6Penalty + sched.bottleneckTime(table);
        return sched.bottleneckTime(table);
    };

    // Level 1a: unrestricted latency optimum (defines the Tmax bound).
    {
        solver::Solver s(model);
        auto best = s.minimize(latencyOf);
        stats_.solverNodes += s.nodesExplored();
        BT_ASSERT(best.has_value(), "schedule space is empty");
        stats_.unrestrictedLatency = latencyOf(*best);
    }

    if (config.utilizationFilter) {
        stats_.latencyBound = stats_.unrestrictedLatency
                * (1.0 + config.latencySlack)
            + 1e-12;

        // Level 1b: the highest PU-class count attainable within the
        // latency bound (maximize utilization subject to C3).
        stats_.requiredPus = 1;
        for (int r = std::min(m, n); r >= 1; --r) {
            solver::Solver s(model);
            auto best = s.minimize([&](const solver::Assignment& a) {
                const Schedule sched = scheduleFromAssignment(grid, a);
                if (!demandOk(sched))
                    return kC6Penalty + sched.bottleneckTime(table);
                if (sched.numChunks() < r)
                    return kFeasibilityPenalty
                        + sched.bottleneckTime(table);
                return sched.bottleneckTime(table);
            });
            stats_.solverNodes += s.nodesExplored();
            if (best.has_value()) {
                const Schedule sched
                    = scheduleFromAssignment(grid, *best);
                if (sched.numChunks() >= r
                    && sched.bottleneckTime(table)
                        <= stats_.latencyBound
                    && demandOk(sched)) {
                    stats_.requiredPus = r;
                    break;
                }
            }
        }

        // Level 1c: minimal gapness within the feasibility class
        // (objective O1 under C3).
        solver::Solver s(model);
        auto best = s.minimize([&](const solver::Assignment& a) {
            const Schedule sched = scheduleFromAssignment(grid, a);
            if (!demandOk(sched))
                return kC6Penalty + sched.gapness(table);
            if (sched.numChunks() < stats_.requiredPus
                || sched.bottleneckTime(table) > stats_.latencyBound)
                return kFeasibilityPenalty + sched.gapness(table);
            return sched.gapness(table);
        });
        stats_.solverNodes += s.nodesExplored();
        BT_ASSERT(best.has_value());
        stats_.minimalGapness
            = scheduleFromAssignment(grid, *best).gapness(table);
        stats_.gapnessBound = stats_.minimalGapness
                * (1.0 + config.gapnessSlack)
            + 1e-9;
    }

    // Level 2: K diverse candidates; each found schedule is blocked
    // (C5) and the solve repeated. The penalty terms mirror the final
    // ranking so in-class schedules surface first; once a performance
    // tier (critical chunk assignment) is saturated, the whole tier is
    // blocked so the list spans tiers.
    std::vector<Candidate> cands;
    std::map<ChunkKey, int> tier_count;
    for (int k = 0; k < config.numCandidates; ++k) {
        solver::Solver s(model);
        auto next = s.minimize([&](const solver::Assignment& a) {
            const Candidate c
                = makeCandidate(scheduleFromAssignment(grid, a));
            const int cls = rankClass(c);
            const double score = rankScore(c);
            if (!demandOk(c.schedule))
                return kC6Penalty + score;
            switch (cls) {
              case 2:
                return kFeasibilityPenalty + score;
              case 1:
                return kGapnessPenalty + score;
              default:
                return score;
            }
        });
        stats_.solverNodes += s.nodesExplored();
        if (!next.has_value())
            break; // space exhausted
        const Schedule sched = scheduleFromAssignment(grid, *next);
        if (!demandOk(sched))
            break; // only C6-violating assignments remain
        cands.push_back(makeCandidate(sched));
        blockSchedule(model, grid, sched);

        if (config.maxPerTier > 0) {
            const ChunkKey tier = bottleneckKey(sched, table);
            if (++tier_count[tier] >= config.maxPerTier)
                blockChunk(model, grid, tier);
        }
    }
    return cands;
}

std::vector<Candidate>
Optimizer::optimizeExhaustive()
{
    const int n = table.numStages();
    const int m = soc.numPus();
    const auto all = enumerateSchedules(n, m);

    std::vector<Candidate> cands;
    cands.reserve(all.size());
    for (const auto& s : all) {
        bool admitted = true;
        for (const auto& chunk : s.chunks())
            admitted = admitted && puAllowed(chunk.pu);
        if (!admitted)
            continue; // excluded class (degradation re-plan hook)
        if (!demandOk(s))
            continue; // over the C6 aggregate-demand budget
        cands.push_back(makeCandidate(s));
    }
    BT_ASSERT(!cands.empty(), "allowedPus admits no schedule");
    return selectDiverse(std::move(cands));
}

std::vector<Candidate>
Optimizer::selectDiverse(std::vector<Candidate> cands)
{
    BT_ASSERT(!cands.empty(), "no admissible schedule to select from");
    double best_latency = std::numeric_limits<double>::infinity();
    for (const auto& c : cands)
        best_latency = std::min(best_latency, c.predictedLatency);
    stats_.unrestrictedLatency = best_latency;

    if (config.utilizationFilter) {
        stats_.latencyBound
            = best_latency * (1.0 + config.latencySlack) + 1e-12;

        // Highest PU count within the latency bound.
        stats_.requiredPus = 1;
        for (const auto& c : cands)
            if (c.predictedLatency <= stats_.latencyBound)
                stats_.requiredPus = std::max(
                    stats_.requiredPus, c.schedule.numChunks());

        // Minimal gapness within the feasibility class.
        double min_gap = std::numeric_limits<double>::infinity();
        for (const auto& c : cands)
            if (c.predictedLatency <= stats_.latencyBound
                && c.schedule.numChunks() >= stats_.requiredPus)
                min_gap = std::min(min_gap, c.predictedGapness);
        BT_ASSERT(min_gap < std::numeric_limits<double>::infinity());
        stats_.minimalGapness = min_gap;
        stats_.gapnessBound
            = min_gap * (1.0 + config.gapnessSlack) + 1e-9;
    }

    // Selection with the same tier-diversity rule as the solver path:
    // walk schedules best-first, cap per-tier membership, and treat a
    // saturated tier's chunk assignment as blocked anywhere.
    sortCandidates(cands);
    std::vector<Candidate> picked;
    std::map<ChunkKey, int> tier_count;
    std::set<ChunkKey> blocked;
    for (const auto& c : cands) {
        if (static_cast<int>(picked.size()) >= config.numCandidates)
            break;
        // A blocked (range, pu) bans every schedule assigning that
        // whole stage range to that PU - even inside a larger chunk -
        // exactly like the solver's blocking clause.
        const auto assign = c.schedule.toAssignment();
        bool banned = false;
        for (const auto& [first, last, pu] : blocked) {
            bool covered = true;
            for (int i = first; i <= last && covered; ++i)
                covered = assign[static_cast<std::size_t>(i)] == pu;
            banned = banned || covered;
        }
        if (banned)
            continue;
        picked.push_back(c);
        if (config.maxPerTier > 0) {
            const ChunkKey tier = bottleneckKey(c.schedule, table);
            if (++tier_count[tier] >= config.maxPerTier)
                blocked.insert(tier);
        }
    }
    return picked;
}

std::vector<Candidate>
Optimizer::optimizeAnnealed()
{
    BT_ASSERT(eval_ != nullptr); // the constructor forces one
    std::vector<int> allowed;
    for (int c = 0; c < soc.numPus(); ++c)
        if (puAllowed(c))
            allowed.push_back(c);
    const int m_eff = static_cast<int>(allowed.size());

    Annealer annealer(soc, *eval_, config.anneal, bucket_,
                      std::move(allowed), contention_,
                      c6Active_ ? budgetMilli_ : 0);

    // A swept pool is already the full enumeration; phases could only
    // re-visit it, so skip straight to the harvest.
    if (!annealer.exhausted())
        runAnnealPhases(annealer, m_eff);

    // Harvest: the pool is this engine's "enumeration"; the final
    // selection applies the exact engines' level arithmetic over it,
    // which is why annealed results are cost-equal to the exact
    // solver whenever the pool covers the relevant optima.
    std::vector<Candidate> cands;
    cands.reserve(annealer.pool().size());
    for (const auto& e : annealer.pool()) {
        Candidate c;
        c.schedule = Schedule::fromAssignment(e.assignment);
        c.predictedLatency = e.pred.latency;
        c.predictedGapness = e.pred.gapness;
        c.predictedEnergyJ = e.pred.energyJ;
        c.predictedDemandGbps = e.pred.demandGbps;
        cands.push_back(std::move(c));
    }
    const Annealer::Stats as = annealer.stats();
    stats_.annealProposed = as.proposed;
    stats_.annealAccepted = as.accepted;
    stats_.annealFiltered = as.filtered;
    stats_.annealDistinct = as.distinct;
    stats_.annealChains = as.chains;
    return selectDiverse(std::move(cands));
}

void
Optimizer::runAnnealPhases(Annealer& annealer, int m_eff)
{
    const std::int64_t budget
        = std::max<std::int64_t>(config.anneal.moveBudget, 1);
    std::int64_t spent = 0;
    const auto slice = [&](int permille) {
        const std::int64_t s
            = std::min(budget - spent, budget * permille / 1000);
        spent += s;
        return s;
    };
    // Provisional level-1 bounds over the pool visited so far, using
    // the exact engines' arithmetic; later phases guide against them
    // and the final selection re-derives them over the full pool.
    const auto poolBounds = [&] {
        double best = std::numeric_limits<double>::infinity();
        for (const auto& e : annealer.pool())
            best = std::min(best, e.pred.latency);
        stats_.unrestrictedLatency = best;
        stats_.latencyBound
            = best * (1.0 + config.latencySlack) + 1e-12;
        stats_.requiredPus = 1;
        for (const auto& e : annealer.pool())
            if (e.pred.latency <= stats_.latencyBound)
                stats_.requiredPus
                    = std::max(stats_.requiredPus, e.pred.numChunks);
        double min_gap = std::numeric_limits<double>::infinity();
        for (const auto& e : annealer.pool())
            if (e.pred.latency <= stats_.latencyBound
                && e.pred.numChunks >= stats_.requiredPus)
                min_gap = std::min(min_gap, e.pred.gapness);
        stats_.minimalGapness = min_gap;
        stats_.gapnessBound
            = min_gap * (1.0 + config.gapnessSlack) + 1e-9;
    };

    // The phase sequence mirrors the exact engines' levels: 1a hunt
    // the unrestricted latency optimum, 1b maximize PU-class count
    // within the bound, 1c minimize gapness within the class, then
    // level 2's ranking objective.
    annealer.runPhase([](const Prediction& p) { return p.latency; },
                      slice(config.utilizationFilter ? 350 : 600));
    if (config.utilizationFilter) {
        poolBounds();
        {
            const double bound = stats_.latencyBound;
            annealer.runPhase(
                [bound, m_eff](const Prediction& p) {
                    // One unit per missing PU class dominates any
                    // in-bound latency (seconds); the bound penalty
                    // dominates both.
                    return (p.latency > bound ? kFeasibilityPenalty
                                              : 0.0)
                        + static_cast<double>(m_eff - p.numChunks)
                        + p.latency;
                },
                slice(200));
        }
        poolBounds();
        {
            const double bound = stats_.latencyBound;
            const int req = stats_.requiredPus;
            annealer.runPhase(
                [bound, req](const Prediction& p) {
                    return (p.latency > bound || p.numChunks < req)
                        ? kFeasibilityPenalty + p.gapness
                        : p.gapness;
                },
                slice(150));
        }
        poolBounds();
    }
    annealer.runPhase(
        [this](const Prediction& p) {
            const int cls
                = rankClassOf(p.latency, p.gapness, p.numChunks);
            const double score = rankScoreOf(p.latency, p.energyJ);
            return cls == 2 ? kFeasibilityPenalty + score
                : cls == 1  ? kGapnessPenalty + score
                            : score;
        },
        budget - spent);
}

} // namespace bt::core
