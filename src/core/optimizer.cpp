#include "core/optimizer.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <tuple>

#include "common/logging.hpp"
#include "solver/solver.hpp"

namespace bt::core {

std::uint64_t
OptimizerConfig::fingerprint() const
{
    // FNV-1a over the semantic knobs, field by field.
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (8 * byte)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    const auto mixDouble = [&mix](double d) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof bits);
        mix(bits);
    };
    mix(static_cast<std::uint64_t>(numCandidates));
    mix(utilizationFilter ? 1 : 0);
    mixDouble(gapnessSlack);
    mixDouble(latencySlack);
    mix(static_cast<std::uint64_t>(maxPerTier));
    mix(objective == Objective::EnergyDelay ? 1 : 0);
    mix(allowedPus.size());
    for (const int pu : allowedPus)
        mix(static_cast<std::uint64_t>(pu));
    return h;
}

namespace {

/// Penalty offsets making the level-2 objective lexicographic: schedules
/// violating the latency/utilization feasibility class sort after those
/// merely exceeding the gapness budget, which sort after fully feasible
/// ones. Latencies are in seconds (~1e-3), so the offsets dominate.
constexpr double kGapnessPenalty = 1e6;
constexpr double kFeasibilityPenalty = 2e6;

/** Variable layout helper: x(i, c) is true iff stage i runs on PU c. */
struct VarGrid
{
    int numStages;
    int numPus;
    std::vector<solver::Var> vars;

    solver::Var
    at(int i, int c) const
    {
        return vars[static_cast<std::size_t>(i)
                    * static_cast<std::size_t>(numPus)
                    + static_cast<std::size_t>(c)];
    }
};

VarGrid
buildScheduleModel(solver::Model& model, int num_stages, int num_pus)
{
    VarGrid grid{num_stages, num_pus, {}};
    grid.vars.reserve(static_cast<std::size_t>(num_stages)
                      * static_cast<std::size_t>(num_pus));
    for (int i = 0; i < num_stages; ++i)
        for (int c = 0; c < num_pus; ++c)
            grid.vars.push_back(model.newVar(
                "x_" + std::to_string(i) + "_" + std::to_string(c)));

    // C1: exactly one PU per stage.
    for (int i = 0; i < num_stages; ++i) {
        std::vector<solver::Var> row;
        for (int c = 0; c < num_pus; ++c)
            row.push_back(grid.at(i, c));
        model.addExactlyOne(std::move(row));
    }

    // C2: contiguity - (x_{i,c} & x_{k,c}) -> x_{j,c} for i < j < k.
    for (int c = 0; c < num_pus; ++c)
        for (int i = 0; i < num_stages; ++i)
            for (int k = i + 2; k < num_stages; ++k)
                for (int j = i + 1; j < k; ++j)
                    model.addImplication(
                        {solver::pos(grid.at(i, c)),
                         solver::pos(grid.at(k, c))},
                        solver::pos(grid.at(j, c)));
    return grid;
}

Schedule
scheduleFromAssignment(const VarGrid& grid,
                       const solver::Assignment& assignment)
{
    std::vector<int> stage_to_pu(static_cast<std::size_t>(
        grid.numStages));
    for (int i = 0; i < grid.numStages; ++i) {
        int chosen = -1;
        for (int c = 0; c < grid.numPus; ++c) {
            if (assignment.value(grid.at(i, c))) {
                BT_ASSERT(chosen < 0, "two PUs for one stage");
                chosen = c;
            }
        }
        BT_ASSERT(chosen >= 0, "stage ", i, " unassigned");
        stage_to_pu[static_cast<std::size_t>(i)] = chosen;
    }
    return Schedule::fromAssignment(stage_to_pu);
}

/** Blocking clause C5: forbid this exact assignment. */
void
blockSchedule(solver::Model& model, const VarGrid& grid,
              const Schedule& schedule)
{
    const auto assignment = schedule.toAssignment();
    std::vector<solver::Lit> clause;
    clause.reserve(assignment.size());
    for (int i = 0; i < grid.numStages; ++i)
        clause.push_back(solver::neg(
            grid.at(i, assignment[static_cast<std::size_t>(i)])));
    model.addClause(std::move(clause));
}

/** (first stage, last stage, pu) identity of one chunk assignment. */
using ChunkKey = std::tuple<int, int, int>;

ChunkKey
keyOf(const Chunk& c)
{
    return {c.firstStage, c.lastStage, c.pu};
}

/** The chunk that determines the schedule's bottleneck latency. */
ChunkKey
bottleneckKey(const Schedule& s, const ProfilingTable& table)
{
    int best = 0;
    double worst = -1.0;
    for (int c = 0; c < s.numChunks(); ++c) {
        const double t = s.chunkTime(table, c);
        if (t > worst) {
            worst = t;
            best = c;
        }
    }
    return keyOf(s.chunks()[static_cast<std::size_t>(best)]);
}

/** Forbid ever assigning this chunk's stages to this PU again. */
void
blockChunk(solver::Model& model, const VarGrid& grid,
           const ChunkKey& key)
{
    const auto [first, last, pu] = key;
    std::vector<solver::Lit> clause;
    for (int i = first; i <= last; ++i)
        clause.push_back(solver::neg(grid.at(i, pu)));
    model.addClause(std::move(clause));
}

} // namespace

Optimizer::Optimizer(const platform::SocDescription& soc_,
                     const ProfilingTable& table_, OptimizerConfig cfg,
                     ScheduleEvaluator* shared_eval)
    : soc(soc_), table(table_), config(cfg), powerModel(soc_)
{
    BT_ASSERT(table.numPus() == soc.numPus(),
              "profiling table PU count does not match device");
    BT_ASSERT(config.numCandidates > 0);
    BT_ASSERT(config.gapnessSlack >= 0.0);
    BT_ASSERT(config.latencySlack >= 0.0);
    for (const int p : config.allowedPus)
        BT_ASSERT(p >= 0 && p < soc.numPus(),
                  "allowedPus names unknown PU ", p);
    if (shared_eval != nullptr) {
        BT_ASSERT(&shared_eval->table() == &table,
                  "shared evaluator built over a different table");
        eval_ = shared_eval;
    } else if (config.memoize) {
        ownedEval_ = std::make_unique<ScheduleEvaluator>(soc, table,
                                                         powerModel);
        eval_ = ownedEval_.get();
    }
}

bool
Optimizer::puAllowed(int pu) const
{
    if (config.allowedPus.empty())
        return true;
    return std::find(config.allowedPus.begin(),
                     config.allowedPus.end(), pu)
        != config.allowedPus.end();
}

Candidate
Optimizer::makeCandidate(const Schedule& s) const
{
    if (eval_ != nullptr) {
        const Prediction& p = eval_->predict(s);
        Candidate c;
        c.schedule = s;
        c.predictedLatency = p.latency;
        c.predictedGapness = p.gapness;
        c.predictedEnergyJ = p.energyJ;
        return c;
    }

    Candidate c;
    c.schedule = s;
    c.predictedLatency = s.bottleneckTime(table);
    c.predictedGapness = s.gapness(table);

    // Predicted per-task energy: each used PU is active for its chunk
    // time (duty-cycled against the bottleneck interval), idle for the
    // rest; unused PUs idle throughout; plus the uncore floor.
    const double interval = c.predictedLatency;
    const int busy_others = s.numChunks() - 1;
    double energy = soc.basePowerW * interval;
    std::vector<bool> used(static_cast<std::size_t>(soc.numPus()),
                           false);
    for (int ch = 0; ch < s.numChunks(); ++ch) {
        const int pu = s.chunks()[static_cast<std::size_t>(ch)].pu;
        used[static_cast<std::size_t>(pu)] = true;
        const double active = s.chunkTime(table, ch);
        energy += active * powerModel.activePowerW(pu, busy_others)
            + std::max(0.0, interval - active)
                * soc.pu(pu).idlePowerW;
    }
    for (int p = 0; p < soc.numPus(); ++p)
        if (!used[static_cast<std::size_t>(p)])
            energy += interval * soc.pu(p).idlePowerW;
    c.predictedEnergyJ = energy;
    return c;
}

double
Optimizer::rankScoreOf(double latency, double energy_j) const
{
    return config.objective == OptimizerConfig::Objective::EnergyDelay
        ? energy_j * latency
        : latency;
}

double
Optimizer::rankScore(const Candidate& c) const
{
    return rankScoreOf(c.predictedLatency, c.predictedEnergyJ);
}

int
Optimizer::rankClassOf(double latency, double gapness,
                       int num_chunks) const
{
    if (!config.utilizationFilter)
        return 0;
    if (latency > stats_.latencyBound + 1e-12
        || num_chunks < stats_.requiredPus)
        return 2; // outside the feasibility class
    if (gapness > stats_.gapnessBound + 1e-12)
        return 1; // feasible but over the gapness budget
    return 0;
}

int
Optimizer::rankClass(const Candidate& c) const
{
    return rankClassOf(c.predictedLatency, c.predictedGapness,
                       c.schedule.numChunks());
}

void
Optimizer::sortCandidates(std::vector<Candidate>& cands) const
{
    // Tie-break on the lexicographically smallest stage-to-PU vector,
    // which is exactly the order the DPLL solver (true-first, row-major
    // variables) prefers - keeping both engines' outputs identical.
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                         const int ra = rankClass(a);
                         const int rb = rankClass(b);
                         if (ra != rb)
                             return ra < rb;
                         const double sa = rankScore(a);
                         const double sb = rankScore(b);
                         if (sa != sb)
                             return sa < sb;
                         return a.schedule.toAssignment()
                             < b.schedule.toAssignment();
                     });
}

std::vector<Candidate>
Optimizer::optimize()
{
    stats_ = OptimizeStats{};
    stats_.latencyBound = std::numeric_limits<double>::infinity();
    stats_.gapnessBound = std::numeric_limits<double>::infinity();
    auto cands = config.engine == OptimizerConfig::Engine::Exhaustive
        ? optimizeExhaustive()
        : optimizeWithSolver();
    sortCandidates(cands);
    if (static_cast<int>(cands.size()) > config.numCandidates)
        cands.resize(static_cast<std::size_t>(config.numCandidates));
    stats_.candidatesWithinBound = 0;
    for (const auto& c : cands)
        if (rankClass(c) == 0)
            ++stats_.candidatesWithinBound;
    if (eval_ != nullptr) {
        stats_.evalHits = eval_->stats().hits;
        stats_.evalMisses = eval_->stats().misses;
    }
    return cands;
}

std::vector<Candidate>
Optimizer::optimizeWithSolver()
{
    const int n = table.numStages();
    const int m = soc.numPus();

    solver::Model model;
    const VarGrid grid = buildScheduleModel(model, n, m);

    // Dropped / excluded PU classes: unit clauses banning every stage
    // from the disallowed columns (the degradation re-plan hook).
    for (int c = 0; c < m; ++c)
        if (!puAllowed(c))
            for (int i = 0; i < n; ++i)
                model.addClause({solver::neg(grid.at(i, c))});

    if (eval_ != nullptr) {
        // Throughput path. Every solver level minimizes a fixed
        // objective (the bounds each level derives only feed *later*
        // levels), and the model changes between solves only through
        // blocking clauses, which remove known assignments. So instead
        // of re-running the DPLL enumeration once per level and once
        // per candidate (~numPus + numCandidates + 2 full sweeps),
        // enumerate the feasible space exactly once, memoize every
        // prediction, and replay the level logic over the harvested
        // arrays. Each selection below mirrors Solver::minimize -
        // strict less-than, first solution in DPLL enumeration order
        // wins ties - so the candidate list is bit-identical to the
        // multi-pass from-scratch path.
        std::vector<int> flat; // num_sols * n stage-to-PU assignments
        std::vector<Prediction> preds;
        {
            std::vector<int> assign_scratch(static_cast<std::size_t>(n));
            solver::Solver s(model);
            s.forEachSolution([&](const solver::Assignment& a) {
                for (int i = 0; i < n; ++i) {
                    int chosen = -1;
                    for (int c = 0; c < m; ++c) {
                        if (a.value(grid.at(i, c))) {
                            chosen = c;
                            break; // C1 guarantees exactly one
                        }
                    }
                    BT_ASSERT(chosen >= 0, "stage ", i, " unassigned");
                    assign_scratch[static_cast<std::size_t>(i)] = chosen;
                }
                flat.insert(flat.end(), assign_scratch.begin(),
                            assign_scratch.end());
                preds.push_back(eval_->predict(
                    std::span<const int>(assign_scratch)));
                return true;
            });
            stats_.solverNodes += s.nodesExplored();
        }
        const std::size_t num_sols = preds.size();
        BT_ASSERT(num_sols > 0, "schedule space is empty");
        auto assignOf = [&](std::size_t i) {
            return std::span<const int>(
                flat.data() + i * static_cast<std::size_t>(n),
                static_cast<std::size_t>(n));
        };

        // Level 1a: unrestricted latency optimum (defines the Tmax
        // bound).
        double unrestricted
            = std::numeric_limits<double>::infinity();
        for (const Prediction& p : preds)
            unrestricted = std::min(unrestricted, p.latency);
        stats_.unrestrictedLatency = unrestricted;

        if (config.utilizationFilter) {
            stats_.latencyBound = stats_.unrestrictedLatency
                    * (1.0 + config.latencySlack)
                + 1e-12;

            // Level 1b: the highest PU-class count attainable within
            // the latency bound (maximize utilization subject to C3).
            stats_.requiredPus = 1;
            for (int r = std::min(m, n); r >= 1; --r) {
                double best_score
                    = std::numeric_limits<double>::infinity();
                std::size_t best_i = 0;
                for (std::size_t i = 0; i < num_sols; ++i) {
                    const Prediction& p = preds[i];
                    const double sc = p.numChunks < r
                        ? kFeasibilityPenalty + p.latency
                        : p.latency;
                    if (sc < best_score) {
                        best_score = sc;
                        best_i = i;
                    }
                }
                const Prediction& best = preds[best_i];
                if (best.numChunks >= r
                    && best.latency <= stats_.latencyBound) {
                    stats_.requiredPus = r;
                    break;
                }
            }

            // Level 1c: minimal gapness within the feasibility class
            // (objective O1 under C3).
            double best_score
                = std::numeric_limits<double>::infinity();
            std::size_t best_i = 0;
            for (std::size_t i = 0; i < num_sols; ++i) {
                const Prediction& p = preds[i];
                const double sc = (p.numChunks < stats_.requiredPus
                                   || p.latency > stats_.latencyBound)
                    ? kFeasibilityPenalty + p.gapness
                    : p.gapness;
                if (sc < best_score) {
                    best_score = sc;
                    best_i = i;
                }
            }
            stats_.minimalGapness = preds[best_i].gapness;
            stats_.gapnessBound = stats_.minimalGapness
                    * (1.0 + config.gapnessSlack)
                + 1e-9;
        }

        // Level 2: K diverse candidates. Picking a winner "blocks" its
        // exact assignment (C5); saturating a performance tier blocks
        // every assignment that maps the tier's stage range onto its
        // PU - precisely the solutions blockChunk's clause would
        // remove from the model.
        std::vector<Candidate> cands;
        std::vector<char> taken(num_sols, 0);
        std::vector<ChunkKey> blocked_chunks;
        std::map<ChunkKey, int> tier_count;
        auto inBlockedChunk = [&](std::size_t i) {
            const auto a = assignOf(i);
            for (const auto& [first, last, pu] : blocked_chunks) {
                bool covered = true;
                for (int s = first; s <= last && covered; ++s)
                    covered = (a[static_cast<std::size_t>(s)] == pu);
                if (covered)
                    return true;
            }
            return false;
        };
        for (int k = 0; k < config.numCandidates; ++k) {
            double best_score
                = std::numeric_limits<double>::infinity();
            std::size_t best_i = num_sols;
            for (std::size_t i = 0; i < num_sols; ++i) {
                if (taken[i] != 0 || inBlockedChunk(i))
                    continue;
                const Prediction& p = preds[i];
                const int cls
                    = rankClassOf(p.latency, p.gapness, p.numChunks);
                const double score
                    = rankScoreOf(p.latency, p.energyJ);
                const double sc = cls == 2
                    ? kFeasibilityPenalty + score
                    : cls == 1 ? kGapnessPenalty + score : score;
                if (sc < best_score) {
                    best_score = sc;
                    best_i = i;
                }
            }
            if (best_i == num_sols)
                break; // space exhausted
            taken[best_i] = 1;
            const auto a = assignOf(best_i);
            const Schedule sched = Schedule::fromAssignment(
                std::vector<int>(a.begin(), a.end()));
            cands.push_back(makeCandidate(sched));

            if (config.maxPerTier > 0) {
                const ChunkKey tier = bottleneckKey(sched, table);
                if (++tier_count[tier] >= config.maxPerTier)
                    blocked_chunks.push_back(tier);
            }
        }
        return cands;
    }

    auto latencyOf = [&](const solver::Assignment& a) {
        return scheduleFromAssignment(grid, a).bottleneckTime(table);
    };

    // Level 1a: unrestricted latency optimum (defines the Tmax bound).
    {
        solver::Solver s(model);
        auto best = s.minimize(latencyOf);
        stats_.solverNodes += s.nodesExplored();
        BT_ASSERT(best.has_value(), "schedule space is empty");
        stats_.unrestrictedLatency = latencyOf(*best);
    }

    if (config.utilizationFilter) {
        stats_.latencyBound = stats_.unrestrictedLatency
                * (1.0 + config.latencySlack)
            + 1e-12;

        // Level 1b: the highest PU-class count attainable within the
        // latency bound (maximize utilization subject to C3).
        stats_.requiredPus = 1;
        for (int r = std::min(m, n); r >= 1; --r) {
            solver::Solver s(model);
            auto best = s.minimize([&](const solver::Assignment& a) {
                const Schedule sched = scheduleFromAssignment(grid, a);
                if (sched.numChunks() < r)
                    return kFeasibilityPenalty
                        + sched.bottleneckTime(table);
                return sched.bottleneckTime(table);
            });
            stats_.solverNodes += s.nodesExplored();
            if (best.has_value()) {
                const Schedule sched
                    = scheduleFromAssignment(grid, *best);
                if (sched.numChunks() >= r
                    && sched.bottleneckTime(table)
                        <= stats_.latencyBound) {
                    stats_.requiredPus = r;
                    break;
                }
            }
        }

        // Level 1c: minimal gapness within the feasibility class
        // (objective O1 under C3).
        solver::Solver s(model);
        auto best = s.minimize([&](const solver::Assignment& a) {
            const Schedule sched = scheduleFromAssignment(grid, a);
            if (sched.numChunks() < stats_.requiredPus
                || sched.bottleneckTime(table) > stats_.latencyBound)
                return kFeasibilityPenalty + sched.gapness(table);
            return sched.gapness(table);
        });
        stats_.solverNodes += s.nodesExplored();
        BT_ASSERT(best.has_value());
        stats_.minimalGapness
            = scheduleFromAssignment(grid, *best).gapness(table);
        stats_.gapnessBound = stats_.minimalGapness
                * (1.0 + config.gapnessSlack)
            + 1e-9;
    }

    // Level 2: K diverse candidates; each found schedule is blocked
    // (C5) and the solve repeated. The penalty terms mirror the final
    // ranking so in-class schedules surface first; once a performance
    // tier (critical chunk assignment) is saturated, the whole tier is
    // blocked so the list spans tiers.
    std::vector<Candidate> cands;
    std::map<ChunkKey, int> tier_count;
    for (int k = 0; k < config.numCandidates; ++k) {
        solver::Solver s(model);
        auto next = s.minimize([&](const solver::Assignment& a) {
            const Candidate c
                = makeCandidate(scheduleFromAssignment(grid, a));
            const int cls = rankClass(c);
            const double score = rankScore(c);
            switch (cls) {
              case 2:
                return kFeasibilityPenalty + score;
              case 1:
                return kGapnessPenalty + score;
              default:
                return score;
            }
        });
        stats_.solverNodes += s.nodesExplored();
        if (!next.has_value())
            break; // space exhausted
        const Schedule sched = scheduleFromAssignment(grid, *next);
        cands.push_back(makeCandidate(sched));
        blockSchedule(model, grid, sched);

        if (config.maxPerTier > 0) {
            const ChunkKey tier = bottleneckKey(sched, table);
            if (++tier_count[tier] >= config.maxPerTier)
                blockChunk(model, grid, tier);
        }
    }
    return cands;
}

std::vector<Candidate>
Optimizer::optimizeExhaustive()
{
    const int n = table.numStages();
    const int m = soc.numPus();
    const auto all = enumerateSchedules(n, m);

    std::vector<Candidate> cands;
    cands.reserve(all.size());
    double best_latency = std::numeric_limits<double>::infinity();
    for (const auto& s : all) {
        bool admitted = true;
        for (const auto& chunk : s.chunks())
            admitted = admitted && puAllowed(chunk.pu);
        if (!admitted)
            continue; // excluded class (degradation re-plan hook)
        cands.push_back(makeCandidate(s));
        best_latency
            = std::min(best_latency, cands.back().predictedLatency);
    }
    BT_ASSERT(!cands.empty(), "allowedPus admits no schedule");
    stats_.unrestrictedLatency = best_latency;

    if (config.utilizationFilter) {
        stats_.latencyBound
            = best_latency * (1.0 + config.latencySlack) + 1e-12;

        // Highest PU count within the latency bound.
        stats_.requiredPus = 1;
        for (const auto& c : cands)
            if (c.predictedLatency <= stats_.latencyBound)
                stats_.requiredPus = std::max(
                    stats_.requiredPus, c.schedule.numChunks());

        // Minimal gapness within the feasibility class.
        double min_gap = std::numeric_limits<double>::infinity();
        for (const auto& c : cands)
            if (c.predictedLatency <= stats_.latencyBound
                && c.schedule.numChunks() >= stats_.requiredPus)
                min_gap = std::min(min_gap, c.predictedGapness);
        BT_ASSERT(min_gap < std::numeric_limits<double>::infinity());
        stats_.minimalGapness = min_gap;
        stats_.gapnessBound
            = min_gap * (1.0 + config.gapnessSlack) + 1e-9;
    }

    // Selection with the same tier-diversity rule as the solver path:
    // walk schedules best-first, cap per-tier membership, and treat a
    // saturated tier's chunk assignment as blocked anywhere.
    sortCandidates(cands);
    std::vector<Candidate> picked;
    std::map<ChunkKey, int> tier_count;
    std::set<ChunkKey> blocked;
    for (const auto& c : cands) {
        if (static_cast<int>(picked.size()) >= config.numCandidates)
            break;
        // A blocked (range, pu) bans every schedule assigning that
        // whole stage range to that PU - even inside a larger chunk -
        // exactly like the solver's blocking clause.
        const auto assign = c.schedule.toAssignment();
        bool banned = false;
        for (const auto& [first, last, pu] : blocked) {
            bool covered = true;
            for (int i = first; i <= last && covered; ++i)
                covered = assign[static_cast<std::size_t>(i)] == pu;
            banned = banned || covered;
        }
        if (banned)
            continue;
        picked.push_back(c);
        if (config.maxPerTier > 0) {
            const ChunkKey tier = bottleneckKey(c.schedule, table);
            if (++tier_count[tier] >= config.maxPerTier)
                blocked.insert(tier);
        }
    }
    return picked;
}

} // namespace bt::core
