#include "core/optimizer.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <tuple>

#include "common/logging.hpp"
#include "solver/solver.hpp"

namespace bt::core {

namespace {

/// Penalty offsets making the level-2 objective lexicographic: schedules
/// violating the latency/utilization feasibility class sort after those
/// merely exceeding the gapness budget, which sort after fully feasible
/// ones. Latencies are in seconds (~1e-3), so the offsets dominate.
constexpr double kGapnessPenalty = 1e6;
constexpr double kFeasibilityPenalty = 2e6;

/** Variable layout helper: x(i, c) is true iff stage i runs on PU c. */
struct VarGrid
{
    int numStages;
    int numPus;
    std::vector<solver::Var> vars;

    solver::Var
    at(int i, int c) const
    {
        return vars[static_cast<std::size_t>(i)
                    * static_cast<std::size_t>(numPus)
                    + static_cast<std::size_t>(c)];
    }
};

VarGrid
buildScheduleModel(solver::Model& model, int num_stages, int num_pus)
{
    VarGrid grid{num_stages, num_pus, {}};
    grid.vars.reserve(static_cast<std::size_t>(num_stages)
                      * static_cast<std::size_t>(num_pus));
    for (int i = 0; i < num_stages; ++i)
        for (int c = 0; c < num_pus; ++c)
            grid.vars.push_back(model.newVar(
                "x_" + std::to_string(i) + "_" + std::to_string(c)));

    // C1: exactly one PU per stage.
    for (int i = 0; i < num_stages; ++i) {
        std::vector<solver::Var> row;
        for (int c = 0; c < num_pus; ++c)
            row.push_back(grid.at(i, c));
        model.addExactlyOne(std::move(row));
    }

    // C2: contiguity - (x_{i,c} & x_{k,c}) -> x_{j,c} for i < j < k.
    for (int c = 0; c < num_pus; ++c)
        for (int i = 0; i < num_stages; ++i)
            for (int k = i + 2; k < num_stages; ++k)
                for (int j = i + 1; j < k; ++j)
                    model.addImplication(
                        {solver::pos(grid.at(i, c)),
                         solver::pos(grid.at(k, c))},
                        solver::pos(grid.at(j, c)));
    return grid;
}

Schedule
scheduleFromAssignment(const VarGrid& grid,
                       const solver::Assignment& assignment)
{
    std::vector<int> stage_to_pu(static_cast<std::size_t>(
        grid.numStages));
    for (int i = 0; i < grid.numStages; ++i) {
        int chosen = -1;
        for (int c = 0; c < grid.numPus; ++c) {
            if (assignment.value(grid.at(i, c))) {
                BT_ASSERT(chosen < 0, "two PUs for one stage");
                chosen = c;
            }
        }
        BT_ASSERT(chosen >= 0, "stage ", i, " unassigned");
        stage_to_pu[static_cast<std::size_t>(i)] = chosen;
    }
    return Schedule::fromAssignment(stage_to_pu);
}

/** Blocking clause C5: forbid this exact assignment. */
void
blockSchedule(solver::Model& model, const VarGrid& grid,
              const Schedule& schedule)
{
    const auto assignment = schedule.toAssignment();
    std::vector<solver::Lit> clause;
    clause.reserve(assignment.size());
    for (int i = 0; i < grid.numStages; ++i)
        clause.push_back(solver::neg(
            grid.at(i, assignment[static_cast<std::size_t>(i)])));
    model.addClause(std::move(clause));
}

/** (first stage, last stage, pu) identity of one chunk assignment. */
using ChunkKey = std::tuple<int, int, int>;

ChunkKey
keyOf(const Chunk& c)
{
    return {c.firstStage, c.lastStage, c.pu};
}

/** The chunk that determines the schedule's bottleneck latency. */
ChunkKey
bottleneckKey(const Schedule& s, const ProfilingTable& table)
{
    int best = 0;
    double worst = -1.0;
    for (int c = 0; c < s.numChunks(); ++c) {
        const double t = s.chunkTime(table, c);
        if (t > worst) {
            worst = t;
            best = c;
        }
    }
    return keyOf(s.chunks()[static_cast<std::size_t>(best)]);
}

/** Forbid ever assigning this chunk's stages to this PU again. */
void
blockChunk(solver::Model& model, const VarGrid& grid,
           const ChunkKey& key)
{
    const auto [first, last, pu] = key;
    std::vector<solver::Lit> clause;
    for (int i = first; i <= last; ++i)
        clause.push_back(solver::neg(grid.at(i, pu)));
    model.addClause(std::move(clause));
}

} // namespace

Optimizer::Optimizer(const platform::SocDescription& soc_,
                     const ProfilingTable& table_, OptimizerConfig cfg)
    : soc(soc_), table(table_), config(cfg), powerModel(soc_)
{
    BT_ASSERT(table.numPus() == soc.numPus(),
              "profiling table PU count does not match device");
    BT_ASSERT(config.numCandidates > 0);
    BT_ASSERT(config.gapnessSlack >= 0.0);
    BT_ASSERT(config.latencySlack >= 0.0);
    for (const int p : config.allowedPus)
        BT_ASSERT(p >= 0 && p < soc.numPus(),
                  "allowedPus names unknown PU ", p);
}

bool
Optimizer::puAllowed(int pu) const
{
    if (config.allowedPus.empty())
        return true;
    return std::find(config.allowedPus.begin(),
                     config.allowedPus.end(), pu)
        != config.allowedPus.end();
}

Candidate
Optimizer::makeCandidate(const Schedule& s) const
{
    Candidate c;
    c.schedule = s;
    c.predictedLatency = s.bottleneckTime(table);
    c.predictedGapness = s.gapness(table);

    // Predicted per-task energy: each used PU is active for its chunk
    // time (duty-cycled against the bottleneck interval), idle for the
    // rest; unused PUs idle throughout; plus the uncore floor.
    const double interval = c.predictedLatency;
    const int busy_others = s.numChunks() - 1;
    double energy = soc.basePowerW * interval;
    std::vector<bool> used(static_cast<std::size_t>(soc.numPus()),
                           false);
    for (int ch = 0; ch < s.numChunks(); ++ch) {
        const int pu = s.chunks()[static_cast<std::size_t>(ch)].pu;
        used[static_cast<std::size_t>(pu)] = true;
        const double active = s.chunkTime(table, ch);
        energy += active * powerModel.activePowerW(pu, busy_others)
            + std::max(0.0, interval - active)
                * soc.pu(pu).idlePowerW;
    }
    for (int p = 0; p < soc.numPus(); ++p)
        if (!used[static_cast<std::size_t>(p)])
            energy += interval * soc.pu(p).idlePowerW;
    c.predictedEnergyJ = energy;
    return c;
}

double
Optimizer::rankScore(const Candidate& c) const
{
    return config.objective == OptimizerConfig::Objective::EnergyDelay
        ? c.predictedEdp()
        : c.predictedLatency;
}

int
Optimizer::rankClass(const Candidate& c) const
{
    if (!config.utilizationFilter)
        return 0;
    if (c.predictedLatency > stats_.latencyBound + 1e-12
        || c.schedule.numChunks() < stats_.requiredPus)
        return 2; // outside the feasibility class
    if (c.predictedGapness > stats_.gapnessBound + 1e-12)
        return 1; // feasible but over the gapness budget
    return 0;
}

void
Optimizer::sortCandidates(std::vector<Candidate>& cands) const
{
    // Tie-break on the lexicographically smallest stage-to-PU vector,
    // which is exactly the order the DPLL solver (true-first, row-major
    // variables) prefers - keeping both engines' outputs identical.
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                         const int ra = rankClass(a);
                         const int rb = rankClass(b);
                         if (ra != rb)
                             return ra < rb;
                         const double sa = rankScore(a);
                         const double sb = rankScore(b);
                         if (sa != sb)
                             return sa < sb;
                         return a.schedule.toAssignment()
                             < b.schedule.toAssignment();
                     });
}

std::vector<Candidate>
Optimizer::optimize()
{
    stats_ = OptimizeStats{};
    stats_.latencyBound = std::numeric_limits<double>::infinity();
    stats_.gapnessBound = std::numeric_limits<double>::infinity();
    auto cands = config.engine == OptimizerConfig::Engine::Exhaustive
        ? optimizeExhaustive()
        : optimizeWithSolver();
    sortCandidates(cands);
    if (static_cast<int>(cands.size()) > config.numCandidates)
        cands.resize(static_cast<std::size_t>(config.numCandidates));
    stats_.candidatesWithinBound = 0;
    for (const auto& c : cands)
        if (rankClass(c) == 0)
            ++stats_.candidatesWithinBound;
    return cands;
}

std::vector<Candidate>
Optimizer::optimizeWithSolver()
{
    const int n = table.numStages();
    const int m = soc.numPus();

    solver::Model model;
    const VarGrid grid = buildScheduleModel(model, n, m);

    // Dropped / excluded PU classes: unit clauses banning every stage
    // from the disallowed columns (the degradation re-plan hook).
    for (int c = 0; c < m; ++c)
        if (!puAllowed(c))
            for (int i = 0; i < n; ++i)
                model.addClause({solver::neg(grid.at(i, c))});

    auto latencyOf = [&](const solver::Assignment& a) {
        return scheduleFromAssignment(grid, a).bottleneckTime(table);
    };

    // Level 1a: unrestricted latency optimum (defines the Tmax bound).
    {
        solver::Solver s(model);
        auto best = s.minimize(latencyOf);
        stats_.solverNodes += s.nodesExplored();
        BT_ASSERT(best.has_value(), "schedule space is empty");
        stats_.unrestrictedLatency = latencyOf(*best);
    }

    if (config.utilizationFilter) {
        stats_.latencyBound = stats_.unrestrictedLatency
                * (1.0 + config.latencySlack)
            + 1e-12;

        // Level 1b: the highest PU-class count attainable within the
        // latency bound (maximize utilization subject to C3).
        stats_.requiredPus = 1;
        for (int r = std::min(m, n); r >= 1; --r) {
            solver::Solver s(model);
            auto best = s.minimize([&](const solver::Assignment& a) {
                const Schedule sched = scheduleFromAssignment(grid, a);
                if (sched.numChunks() < r)
                    return kFeasibilityPenalty
                        + sched.bottleneckTime(table);
                return sched.bottleneckTime(table);
            });
            stats_.solverNodes += s.nodesExplored();
            if (best.has_value()) {
                const Schedule sched
                    = scheduleFromAssignment(grid, *best);
                if (sched.numChunks() >= r
                    && sched.bottleneckTime(table)
                        <= stats_.latencyBound) {
                    stats_.requiredPus = r;
                    break;
                }
            }
        }

        // Level 1c: minimal gapness within the feasibility class
        // (objective O1 under C3).
        solver::Solver s(model);
        auto best = s.minimize([&](const solver::Assignment& a) {
            const Schedule sched = scheduleFromAssignment(grid, a);
            if (sched.numChunks() < stats_.requiredPus
                || sched.bottleneckTime(table) > stats_.latencyBound)
                return kFeasibilityPenalty + sched.gapness(table);
            return sched.gapness(table);
        });
        stats_.solverNodes += s.nodesExplored();
        BT_ASSERT(best.has_value());
        stats_.minimalGapness
            = scheduleFromAssignment(grid, *best).gapness(table);
        stats_.gapnessBound = stats_.minimalGapness
                * (1.0 + config.gapnessSlack)
            + 1e-9;
    }

    // Level 2: K diverse candidates; each found schedule is blocked
    // (C5) and the solve repeated. The penalty terms mirror the final
    // ranking so in-class schedules surface first; once a performance
    // tier (critical chunk assignment) is saturated, the whole tier is
    // blocked so the list spans tiers.
    std::vector<Candidate> cands;
    std::map<ChunkKey, int> tier_count;
    for (int k = 0; k < config.numCandidates; ++k) {
        solver::Solver s(model);
        auto next = s.minimize([&](const solver::Assignment& a) {
            const Candidate c
                = makeCandidate(scheduleFromAssignment(grid, a));
            switch (rankClass(c)) {
              case 2:
                return kFeasibilityPenalty + rankScore(c);
              case 1:
                return kGapnessPenalty + rankScore(c);
              default:
                return rankScore(c);
            }
        });
        stats_.solverNodes += s.nodesExplored();
        if (!next.has_value())
            break; // space exhausted
        const Schedule sched = scheduleFromAssignment(grid, *next);
        cands.push_back(makeCandidate(sched));
        blockSchedule(model, grid, sched);

        if (config.maxPerTier > 0) {
            const ChunkKey tier = bottleneckKey(sched, table);
            if (++tier_count[tier] >= config.maxPerTier)
                blockChunk(model, grid, tier);
        }
    }
    return cands;
}

std::vector<Candidate>
Optimizer::optimizeExhaustive()
{
    const int n = table.numStages();
    const int m = soc.numPus();
    const auto all = enumerateSchedules(n, m);

    std::vector<Candidate> cands;
    cands.reserve(all.size());
    double best_latency = std::numeric_limits<double>::infinity();
    for (const auto& s : all) {
        bool admitted = true;
        for (const int pu : s.toAssignment())
            admitted = admitted && puAllowed(pu);
        if (!admitted)
            continue; // excluded class (degradation re-plan hook)
        cands.push_back(makeCandidate(s));
        best_latency
            = std::min(best_latency, cands.back().predictedLatency);
    }
    BT_ASSERT(!cands.empty(), "allowedPus admits no schedule");
    stats_.unrestrictedLatency = best_latency;

    if (config.utilizationFilter) {
        stats_.latencyBound
            = best_latency * (1.0 + config.latencySlack) + 1e-12;

        // Highest PU count within the latency bound.
        stats_.requiredPus = 1;
        for (const auto& c : cands)
            if (c.predictedLatency <= stats_.latencyBound)
                stats_.requiredPus = std::max(
                    stats_.requiredPus, c.schedule.numChunks());

        // Minimal gapness within the feasibility class.
        double min_gap = std::numeric_limits<double>::infinity();
        for (const auto& c : cands)
            if (c.predictedLatency <= stats_.latencyBound
                && c.schedule.numChunks() >= stats_.requiredPus)
                min_gap = std::min(min_gap, c.predictedGapness);
        BT_ASSERT(min_gap < std::numeric_limits<double>::infinity());
        stats_.minimalGapness = min_gap;
        stats_.gapnessBound
            = min_gap * (1.0 + config.gapnessSlack) + 1e-9;
    }

    // Selection with the same tier-diversity rule as the solver path:
    // walk schedules best-first, cap per-tier membership, and treat a
    // saturated tier's chunk assignment as blocked anywhere.
    sortCandidates(cands);
    std::vector<Candidate> picked;
    std::map<ChunkKey, int> tier_count;
    std::set<ChunkKey> blocked;
    for (const auto& c : cands) {
        if (static_cast<int>(picked.size()) >= config.numCandidates)
            break;
        // A blocked (range, pu) bans every schedule assigning that
        // whole stage range to that PU - even inside a larger chunk -
        // exactly like the solver's blocking clause.
        const auto assign = c.schedule.toAssignment();
        bool banned = false;
        for (const auto& [first, last, pu] : blocked) {
            bool covered = true;
            for (int i = first; i <= last && covered; ++i)
                covered = assign[static_cast<std::size_t>(i)] == pu;
            banned = banned || covered;
        }
        if (banned)
            continue;
        picked.push_back(c);
        if (config.maxPerTier > 0) {
            const ChunkKey tier = bottleneckKey(c.schedule, table);
            if (++tier_count[tier] >= config.maxPerTier)
                blocked.insert(tier);
        }
    }
    return picked;
}

} // namespace bt::core
