/**
 * @file
 * Data-parallel baseline model (paper Sec. 1, "Heterogeneous
 * Parallelism"): instead of pipelining stages across PUs, every stage's
 * data is split across ALL PU classes proportionally to their speed,
 * with a synchronization barrier between stages. The paper argues this
 * is suboptimal because every PU must execute tasks it is poorly
 * suited for (e.g. the GPU still sorts); this model quantifies that.
 */

#ifndef BT_CORE_DATA_PARALLEL_HPP
#define BT_CORE_DATA_PARALLEL_HPP

#include "core/application.hpp"
#include "core/profiling_table.hpp"

namespace bt::core {

/** Data-parallel estimate knobs. */
struct DataParallelConfig
{
    /** Barrier + split/merge cost charged per stage (seconds). */
    double syncOverheadSeconds = 50e-6;

    /**
     * Fraction of a stage that can actually be split across PUs; the
     * rest runs on the fastest PU alone (irregular stages rarely split
     * perfectly).
     */
    double splittableFraction = 0.90;
};

/**
 * Predicted per-task latency (seconds) of executing @p app with every
 * stage data-parallel across all PU classes, using @p table (the
 * interference-aware table: all PUs are busy during every stage) as
 * the per-PU cost model.
 *
 * With perfect proportional splitting a stage costs the harmonic
 * combination 1 / sum_p (1 / t_{s,p}); the non-splittable remainder
 * stays on the fastest PU; each stage then pays the barrier cost.
 */
double dataParallelLatency(const Application& app,
                           const ProfilingTable& table,
                           DataParallelConfig cfg = {});

/** Per-stage breakdown of the same estimate (for reporting). */
std::vector<double> dataParallelStageTimes(const Application& app,
                                           const ProfilingTable& table,
                                           DataParallelConfig cfg = {});

} // namespace bt::core

#endif // BT_CORE_DATA_PARALLEL_HPP
