#include "core/task_object.hpp"

#include "common/logging.hpp"

namespace bt::core {

UsmBuffer&
TaskObject::addBuffer(const std::string& name, std::size_t bytes)
{
    BT_ASSERT(!name.empty(), "buffer needs a name");
    auto [it, inserted] = buffers.emplace(name, UsmBuffer(bytes));
    BT_ASSERT(inserted, "duplicate buffer name: ", name);
    return it->second;
}

bool
TaskObject::hasBuffer(const std::string& name) const
{
    return buffers.count(name) > 0;
}

UsmBuffer&
TaskObject::buffer(const std::string& name)
{
    auto it = buffers.find(name);
    BT_ASSERT(it != buffers.end(), "unknown buffer: ", name);
    return it->second;
}

const UsmBuffer&
TaskObject::buffer(const std::string& name) const
{
    auto it = buffers.find(name);
    BT_ASSERT(it != buffers.end(), "unknown buffer: ", name);
    return it->second;
}

void
TaskObject::setScalar(const std::string& name, std::int64_t value)
{
    scalars[name] = value;
}

std::int64_t
TaskObject::scalar(const std::string& name) const
{
    auto it = scalars.find(name);
    BT_ASSERT(it != scalars.end(), "unknown scalar: ", name);
    return it->second;
}

bool
TaskObject::hasScalar(const std::string& name) const
{
    return scalars.count(name) > 0;
}

void
TaskObject::reset()
{
    scalars.clear();
    index = -1;
}

} // namespace bt::core
