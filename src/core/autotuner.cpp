#include "core/autotuner.hpp"

#include <algorithm>
#include <cstdint>

#include "common/logging.hpp"
#include "sched/thread_pool.hpp"

namespace bt::core {

double
TuningReport::autotuningGain() const
{
    // The predicted-best schedule is the one ranked first by the
    // optimizer (rankPredicted == 0); the gain is how much faster the
    // measured best is.
    for (const auto& t : all) {
        if (t.rankPredicted == 0) {
            BT_ASSERT(best().measuredLatency > 0.0);
            return t.measuredLatency / best().measuredLatency;
        }
    }
    // Every well-formed report carries the optimizer's first-ranked
    // candidate; its absence means the report was truncated or stitched
    // together by hand. Returning a silent 1.0 here used to mask that.
    BT_PANIC("tuning.malformed",
             "malformed TuningReport: no candidate with rankPredicted "
             "== 0 among ",
             all.size(), " tuned candidates");
}

TuningReport
AutoTuner::tune(const Application& app,
                const std::vector<Candidate>& candidates) const
{
    BT_ASSERT(!candidates.empty(), "autotuner needs candidates");
    BT_ASSERT(threads_ >= 1, "autotuner thread count must be positive");

    // Execute every candidate. Each execution is self-contained (a
    // VirtualTimeBackend run builds its own session, engine, and energy
    // meter over const inputs), so the campaign fans out over a worker
    // team; each run lands in its candidate's indexed slot.
    const std::size_t n = candidates.size();
    std::vector<runtime::RunResult> runs(n);
    const int team = std::min(threads_, static_cast<int>(n));
    if (team > 1) {
        sched::ThreadPool pool(team);
        pool.parallelFor(
            0, static_cast<std::int64_t>(n), [&](std::int64_t i) {
                const auto idx = static_cast<std::size_t>(i);
                runs[idx]
                    = executor_.execute(app, candidates[idx].schedule);
            });
    } else {
        for (std::size_t i = 0; i < n; ++i)
            runs[i] = executor_.execute(app, candidates[i].schedule);
    }

    // Merge in candidate order: the campaign-cost sum folds in the same
    // order as a serial campaign, so the report is bit-identical at any
    // thread count.
    TuningReport report;
    report.all.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const runtime::RunResult& run = runs[i];
        TunedCandidate tc;
        tc.candidate = candidates[i];
        tc.measuredLatency = run.taskIntervalSeconds;
        tc.rankPredicted = static_cast<int>(i);
        report.campaignCostSeconds
            += std::max(run.makespanSeconds, windowSeconds);
        report.all.push_back(tc);
    }

    std::stable_sort(report.all.begin(), report.all.end(),
                     [](const TunedCandidate& a, const TunedCandidate& b)
                     {
                         return a.measuredLatency < b.measuredLatency;
                     });
    report.bestIndex = 0;
    return report;
}

TuningReport
AutoTuner::tuneAnnealed(const Application& app,
                        const platform::SocDescription& soc,
                        const ProfilingTable& table, PlannerSpec spec,
                        const AnnealCampaign& campaign) const
{
    BT_ASSERT(!campaign.seeds.empty(), "campaign needs seeds");
    BT_ASSERT(!campaign.initialTemperatures.empty(),
              "campaign needs temperatures");
    spec.engine = PlannerEngine::Annealed;

    // All variants walk the same space over the same table, so one
    // warm evaluator serves every planning pass.
    platform::PerfModel power(soc);
    ScheduleEvaluator shared_eval(soc, table, power,
                                  spec.contentionProfile);
    spec.sharedEvaluator = &shared_eval;

    std::vector<Candidate> champions;
    for (const std::uint64_t seed : campaign.seeds) {
        for (const double t0 : campaign.initialTemperatures) {
            PlannerSpec variant = spec;
            variant.anneal.seed = seed;
            variant.anneal.initialTemperature = t0;
            Optimizer optimizer(soc, table, std::move(variant));
            const auto cands = optimizer.optimize();
            BT_ASSERT(!cands.empty());
            // Dedup by assignment, first-seen order, so the tuned
            // list (and rankPredicted indexing) is deterministic.
            const auto assign = cands.front().schedule.toAssignment();
            const bool seen = std::any_of(
                champions.begin(), champions.end(),
                [&](const Candidate& c) {
                    return c.schedule.toAssignment() == assign;
                });
            if (!seen)
                champions.push_back(cands.front());
        }
    }
    return tune(app, champions);
}

} // namespace bt::core
