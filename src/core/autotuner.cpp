#include "core/autotuner.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::core {

double
TuningReport::autotuningGain() const
{
    // The predicted-best schedule is the one ranked first by the
    // optimizer (rankPredicted == 0); the gain is how much faster the
    // measured best is.
    for (const auto& t : all) {
        if (t.rankPredicted == 0) {
            BT_ASSERT(best().measuredLatency > 0.0);
            return t.measuredLatency / best().measuredLatency;
        }
    }
    return 1.0;
}

TuningReport
AutoTuner::tune(const Application& app,
                const std::vector<Candidate>& candidates) const
{
    BT_ASSERT(!candidates.empty(), "autotuner needs candidates");

    TuningReport report;
    report.all.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const runtime::RunResult run
            = executor_.execute(app, candidates[i].schedule);
        TunedCandidate tc;
        tc.candidate = candidates[i];
        tc.measuredLatency = run.taskIntervalSeconds;
        tc.rankPredicted = static_cast<int>(i);
        report.campaignCostSeconds
            += std::max(run.makespanSeconds, windowSeconds);
        report.all.push_back(tc);
    }

    std::stable_sort(report.all.begin(), report.all.end(),
                     [](const TunedCandidate& a, const TunedCandidate& b)
                     {
                         return a.measuredLatency < b.measuredLatency;
                     });
    report.bestIndex = 0;
    return report;
}

} // namespace bt::core
