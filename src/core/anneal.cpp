#include "core/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hpp"

namespace bt::core {

namespace {

void
toAssignment(const std::vector<Chunk>& chunks, std::vector<int>& out)
{
    for (const Chunk& c : chunks)
        for (int s = c.firstStage; s <= c.lastStage; ++s)
            out[static_cast<std::size_t>(s)] = c.pu;
}

} // namespace

Annealer::Annealer(const platform::SocDescription& soc,
                   ScheduleEvaluator& eval, const AnnealSpec& spec,
                   int bucket, std::vector<int> allowed_pus,
                   const platform::ContentionProfile* contention,
                   std::int64_t budget_milli)
    : soc_(soc), eval_(eval), bucket_(bucket),
      allowed_(std::move(allowed_pus)), contention_(contention),
      budgetMilli_(budget_milli), numStages_(eval.numStages()),
      keyed_(eval.keyed())
{
    BT_ASSERT(!allowed_.empty(), "annealer needs at least one PU");
    std::sort(allowed_.begin(), allowed_.end());
    allowed_.erase(std::unique(allowed_.begin(), allowed_.end()),
                   allowed_.end());
    for (const int pu : allowed_)
        BT_ASSERT(pu >= 0 && pu < soc_.numPus(),
                  "allowed PU ", pu, " outside the device");
    BT_ASSERT(budgetMilli_ == 0 || contention_ != nullptr,
              "C6 filtering needs a contention profile");
    BT_ASSERT(spec.moveBudget > 0, "moveBudget must be positive");
    BT_ASSERT(spec.finalTemperature > 0.0
                  && spec.finalTemperature <= 1.0,
              "finalTemperature must be in (0, 1]");
    assignScratch_.assign(static_cast<std::size_t>(numStages_), 0);
    t0_ = spec.initialTemperature > 0.0 ? spec.initialTemperature
                                        : 0.25;
    coolFraction_ = spec.finalTemperature;
    seedChains(spec);
    maybeSweep(spec);
}

void
Annealer::maybeSweep(const AnnealSpec& spec)
{
    // A walk over a space that fits comfortably inside the move budget
    // is pure waste: sweep it instead, so the pool is the full
    // enumeration and the harvested result matches the exhaustive
    // engine exactly. scheduleSpaceSize saturates, so huge instances
    // compare safely.
    const int m_eff = static_cast<int>(allowed_.size());
    const std::uint64_t space = scheduleSpaceSize(numStages_, m_eff);
    if (space > static_cast<std::uint64_t>(spec.moveBudget / 4))
        return;
    for (const Schedule& s : enumerateSchedules(numStages_, m_eff)) {
        // enumerateSchedules indexes PUs 0..m_eff-1; map onto the
        // allowed set (sorted, so restricted sweeps stay canonical).
        std::vector<Chunk> chunks = s.chunks();
        for (Chunk& c : chunks)
            c.pu = allowed_[static_cast<std::size_t>(c.pu)];
        ++proposed_;
        evaluate(chunks);
    }
    exhausted_ = true;
}

std::vector<Chunk>
Annealer::frugalHomogeneous() const
{
    // The single-chunk schedule on the allowed PU with the smallest
    // worst-stage demand - the same schedule the Optimizer's C6
    // feasibility pre-check reasons about, so it is feasible whenever
    // the filter is active.
    BT_ASSERT(contention_ != nullptr);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    int best_pu = allowed_.front();
    for (const int pu : allowed_) {
        std::int64_t d = 0;
        for (int s = 0; s < numStages_; ++s)
            d = std::max(d, contention_->demandMilli(s, pu));
        if (d < best) {
            best = d;
            best_pu = pu;
        }
    }
    return {Chunk{0, numStages_ - 1, best_pu}};
}

void
Annealer::seedChains(const AnnealSpec& spec)
{
    const int restarts = std::max(1, spec.restarts);
    chains_.reserve(static_cast<std::size_t>(restarts));

    // Chain 0 starts from the best feasible homogeneous baseline (also
    // guaranteeing the pool is never empty); the rest start from
    // seeded random partitions for diversity.
    Chain first;
    first.rng = Rng(hashCombine(spec.seed, 0));
    double best = std::numeric_limits<double>::infinity();
    int best_pu = -1;
    for (const int pu : allowed_) {
        const std::vector<Chunk> one{Chunk{0, numStages_ - 1, pu}};
        const Prediction* p = evaluate(one);
        if (p != nullptr && p->latency < best) {
            best = p->latency;
            best_pu = pu;
        }
    }
    BT_ASSERT(best_pu >= 0,
              "no homogeneous schedule fits the C6 budget (the "
              "optimizer's feasibility pre-check should have relaxed "
              "C6)");
    first.chunks = {Chunk{0, numStages_ - 1, best_pu}};
    chains_.push_back(std::move(first));

    for (int c = 1; c < restarts; ++c) {
        Chain ch;
        ch.rng = Rng(
            hashCombine(spec.seed, static_cast<std::uint64_t>(c)));
        ch.chunks = randomPartition(ch.rng);
        const Prediction* p = evaluate(ch.chunks); // pool the start
        BT_ASSERT(p != nullptr, "random chain start must be feasible");
        chains_.push_back(std::move(ch));
    }
}

std::vector<Chunk>
Annealer::randomPartition(Rng& rng) const
{
    const int n = numStages_;
    const int m_eff = static_cast<int>(allowed_.size());
    const int k = 1
        + static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(std::min(n, m_eff))));

    // k-1 distinct cut points from {1..n-1} via partial Fisher-Yates.
    std::vector<int> cuts(static_cast<std::size_t>(n - 1));
    std::iota(cuts.begin(), cuts.end(), 1);
    for (int i = 0; i < k - 1; ++i)
        std::swap(cuts[static_cast<std::size_t>(i)],
                  cuts[static_cast<std::size_t>(i)
                       + rng.nextBounded(
                           static_cast<std::uint64_t>(n - 1 - i))]);
    cuts.resize(static_cast<std::size_t>(k - 1));
    std::sort(cuts.begin(), cuts.end());

    // k distinct PUs from the allowed set, same trick.
    std::vector<int> pus(allowed_);
    for (int i = 0; i < k; ++i)
        std::swap(pus[static_cast<std::size_t>(i)],
                  pus[static_cast<std::size_t>(i)
                      + rng.nextBounded(
                          static_cast<std::uint64_t>(m_eff - i))]);

    std::vector<Chunk> chunks;
    chunks.reserve(static_cast<std::size_t>(k));
    int start = 0;
    for (int i = 0; i < k; ++i) {
        const int last
            = i + 1 < k ? cuts[static_cast<std::size_t>(i)] - 1 : n - 1;
        chunks.push_back(
            Chunk{start, last, pus[static_cast<std::size_t>(i)]});
        start = last + 1;
    }

    if (budgetMilli_ > 0) {
        std::vector<int> assign(static_cast<std::size_t>(n));
        toAssignment(chunks, assign);
        if (!demandOk(assign))
            return frugalHomogeneous(); // feasible fallback start
    }
    return chunks;
}

bool
Annealer::demandOk(const std::vector<int>& assignment) const
{
    if (budgetMilli_ <= 0)
        return true;
    return contention_->aggregateDemandMilli(
               std::span<const int>(assignment))
        <= budgetMilli_;
}

void
Annealer::poolInsert(const std::vector<int>& assignment,
                     const Prediction& pred)
{
    if (keyed_) {
        std::uint64_t key = 0;
        for (std::size_t i = 0; i < assignment.size(); ++i)
            key |= static_cast<std::uint64_t>(assignment[i]) << (4 * i);
        if (!poolKeys_.insert(key).second)
            return;
    } else {
        if (!poolKeysWide_.emplace(assignment, true).second)
            return;
    }
    pool_.push_back(PoolEntry{assignment, pred});
}

const Prediction*
Annealer::evaluate(const std::vector<Chunk>& chunks)
{
    toAssignment(chunks, assignScratch_);
    if (!demandOk(assignScratch_)) {
        ++filtered_; // C6: the move is never even scored
        return nullptr;
    }
    predScratch_ = eval_.predict(
        std::span<const int>(assignScratch_), bucket_);
    poolInsert(assignScratch_, predScratch_);
    return &predScratch_;
}

bool
Annealer::propose(Chain& chain)
{
    const std::vector<Chunk>& cur = chain.chunks;
    const int nc = static_cast<int>(cur.size());
    prop_ = cur;
    // Rare teleport to a fresh random partition: keeps the proposal
    // chain irreducible even after every chain has frozen, without
    // diluting the local move mix.
    if (chain.rng.nextBounded(16) == 0) {
        prop_ = randomPartition(chain.rng);
        return true;
    }
    switch (chain.rng.nextBounded(4)) {
      case 0: { // reassign a chunk onto an unused allowed PU
        std::vector<int> free;
        for (const int pu : allowed_) {
            bool used = false;
            for (const Chunk& c : cur)
                used = used || c.pu == pu;
            if (!used)
                free.push_back(pu);
        }
        if (free.empty())
            return false;
        const auto idx = chain.rng.nextBounded(
            static_cast<std::uint64_t>(nc));
        prop_[idx].pu
            = free[chain.rng.nextBounded(free.size())];
        return true;
      }
      case 1: { // swap adjacent chunks' PU assignments
        if (nc < 2)
            return false;
        const auto i = chain.rng.nextBounded(
            static_cast<std::uint64_t>(nc - 1));
        std::swap(prop_[i].pu, prop_[i + 1].pu);
        return true;
      }
      case 2: { // rebalance: shift a chunk boundary by one stage
        if (nc < 2)
            return false;
        const auto b = chain.rng.nextBounded(
            static_cast<std::uint64_t>(nc - 1));
        if (chain.rng.nextBounded(2) == 0) {
            ++prop_[b].lastStage; // grow left, shrink right
            ++prop_[b + 1].firstStage;
            if (prop_[b + 1].firstStage > prop_[b + 1].lastStage)
                prop_.erase(prop_.begin()
                            + static_cast<std::ptrdiff_t>(b) + 1);
        } else {
            --prop_[b].lastStage; // shrink left, grow right
            --prop_[b + 1].firstStage;
            if (prop_[b].firstStage > prop_[b].lastStage)
                prop_.erase(prop_.begin()
                            + static_cast<std::ptrdiff_t>(b));
        }
        return true;
      }
      default: { // rebalance: split a chunk onto an unused allowed PU
        std::vector<int> free;
        for (const int pu : allowed_) {
            bool used = false;
            for (const Chunk& c : cur)
                used = used || c.pu == pu;
            if (!used)
                free.push_back(pu);
        }
        if (free.empty())
            return false;
        std::vector<int> splittable;
        for (int c = 0; c < nc; ++c)
            if (cur[static_cast<std::size_t>(c)].numStages() >= 2)
                splittable.push_back(c);
        if (splittable.empty())
            return false;
        const int c = splittable[chain.rng.nextBounded(
            splittable.size())];
        const std::size_t ci = static_cast<std::size_t>(c);
        const int cut = prop_[ci].firstStage
            + static_cast<int>(chain.rng.nextBounded(
                static_cast<std::uint64_t>(prop_[ci].numStages()
                                           - 1)));
        const Chunk right{cut + 1, prop_[ci].lastStage,
                          free[chain.rng.nextBounded(free.size())]};
        prop_[ci].lastStage = cut;
        prop_.insert(prop_.begin() + c + 1, right);
        return true;
      }
    }
}

void
Annealer::runPhase(const Guide& guide, std::int64_t proposals)
{
    if (proposals <= 0)
        return;
    const auto nchains = static_cast<std::int64_t>(chains_.size());
    for (std::int64_t ci = 0; ci < nchains; ++ci) {
        Chain& ch = chains_[static_cast<std::size_t>(ci)];
        // Re-score the carried-over state under this phase's guide.
        const Prediction* p = evaluate(ch.chunks);
        BT_ASSERT(p != nullptr, "chain states stay C6-feasible");
        ch.cost = guide(*p);
        ch.best = ch.chunks;
        ch.bestCost = ch.cost;

        const std::int64_t steps = proposals / nchains
            + (ci < proposals % nchains ? 1 : 0);
        if (steps <= 0)
            continue;
        double t = t0_;
        const double factor = steps > 1
            ? std::pow(coolFraction_,
                       1.0 / static_cast<double>(steps - 1))
            : 1.0;
        for (std::int64_t s = 0; s < steps; ++s, t *= factor) {
            ++proposed_;
            if (!propose(ch))
                continue; // drawn move inapplicable to this state
            const Prediction* q = evaluate(prop_);
            if (q == nullptr)
                continue; // C6-filtered
            const double cost = guide(*q);
            const double delta = cost - ch.cost;
            bool accept = delta <= 0.0;
            if (!accept) {
                // Relative Metropolis rule: temperature scales with
                // the current cost so one spec works across guides
                // whose magnitudes differ by orders of magnitude.
                const double scale
                    = std::max(std::abs(ch.cost), 1e-12);
                accept = ch.rng.nextDouble()
                    < std::exp(-delta / (t * scale));
            }
            if (accept) {
                ch.chunks = prop_;
                ch.cost = cost;
                ++accepted_;
                if (cost < ch.bestCost) {
                    ch.best = ch.chunks;
                    ch.bestCost = cost;
                }
            }
        }
        // Hand the phase's best state to the next phase.
        ch.chunks = ch.best;
        ch.cost = ch.bestCost;
    }
}

Annealer::Stats
Annealer::stats() const
{
    Stats s;
    s.proposed = proposed_;
    s.accepted = accepted_;
    s.filtered = filtered_;
    s.distinct = static_cast<std::int64_t>(pool_.size());
    s.chains = static_cast<int>(chains_.size());
    return s;
}

} // namespace bt::core
