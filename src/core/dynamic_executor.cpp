#include "core/dynamic_executor.hpp"

#include "common/logging.hpp"

namespace bt::core {

DynamicExecutor::DynamicExecutor(const platform::PerfModel& model,
                                 const ProfilingTable& table,
                                 DynamicExecConfig cfg)
    : backend(model, table), config(cfg)
{
    BT_ASSERT(config.numTasks > 0);
    BT_ASSERT(config.dispatchOverheadUs >= 0.0);
}

runtime::RunResult
DynamicExecutor::execute(const Application& app) const
{
    return backend.run(
        app, config,
        runtime::GreedyParams{config.tasksInFlight,
                              config.dispatchOverheadUs});
}

} // namespace bt::core
