#include "core/dynamic_executor.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/engine.hpp"

namespace bt::core {

namespace {

/** What a PU class is doing right now. */
enum class PuState { Idle, Dispatching, Running };

/** A (task, stage) pair waiting for a PU. */
struct ReadyItem
{
    std::int64_t task;
    int stage;
};

} // namespace

DynamicExecutor::DynamicExecutor(const platform::PerfModel& model_,
                                 const ProfilingTable& table_,
                                 DynamicExecConfig cfg)
    : model(model_), table(table_), config(cfg)
{
    BT_ASSERT(config.numTasks > 0);
    BT_ASSERT(config.dispatchOverheadUs >= 0.0);
}

ExecutionResult
DynamicExecutor::execute(const Application& app) const
{
    const auto& soc = model.soc();
    BT_ASSERT(table.numStages() == app.numStages()
                  && table.numPus() == soc.numPus(),
              "cost table does not match application/device");

    const int num_pus = soc.numPus();
    const int in_flight_cap = config.tasksInFlight > 0
        ? config.tasksInFlight
        : num_pus + 1;

    ExecutionResult result;
    result.tasks = config.numTasks;

    std::vector<PuState> pu_state(static_cast<std::size_t>(num_pus),
                                  PuState::Idle);
    std::vector<ReadyItem> pu_item(static_cast<std::size_t>(num_pus));
    std::vector<double> pu_busy(static_cast<std::size_t>(num_pus),
                                0.0);
    std::vector<double> pu_started(static_cast<std::size_t>(num_pus),
                                   0.0);
    std::deque<ReadyItem> ready;
    std::int64_t next_task = 0;
    int in_flight = 0;

    std::vector<double> inject_time(static_cast<std::size_t>(
        config.numTasks), 0.0);
    std::vector<double> complete_time(static_cast<std::size_t>(
        config.numTasks), 0.0);

    sim::Engine engine([&](std::span<const sim::ActiveTask> active,
                           std::span<double> rates) {
        std::vector<platform::Load> loads(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
            const int pu = static_cast<int>(active[i].tag);
            BT_ASSERT(pu_state[static_cast<std::size_t>(pu)]
                      == PuState::Running);
            loads[i] = platform::Load{
                &app.stage(pu_item[static_cast<std::size_t>(pu)].stage)
                     .work(),
                pu};
        }
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0 / model.timeOf(i, loads);
    });

    auto stageNoise = [&](std::int64_t task, int stage) {
        const std::uint64_t key = hashCombine(
            hashCombine(soc.seed ^ config.noiseSalt ^ 0xd12a,
                        static_cast<std::uint64_t>(task)),
            static_cast<std::uint64_t>(stage));
        Rng rng(key);
        return soc.noiseSigma > 0.0
            ? rng.nextLogNormalFactor(soc.noiseSigma)
            : 1.0;
    };

    // HEFT-style earliest-completion dispatch: every ready item is
    // assigned to the PU minimizing (estimated availability + cost),
    // which may mean queueing behind a busy fast PU rather than
    // running immediately on a slow idle one. Each PU drains its own
    // FIFO of assigned items.
    std::vector<std::deque<ReadyItem>> pu_queue(
        static_cast<std::size_t>(num_pus));
    std::vector<double> pu_available(static_cast<std::size_t>(num_pus),
                                     0.0);

    std::function<void(int)> tryStartPu = [&](int p) {
        const auto pi = static_cast<std::size_t>(p);
        if (pu_state[pi] != PuState::Idle || pu_queue[pi].empty())
            return;
        pu_state[pi] = PuState::Dispatching;
        pu_item[pi] = pu_queue[pi].front();
        pu_queue[pi].pop_front();
        pu_started[pi] = engine.now();
        engine.scheduleAt(
            engine.now() + config.dispatchOverheadUs * 1e-6, [&, p] {
                const auto pj = static_cast<std::size_t>(p);
                pu_state[pj] = PuState::Running;
                engine.startTask(
                    static_cast<std::uint64_t>(p),
                    stageNoise(pu_item[pj].task, pu_item[pj].stage));
            });
    };

    std::function<void()> schedule = [&] {
        // Admit new tasks up to the in-flight cap.
        while (in_flight < in_flight_cap
               && next_task < config.numTasks) {
            inject_time[static_cast<std::size_t>(next_task)]
                = engine.now();
            ready.push_back(ReadyItem{next_task, 0});
            ++next_task;
            ++in_flight;
        }
        while (!ready.empty()) {
            const ReadyItem item = ready.front();
            ready.pop_front();
            int best_pu = 0;
            double best_finish
                = std::numeric_limits<double>::infinity();
            for (int p = 0; p < num_pus; ++p) {
                const auto pi = static_cast<std::size_t>(p);
                const double avail
                    = std::max(pu_available[pi], engine.now());
                const double finish
                    = avail + table.at(item.stage, p)
                    + config.dispatchOverheadUs * 1e-6;
                if (finish < best_finish) {
                    best_finish = finish;
                    best_pu = p;
                }
            }
            const auto pi = static_cast<std::size_t>(best_pu);
            pu_queue[pi].push_back(item);
            pu_available[pi] = best_finish;
            tryStartPu(best_pu);
        }
    };

    engine.onComplete([&](sim::TaskId, std::uint64_t tag) {
        const auto pi = static_cast<std::size_t>(tag);
        const ReadyItem done = pu_item[pi];
        pu_busy[pi] += engine.now() - pu_started[pi];
        pu_state[pi] = PuState::Idle;

        if (done.stage + 1 < app.numStages()) {
            ready.push_back(ReadyItem{done.task, done.stage + 1});
        } else {
            complete_time[static_cast<std::size_t>(done.task)]
                = engine.now();
            --in_flight;
        }
        // Estimates drift from reality; re-anchor this PU's clock.
        pu_available[pi] = engine.now();
        schedule();
        tryStartPu(static_cast<int>(pi));
    });

    schedule();
    engine.run();
    BT_ASSERT(next_task == config.numTasks && in_flight == 0,
              "dynamic run stalled");

    result.makespanSeconds = engine.now();
    const int n = config.numTasks;
    const int w = std::min(config.warmupTasks, n - 1);
    // Dynamic dispatch may complete tasks out of order; the steady
    // state interval is taken over the sorted completion times.
    std::vector<double> sorted_completions = complete_time;
    std::sort(sorted_completions.begin(), sorted_completions.end());
    if (n - w >= 2) {
        result.taskIntervalSeconds
            = (sorted_completions[static_cast<std::size_t>(n - 1)]
               - sorted_completions[static_cast<std::size_t>(w)])
            / static_cast<double>(n - 1 - w);
    } else {
        result.taskIntervalSeconds
            = result.makespanSeconds / static_cast<double>(n);
    }

    std::vector<double> latencies(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        latencies[static_cast<std::size_t>(t)]
            = complete_time[static_cast<std::size_t>(t)]
            - inject_time[static_cast<std::size_t>(t)];
    result.meanLatencySeconds = mean(latencies);

    result.chunkBusyFraction.resize(static_cast<std::size_t>(num_pus));
    for (int p = 0; p < num_pus; ++p)
        result.chunkBusyFraction[static_cast<std::size_t>(p)]
            = result.makespanSeconds > 0.0
            ? pu_busy[static_cast<std::size_t>(p)]
                / result.makespanSeconds
            : 0.0;
    return result;
}

} // namespace bt::core
