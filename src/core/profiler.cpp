#include "core/profiler.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace bt::core {

Profiler::Profiler(const platform::PerfModel& model_, ProfilerConfig cfg)
    : model(model_), config(cfg)
{
    BT_ASSERT(config.repetitions > 0);
}

double
Profiler::measureCell(const platform::WorkProfile& work, int stage_index,
                      int pu, bool interference_heavy,
                      double* stddev_out, double* cost_out) const
{
    const auto& soc = model.soc();
    const double base = interference_heavy
        ? model.interferenceHeavyTime(work, pu)
        : model.isolatedTime(work, pu);

    std::vector<double> reps(static_cast<std::size_t>(
        config.repetitions));
    double cost = 0.0;
    for (int r = 0; r < config.repetitions; ++r) {
        // Independent noise stream per (device, stage, pu, mode, rep).
        const std::uint64_t key = hashCombine(
            hashCombine(soc.seed, static_cast<std::uint64_t>(
                stage_index)),
            hashCombine(static_cast<std::uint64_t>(pu) * 2
                            + (interference_heavy ? 1 : 0),
                        static_cast<std::uint64_t>(r)));
        Rng rng(key);
        const double t = base * rng.nextLogNormalFactor(soc.noiseSigma);
        reps[static_cast<std::size_t>(r)] = t;
        // Interference-heavy reps keep all PUs busy for the duration;
        // every rep also pays the fixed setup cost.
        cost += (interference_heavy ? t * soc.numPus() : t)
            + config.perRepOverheadSeconds;
    }

    const Summary s = summarize(reps);
    if (stddev_out)
        *stddev_out = s.stddev;
    if (cost_out)
        *cost_out += cost;
    return s.mean;
}

ProfileResult
Profiler::profile(const Application& app) const
{
    const auto& soc = model.soc();
    std::vector<std::string> stage_names;
    stage_names.reserve(static_cast<std::size_t>(app.numStages()));
    for (const auto& s : app.stages())
        stage_names.push_back(s.name());
    std::vector<std::string> pu_labels;
    pu_labels.reserve(static_cast<std::size_t>(soc.numPus()));
    for (const auto& p : soc.pus)
        pu_labels.push_back(p.label);

    ProfileResult result;
    result.isolated = ProfilingTable(stage_names, pu_labels);
    result.interference = ProfilingTable(stage_names, pu_labels);

    std::vector<platform::WorkProfile> works;
    works.reserve(static_cast<std::size_t>(app.numStages()));
    for (const auto& s : app.stages())
        works.push_back(s.work());
    result.contention = model.contention().profileStages(model, works);

    double cost = 0.0;
    for (int s = 0; s < app.numStages(); ++s) {
        const auto& work = app.stage(s).work();
        for (int p = 0; p < soc.numPus(); ++p) {
            double sd = 0.0;
            const double iso
                = measureCell(work, s, p, false, &sd, &cost);
            result.isolated.set(s, p, iso);
            result.isolated.setStddev(s, p, sd);

            const double intf
                = measureCell(work, s, p, true, &sd, &cost);
            result.interference.set(s, p, intf);
            result.interference.setStddev(s, p, sd);
        }
    }
    result.profilingCostSeconds = config.recordCost ? cost : 0.0;
    return result;
}

} // namespace bt::core
