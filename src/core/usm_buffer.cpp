#include "core/usm_buffer.hpp"

#include <cstdlib>
#include <cstring>
#include <new>

#include "common/logging.hpp"

namespace bt::core {

namespace {

/** Host-memory allocator: 64-byte aligned, zero-initialized. */
class HostUsmAllocator final : public UsmAllocator
{
  public:
    void*
    allocate(std::size_t bytes) override
    {
        // Round the size up to the alignment as aligned_alloc requires.
        const std::size_t padded = (bytes + 63) / 64 * 64;
        void* p = std::aligned_alloc(64, padded);
        if (!p)
            throw std::bad_alloc();
        std::memset(p, 0, padded);
        return p;
    }

    void
    deallocate(void* p, std::size_t) override
    {
        std::free(p);
    }
};

} // namespace

UsmAllocator&
UsmAllocator::host()
{
    static HostUsmAllocator instance;
    return instance;
}

UsmBuffer::UsmBuffer(std::size_t bytes, UsmAllocator& alloc)
    : allocator(&alloc), bytes_(bytes)
{
    if (bytes_ > 0)
        base = allocator->allocate(bytes_);
}

UsmBuffer::~UsmBuffer()
{
    release();
}

UsmBuffer::UsmBuffer(UsmBuffer&& other) noexcept
    : allocator(other.allocator), base(other.base), bytes_(other.bytes_)
{
    other.base = nullptr;
    other.bytes_ = 0;
}

UsmBuffer&
UsmBuffer::operator=(UsmBuffer&& other) noexcept
{
    if (this != &other) {
        release();
        allocator = other.allocator;
        base = other.base;
        bytes_ = other.bytes_;
        other.base = nullptr;
        other.bytes_ = 0;
    }
    return *this;
}

void
UsmBuffer::release()
{
    if (base) {
        allocator->deallocate(base, bytes_);
        base = nullptr;
        bytes_ = 0;
    }
}

void
UsmBuffer::clear()
{
    if (base)
        std::memset(base, 0, bytes_);
}

} // namespace bt::core
