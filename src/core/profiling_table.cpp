#include "core/profiling_table.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace bt::core {

ProfilingTable::ProfilingTable(std::vector<std::string> stage_names,
                               std::vector<std::string> pu_labels)
    : stageNames(std::move(stage_names)), puLabels(std::move(pu_labels)),
      mean_(stageNames.size() * puLabels.size(), 0.0),
      stddev_(stageNames.size() * puLabels.size(), 0.0)
{
    BT_ASSERT(!stageNames.empty() && !puLabels.empty(),
              "profiling table needs stages and PUs");
}

std::size_t
ProfilingTable::idx(int s, int p) const
{
    BT_ASSERT(s >= 0 && s < numStages(), "stage ", s, " out of range");
    BT_ASSERT(p >= 0 && p < numPus(), "pu ", p, " out of range");
    return static_cast<std::size_t>(s)
        * static_cast<std::size_t>(numPus())
        + static_cast<std::size_t>(p);
}

double
ProfilingTable::at(int s, int p) const
{
    return mean_[idx(s, p)];
}

void
ProfilingTable::set(int s, int p, double seconds)
{
    BT_ASSERT(seconds >= 0.0);
    mean_[idx(s, p)] = seconds;
}

double
ProfilingTable::stddevAt(int s, int p) const
{
    return stddev_[idx(s, p)];
}

void
ProfilingTable::setStddev(int s, int p, double seconds)
{
    BT_ASSERT(seconds >= 0.0);
    stddev_[idx(s, p)] = seconds;
}

double
ProfilingTable::rangeTime(int first, int last, int p) const
{
    BT_ASSERT(first <= last, "inverted stage range");
    double total = 0.0;
    for (int s = first; s <= last; ++s)
        total += at(s, p);
    return total;
}

void
ProfilingTable::saveCsv(std::ostream& os) const
{
    os << "stage,pu,mean_s,stddev_s\n";
    os.precision(17);
    for (int s = 0; s < numStages(); ++s)
        for (int p = 0; p < numPus(); ++p)
            os << stageNames[static_cast<std::size_t>(s)] << ','
               << puLabels[static_cast<std::size_t>(p)] << ','
               << at(s, p) << ',' << stddevAt(s, p) << '\n';
}

std::optional<ProfilingTable>
ProfilingTable::loadCsv(std::istream& is)
{
    std::string line;
    if (!std::getline(is, line) || line != "stage,pu,mean_s,stddev_s")
        return std::nullopt;

    struct Cell
    {
        std::string stage;
        std::string pu;
        double mean;
        double stddev;
    };
    std::vector<Cell> cells;
    std::vector<std::string> stage_order;
    std::vector<std::string> pu_order;
    auto remember = [](std::vector<std::string>& order,
                       const std::string& name) {
        if (std::find(order.begin(), order.end(), name) == order.end())
            order.push_back(name);
    };

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        Cell c;
        std::string mean_s, stddev_s;
        if (!std::getline(row, c.stage, ',')
            || !std::getline(row, c.pu, ',')
            || !std::getline(row, mean_s, ',')
            || !std::getline(row, stddev_s))
            return std::nullopt;
        try {
            c.mean = std::stod(mean_s);
            c.stddev = std::stod(stddev_s);
        } catch (const std::exception&) {
            return std::nullopt;
        }
        if (c.mean < 0.0 || c.stddev < 0.0)
            return std::nullopt;
        remember(stage_order, c.stage);
        remember(pu_order, c.pu);
        cells.push_back(std::move(c));
    }
    if (stage_order.empty() || pu_order.empty())
        return std::nullopt;
    if (cells.size() != stage_order.size() * pu_order.size())
        return std::nullopt;

    ProfilingTable table(stage_order, pu_order);
    std::map<std::string, int> stage_idx, pu_idx;
    for (int s = 0; s < table.numStages(); ++s)
        stage_idx[stage_order[static_cast<std::size_t>(s)]] = s;
    for (int p = 0; p < table.numPus(); ++p)
        pu_idx[pu_order[static_cast<std::size_t>(p)]] = p;
    for (const auto& c : cells) {
        table.set(stage_idx[c.stage], pu_idx[c.pu], c.mean);
        table.setStddev(stage_idx[c.stage], pu_idx[c.pu], c.stddev);
    }
    return table;
}

void
ProfilingTable::print(std::ostream& os) const
{
    std::vector<std::string> headers{"stage"};
    for (const auto& p : puLabels)
        headers.push_back(p + " (ms)");
    Table table(std::move(headers));
    for (int s = 0; s < numStages(); ++s) {
        std::vector<std::string> row{stageNames[
            static_cast<std::size_t>(s)]};
        for (int p = 0; p < numPus(); ++p)
            row.push_back(Table::num(at(s, p) * 1e3, 3));
        table.addRow(std::move(row));
    }
    table.print(os);
}

} // namespace bt::core
