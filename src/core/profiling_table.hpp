/**
 * @file
 * The 2-D profiling table of the BT-Profiler (paper Sec. 3.2): one row
 * per pipeline stage, one column per PU class, each entry the mean
 * measured latency of that stage on that PU.
 */

#ifndef BT_CORE_PROFILING_TABLE_HPP
#define BT_CORE_PROFILING_TABLE_HPP

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace bt::core {

/** Stage x PU latency matrix (seconds). */
class ProfilingTable
{
  public:
    ProfilingTable() = default;

    /** Construct with row (stage) and column (PU) labels; zero-filled. */
    ProfilingTable(std::vector<std::string> stage_names,
                   std::vector<std::string> pu_labels);

    int numStages() const { return static_cast<int>(stageNames.size()); }
    int numPus() const { return static_cast<int>(puLabels.size()); }

    /** Mean latency (seconds) of stage @p s on PU @p p. */
    double at(int s, int p) const;
    void set(int s, int p, double seconds);

    /** Sample standard deviation recorded next to each mean. */
    double stddevAt(int s, int p) const;
    void setStddev(int s, int p, double seconds);

    const std::vector<std::string>& stages() const { return stageNames; }
    const std::vector<std::string>& pus() const { return puLabels; }

    /** Latency of running stages [first, last] back-to-back on @p p. */
    double rangeTime(int first, int last, int p) const;

    /** Render in milliseconds, paper-style. */
    void print(std::ostream& os) const;

    /**
     * Serialize to a simple CSV (stage,pu,mean_s,stddev_s), so
     * profiling campaigns can be cached across runs - collecting a
     * table costs ~6 minutes on a real device (paper Sec. 3.2).
     */
    void saveCsv(std::ostream& os) const;

    /**
     * Parse a table previously written by saveCsv.
     * @return the table, or std::nullopt on malformed input.
     */
    static std::optional<ProfilingTable> loadCsv(std::istream& is);

  private:
    std::size_t idx(int s, int p) const;

    std::vector<std::string> stageNames;
    std::vector<std::string> puLabels;
    std::vector<double> mean_;
    std::vector<double> stddev_;
};

} // namespace bt::core

#endif // BT_CORE_PROFILING_TABLE_HPP
