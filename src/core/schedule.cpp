#include "core/schedule.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "common/logging.hpp"

namespace bt::core {

Schedule::Schedule(std::vector<Chunk> chunks_in)
    : chunks_(std::move(chunks_in))
{
    BT_ASSERT(!chunks_.empty(), "schedule needs at least one chunk");
    int expect = 0;
    std::set<int> used;
    for (const auto& c : chunks_) {
        BT_ASSERT(c.firstStage == expect,
                  "chunks must tile the stage sequence");
        BT_ASSERT(c.lastStage >= c.firstStage, "empty chunk");
        BT_ASSERT(used.insert(c.pu).second,
                  "PU ", c.pu, " used by two chunks (violates C2)");
        expect = c.lastStage + 1;
    }
}

Schedule
Schedule::homogeneous(int num_stages, int pu)
{
    BT_ASSERT(num_stages > 0);
    return Schedule({Chunk{0, num_stages - 1, pu}});
}

Schedule
Schedule::fromAssignment(const std::vector<int>& stage_to_pu)
{
    BT_ASSERT(!stage_to_pu.empty());
    std::vector<Chunk> chunks;
    int first = 0;
    for (std::size_t s = 1; s <= stage_to_pu.size(); ++s) {
        if (s == stage_to_pu.size()
            || stage_to_pu[s] != stage_to_pu[static_cast<std::size_t>(
                   first)]) {
            chunks.push_back(Chunk{first, static_cast<int>(s) - 1,
                                   stage_to_pu[static_cast<std::size_t>(
                                       first)]});
            first = static_cast<int>(s);
        }
    }
    return Schedule(std::move(chunks)); // ctor re-checks distinctness
}

int
Schedule::numStages() const
{
    return chunks_.empty() ? 0 : chunks_.back().lastStage + 1;
}

int
Schedule::puOfStage(int s) const
{
    for (const auto& c : chunks_)
        if (s >= c.firstStage && s <= c.lastStage)
            return c.pu;
    BT_PANIC("schedule.coverage", "stage ", s,
             " not covered by schedule");
}

std::vector<int>
Schedule::toAssignment() const
{
    std::vector<int> a(static_cast<std::size_t>(numStages()), -1);
    for (const auto& c : chunks_)
        for (int s = c.firstStage; s <= c.lastStage; ++s)
            a[static_cast<std::size_t>(s)] = c.pu;
    return a;
}

bool
Schedule::valid(int num_stages, int num_pus) const
{
    if (chunks_.empty() || numStages() != num_stages)
        return false;
    if (numChunks() > num_pus)
        return false;
    for (const auto& c : chunks_)
        if (c.pu < 0 || c.pu >= num_pus)
            return false;
    return true;
}

double
Schedule::chunkTime(const ProfilingTable& table, int c) const
{
    BT_ASSERT(c >= 0 && c < numChunks());
    const Chunk& ch = chunks_[static_cast<std::size_t>(c)];
    return table.rangeTime(ch.firstStage, ch.lastStage, ch.pu);
}

double
Schedule::bottleneckTime(const ProfilingTable& table) const
{
    double worst = 0.0;
    for (int c = 0; c < numChunks(); ++c)
        worst = std::max(worst, chunkTime(table, c));
    return worst;
}

double
Schedule::gapness(const ProfilingTable& table) const
{
    double lo = chunkTime(table, 0);
    double hi = lo;
    for (int c = 1; c < numChunks(); ++c) {
        const double t = chunkTime(table, c);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }
    return hi - lo;
}

std::string
Schedule::toString(const platform::SocDescription& soc,
                   const std::vector<std::string>& names) const
{
    std::ostringstream os;
    for (int c = 0; c < numChunks(); ++c) {
        const Chunk& ch = chunks_[static_cast<std::size_t>(c)];
        if (c > 0)
            os << " | ";
        os << '[';
        if (ch.firstStage == ch.lastStage) {
            os << names[static_cast<std::size_t>(ch.firstStage)];
        } else {
            os << names[static_cast<std::size_t>(ch.firstStage)] << ".."
               << names[static_cast<std::size_t>(ch.lastStage)];
        }
        os << "]->" << soc.pu(ch.pu).label;
    }
    return os.str();
}

std::string
Schedule::compactString() const
{
    std::string s;
    for (int pu : toAssignment())
        s += static_cast<char>('0' + pu);
    return s;
}

namespace {

/**
 * Recursive generator: split the remaining stages [start, n) into chunks
 * and assign each a PU not used so far.
 */
void
enumerateRec(int start, int n, int num_pus, std::uint32_t used_mask,
             std::vector<Chunk>& acc, std::vector<Schedule>* out,
             std::uint64_t* count)
{
    if (start == n) {
        if (out)
            out->push_back(Schedule(acc));
        if (count)
            ++*count;
        return;
    }
    for (int end = start; end < n; ++end) {
        for (int pu = 0; pu < num_pus; ++pu) {
            if (used_mask & (1u << pu))
                continue;
            acc.push_back(Chunk{start, end, pu});
            enumerateRec(end + 1, n, num_pus, used_mask | (1u << pu),
                         acc, out, count);
            acc.pop_back();
        }
    }
}

} // namespace

std::vector<Schedule>
enumerateSchedules(int num_stages, int num_pus)
{
    BT_ASSERT(num_stages > 0 && num_pus > 0);
    BT_ASSERT(num_pus <= 32, "PU mask limited to 32 classes");
    std::vector<Schedule> out;
    std::vector<Chunk> acc;
    enumerateRec(0, num_stages, num_pus, 0u, acc, &out, nullptr);
    return out;
}

std::uint64_t
countSchedules(int num_stages, int num_pus)
{
    BT_ASSERT(num_stages > 0 && num_pus > 0);
    std::uint64_t count = 0;
    std::vector<Chunk> acc;
    enumerateRec(0, num_stages, num_pus, 0u, acc, nullptr, &count);
    return count;
}

std::uint64_t
scheduleSpaceSize(int num_stages, int num_pus)
{
    BT_ASSERT(num_stages > 0 && num_pus > 0,
              "scheduleSpaceSize needs positive stage/PU counts");
    constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();
    const auto n = static_cast<unsigned __int128>(num_stages);
    const auto m = static_cast<unsigned __int128>(num_pus);

    unsigned __int128 total = 0;
    unsigned __int128 binom = 1; // C(n-1, k-1), updated incrementally
    unsigned __int128 perm = m;  // m * (m-1) * ... * (m-k+1)
    const int kmax = std::min(num_stages, num_pus);
    for (int k = 1; k <= kmax; ++k) {
        if (k > 1) {
            // C(n-1, k-1) = C(n-1, k-2) * (n-k+1) / (k-1); the product
            // before division is exact because C(n-1, k-2)*(n-k+1) is
            // divisible by k-1.
            binom = binom * (n - static_cast<unsigned>(k) + 1) /
                    static_cast<unsigned>(k - 1);
            perm *= m - static_cast<unsigned>(k) + 1;
        }
        const unsigned __int128 term = binom * perm;
        // A single term past 2^64 (or an overflowing product) saturates
        // the whole sum; every factor here fits 2^64 individually so
        // the 128-bit products themselves cannot wrap for any num_stages
        // and num_pus that fit an int.
        if (binom > kSat || term / perm != binom)
            return kSat;
        total += term;
        if (total > kSat)
            return kSat;
    }
    return static_cast<std::uint64_t>(total);
}

} // namespace bt::core
