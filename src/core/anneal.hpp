/**
 * @file
 * Annealed local-search planning engine (PlannerEngine::Annealed): a
 * seeded, deterministic simulated-annealing walk over the schedule
 * space, with the memoized ScheduleEvaluator as the inner-loop oracle.
 * This is how the planner scales past enumerable spaces — the exact
 * engines cap out around 36 variables (stages x PU classes), while a
 * move evaluation here is a table lookup, so millions of moves are
 * affordable.
 *
 * The engine does not rank schedules itself. It maintains a pool of
 * every distinct C6-feasible schedule it evaluates; the Optimizer runs
 * a sequence of phases with different guide costs (mirroring the exact
 * engines' level structure) and then applies the *same* level-1/level-2
 * selection arithmetic as the exhaustive engine over the pool.
 *
 * When the whole schedule space fits within a quarter of the move
 * budget, the annealer sweeps it outright instead of walking it: the
 * pool then *is* the enumeration and the harvested result coincides
 * with the exhaustive engine's bit for bit. Annealing only pays off
 * past that size, where the restart chains plus an occasional teleport
 * proposal keep the walk ergodic. This is what makes the annealed
 * result cost-equal to the exact solver on every enumerable
 * cross-validation instance, by construction rather than by luck.
 */

#ifndef BT_CORE_ANNEAL_HPP
#define BT_CORE_ANNEAL_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/schedule.hpp"
#include "core/schedule_eval.hpp"
#include "platform/contention.hpp"
#include "platform/soc.hpp"

namespace bt::core {

/**
 * Annealing knobs (PlannerSpec::anneal). All defaults are part of the
 * planner fingerprint when the engine is Annealed, because unlike the
 * exact engines the result depends on them.
 */
struct AnnealSpec
{
    /** Seed of the deterministic move stream. Same seed (and spec) =>
     *  byte-identical schedules, at any autotuner thread count. */
    std::uint64_t seed = 0x5eedb17;

    /** Total proposal budget across all phases and restart chains. */
    std::int64_t moveBudget = 200'000;

    /** Independent restart chains (run sequentially; each derives its
     *  own Rng from the seed, so the count changes the walk but not
     *  determinism). */
    int restarts = 4;

    /**
     * Initial temperature, *relative* to the current guide cost: an
     * uphill move of delta is accepted with probability
     * exp(-delta / (T * |cost|)). 0 selects the default (0.25).
     */
    double initialTemperature = 0.0;

    /** Geometric cooling endpoint, as a fraction of the initial
     *  temperature (each phase cools from T0 down to T0 * this). */
    double finalTemperature = 1e-4;
};

/**
 * The annealing core: restart chains proposing local moves over chunk
 * partitions — reassign a chunk's PU, swap adjacent chunks' PUs, and
 * rebalance the chunking (shift a chunk boundary, split a chunk onto a
 * free PU; merges arise from boundary shifts emptying a chunk), plus a
 * rare teleport to a fresh random partition so no region of the space
 * is unreachable from a frozen chain. Every evaluated schedule that
 * respects the C6 demand budget lands in the pool (demand-violating
 * proposals are filtered before acceptance, so contention budgets are
 * honored without the PB machinery).
 *
 * Deterministic by construction: chains run sequentially, each with a
 * private SplitMix64 stream derived from (seed, chain index).
 */
class Annealer
{
  public:
    struct PoolEntry
    {
        std::vector<int> assignment; ///< stage -> PU
        Prediction pred;
    };

    struct Stats
    {
        std::int64_t proposed = 0; ///< moves drawn (incl. inapplicable)
        std::int64_t accepted = 0; ///< moves taken by a chain
        std::int64_t filtered = 0; ///< rejected by the C6 demand filter
        std::int64_t distinct = 0; ///< pool size (distinct feasible)
        int chains = 0;            ///< restart chains run
    };

    /** Guide cost a phase minimizes; lower is better. */
    using Guide = std::function<double(const Prediction&)>;

    /**
     * @param allowed_pus non-empty list of admissible PU classes; moves
     *        never leave it.
     * @param contention optional profile for the C6 demand filter.
     * @param budget_milli C6 aggregate-demand cap (milli-GB/s); 0
     *        disables the filter. When nonzero the caller must
     *        guarantee at least one feasible schedule exists (the
     *        Optimizer pre-checks the frugalest single-chunk one).
     */
    Annealer(const platform::SocDescription& soc, ScheduleEvaluator& eval,
             const AnnealSpec& spec, int bucket,
             std::vector<int> allowed_pus,
             const platform::ContentionProfile* contention,
             std::int64_t budget_milli);

    /**
     * Run every chain for its share of @p proposals moves, minimizing
     * @p guide with geometric cooling. Chains re-score their current
     * state under the new guide at phase start and reset to their
     * phase-best state at phase end.
     */
    void runPhase(const Guide& guide, std::int64_t proposals);

    /** Every distinct C6-feasible schedule evaluated so far, in
     *  first-visit order (deterministic). */
    const std::vector<PoolEntry>& pool() const { return pool_; }

    /** True when construction already swept the entire schedule space
     *  into the pool (tiny instance): running phases cannot add
     *  anything, so the Optimizer skips straight to the harvest. */
    bool exhausted() const { return exhausted_; }

    Stats stats() const;

  private:
    struct Chain
    {
        std::vector<Chunk> chunks;
        double cost = 0.0;
        std::vector<Chunk> best;
        double bestCost = 0.0;
        Rng rng{0}; ///< re-seeded from (spec.seed, chain index)
    };

    void seedChains(const AnnealSpec& spec);
    void maybeSweep(const AnnealSpec& spec);
    std::vector<Chunk> frugalHomogeneous() const;
    std::vector<Chunk> randomPartition(Rng& rng) const;
    /** Draw one move into prop_; false if the drawn move does not
     *  apply to the current state (still counts against the budget). */
    bool propose(Chain& chain);
    /** Evaluate prop_; pools it when feasible. Returns the Prediction,
     *  or nullptr when the C6 filter rejects it. */
    const Prediction* evaluate(const std::vector<Chunk>& chunks);
    bool demandOk(const std::vector<int>& assignment) const;
    void poolInsert(const std::vector<int>& assignment,
                    const Prediction& pred);

    const platform::SocDescription& soc_;
    ScheduleEvaluator& eval_;
    int bucket_;
    std::vector<int> allowed_;
    const platform::ContentionProfile* contention_;
    std::int64_t budgetMilli_;

    std::vector<Chain> chains_;
    std::vector<Chunk> prop_;        ///< proposal scratch
    std::vector<int> assignScratch_; ///< stage -> PU scratch
    Prediction predScratch_;         ///< last feasible evaluation
    int numStages_;
    double t0_;           ///< initial relative temperature
    double coolFraction_; ///< per-phase geometric cooling endpoint

    std::vector<PoolEntry> pool_;
    /** Dedup index: packed 4-bit keys when the instance fits 16x16
     *  (same condition as the evaluator's keyed cache), else a map on
     *  the full assignment. */
    std::unordered_set<std::uint64_t> poolKeys_;
    std::map<std::vector<int>, bool> poolKeysWide_;
    bool keyed_;

    std::int64_t proposed_ = 0;
    std::int64_t accepted_ = 0;
    std::int64_t filtered_ = 0;
    bool exhausted_ = false;
};

} // namespace bt::core

#endif // BT_CORE_ANNEAL_HPP
