/**
 * @file
 * Native BT-Implementer: executes a pipeline schedule with real host
 * threads, exactly as paper Sec. 3.4 describes - one long-lived
 * dispatcher thread per chunk, lock-free SPSC queues passing tokens
 * into the recycled multi-buffer pool, per-chunk thread teams bound
 * with sched_setaffinity, and wall-clock measurement.
 *
 * Thin policy over the unified runtime: the dispatcher core lives in
 * runtime::PipelineSession and the threaded time domain in
 * runtime::HostTimeBackend; this class keeps the historical core-level
 * entry point. Results are runtime::RunResult, so native runs also
 * report mean latency, per-chunk utilization, and the structured
 * TraceTimeline.
 */

#ifndef BT_CORE_NATIVE_EXECUTOR_HPP
#define BT_CORE_NATIVE_EXECUTOR_HPP

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "platform/soc.hpp"
#include "runtime/host_backend.hpp"

namespace bt::core {

/** Native execution knobs (the unified runtime config). */
using NativeExecConfig = runtime::RunConfig;

/** Threaded pipeline executor for the local host. */
class NativeExecutor
{
  public:
    explicit NativeExecutor(const platform::SocDescription& soc,
                            NativeExecConfig cfg = {});

    /** Execute @p app under @p schedule with real dispatcher threads. */
    runtime::RunResult execute(const Application& app,
                               const Schedule& schedule) const;

  private:
    runtime::HostTimeBackend backend;
    NativeExecConfig config;
};

} // namespace bt::core

#endif // BT_CORE_NATIVE_EXECUTOR_HPP
