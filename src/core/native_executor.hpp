/**
 * @file
 * Native BT-Implementer: executes a pipeline schedule with real host
 * threads, exactly as paper Sec. 3.4 describes - one long-lived
 * dispatcher thread per chunk, lock-free SPSC queues passing TaskObject
 * pointers, a recycled multi-buffer pool, per-chunk thread teams bound
 * with sched_setaffinity, and wall-clock measurement.
 *
 * On the simulated paper devices the SimExecutor provides timing; this
 * executor provides a real concurrent implementation for functional
 * validation and for running pipelines on the local host (the
 * platform::nativeHost() description).
 */

#ifndef BT_CORE_NATIVE_EXECUTOR_HPP
#define BT_CORE_NATIVE_EXECUTOR_HPP

#include <vector>

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "platform/soc.hpp"

namespace bt::core {

/** Native execution knobs. */
struct NativeExecConfig
{
    int numTasks = 30;
    int numBuffers = 0;   ///< 0 = one per chunk plus one
    bool validate = true; ///< run the application validator per task
    int queueCapacity = 4;
};

/** Wall-clock outcome of a native pipeline run. */
struct NativeResult
{
    int tasks = 0;
    double makespanSeconds = 0.0;
    double taskIntervalSeconds = 0.0;
    std::vector<std::string> validationErrors;
    bool affinityApplied = true; ///< all chunk teams pinned successfully

    double latencyMs() const { return taskIntervalSeconds * 1e3; }
    bool valid() const { return validationErrors.empty(); }
};

/** Threaded pipeline executor for the local host. */
class NativeExecutor
{
  public:
    explicit NativeExecutor(const platform::SocDescription& soc,
                            NativeExecConfig cfg = {});

    /** Execute @p app under @p schedule with real dispatcher threads. */
    NativeResult execute(const Application& app,
                         const Schedule& schedule) const;

  private:
    const platform::SocDescription& soc;
    NativeExecConfig config;
};

} // namespace bt::core

#endif // BT_CORE_NATIVE_EXECUTOR_HPP
