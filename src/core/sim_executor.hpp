/**
 * @file
 * Simulated BT-Implementer: executes a pipeline schedule on a simulated
 * SoC in virtual time (DESIGN.md substitution table).
 *
 * Thin policy over the unified runtime: the dispatcher core lives in
 * runtime::PipelineSession and the DES time domain in
 * runtime::VirtualTimeBackend; this class keeps the historical
 * core-level entry point. Results are runtime::RunResult, so a run's
 * structured TraceTimeline rides along.
 */

#ifndef BT_CORE_SIM_EXECUTOR_HPP
#define BT_CORE_SIM_EXECUTOR_HPP

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "platform/perf_model.hpp"
#include "runtime/virtual_backend.hpp"

namespace bt::core {

/** Execution knobs (the unified runtime config). */
using SimExecConfig = runtime::RunConfig;

/** Virtual-time pipeline executor over one simulated device. */
class SimExecutor
{
  public:
    explicit SimExecutor(const platform::PerfModel& model,
                         SimExecConfig cfg = {});

    /** Execute @p app under @p schedule and measure it. */
    runtime::RunResult execute(const Application& app,
                               const Schedule& schedule) const;

  private:
    runtime::VirtualTimeBackend backend;
    SimExecConfig config;
};

} // namespace bt::core

#endif // BT_CORE_SIM_EXECUTOR_HPP
