/**
 * @file
 * Simulated BT-Implementer: executes a pipeline schedule on a simulated
 * SoC in virtual time (DESIGN.md substitution table).
 *
 * The structure mirrors the real implementer of paper Sec. 3.4 - one
 * dispatcher per chunk, bounded queues passing TaskObjects, a recycled
 * multi-buffer pool - but dispatchers are event-driven state machines on
 * the discrete-event engine rather than host threads, and stage timing
 * comes from the interference-aware performance model evaluated against
 * the *instantaneous* set of co-running stages. Because that set varies
 * over the pipeline's execution (ramp-up, bubbles, chunk imbalance), the
 * measured latency deviates from any static prediction in exactly the
 * way real hardware does - which is what makes the Fig. 5/6 accuracy
 * experiments and the autotuning level meaningful.
 *
 * Optionally, every stage's kernel is also executed functionally on the
 * host so output correctness under any schedule can be validated.
 */

#ifndef BT_CORE_SIM_EXECUTOR_HPP
#define BT_CORE_SIM_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "platform/perf_model.hpp"

namespace bt::core {

/** Execution knobs. */
struct SimExecConfig
{
    /** Streaming inputs to process (the paper measures runs of 30). */
    int numTasks = 30;

    /** TaskObjects in flight; 0 = one per chunk plus one. */
    int numBuffers = 0;

    /** Also run kernels functionally and validate outputs. */
    bool runKernels = false;

    /** Extra seed folded into measurement noise (0 = device seed). */
    std::uint64_t noiseSalt = 0;

    /** Warmup tasks excluded from the steady-state interval metric. */
    int warmupTasks = 3;
};

/** Measured outcome of one pipeline execution. */
struct ExecutionResult
{
    int tasks = 0;
    double makespanSeconds = 0.0;     ///< first start to last finish
    double taskIntervalSeconds = 0.0; ///< steady-state per-task interval
    double meanLatencySeconds = 0.0;  ///< mean end-to-end task latency
    double energyJoules = 0.0;        ///< integrated SoC energy
    std::vector<double> chunkBusyFraction; ///< utilization per chunk
    std::vector<std::string> validationErrors;

    /** Average SoC power over the run (watts). */
    double
    averagePowerW() const
    {
        return makespanSeconds > 0.0 ? energyJoules / makespanSeconds
                                     : 0.0;
    }

    /** Energy per streaming input (joules). */
    double
    energyPerTaskJ() const
    {
        return tasks > 0 ? energyJoules / tasks : 0.0;
    }

    /** The paper's headline metric: per-task latency in milliseconds. */
    double latencyMs() const { return taskIntervalSeconds * 1e3; }

    bool valid() const { return validationErrors.empty(); }
};

/** Virtual-time pipeline executor over one simulated device. */
class SimExecutor
{
  public:
    explicit SimExecutor(const platform::PerfModel& model,
                         SimExecConfig cfg = {});

    /** Execute @p app under @p schedule and measure it. */
    ExecutionResult execute(const Application& app,
                            const Schedule& schedule) const;

  private:
    const platform::PerfModel& model;
    SimExecConfig config;
};

} // namespace bt::core

#endif // BT_CORE_SIM_EXECUTOR_HPP
