/**
 * @file
 * BT-Profiler (paper Sec. 3.2): builds per-application profiling tables
 * by measuring every stage on every PU class, in two modes:
 *
 *  - isolated: the stage runs alone on its PU (the methodology of prior
 *    work, kept for the Fig. 5c / Fig. 6b comparisons);
 *  - interference-heavy: every *other* PU class concurrently runs the
 *    same computation while only the measured PU's time is recorded,
 *    emulating realistic intra-application contention.
 *
 * Measurements run against the simulated device: each of the 30
 * repetitions is the performance model's time scaled by seeded
 * log-normal noise, then averaged - mirroring the paper's black-box
 * timing methodology (hardware timers, 30 reps, mean).
 */

#ifndef BT_CORE_PROFILER_HPP
#define BT_CORE_PROFILER_HPP

#include "core/application.hpp"
#include "core/profiling_table.hpp"
#include "platform/perf_model.hpp"

namespace bt::core {

/** Profiler knobs. */
struct ProfilerConfig
{
    int repetitions = 30;  ///< measurements per (stage, PU) cell
    bool recordCost = true; ///< accumulate the virtual profiling cost

    /**
     * Fixed per-measurement cost (timer setup, co-load launch, cool
     * down) added to the virtual campaign cost; with the default
     * configuration a full table lands near the paper's ~6 minutes per
     * device and application.
     */
    double perRepOverheadSeconds = 0.15;
};

/** Both tables plus the virtual time the campaign consumed. */
struct ProfileResult
{
    ProfilingTable isolated;
    ProfilingTable interference;
    /** Per-(stage, PU) bandwidth demand and ambient-bucket stretch
     *  factors, for contention-aware planning (solver C6, evaluator
     *  buckets, service leases). Noise-free: derived analytically from
     *  the same model the timing measurements sample. */
    platform::ContentionProfile contention;
    double profilingCostSeconds = 0.0;

    /**
     * Table to feed the optimizer: interference-aware for pipelined
     * execution (more than one chunk), per the BetterTogether method.
     */
    const ProfilingTable& tableFor(bool interference_aware) const
    {
        return interference_aware ? interference : isolated;
    }
};

/** Profiles applications against one simulated device. */
class Profiler
{
  public:
    explicit Profiler(const platform::PerfModel& model,
                      ProfilerConfig cfg = {});

    /** Run the full campaign for @p app. */
    ProfileResult profile(const Application& app) const;

    /**
     * Mean measured latency for a single (stage, PU) cell in the given
     * mode; exposed for the Fig. 7 interference analysis.
     */
    double measureCell(const platform::WorkProfile& work, int stage_index,
                       int pu, bool interference_heavy,
                       double* stddev_out = nullptr,
                       double* cost_out = nullptr) const;

  private:
    const platform::PerfModel& model;
    ProfilerConfig config;
};

} // namespace bt::core

#endif // BT_CORE_PROFILER_HPP
