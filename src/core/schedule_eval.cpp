#include "core/schedule_eval.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::core {

ScheduleEvaluator::ScheduleEvaluator(
    const platform::SocDescription& soc, const ProfilingTable& table,
    const platform::PerfModel& power_model,
    const platform::ContentionProfile* contention)
    : soc_(soc), table_(table), powerModel_(power_model),
      contention_(contention), numStages_(table.numStages()),
      numPus_(table.numPus()),
      keyed_(numStages_ <= 16 && numPus_ <= 16)
{
    BT_ASSERT(table_.numPus() == soc_.numPus(),
              "profiling table PU count does not match device");
    if (contention_) {
        BT_ASSERT(contention_->numStages == numStages_
                      && contention_->numPus == numPus_,
                  "contention profile grid does not match table");
    }

    // Fill the chunk-time table by extending each range one stage at a
    // time: time(f, l) = time(f, l - 1) + at(l, p). This is the exact
    // left-fold rangeTime performs, so every entry is bit-identical to
    // the from-scratch sum.
    chunkTimes_.assign(static_cast<std::size_t>(numStages_)
                           * static_cast<std::size_t>(numStages_)
                           * static_cast<std::size_t>(numPus_),
                       0.0);
    for (int p = 0; p < numPus_; ++p) {
        for (int first = 0; first < numStages_; ++first) {
            double acc = 0.0;
            for (int last = first; last < numStages_; ++last) {
                acc += table_.at(last, p);
                chunkTimes_[chunkIndex(first, last, p)] = acc;
            }
        }
    }

    if (keyed_)
        memo_.reserve(1024);
    assignScratch_.resize(static_cast<std::size_t>(numStages_));
    usedScratch_.resize(static_cast<std::size_t>(numPus_));
}

const std::vector<double>&
ScheduleEvaluator::chunkTable(int bucket)
{
    if (bucket == 0)
        return chunkTimes_;
    BT_ASSERT(contention_ != nullptr,
              "bucketed prediction without a contention profile");
    BT_ASSERT(bucket > 0 && bucket < contention_->numBuckets,
              "ambient bucket ", bucket, " out of range");
    auto it = bucketChunkTimes_.find(bucket);
    if (it != bucketChunkTimes_.end())
        return it->second;

    // Same left-fold as the base table, over stretched cells: each
    // stage's contribution is its base time times the profile's
    // slowdown under this ambient bucket.
    std::vector<double> times(chunkTimes_.size(), 0.0);
    for (int p = 0; p < numPus_; ++p) {
        for (int first = 0; first < numStages_; ++first) {
            double acc = 0.0;
            for (int last = first; last < numStages_; ++last) {
                acc += table_.at(last, p)
                    * contention_->stretch(last, p, bucket);
                times[chunkIndex(first, last, p)] = acc;
            }
        }
    }
    return bucketChunkTimes_.emplace(bucket, std::move(times))
        .first->second;
}

Prediction
ScheduleEvaluator::evaluate(std::span<const int> stage_to_pu, int bucket)
{
    BT_ASSERT(static_cast<int>(stage_to_pu.size()) == numStages_,
              "assignment covers ", stage_to_pu.size(), " of ",
              numStages_, " stages");
    const std::vector<double>& times = chunkTable(bucket);

    // Chunk boundaries and times, in stage order - the same chunk walk
    // Schedule::fromAssignment would produce. Latency and gapness are
    // max/min folds identical to Schedule::bottleneckTime / gapness.
    Prediction pred;
    double worst = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    std::fill(usedScratch_.begin(), usedScratch_.end(), 0);

    int first = 0;
    for (int s = 1; s <= numStages_; ++s) {
        if (s != numStages_
            && stage_to_pu[static_cast<std::size_t>(s)]
                == stage_to_pu[static_cast<std::size_t>(first)])
            continue;
        const int pu = stage_to_pu[static_cast<std::size_t>(first)];
        BT_ASSERT(pu >= 0 && pu < numPus_, "stage ", first,
                  " assigned to unknown PU ", pu);
        BT_ASSERT(!usedScratch_[static_cast<std::size_t>(pu)],
                  "PU ", pu, " used by two chunks (violates C2)");
        usedScratch_[static_cast<std::size_t>(pu)] = 1;
        const double t = times[chunkIndex(first, s - 1, pu)];
        worst = std::max(worst, t);
        if (pred.numChunks == 0) {
            lo = t;
            hi = t;
        } else {
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
        if (contention_) {
            // A chunk's DRAM draw is its hungriest stage (stages run
            // back-to-back); the schedule's aggregate is the sum over
            // chunks, matching aggregateDemandMilli.
            std::int64_t chunk_demand = 0;
            for (int i = first; i < s; ++i)
                chunk_demand = std::max(
                    chunk_demand, contention_->demandMilli(i, pu));
            pred.demandMilli += chunk_demand;
        }
        ++pred.numChunks;
        first = s;
    }
    pred.latency = worst;
    pred.gapness = hi - lo;
    pred.demandGbps = static_cast<double>(pred.demandMilli) / 1000.0;

    // Predicted per-task energy: each used PU is active for its chunk
    // time (duty-cycled against the bottleneck interval), idle for the
    // rest; unused PUs idle throughout; plus the uncore floor.
    const double interval = pred.latency;
    const int busy_others = pred.numChunks - 1;
    double energy = soc_.basePowerW * interval;
    first = 0;
    for (int s = 1; s <= numStages_; ++s) {
        if (s != numStages_
            && stage_to_pu[static_cast<std::size_t>(s)]
                == stage_to_pu[static_cast<std::size_t>(first)])
            continue;
        const int pu = stage_to_pu[static_cast<std::size_t>(first)];
        const double active = times[chunkIndex(first, s - 1, pu)];
        energy += active * powerModel_.activePowerW(pu, busy_others)
            + std::max(0.0, interval - active)
                * soc_.pu(pu).idlePowerW;
        first = s;
    }
    for (int p = 0; p < numPus_; ++p)
        if (!usedScratch_[static_cast<std::size_t>(p)])
            energy += interval * soc_.pu(p).idlePowerW;
    pred.energyJ = energy;
    return pred;
}

const Prediction&
ScheduleEvaluator::predict(std::span<const int> stage_to_pu, int bucket)
{
    if (!keyed_) {
        ++stats_.unkeyed;
        scratch_ = evaluate(stage_to_pu, bucket);
        return scratch_;
    }
    // The packed key uses all 64 bits, so each bucket memoizes into
    // its own map (bucket 0 keeps the original hot path).
    auto& memo = bucket == 0 ? memo_ : bucketMemo_[bucket];
    std::uint64_t key = 0;
    for (const int pu : stage_to_pu)
        key = (key << 4) | static_cast<std::uint64_t>(pu);
    const auto it = memo.find(key);
    if (it != memo.end()) {
        ++stats_.hits;
        return it->second;
    }
    ++stats_.misses;
    return memo.emplace(key, evaluate(stage_to_pu, bucket))
        .first->second;
}

const Prediction&
ScheduleEvaluator::predict(const Schedule& schedule, int bucket)
{
    // toAssignment without the allocation: flatten into the reused
    // scratch vector.
    for (const auto& c : schedule.chunks())
        for (int s = c.firstStage; s <= c.lastStage; ++s)
            assignScratch_[static_cast<std::size_t>(s)] = c.pu;
    return predict(std::span<const int>(assignScratch_), bucket);
}

} // namespace bt::core
