/**
 * @file
 * BT-Optimizer (paper Sec. 3.3): turns a profiling table into a ranked
 * list of candidate pipeline schedules via three levels:
 *
 *  1. *Utilization under a latency bound*: find the unrestricted
 *     latency optimum, bound acceptable schedules to within
 *     latencySlack of it (the C3-style Tmax bound), require the
 *     maximum attainable PU-class count inside the bound, and compute
 *     the minimal Gapness = Tmax - Tmin there (objective O1) - keeping
 *     predictions close to the interference-heavy conditions the table
 *     was profiled under without sacrificing latency.
 *  2. *Ranking*: enumerate K diverse candidates (blocking clauses C5,
 *     with a per-performance-tier cap) ordered by the configured
 *     objective (latency, energy-delay, or the e^k*d family).
 *  3. *Autotuning* is a separate component (autotuner.hpp) because it
 *     needs an executor.
 *
 * Three engines. The constraint solver (the Z3 stand-in) and
 * brute-force enumeration are *exact* and produce identical results;
 * tests cross-validate them. The annealed engine (anneal.hpp) is a
 * seeded local search over the same evaluator for instances whose
 * schedule space exceeds PlannerSpec::exactSpaceLimit - it is
 * deterministic per seed but not exactness-preserving, which the
 * planner fingerprint reflects.
 */

#ifndef BT_CORE_OPTIMIZER_HPP
#define BT_CORE_OPTIMIZER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/anneal.hpp"
#include "core/profiling_table.hpp"
#include "core/schedule.hpp"
#include "core/schedule_eval.hpp"
#include "platform/perf_model.hpp"
#include "platform/soc.hpp"

namespace bt::core {

/**
 * Planning engine. Solver and Exhaustive are exact and bit-identical
 * to each other; Annealed is a seeded local search (deterministic per
 * PlannerSpec::anneal, but it only guarantees feasibility, not
 * optimality). Exact engines refuse instances whose schedule space
 * exceeds PlannerSpec::exactSpaceLimit.
 */
enum class PlannerEngine
{
    Solver,
    Exhaustive,
    Annealed,
    ConstraintSolver = Solver, ///< deprecated spelling (pre-PlannerSpec)
};

/** "solver" / "exhaustive" / "annealed". */
const char* plannerEngineName(PlannerEngine engine);

/** Inverse of plannerEngineName; panics on unknown names. */
PlannerEngine plannerEngineFromName(const std::string& name);

/**
 * The planner specification: every knob of a planning run, passed to
 * Optimizer as one struct. This replaces the old (config, shared_eval,
 * contention) constructor parameter list; `OptimizerConfig` remains as
 * an alias for one release.
 */
struct PlannerSpec
{
    /** K: number of candidate schedules handed to autotuning. */
    int numCandidates = 20;

    /**
     * Level-1 utilization filter (paper O1 + C3): among schedules whose
     * predicted latency stays within (1 + latencySlack) of the
     * unrestricted optimum, prefer those using as many PU classes as
     * possible, and within that set keep gapness within
     * (1 + gapnessSlack) * g* of the minimum. Disabled for the
     * "latency-only" comparison models of Fig. 5b/5c.
     */
    bool utilizationFilter = true;
    double gapnessSlack = 1.00;
    double latencySlack = 0.45;

    /**
     * Diversity control for level 2: at most this many candidates may
     * share the same critical (bottleneck) chunk assignment before
     * that assignment is blocked outright. The paper observes that
     * top schedules cluster into performance tiers defined by their
     * critical assignments; capping per-tier membership makes the
     * candidate list span tiers the way the paper's Table 4 does.
     * 0 disables the cap.
     */
    int maxPerTier = 3;

    using Engine = PlannerEngine; ///< deprecated spelling
    PlannerEngine engine = PlannerEngine::Solver;

    /** Knobs of the annealed engine (ignored by the exact ones). */
    AnnealSpec anneal;

    /**
     * Refusal threshold of the exact engines: when the closed-form
     * schedule-space size (scheduleSpaceSize over the allowed PUs)
     * exceeds this, Solver/Exhaustive panic instead of attempting an
     * enumeration that would not terminate in reasonable time - the
     * caller must switch to the annealed engine (bt::Service does so
     * automatically for large tenants). 0 disables the check.
     */
    std::uint64_t exactSpaceLimit = 200'000;

    /**
     * Memoized schedule evaluation (the throughput-oriented planning
     * path): predicted costs are decomposed into per-chunk
     * contributions cached across the enumeration order, and whole
     * predictions are served from a keyed cache shared by every solver
     * objective callback. Bit-identical to the from-scratch path (the
     * tests cross-validate over entire schedule spaces); disable only
     * to measure the baseline. The annealed engine always evaluates
     * through a memoized evaluator regardless of this knob.
     */
    bool memoize = true;

    /**
     * Restrict the schedule space to these PU classes (empty = all).
     * This is the re-plan hook of the fault-tolerant runtime: after a
     * PU dropout, the remaining schedule is re-optimized with the dead
     * classes excluded (graceful degradation).
     */
    std::vector<int> allowedPus;

    /**
     * Ranking objective within the feasibility class (extension):
     * Latency reproduces the paper; EnergyDelay ranks by predicted
     * energy-delay product; EnergyKDelay generalizes it to the
     * e^k * d family (energy^energyExponent x delay, SET-style), so
     * k < 1 leans toward latency and k > 1 toward battery life. All
     * engines share the objective.
     */
    enum class Objective { Latency, EnergyDelay, EnergyKDelay };
    Objective objective = Objective::Latency;

    /** k of the e^k * d family (EnergyKDelay only). */
    double energyExponent = 1.0;

    /**
     * Cross-tenant contention knobs (only meaningful together with
     * contentionProfile; all-default values plan exactly like a
     * contention-unaware build).
     */
    struct Contention
    {
        /**
         * DRAM bandwidth demand (GB/s) of co-runners outside this
         * plan's pipeline - other tenants sharing the SoC. Quantized
         * to the profile's ambient bucket; predictions then use the
         * bucket's stretched chunk times, so the plan optimizes for
         * the co-run it will actually experience.
         */
        double ambientGbps = 0.0;

        /**
         * Aggregate-demand cap (GB/s) for the C6 constraint family:
         * the schedule's summed per-PU bandwidth draw must stay under
         * this budget, so co-scheduled tenants cannot oversubscribe
         * the shared roofline. 0 disables C6. If even the frugalest
         * single-chunk schedule exceeds the budget, C6 is relaxed
         * (reported via OptimizeStats::c6Relaxed) rather than
         * producing an empty candidate list.
         */
        double budgetGbps = 0.0;

        /**
         * Real-time tenant: its slices are throttle-protected by the
         * serving layer (co-runners absorb the degradation), so it
         * plans at ambient bucket 0 regardless of ambientGbps.
         */
        bool realTime = false;
    };
    Contention contention;

    /**
     * Optional externally-owned evaluator built over the *same* table;
     * lets short-lived optimizers (fault-time replans, autotuner
     * campaigns) reuse a warm prediction cache. Null: the optimizer
     * owns a private one when memoize is set (or the engine is
     * Annealed). Not part of the fingerprint - sharing never changes
     * results, only cache temperature.
     */
    ScheduleEvaluator* sharedEvaluator = nullptr;

    /**
     * Optional per-application contention snapshot (must match the
     * table's grid and outlive the optimizer); enables the contention
     * knobs above - ambient-aware predictions and the C6
     * aggregate-bandwidth constraint family.
     */
    const platform::ContentionProfile* contentionProfile = nullptr;

    /** Whether this spec's engine returns the exact optimum (and is
     *  bit-identical to every other exactness-preserving engine). */
    bool
    exactnessPreserving() const
    {
        return engine != PlannerEngine::Annealed;
    }

    /**
     * Stable 64-bit fingerprint of every knob that can change which
     * schedule the optimizer returns - the planner component of a
     * schedule-cache key (bt::service keys its cache by application,
     * platform, ambient-load bucket, PU lease, and this fingerprint).
     * The exact engines (and the memoize flag) are deliberately
     * folded together: they are bit-identical by contract, so
     * flipping between them must keep hitting the same cache entries.
     * The annealed engine is NOT exactness-preserving, so its identity
     * and every annealing knob (seed, budget, restarts, temperatures)
     * are mixed in - a cache can never serve an annealed plan where an
     * exact one was requested, or vice versa. The sharedEvaluator /
     * contentionProfile pointers are excluded (sharing and storage
     * location never change results).
     */
    std::uint64_t fingerprint() const;
};

/** Pre-PlannerSpec name, kept as an alias for one release. */
using OptimizerConfig = PlannerSpec;

/** One optimizer output with its model-predicted costs. */
struct Candidate
{
    Schedule schedule;
    double predictedLatency = 0.0; ///< bottleneck chunk time, seconds
    double predictedGapness = 0.0; ///< seconds
    double predictedEnergyJ = 0.0; ///< per-task SoC energy, joules
    /** Aggregate DRAM demand (GB/s) of the schedule; 0 without a
     *  contention profile. */
    double predictedDemandGbps = 0.0;

    /** Energy-delay product (J*s), the EnergyDelay ranking key. */
    double
    predictedEdp() const
    {
        return predictedEnergyJ * predictedLatency;
    }
};

/** Summary of one optimization run. */
struct OptimizeStats
{
    PlannerEngine engine = PlannerEngine::Solver; ///< engine that ran
    /** Closed-form schedule-space size over the allowed PUs
     *  (saturating; what the exact-engine refusal checks). */
    std::uint64_t spaceSize = 0;

    double unrestrictedLatency = 0.0; ///< predicted optimum, no filter
    double latencyBound = 0.0;        ///< C3-style Tmax bound applied
    int requiredPus = 1;              ///< utilization level achieved
    double minimalGapness = 0.0;      ///< level-1 optimum g*
    double gapnessBound = 0.0;        ///< bound applied in level 2
    std::uint64_t solverNodes = 0;    ///< search nodes across all calls
    int candidatesWithinBound = 0;

    /** C6 aggregate-demand budget applied (GB/s; 0 when C6 is off). */
    double demandBudgetGbps = 0.0;
    /** True when the budget was infeasible (below the frugalest
     *  single-chunk schedule) and C6 was therefore dropped. */
    bool c6Relaxed = false;

    /** Prediction-cache counters (since evaluator construction; a
     *  shared evaluator accumulates across replans). Zero when
     *  memoization is off. */
    std::uint64_t evalHits = 0;
    std::uint64_t evalMisses = 0;

    /** Annealed-engine counters (zero for the exact engines). */
    std::int64_t annealProposed = 0; ///< moves drawn (vs. moveBudget)
    std::int64_t annealAccepted = 0; ///< moves taken
    std::int64_t annealFiltered = 0; ///< moves cut by the C6 filter
    std::int64_t annealDistinct = 0; ///< distinct feasible pool size
    int annealChains = 0;            ///< restart chains run
};

/**
 * Schedule generator over one (device, profiling table) pair. The table
 * decides predicted costs; the SoC supplies the PU classes.
 */
class Optimizer
{
  public:
    Optimizer(const platform::SocDescription& soc,
              const ProfilingTable& table, PlannerSpec spec = {});

    /** Pre-PlannerSpec shim: fold @p shared_eval / @p contention into
     *  the spec instead (PlannerSpec::sharedEvaluator /
     *  PlannerSpec::contentionProfile). */
    [[deprecated("pass sharedEvaluator/contentionProfile inside "
                 "PlannerSpec")]]
    Optimizer(const platform::SocDescription& soc,
              const ProfilingTable& table, PlannerSpec spec,
              ScheduleEvaluator* shared_eval,
              const platform::ContentionProfile* contention = nullptr);

    /**
     * Run levels 1 and 2.
     * @return up to K candidates sorted by predicted latency (ties by
     *         gapness); never empty for a valid table.
     */
    std::vector<Candidate> optimize();

    /** Statistics of the most recent optimize() call. */
    const OptimizeStats& stats() const { return stats_; }

  private:
    std::vector<Candidate> optimizeWithSolver();
    std::vector<Candidate> optimizeExhaustive();
    std::vector<Candidate> optimizeAnnealed();
    /** The annealed engine's phase schedule (skipped when the annealer
     *  swept the whole space at construction): split the move budget
     *  across guide phases mirroring the exact engines' levels. */
    void runAnnealPhases(Annealer& annealer, int m_eff);
    /**
     * The shared level-1/level-2 selection arithmetic over a set of
     * admissible candidates: derive the latency bound, required PU
     * count and gapness bound from the set, then pick up to K diverse
     * candidates (C5 blocking + per-tier caps). The exhaustive engine
     * feeds it the whole space; the annealed engine feeds it the
     * visited pool - which is exactly why their results agree whenever
     * the pool covers the relevant optima.
     */
    std::vector<Candidate> selectDiverse(std::vector<Candidate> cands);
    Candidate makeCandidate(const Schedule& s) const;
    /** Whether spec allowedPus admits @p pu (empty list = all). */
    bool puAllowed(int pu) const;
    /** C6 predicate: aggregate demand within budget (true if C6 off). */
    bool demandOk(std::span<const int> stage_to_pu) const;
    bool demandOk(const Schedule& s) const;
    /** 0 = fully feasible, 1 = over gapness budget, 2 = out of class. */
    int rankClass(const Candidate& c) const;
    int rankClassOf(double latency, double gapness,
                    int num_chunks) const;
    /** Objective value used to order candidates within a class. */
    double rankScore(const Candidate& c) const;
    double rankScoreOf(double latency, double energy_j) const;
    void sortCandidates(std::vector<Candidate>& cands) const;

    // Declaration order matters to the initializer list: the stretched
    // table is built from baseTable_ x contention stretch, and `table`
    // then binds to whichever of the two this plan predicts against.
    const platform::SocDescription& soc;
    const ProfilingTable& baseTable_;
    PlannerSpec config;
    const platform::ContentionProfile* contention_;
    int bucket_;               ///< ambient bucket this plan targets
    ProfilingTable stretchedStorage_; ///< base x stretch, bucket > 0
    const ProfilingTable& table; ///< what predictions fold over
    platform::PerfModel powerModel;
    std::int64_t budgetMilli_ = 0; ///< C6 cap, milli-GB/s
    bool c6Active_ = false;
    bool c6Relaxed_ = false;
    OptimizeStats stats_;
    std::unique_ptr<ScheduleEvaluator> ownedEval_;
    ScheduleEvaluator* eval_ = nullptr; ///< null = from-scratch path
};

} // namespace bt::core

#endif // BT_CORE_OPTIMIZER_HPP
