#include "core/native_executor.hpp"

#include "common/logging.hpp"

namespace bt::core {

NativeExecutor::NativeExecutor(const platform::SocDescription& soc,
                               NativeExecConfig cfg)
    : backend(soc), config(cfg)
{
    BT_ASSERT(config.numTasks > 0);
    BT_ASSERT(config.queueCapacity > 0);
}

runtime::RunResult
NativeExecutor::execute(const Application& app,
                        const Schedule& schedule) const
{
    return backend.run(app, schedule, config);
}

} // namespace bt::core
