#include "core/native_executor.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "sched/spsc_queue.hpp"
#include "sched/thread_pool.hpp"

namespace bt::core {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Pointer + task index travelling through the queues. */
struct Token
{
    TaskObject* task = nullptr;
    std::int64_t index = -1;
};

} // namespace

NativeExecutor::NativeExecutor(const platform::SocDescription& soc_,
                               NativeExecConfig cfg)
    : soc(soc_), config(cfg)
{
    BT_ASSERT(config.numTasks > 0);
    BT_ASSERT(config.queueCapacity > 0);
}

NativeResult
NativeExecutor::execute(const Application& app,
                        const Schedule& schedule) const
{
    BT_ASSERT(schedule.valid(app.numStages(), soc.numPus()),
              "schedule does not fit application/device");

    const int num_chunks = schedule.numChunks();
    const int num_buffers = config.numBuffers > 0
        ? config.numBuffers
        : num_chunks + 1;
    const std::size_t qcap = static_cast<std::size_t>(
        std::max(config.queueCapacity, num_buffers));

    // Multi-buffer pool (pre-allocated, recycled).
    std::vector<std::unique_ptr<TaskObject>> pool;
    pool.reserve(static_cast<std::size_t>(num_buffers));
    for (int b = 0; b < num_buffers; ++b)
        pool.push_back(app.makeTask(0, soc.seed));

    // queues[c] feeds chunk c; the extra last queue recycles to chunk 0.
    std::vector<std::unique_ptr<sched::SpscQueue<Token>>> queues;
    for (int c = 0; c <= num_chunks; ++c)
        queues.push_back(
            std::make_unique<sched::SpscQueue<Token>>(qcap));
    for (auto& obj : pool)
        BT_ASSERT(queues[0]->tryPush(Token{obj.get(), -1}),
                  "free pool exceeds queue capacity");

    NativeResult result;
    result.tasks = config.numTasks;
    std::atomic<bool> affinity_ok{true};
    std::vector<double> completions(static_cast<std::size_t>(
        config.numTasks), 0.0);
    std::mutex validation_mutex;

    const auto t0 = Clock::now();

    auto dispatcher = [&](int c) {
        const Chunk& ch = schedule.chunks()[static_cast<std::size_t>(c)];
        const platform::PuModel& pu = soc.pu(ch.pu);

        // Per-chunk worker team bound to this PU's cores. GPU chunks get
        // no team: kernels run through the SIMT layer on the dispatcher.
        std::unique_ptr<sched::ThreadPool> team;
        if (pu.kind == platform::PuKind::Cpu) {
            team = std::make_unique<sched::ThreadPool>(pu.cores,
                                                       pu.coreIds);
            if (!pu.coreIds.empty() && !team->affinityApplied())
                affinity_ok.store(false, std::memory_order_relaxed);
        }

        auto& in = *queues[static_cast<std::size_t>(c)];
        auto& out = *queues[static_cast<std::size_t>(c + 1)];
        std::int64_t injected = 0; // chunk 0 only

        for (int processed = 0; processed < config.numTasks;) {
            auto token = in.tryPop();
            if (!token) {
                std::this_thread::yield();
                continue;
            }
            if (c == 0) {
                // Recycle: refresh the object for the next input index.
                token->index = injected++;
                app.refreshTask(*token->task, token->index, soc.seed);
            }

            KernelCtx ctx{*token->task, team.get()};
            for (int s = ch.firstStage; s <= ch.lastStage; ++s)
                app.stage(s).run(ctx, pu.kind);

            if (c == num_chunks - 1) {
                completions[static_cast<std::size_t>(token->index)]
                    = secondsSince(t0);
                if (config.validate
                    && result.validationErrors.size() < 8) {
                    const std::string err = app.validate(*token->task);
                    if (!err.empty()) {
                        std::lock_guard<std::mutex> lock(
                            validation_mutex);
                        result.validationErrors.push_back(
                            "task " + std::to_string(token->index)
                            + ": " + err);
                    }
                }
            }
            while (!out.tryPush(*token))
                std::this_thread::yield();
            ++processed;
        }
    };

    // Recycler: moves finished tokens from the last queue back to the
    // front queue (keeps every queue strictly SPSC).
    std::thread recycler([&] {
        auto& from = *queues[static_cast<std::size_t>(num_chunks)];
        auto& to = *queues[0];
        for (int moved = 0; moved < config.numTasks;) {
            auto token = from.tryPop();
            if (!token) {
                std::this_thread::yield();
                continue;
            }
            while (!to.tryPush(*token))
                std::this_thread::yield();
            ++moved;
        }
    });

    std::vector<std::thread> dispatchers;
    dispatchers.reserve(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        dispatchers.emplace_back(dispatcher, c);
    for (auto& t : dispatchers)
        t.join();
    recycler.join();

    result.makespanSeconds = secondsSince(t0);
    result.affinityApplied
        = affinity_ok.load(std::memory_order_relaxed);

    const int n = config.numTasks;
    const int w = std::min(3, n - 1);
    if (n - w >= 2) {
        result.taskIntervalSeconds
            = (completions[static_cast<std::size_t>(n - 1)]
               - completions[static_cast<std::size_t>(w)])
            / static_cast<double>(n - 1 - w);
    } else {
        result.taskIntervalSeconds
            = result.makespanSeconds / static_cast<double>(n);
    }
    return result;
}

} // namespace bt::core
