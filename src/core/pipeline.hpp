/**
 * @file
 * End-to-end BetterTogether facade (paper Fig. 2): profile -> optimize
 * -> autotune -> report, plus the homogeneous CPU/GPU baselines every
 * evaluation compares against. This is the one-call entry point used by
 * the examples and the benchmark harness.
 */

#ifndef BT_CORE_PIPELINE_HPP
#define BT_CORE_PIPELINE_HPP

#include "core/autotuner.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"
#include "platform/perf_model.hpp"

namespace bt::core {

/** Knobs for the full flow. */
struct BetterTogetherConfig
{
    ProfilerConfig profiler;
    PlannerSpec optimizer;
    SimExecConfig executor;
    bool autotune = true; ///< run level 3; else take the predicted best

    /** Worker threads for the autotuning campaign (1 = serial). The
     *  TuningReport is bit-identical at any value; see AutoTuner. */
    int tunerThreads = 1;
};

/** Everything the flow produced, for reporting and tests. */
struct BetterTogetherReport
{
    ProfileResult profile;
    std::vector<Candidate> candidates; ///< optimizer output, ranked
    TuningReport tuning;               ///< level-3 measurements
    Schedule bestSchedule;
    double bestLatencySeconds = 0.0;   ///< measured, steady state

    /** Deployment run of the winning schedule: the unified RunResult
     *  with its structured TraceTimeline (occupancy, bubbles,
     *  co-runner sets), for reporting and trace export. */
    runtime::RunResult deployedRun;

    double cpuBaselineSeconds = 0.0;   ///< best CPU class, homogeneous
    double gpuBaselineSeconds = 0.0;   ///< GPU-only
    int cpuBaselinePu = -1;
    int gpuBaselinePu = -1;

    /** min(CPU, GPU) homogeneous latency. */
    double bestBaselineSeconds() const;

    /** Headline metric: best baseline / BetterTogether. */
    double speedupOverBestBaseline() const;
    double speedupOverCpu() const;
    double speedupOverGpu() const;
};

/** One-call driver for a (device, application) pair. */
class BetterTogether
{
  public:
    BetterTogether(const platform::SocDescription& soc,
                   BetterTogetherConfig cfg = {});

    /** Run the complete flow on @p app. */
    BetterTogetherReport run(const Application& app) const;

    /** Measure a homogeneous schedule on @p pu (baseline helper). */
    double measureHomogeneous(const Application& app, int pu) const;

    const platform::PerfModel& model() const { return model_; }

  private:
    platform::PerfModel model_;
    BetterTogetherConfig config;
};

} // namespace bt::core

#endif // BT_CORE_PIPELINE_HPP
