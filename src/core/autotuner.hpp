/**
 * @file
 * Optimization level 3 (paper Sec. 3.3, "Autotuning"): execute the top
 * candidate schedules on the target and pick the measured-best. The
 * paper runs each candidate ~10 s on the physical device; here each
 * candidate runs through the simulated executor, whose virtual cost is
 * accumulated so the campaign cost (~200 s per device/application in the
 * paper) can be reported.
 */

#ifndef BT_CORE_AUTOTUNER_HPP
#define BT_CORE_AUTOTUNER_HPP

#include <vector>

#include "core/optimizer.hpp"
#include "core/sim_executor.hpp"

namespace bt::core {

/** One autotuned candidate: prediction next to measurement. */
struct TunedCandidate
{
    Candidate candidate;
    double measuredLatency = 0.0; ///< seconds per task (steady state)
    int rankPredicted = 0;        ///< position in the optimizer output
};

/** Outcome of a tuning campaign. */
struct TuningReport
{
    std::vector<TunedCandidate> all; ///< sorted by measured latency
    int bestIndex = 0;               ///< into `all` (measured best)
    double campaignCostSeconds = 0.0;

    const TunedCandidate& best() const
    {
        return all[static_cast<std::size_t>(bestIndex)];
    }

    /** Speedup of the measured best over the predicted-best schedule. */
    double autotuningGain() const;
};

/**
 * A sweep over annealing knobs: the annealed engine's result depends
 * on its seed and temperature, so instead of trusting one walk, tune
 * across several - each (seed, temperature) variant plans once and
 * contributes its front candidate to the measured campaign.
 */
struct AnnealCampaign
{
    std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
    /** Initial temperatures to sweep; 0 = the engine default. */
    std::vector<double> initialTemperatures = {0.0};
};

/** Runs candidates through an executor and ranks them by measurement. */
class AutoTuner
{
  public:
    /**
     * @param window_seconds fixed virtual measurement interval charged
     *        per candidate (the paper runs each for 10 s, giving the
     *        ~200 s campaign for K = 20).
     * @param threads fan candidate executions out over this many
     *        threads (1 = serial). Every candidate run is
     *        self-contained, and results are merged in candidate
     *        order, so the report is bit-identical to the serial
     *        campaign at any thread count.
     */
    explicit AutoTuner(const SimExecutor& executor,
                       double window_seconds = 10.0, int threads = 1)
        : executor_(executor), windowSeconds(window_seconds),
          threads_(threads)
    {
    }

    /** Measure every candidate and rank. Candidates must be non-empty. */
    TuningReport tune(const Application& app,
                      const std::vector<Candidate>& candidates) const;

    /**
     * Annealed planning campaign: plan @p app once per (seed, initial
     * temperature) in @p campaign - forcing spec.engine to Annealed
     * and sharing one warm evaluator across variants - then measure
     * the deduplicated variant champions with tune(). The first
     * variant's champion keeps rankPredicted 0, so autotuningGain()
     * reports the measured win over the single-walk plan. Deterministic
     * at any thread count (the campaign plans serially; only
     * measurement fans out).
     */
    TuningReport tuneAnnealed(const Application& app,
                              const platform::SocDescription& soc,
                              const ProfilingTable& table,
                              PlannerSpec spec,
                              const AnnealCampaign& campaign) const;

  private:
    const SimExecutor& executor_;
    double windowSeconds;
    int threads_;
};

} // namespace bt::core

#endif // BT_CORE_AUTOTUNER_HPP
