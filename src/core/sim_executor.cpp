#include "core/sim_executor.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/engine.hpp"

namespace bt::core {

namespace {

/** Event-driven dispatcher state for one chunk. */
struct ChunkRuntime
{
    int index = 0;
    int firstStage = 0;
    int lastStage = 0;
    int pu = 0;
    bool busy = false;
    int curStage = -1;      ///< stage currently "executing"
    int curToken = -1;      ///< buffer id being processed
    std::int64_t curTask = -1;
    double stageStart = 0.0;
    double busyAccum = 0.0;
};

} // namespace

SimExecutor::SimExecutor(const platform::PerfModel& model_,
                         SimExecConfig cfg)
    : model(model_), config(cfg)
{
    BT_ASSERT(config.numTasks > 0);
    BT_ASSERT(config.warmupTasks >= 0);
}

ExecutionResult
SimExecutor::execute(const Application& app,
                     const Schedule& schedule) const
{
    const auto& soc = model.soc();
    BT_ASSERT(schedule.valid(app.numStages(), soc.numPus()),
              "schedule does not fit application/device");

    const int num_chunks = schedule.numChunks();
    const int num_buffers = config.numBuffers > 0
        ? config.numBuffers
        : num_chunks + 1;

    // --- dispatcher state ---------------------------------------------
    std::vector<ChunkRuntime> chunks(static_cast<std::size_t>(
        num_chunks));
    for (int c = 0; c < num_chunks; ++c) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        const Chunk& ch
            = schedule.chunks()[static_cast<std::size_t>(c)];
        rt.index = c;
        rt.firstStage = ch.firstStage;
        rt.lastStage = ch.lastStage;
        rt.pu = ch.pu;
    }

    // queues[c] feeds chunk c; the last queue recycles into queue 0.
    std::vector<std::deque<int>> queues(static_cast<std::size_t>(
        num_chunks));
    std::vector<std::int64_t> token_task(static_cast<std::size_t>(
        num_buffers), -1);
    for (int b = 0; b < num_buffers; ++b)
        queues[0].push_back(b);

    // Optional functional TaskObjects (multi-buffering pool).
    std::vector<std::unique_ptr<TaskObject>> objects;
    if (config.runKernels) {
        objects.reserve(static_cast<std::size_t>(num_buffers));
        for (int b = 0; b < num_buffers; ++b)
            objects.push_back(app.makeTask(0, soc.seed));
    }

    ExecutionResult result;
    result.tasks = config.numTasks;

    std::int64_t next_task = 0;
    std::vector<double> inject_time(static_cast<std::size_t>(
        config.numTasks), 0.0);
    std::vector<double> complete_time(static_cast<std::size_t>(
        config.numTasks), 0.0);

    // --- virtual-time engine ------------------------------------------
    // Tag = chunk index; each chunk executes at most one stage at a time,
    // so the chunk's runtime state identifies the running stage.
    sim::Engine engine([&](std::span<const sim::ActiveTask> active,
                           std::span<double> rates) {
        std::vector<platform::Load> loads(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
            const auto& rt = chunks[static_cast<std::size_t>(
                active[i].tag)];
            BT_ASSERT(rt.busy && rt.curStage >= 0,
                      "active task on idle chunk");
            loads[i] = platform::Load{&app.stage(rt.curStage).work(),
                                      rt.pu};
        }
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0 / model.timeOf(i, loads);
    });

    // Energy integration: between events the set of active PU classes
    // is constant, so power is piecewise constant.
    std::vector<bool> pu_active_scratch(
        static_cast<std::size_t>(soc.numPus()), false);
    engine.onAdvance([&](double t0, double t1) {
        std::fill(pu_active_scratch.begin(), pu_active_scratch.end(),
                  false);
        for (const auto& rt : chunks)
            if (rt.busy)
                pu_active_scratch[static_cast<std::size_t>(rt.pu)]
                    = true;
        result.energyJoules
            += (t1 - t0) * model.systemPowerW(pu_active_scratch);
    });

    auto stageNoise = [&](std::int64_t task, int stage) {
        const std::uint64_t key = hashCombine(
            hashCombine(soc.seed ^ config.noiseSalt,
                        static_cast<std::uint64_t>(task)),
            static_cast<std::uint64_t>(stage));
        Rng rng(key);
        return soc.noiseSigma > 0.0
            ? rng.nextLogNormalFactor(soc.noiseSigma)
            : 1.0;
    };

    auto startStage = [&](ChunkRuntime& rt, int stage) {
        rt.curStage = stage;
        rt.stageStart = engine.now();
        if (config.runKernels) {
            auto& task = *objects[static_cast<std::size_t>(rt.curToken)];
            KernelCtx ctx{task, nullptr};
            app.stage(stage).run(ctx, soc.pu(rt.pu).kind);
        }
        engine.startTask(static_cast<std::uint64_t>(rt.index),
                         stageNoise(rt.curTask, stage));
    };

    // Forward declaration via std::function for mutual recursion.
    std::function<void(int)> tryStart = [&](int c) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        if (rt.busy)
            return;
        auto& q = queues[static_cast<std::size_t>(c)];
        if (q.empty())
            return;
        if (c == 0 && next_task >= config.numTasks)
            return; // input stream exhausted
        const int token = q.front();
        q.pop_front();
        rt.busy = true;
        rt.curToken = token;
        if (c == 0) {
            const std::int64_t t = next_task++;
            token_task[static_cast<std::size_t>(token)] = t;
            inject_time[static_cast<std::size_t>(t)] = engine.now();
            if (config.runKernels)
                app.refreshTask(
                    *objects[static_cast<std::size_t>(token)], t,
                    soc.seed);
        }
        rt.curTask = token_task[static_cast<std::size_t>(token)];
        startStage(rt, rt.firstStage);
    };

    engine.onComplete([&](sim::TaskId, std::uint64_t tag) {
        auto& rt = chunks[static_cast<std::size_t>(tag)];
        rt.busyAccum += engine.now() - rt.stageStart;
        if (rt.curStage < rt.lastStage) {
            startStage(rt, rt.curStage + 1);
            return;
        }
        // Chunk finished: hand the token downstream (or recycle).
        const int token = rt.curToken;
        const std::int64_t task = rt.curTask;
        rt.busy = false;
        rt.curStage = -1;
        rt.curToken = -1;
        rt.curTask = -1;

        if (rt.index + 1 < num_chunks) {
            queues[static_cast<std::size_t>(rt.index + 1)].push_back(
                token);
            tryStart(rt.index + 1);
        } else {
            complete_time[static_cast<std::size_t>(task)] = engine.now();
            if (config.runKernels
                && result.validationErrors.size() < 8) {
                const std::string err = app.validate(
                    *objects[static_cast<std::size_t>(token)]);
                if (!err.empty())
                    result.validationErrors.push_back(
                        "task " + std::to_string(task) + ": " + err);
            }
            queues[0].push_back(token);
            tryStart(0);
        }
        tryStart(rt.index); // pull the next token into this chunk
    });

    // Prime the pipeline and run to completion.
    tryStart(0);
    engine.run();
    BT_ASSERT(next_task == config.numTasks,
              "pipeline stalled: only ", next_task, " of ",
              config.numTasks, " tasks injected");

    // --- metrics --------------------------------------------------------
    result.makespanSeconds = engine.now();

    const int n = config.numTasks;
    const int w = std::min(config.warmupTasks, n - 1);
    if (n - w >= 2) {
        result.taskIntervalSeconds
            = (complete_time[static_cast<std::size_t>(n - 1)]
               - complete_time[static_cast<std::size_t>(w)])
            / static_cast<double>(n - 1 - w);
    } else {
        result.taskIntervalSeconds
            = result.makespanSeconds / static_cast<double>(n);
    }

    std::vector<double> latencies(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        latencies[static_cast<std::size_t>(t)]
            = complete_time[static_cast<std::size_t>(t)]
            - inject_time[static_cast<std::size_t>(t)];
    result.meanLatencySeconds = mean(latencies);

    result.chunkBusyFraction.resize(static_cast<std::size_t>(
        num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        result.chunkBusyFraction[static_cast<std::size_t>(c)]
            = result.makespanSeconds > 0.0
            ? chunks[static_cast<std::size_t>(c)].busyAccum
                / result.makespanSeconds
            : 0.0;
    return result;
}

} // namespace bt::core
