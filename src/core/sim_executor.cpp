#include "core/sim_executor.hpp"

#include "common/logging.hpp"

namespace bt::core {

SimExecutor::SimExecutor(const platform::PerfModel& model,
                         SimExecConfig cfg)
    : backend(model), config(cfg)
{
    BT_ASSERT(config.numTasks > 0);
}

runtime::RunResult
SimExecutor::execute(const Application& app,
                     const Schedule& schedule) const
{
    return backend.run(app, schedule, config);
}

} // namespace bt::core
