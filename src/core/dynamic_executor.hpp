/**
 * @file
 * Dynamic greedy scheduling baseline (extension): instead of a static
 * pipeline schedule, every (task, stage) is dispatched at runtime to
 * the idle PU with the best predicted completion time, StarPU-style
 * (paper Sec. 6 contrasts BetterTogether's static schedules with such
 * "heavyweight scheduling runtimes"). Each dispatch pays a runtime
 * overhead, and stage-to-PU locality is whatever the greedy choice
 * produces - the two effects static pipelining avoids.
 *
 * Thin policy over the unified runtime: the greedy earliest-finish
 * machinery lives in runtime::GreedyRuntime on the same DES substrate,
 * interference model, noise derivation, and energy meter as the
 * SimExecutor, so results are directly comparable.
 */

#ifndef BT_CORE_DYNAMIC_EXECUTOR_HPP
#define BT_CORE_DYNAMIC_EXECUTOR_HPP

#include "core/application.hpp"
#include "core/profiling_table.hpp"
#include "core/sim_executor.hpp"
#include "platform/perf_model.hpp"
#include "runtime/greedy_runtime.hpp"

namespace bt::core {

/** Dynamic scheduler knobs: the unified runtime config plus the greedy
 *  policy's own parameters. */
struct DynamicExecConfig : runtime::RunConfig
{
    int tasksInFlight = 0; ///< 0 = one per PU class plus one

    /** Runtime cost charged per dispatch decision (queue locks, cost
     *  model lookup, kernel argument marshalling). */
    double dispatchOverheadUs = 50.0;
};

/**
 * Greedy earliest-finish dynamic executor. Uses @p table (normally the
 * interference-aware profiling table) as its cost model when ranking
 * idle PUs for a ready stage.
 */
class DynamicExecutor
{
  public:
    DynamicExecutor(const platform::PerfModel& model,
                    const ProfilingTable& table,
                    DynamicExecConfig cfg = {});

    /** Execute @p app dynamically and measure it. */
    runtime::RunResult execute(const Application& app) const;

  private:
    runtime::GreedyRuntime backend;
    DynamicExecConfig config;
};

} // namespace bt::core

#endif // BT_CORE_DYNAMIC_EXECUTOR_HPP
