/**
 * @file
 * Dynamic greedy scheduling baseline (extension): instead of a static
 * pipeline schedule, every (task, stage) is dispatched at runtime to
 * the idle PU with the best predicted completion time, StarPU-style
 * (paper Sec. 6 contrasts BetterTogether's static schedules with such
 * "heavyweight scheduling runtimes"). Each dispatch pays a runtime
 * overhead, and stage-to-PU locality is whatever the greedy choice
 * produces - the two effects static pipelining avoids.
 *
 * Runs on the same discrete-event substrate and interference model as
 * the SimExecutor, so results are directly comparable.
 */

#ifndef BT_CORE_DYNAMIC_EXECUTOR_HPP
#define BT_CORE_DYNAMIC_EXECUTOR_HPP

#include "core/application.hpp"
#include "core/profiling_table.hpp"
#include "core/sim_executor.hpp"
#include "platform/perf_model.hpp"

namespace bt::core {

/** Dynamic scheduler knobs. */
struct DynamicExecConfig
{
    int numTasks = 30;
    int tasksInFlight = 0; ///< 0 = one per PU class plus one

    /** Runtime cost charged per dispatch decision (queue locks, cost
     *  model lookup, kernel argument marshalling). */
    double dispatchOverheadUs = 50.0;

    std::uint64_t noiseSalt = 0;
    int warmupTasks = 3;
};

/**
 * Greedy earliest-finish dynamic executor. Uses @p table (normally the
 * interference-aware profiling table) as its cost model when ranking
 * idle PUs for a ready stage.
 */
class DynamicExecutor
{
  public:
    DynamicExecutor(const platform::PerfModel& model,
                    const ProfilingTable& table,
                    DynamicExecConfig cfg = {});

    /** Execute @p app dynamically and measure it. */
    ExecutionResult execute(const Application& app) const;

  private:
    const platform::PerfModel& model;
    const ProfilingTable& table;
    DynamicExecConfig config;
};

} // namespace bt::core

#endif // BT_CORE_DYNAMIC_EXECUTOR_HPP
