#include "common/csv.hpp"

#include "common/logging.hpp"

namespace bt {

namespace {

std::string
quote(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : out(path), columns(headers.size())
{
    BT_ASSERT(columns > 0, "csv needs at least one column");
    if (!out) {
        warn("could not open csv output file: ", path);
        return;
    }
    emit(headers);
}

void
CsvWriter::addRow(const std::vector<std::string>& cells)
{
    BT_ASSERT(cells.size() == columns,
              "csv row width mismatch: ", cells.size(), " vs ", columns);
    if (out)
        emit(cells);
}

void
CsvWriter::emit(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        out << quote(cells[i]);
        if (i + 1 < cells.size())
            out << ',';
    }
    out << '\n';
}

} // namespace bt
