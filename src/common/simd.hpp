/**
 * @file
 * Portable SIMD core: ISA identification/detection, aligned allocation,
 * and a generic fixed-width vector type the kernel bodies are written
 * against.
 *
 * The kernel layer (src/kernels/simd_body.hpp) templates its hot loops
 * over a vector type V exposing the interface below; per-ISA
 * specializations (simd_x86.hpp, simd_neon.hpp) implement the same
 * interface with intrinsics. VecGeneric<W> here is the
 * specification-by-construction: plain lane loops the compiler may or
 * may not vectorize, used for testing and as the model every intrinsic
 * implementation must match lane-for-lane.
 *
 * Bit-identity contract (see docs/DISPATCH.md): every operation is
 * defined lane-wise with exactly the scalar semantics —
 *  - mulAdd(a, b, acc) is an UNFUSED multiply then add (two roundings,
 *    like the scalar `acc += a * b`); no implementation may emit FMA.
 *  - max(a, b) is `(a < b) ? b : a` per lane, matching std::max
 *    including its NaN and signed-zero behavior (x86 maxps returns its
 *    second operand on NaN and on ties, so MAXPS(b, a) matches).
 * Vectorization across *independent output elements* plus these rules
 * keeps every SIMD tier bit-identical to the scalar bodies.
 */

#ifndef BT_COMMON_SIMD_HPP
#define BT_COMMON_SIMD_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace bt::simd {

/** Instruction-set tiers the kernel layer can dispatch to. */
enum class Isa : std::uint8_t {
    Scalar = 0, ///< reference scalar bodies (always available)
    Sse2,       ///< x86-64 baseline, 4 float lanes
    Avx2,       ///< 8 float lanes (TU compiled with -mavx2, never -mfma)
    Neon,       ///< aarch64 baseline, 4 float lanes
};

const char* isaName(Isa isa);

constexpr int
isaLanes(Isa isa)
{
    switch (isa) {
    case Isa::Sse2:
    case Isa::Neon:
        return 4;
    case Isa::Avx2:
        return 8;
    case Isa::Scalar:
        break;
    }
    return 1;
}

/** True when the running CPU can execute @p isa (Scalar: always). */
bool cpuSupports(Isa isa);

/** Widest ISA the running CPU supports. */
Isa bestCpuIsa();

/** Next tier down the fall-back chain (Avx2 -> Sse2 -> Scalar). */
constexpr Isa
fallbackIsa(Isa isa)
{
    return isa == Isa::Avx2 ? Isa::Sse2 : Isa::Scalar;
}

/** Parsed BT_SIMD environment override. */
struct SimdRequest
{
    Isa isa = Isa::Scalar; ///< requested tier (when forced)
    bool forced = false;   ///< BT_SIMD was set to a specific tier
};

/**
 * Parse BT_SIMD: scalar|sse2|avx2|neon force that tier (clamped down
 * the fallback chain if unsupported, with a warning); native or unset
 * mean "detect". Any other value is a fatal configuration error.
 */
SimdRequest simdRequestFromEnv();

/** Alignment (bytes) of every kernel buffer and packing scratch. */
inline constexpr std::size_t kAlign = 64;

/** std::assume_aligned with the project-wide default. */
template <std::size_t N = kAlign, typename T>
[[nodiscard]] constexpr T*
assumeAligned(T* p)
{
    return std::assume_aligned<N>(p);
}

/**
 * Minimal allocator handing out kAlign-aligned storage, so vector
 * loads on packing scratch / tensor staging buffers can use the
 * aligned forms.
 */
template <typename T, std::size_t Align = kAlign>
struct AlignedAllocator
{
    using value_type = T;

    /** Explicit rebind: the Align non-type parameter defeats
     *  allocator_traits' default template-argument replacement. */
    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    [[nodiscard]] T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align>&) const noexcept
    {
        return true;
    }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/**
 * Reference vector: W float lanes as a plain array, every op a lane
 * loop. The semantic model for the intrinsic implementations and the
 * fallback when no ISA header matches.
 */
template <int W>
struct VecGeneric
{
    static constexpr int width = W;
    /**
     * Whether loadPartial/storePartial are register ops (masked moves)
     * rather than bounce-through-a-stack-buffer emulation. Kernel tail
     * loops should prefer a plain scalar remainder when this is false:
     * the temp-buffer route costs a store-to-load-forwarding stall per
     * call, which dominates short rows (measured ~4x on SSE2 conv2d).
     */
    static constexpr bool fastPartial = false;
    float lane[W];

    static VecGeneric
    zero()
    {
        VecGeneric v{};
        return v;
    }

    static VecGeneric
    broadcast(float x)
    {
        VecGeneric v;
        for (int i = 0; i < W; ++i)
            v.lane[i] = x;
        return v;
    }

    /** Aligned load (p must be width*sizeof(float)-aligned). */
    static VecGeneric
    load(const float* p)
    {
        return loadu(assumeAligned<W * sizeof(float)>(p));
    }

    static VecGeneric
    loadu(const float* p)
    {
        VecGeneric v;
        for (int i = 0; i < W; ++i)
            v.lane[i] = p[i];
        return v;
    }

    /** First n lanes from p, remaining lanes zero (0 <= n <= W). */
    static VecGeneric
    loadPartial(const float* p, int n)
    {
        VecGeneric v{};
        for (int i = 0; i < n; ++i)
            v.lane[i] = p[i];
        return v;
    }

    /** One lane every @p stride floats. */
    static VecGeneric
    gatherStride(const float* p, std::int64_t stride)
    {
        VecGeneric v;
        for (int i = 0; i < W; ++i)
            v.lane[i] = p[static_cast<std::int64_t>(i) * stride];
        return v;
    }

    void
    store(float* p) const
    {
        storeu(assumeAligned<W * sizeof(float)>(p));
    }

    void
    storeu(float* p) const
    {
        for (int i = 0; i < W; ++i)
            p[i] = lane[i];
    }

    /** Store the first n lanes only; p[n..] is not touched. */
    void
    storePartial(float* p, int n) const
    {
        for (int i = 0; i < n; ++i)
            p[i] = lane[i];
    }

    static VecGeneric
    add(VecGeneric a, VecGeneric b)
    {
        VecGeneric v;
        for (int i = 0; i < W; ++i)
            v.lane[i] = a.lane[i] + b.lane[i];
        return v;
    }

    static VecGeneric
    mul(VecGeneric a, VecGeneric b)
    {
        VecGeneric v;
        for (int i = 0; i < W; ++i)
            v.lane[i] = a.lane[i] * b.lane[i];
        return v;
    }

    /** Unfused a*b + acc: one multiply rounding, one add rounding. */
    static VecGeneric
    mulAdd(VecGeneric a, VecGeneric b, VecGeneric acc)
    {
        VecGeneric v;
        for (int i = 0; i < W; ++i) {
            const float prod = a.lane[i] * b.lane[i];
            v.lane[i] = prod + acc.lane[i];
        }
        return v;
    }

    /** Lane-wise (a < b) ? b : a — exactly std::max's semantics. */
    static VecGeneric
    max(VecGeneric a, VecGeneric b)
    {
        VecGeneric v;
        for (int i = 0; i < W; ++i)
            v.lane[i] = a.lane[i] < b.lane[i] ? b.lane[i] : a.lane[i];
        return v;
    }

    /** Split p[0..2W) into even lanes and odd lanes. */
    static void
    deinterleave2(const float* p, VecGeneric& even, VecGeneric& odd)
    {
        for (int i = 0; i < W; ++i) {
            even.lane[i] = p[2 * i];
            odd.lane[i] = p[2 * i + 1];
        }
    }
};

} // namespace bt::simd

#endif // BT_COMMON_SIMD_HPP
