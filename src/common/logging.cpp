#include "common/logging.hpp"

#include <cstdio>

namespace bt {
namespace detail {

void
logMessage(const char* tag, const std::string& msg)
{
    std::fprintf(stderr, "[bt:%s] %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace bt
