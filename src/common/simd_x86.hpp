/**
 * @file
 * x86 implementations of the Vec interface (see simd.hpp for the
 * lane-wise semantic contract).
 *
 * VecSse2 compiles in every x86-64 TU (SSE2 is the baseline). VecAvx2
 * is only defined when the including TU is compiled with -mavx2; the
 * AVX2 tier TU is the only such file, and it deliberately does NOT
 * enable -mfma, so no implementation here can be contracted into a
 * fused multiply-add (mulAdd must keep scalar two-rounding semantics).
 *
 * max(a, b) compiles to a single maxps with SWAPPED operands:
 * MAXPS(src1, src2) returns src2 whenever either input is NaN or the
 * comparison ties (including -0 vs +0), so MAXPS(b, a) is bit-exactly
 * `(a < b) ? b : a` — the same select std::max performs.
 */

#ifndef BT_COMMON_SIMD_X86_HPP
#define BT_COMMON_SIMD_X86_HPP

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstdint>

#include "common/simd.hpp"

namespace bt::simd {

struct VecSse2
{
    static constexpr int width = 4;
    // Partials bounce through a stack buffer (SSE2 has no maskload):
    // a store-forwarding stall per call, so tails should go scalar.
    static constexpr bool fastPartial = false;
    __m128 v;

    static VecSse2
    zero()
    {
        return {_mm_setzero_ps()};
    }

    static VecSse2
    broadcast(float x)
    {
        return {_mm_set1_ps(x)};
    }

    static VecSse2
    load(const float* p)
    {
        return {_mm_load_ps(p)};
    }

    static VecSse2
    loadu(const float* p)
    {
        return {_mm_loadu_ps(p)};
    }

    static VecSse2
    loadPartial(const float* p, int n)
    {
        alignas(16) float tmp[4] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return {_mm_load_ps(tmp)};
    }

    static VecSse2
    gatherStride(const float* p, std::int64_t stride)
    {
        return {_mm_setr_ps(p[0], p[stride], p[2 * stride],
                            p[3 * stride])};
    }

    void
    store(float* p) const
    {
        _mm_store_ps(p, v);
    }

    void
    storeu(float* p) const
    {
        _mm_storeu_ps(p, v);
    }

    void
    storePartial(float* p, int n) const
    {
        alignas(16) float tmp[4];
        _mm_store_ps(tmp, v);
        for (int i = 0; i < n; ++i)
            p[i] = tmp[i];
    }

    static VecSse2
    add(VecSse2 a, VecSse2 b)
    {
        return {_mm_add_ps(a.v, b.v)};
    }

    static VecSse2
    mul(VecSse2 a, VecSse2 b)
    {
        return {_mm_mul_ps(a.v, b.v)};
    }

    static VecSse2
    mulAdd(VecSse2 a, VecSse2 b, VecSse2 acc)
    {
        return {_mm_add_ps(_mm_mul_ps(a.v, b.v), acc.v)};
    }

    static VecSse2
    max(VecSse2 a, VecSse2 b)
    {
        // MAXPS(b, a) returns a on NaN and on ties (incl. -0 vs +0):
        // bit-exactly the scalar `(a < b) ? b : a`.
        return {_mm_max_ps(b.v, a.v)};
    }

    static void
    deinterleave2(const float* p, VecSse2& even, VecSse2& odd)
    {
        const __m128 lo = _mm_loadu_ps(p);     // p0 p1 p2 p3
        const __m128 hi = _mm_loadu_ps(p + 4); // p4 p5 p6 p7
        even.v = _mm_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0));
        odd.v = _mm_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 1, 3, 1));
    }
};

#if defined(__AVX2__)

struct VecAvx2
{
    static constexpr int width = 8;
    static constexpr bool fastPartial = true; // maskload/maskstore
    __m256 v;

    static VecAvx2
    zero()
    {
        return {_mm256_setzero_ps()};
    }

    static VecAvx2
    broadcast(float x)
    {
        return {_mm256_set1_ps(x)};
    }

    static VecAvx2
    load(const float* p)
    {
        return {_mm256_load_ps(p)};
    }

    static VecAvx2
    loadu(const float* p)
    {
        return {_mm256_loadu_ps(p)};
    }

    static VecAvx2
    loadPartial(const float* p, int n)
    {
        return {_mm256_maskload_ps(p, tailMask(n))};
    }

    static VecAvx2
    gatherStride(const float* p, std::int64_t stride)
    {
        return {_mm256_setr_ps(p[0], p[stride], p[2 * stride],
                               p[3 * stride], p[4 * stride],
                               p[5 * stride], p[6 * stride],
                               p[7 * stride])};
    }

    void
    store(float* p) const
    {
        _mm256_store_ps(p, v);
    }

    void
    storeu(float* p) const
    {
        _mm256_storeu_ps(p, v);
    }

    void
    storePartial(float* p, int n) const
    {
        _mm256_maskstore_ps(p, tailMask(n), v);
    }

    static VecAvx2
    add(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_add_ps(a.v, b.v)};
    }

    static VecAvx2
    mul(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_mul_ps(a.v, b.v)};
    }

    static VecAvx2
    mulAdd(VecAvx2 a, VecAvx2 b, VecAvx2 acc)
    {
        return {_mm256_add_ps(_mm256_mul_ps(a.v, b.v), acc.v)};
    }

    static VecAvx2
    max(VecAvx2 a, VecAvx2 b)
    {
        // MAXPS(b, a) returns a on NaN and on ties (incl. -0 vs +0):
        // bit-exactly the scalar `(a < b) ? b : a`.
        return {_mm256_max_ps(b.v, a.v)};
    }

    static void
    deinterleave2(const float* p, VecAvx2& even, VecAvx2& odd)
    {
        const __m256 lo = _mm256_loadu_ps(p);     // p0..p7
        const __m256 hi = _mm256_loadu_ps(p + 8); // p8..p15
        // Per-128-lane shuffle leaves 64-bit quads out of order;
        // permute4x64(0xD8) = (0,2,1,3) restores ascending lanes.
        __m256 ev = _mm256_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0));
        __m256 od = _mm256_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 1, 3, 1));
        even.v = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(ev), 0xD8));
        odd.v = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(od), 0xD8));
    }

  private:
    static __m256i
    tailMask(int n)
    {
        // masks[8 - n] starts n all-ones lanes followed by zeros.
        alignas(32) static constexpr std::int32_t masks[16]
            = {-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(masks + (8 - n)));
    }
};

#endif // __AVX2__

} // namespace bt::simd

#endif // x86

#endif // BT_COMMON_SIMD_X86_HPP
