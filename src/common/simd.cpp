#include "common/simd.hpp"

#include <cstdlib>
#include <string>

#include "common/logging.hpp"

namespace bt::simd {

const char*
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Sse2:
        return "sse2";
    case Isa::Avx2:
        return "avx2";
    case Isa::Neon:
        return "neon";
    }
    return "scalar";
}

bool
cpuSupports(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return true;
    case Isa::Sse2:
#if defined(__x86_64__) || defined(__i386__)
        return true; // x86-64 baseline
#else
        return false;
#endif
    case Isa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Isa::Neon:
#if defined(__aarch64__)
        return true; // aarch64 baseline
#else
        return false;
#endif
    }
    return false;
}

Isa
bestCpuIsa()
{
    if (cpuSupports(Isa::Avx2))
        return Isa::Avx2;
    if (cpuSupports(Isa::Sse2))
        return Isa::Sse2;
    if (cpuSupports(Isa::Neon))
        return Isa::Neon;
    return Isa::Scalar;
}

SimdRequest
simdRequestFromEnv()
{
    const char* env = std::getenv("BT_SIMD");
    if (env == nullptr || *env == '\0')
        return {};
    const std::string v(env);
    if (v == "native" || v == "auto")
        return {};
    for (Isa isa : {Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Neon}) {
        if (v == isaName(isa))
            return {isa, true};
    }
    fatal("BT_SIMD=", v,
          " is not a SIMD tier (expected scalar|sse2|avx2|neon|native)");
    return {};
}

} // namespace bt::simd
