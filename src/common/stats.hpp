/**
 * @file
 * Small statistics toolbox used by the profiler and the benchmark
 * harness: summary statistics, geometric means, and Pearson correlation
 * (the accuracy metric of the paper's Fig. 6).
 */

#ifndef BT_COMMON_STATS_HPP
#define BT_COMMON_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace bt {

/** Summary statistics of one sample vector. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; ///< Sample standard deviation (n-1 denominator).
    double min = 0.0;
    double max = 0.0;
};

/** Compute summary statistics. Empty input yields an all-zero Summary. */
Summary summarize(std::span<const double> xs);

/** Arithmetic mean; zero for empty input. */
double mean(std::span<const double> xs);

/**
 * Geometric mean (computed in log space for stability). All inputs must be
 * positive; returns zero for empty input.
 */
double geomean(std::span<const double> xs);

/**
 * Pearson correlation coefficient between two equally sized samples.
 * Returns zero when either sample has no variance or fewer than two points,
 * matching how a flat predictor should score in the accuracy heatmaps.
 */
double pearson(std::span<const double> xs, std::span<const double> ys);

/**
 * Rank vector (average ranks for ties), the building block for Spearman
 * correlation used in the autotuning analysis.
 */
std::vector<double> ranks(std::span<const double> xs);

/** Spearman rank correlation: Pearson over the rank vectors. */
double spearman(std::span<const double> xs, std::span<const double> ys);

/**
 * The @p p-th percentile (p in [0, 100]) with linear interpolation
 * between order statistics, as serving-latency reports conventionally
 * compute p50/p99. Zero for empty input; @p xs need not be sorted.
 */
double percentile(std::span<const double> xs, double p);

} // namespace bt

#endif // BT_COMMON_STATS_HPP
