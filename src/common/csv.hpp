/**
 * @file
 * Minimal CSV writer so every benchmark can dump machine-readable results
 * next to its human-readable table.
 */

#ifndef BT_COMMON_CSV_HPP
#define BT_COMMON_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace bt {

/**
 * Writes rows to a CSV file with RFC-4180 quoting. The file is created on
 * construction and flushed on destruction.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing and emit the header row. */
    CsvWriter(const std::string& path, std::vector<std::string> headers);

    /** Append one data row (widths are validated against the header). */
    void addRow(const std::vector<std::string>& cells);

    /** Whether the output file opened successfully. */
    bool ok() const { return static_cast<bool>(out); }

  private:
    void emit(const std::vector<std::string>& cells);

    std::ofstream out;
    std::size_t columns;
};

} // namespace bt

#endif // BT_COMMON_CSV_HPP
