/**
 * @file
 * Status-message and error-termination helpers.
 *
 * Follows the gem5 convention: panic() flags internal framework bugs and
 * aborts; fatal() flags user errors (bad configuration, invalid arguments)
 * and exits cleanly; warn()/inform() report conditions without stopping.
 */

#ifndef BT_COMMON_LOGGING_HPP
#define BT_COMMON_LOGGING_HPP

#include <cstdlib>
#include <sstream>
#include <string>

namespace bt {

namespace detail {

/** Print a tagged message to stderr. */
void logMessage(const char* tag, const std::string& msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Terminate because of an internal framework bug. Never use for conditions
 * a user could trigger with bad input; use fatal() for those.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::logMessage("panic", detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/**
 * Terminate because the caller supplied an unusable configuration or
 * argument. Exits with status 1 rather than aborting.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::logMessage("fatal", detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operational status. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logMessage("info", detail::concat(std::forward<Args>(args)...));
}

/**
 * Panic with a stable, machine-matchable error kind. The message reads
 *
 *     panic: [<kind>] <message> at <file>:<line>
 *
 * Death tests and lint fixtures match on the bracketed kind instead of
 * the full text, so messages can be reworded without breaking them.
 * Kinds are dotted lowercase paths ("schedule.coverage", "flags.duplicate").
 */
#define BT_PANIC(kind, ...)                                                \
    ::bt::panic("[", (kind), "] ",                                         \
                ::bt::detail::concat(__VA_ARGS__), " at ", __FILE__, ":",  \
                __LINE__)

/** BT_PANIC's sibling for user errors (exit 1 instead of abort). */
#define BT_FATAL(kind, ...)                                                \
    ::bt::fatal("[", (kind), "] ",                                         \
                ::bt::detail::concat(__VA_ARGS__), " at ", __FILE__, ":",  \
                __LINE__)

/**
 * Internal invariant check that is active in all build types (unlike
 * assert). On failure it panics with the stringified condition under
 * the stable "[assert]" kind.
 */
#define BT_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::bt::panic("[assert] assertion failed: ", #cond, " at ",      \
                        __FILE__, ":", __LINE__, " ", ##__VA_ARGS__);      \
        }                                                                  \
    } while (0)

} // namespace bt

#endif // BT_COMMON_LOGGING_HPP
