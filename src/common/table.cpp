#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace bt {

Table::Table(std::vector<std::string> headers) : header(std::move(headers))
{
    BT_ASSERT(!header.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    BT_ASSERT(cells.size() == header.size(),
              "row width ", cells.size(), " != header width ",
              header.size());
    body.push_back(std::move(cells));
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto& row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : body)
        emit(row);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace bt
