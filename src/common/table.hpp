/**
 * @file
 * Fixed-width console table printer used by the benchmark harness to
 * emit paper-style tables (Table 3, Table 4, the Fig. 6 heatmaps, ...).
 */

#ifndef BT_COMMON_TABLE_HPP
#define BT_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace bt {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 * The first row added is treated as the header and is underlined.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows (excluding the header). */
    std::size_t rows() const { return body.size(); }

    /** Render with two-space gutters and a dashed underline. */
    void print(std::ostream& os) const;

    /** Format a double with the given precision (defaults to 2 digits). */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace bt

#endif // BT_COMMON_TABLE_HPP
