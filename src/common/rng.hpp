/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic component of the framework (synthetic inputs, weight
 * initialization, measurement noise) draws from a seeded Rng so that any
 * experiment reproduces byte-identical output. The generator is SplitMix64,
 * which is tiny, fast, and passes BigCrush when used as a 64-bit stream.
 */

#ifndef BT_COMMON_RNG_HPP
#define BT_COMMON_RNG_HPP

#include <cstdint>

namespace bt {

/**
 * Mix a 64-bit value through the SplitMix64 finalizer. Useful on its own
 * for deriving independent noise streams from composite keys.
 */
std::uint64_t splitmix64(std::uint64_t x);

/** Combine two values into one well-mixed 64-bit key. */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/**
 * Seeded pseudo-random generator with the distributions the framework
 * needs: uniform integers/reals, Gaussians, and log-normal noise factors.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(splitmix64(seed ^ kGolden)) {}

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform in [0, bound). bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform real in [0, 1). */
    double nextDouble();

    /** Uniform real in [lo, hi). */
    double nextRange(double lo, double hi);

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double nextGaussian();

    /**
     * Multiplicative noise factor exp(N(0, sigma)); mean is slightly above
     * one, which matches how timing jitter behaves (mostly small, one-sided
     * tail of slow outliers).
     */
    double nextLogNormalFactor(double sigma);

  private:
    static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
    std::uint64_t state;
};

} // namespace bt

#endif // BT_COMMON_RNG_HPP
