/**
 * @file
 * Minimal declarative command-line flag parsing shared by the
 * example/tool front ends (bt_explorer and friends).
 *
 * Register each flag once with its target variable and help text; the
 * parser derives the usage screen from the registrations, so flags,
 * defaults, and documentation cannot drift apart. Only long options are
 * supported (`--flag` switches and `--flag VALUE` pairs), which is all
 * the tools in this repo use. `--help` is built in.
 */

#ifndef BT_COMMON_FLAGS_HPP
#define BT_COMMON_FLAGS_HPP

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace bt {

/** One registry of long options for a command-line tool. */
class FlagSet
{
  public:
    explicit FlagSet(std::string program) : program_(std::move(program))
    {
    }

    /** A boolean switch: present sets @p target to true. */
    void
    flag(std::string name, bool* target, std::string help)
    {
        add({std::move(name), "", std::move(help),
             [target](const std::string&) {
                 *target = true;
                 return true;
             }});
    }

    /** A string-valued option (`--name VALUE`). */
    void
    value(std::string name, std::string* target, std::string metavar,
          std::string help)
    {
        add({std::move(name), std::move(metavar), std::move(help),
             [target](const std::string& v) {
                 *target = v;
                 return true;
             }});
    }

    /** An integer-valued option. */
    void
    value(std::string name, int* target, std::string metavar,
          std::string help)
    {
        add({std::move(name), std::move(metavar), std::move(help),
             [target](const std::string& v) {
                 char* end = nullptr;
                 const long parsed = std::strtol(v.c_str(), &end, 10);
                 if (end == v.c_str() || *end != '\0')
                     return false;
                 *target = static_cast<int>(parsed);
                 return true;
             }});
    }

    /** A double-valued option. */
    void
    value(std::string name, double* target, std::string metavar,
          std::string help)
    {
        add({std::move(name), std::move(metavar), std::move(help),
             [target](const std::string& v) {
                 char* end = nullptr;
                 const double parsed = std::strtod(v.c_str(), &end);
                 if (end == v.c_str() || *end != '\0')
                     return false;
                 *target = parsed;
                 return true;
             }});
    }

    /**
     * Parse @p argv against the registered flags.
     * @return true when every argument was consumed; false (after
     * printing a diagnostic and the usage screen) on an unknown flag, a
     * missing value, a malformed number, or `--help`.
     */
    bool
    parse(int argc, char** argv) const
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage();
                return false;
            }
            const Flag* flag = find(arg);
            if (flag == nullptr) {
                std::fprintf(stderr, "unknown option: %s\n",
                             arg.c_str());
                usage();
                return false;
            }
            std::string value;
            if (!flag->metavar.empty()) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s expects a %s\n",
                                 arg.c_str(), flag->metavar.c_str());
                    usage();
                    return false;
                }
                value = argv[++i];
            }
            if (!flag->apply(value)) {
                std::fprintf(stderr, "bad value for %s: %s\n",
                             arg.c_str(), value.c_str());
                usage();
                return false;
            }
        }
        return true;
    }

    /** Print the usage screen derived from the registrations. */
    void
    usage() const
    {
        std::printf("usage: %s [options]\n", program_.c_str());
        std::size_t width = 0;
        for (const auto& f : flags_)
            width = std::max(width, headline(f).size());
        for (const auto& f : flags_)
            std::printf("  %-*s  %s\n", static_cast<int>(width),
                        headline(f).c_str(), f.help.c_str());
    }

  private:
    struct Flag
    {
        std::string name;    ///< including the leading "--"
        std::string metavar; ///< empty for boolean switches
        std::string help;
        std::function<bool(const std::string&)> apply;
    };

    const Flag*
    find(const std::string& name) const
    {
        for (const auto& f : flags_)
            if (f.name == name)
                return &f;
        return nullptr;
    }

    /** Every registration funnels through here; duplicate names are a
     *  programming error (the usage screen would lie about one). */
    void
    add(Flag f)
    {
        if (find(f.name) != nullptr)
            BT_PANIC("flags.duplicate", "duplicate flag registration: ",
                     f.name);
        flags_.push_back(std::move(f));
    }

    static std::string
    headline(const Flag& f)
    {
        return f.metavar.empty() ? f.name : f.name + " " + f.metavar;
    }

    std::string program_;
    std::vector<Flag> flags_;
};

} // namespace bt

#endif // BT_COMMON_FLAGS_HPP
