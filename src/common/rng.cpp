#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace bt {

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitmix64(a ^ (splitmix64(b) + 0x9e3779b97f4a7c15ull));
}

std::uint64_t
Rng::nextU64()
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    BT_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return v % bound;
}

double
Rng::nextDouble()
{
    // 53 significant bits -> uniform double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::nextRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    // Box-Muller; draw u1 away from zero to keep the log finite.
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1))
        * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double
Rng::nextLogNormalFactor(double sigma)
{
    return std::exp(sigma * nextGaussian());
}

} // namespace bt
