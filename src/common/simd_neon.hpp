/**
 * @file
 * NEON implementation of the Vec interface (see simd.hpp for the
 * lane-wise semantic contract). Guarded on __ARM_NEON; aarch64 makes
 * it the baseline, so the NEON tier TU needs no extra flags.
 *
 * mulAdd deliberately uses vmulq+vaddq (two roundings) instead of
 * vfmaq (fused) to keep the scalar bit-identity contract.
 */

#ifndef BT_COMMON_SIMD_NEON_HPP
#define BT_COMMON_SIMD_NEON_HPP

#if defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "common/simd.hpp"

namespace bt::simd {

struct VecNeon
{
    static constexpr int width = 4;
    // Partials bounce through a stack buffer; tails should go scalar.
    static constexpr bool fastPartial = false;
    float32x4_t v;

    static VecNeon
    zero()
    {
        return {vdupq_n_f32(0.0f)};
    }

    static VecNeon
    broadcast(float x)
    {
        return {vdupq_n_f32(x)};
    }

    static VecNeon
    load(const float* p)
    {
        return {vld1q_f32(assumeAligned<16>(p))};
    }

    static VecNeon
    loadu(const float* p)
    {
        return {vld1q_f32(p)};
    }

    static VecNeon
    loadPartial(const float* p, int n)
    {
        alignas(16) float tmp[4] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return {vld1q_f32(tmp)};
    }

    static VecNeon
    gatherStride(const float* p, std::int64_t stride)
    {
        alignas(16) const float tmp[4]
            = {p[0], p[stride], p[2 * stride], p[3 * stride]};
        return {vld1q_f32(tmp)};
    }

    void
    store(float* p) const
    {
        vst1q_f32(assumeAligned<16>(p), v);
    }

    void
    storeu(float* p) const
    {
        vst1q_f32(p, v);
    }

    void
    storePartial(float* p, int n) const
    {
        alignas(16) float tmp[4];
        vst1q_f32(tmp, v);
        for (int i = 0; i < n; ++i)
            p[i] = tmp[i];
    }

    static VecNeon
    add(VecNeon a, VecNeon b)
    {
        return {vaddq_f32(a.v, b.v)};
    }

    static VecNeon
    mul(VecNeon a, VecNeon b)
    {
        return {vmulq_f32(a.v, b.v)};
    }

    static VecNeon
    mulAdd(VecNeon a, VecNeon b, VecNeon acc)
    {
        return {vaddq_f32(vmulq_f32(a.v, b.v), acc.v)};
    }

    static VecNeon
    max(VecNeon a, VecNeon b)
    {
        // (a < b) ? b : a; vcltq is false on NaN, selecting a.
        return {vbslq_f32(vcltq_f32(a.v, b.v), b.v, a.v)};
    }

    static void
    deinterleave2(const float* p, VecNeon& even, VecNeon& odd)
    {
        const float32x4x2_t both = vld2q_f32(p);
        even.v = both.val[0];
        odd.v = both.val[1];
    }
};

} // namespace bt::simd

#endif // __ARM_NEON

#endif // BT_COMMON_SIMD_NEON_HPP
