#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace bt {

Summary
summarize(std::span<const double> xs)
{
    Summary s;
    s.count = xs.size();
    if (xs.empty())
        return s;

    s.min = xs[0];
    s.max = xs[0];
    double sum = 0.0;
    for (double x : xs) {
        sum += x;
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
    }
    s.mean = sum / static_cast<double>(xs.size());

    if (xs.size() > 1) {
        double ss = 0.0;
        for (double x : xs) {
            const double d = x - s.mean;
            ss += d * d;
        }
        s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
    }
    return s;
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0)
        / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        BT_ASSERT(x > 0.0, "geomean requires positive inputs");
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    BT_ASSERT(xs.size() == ys.size(), "pearson needs equal sized samples");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;

    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
ranks(std::span<const double> xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

    std::vector<double> r(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        // Extend over the run of ties and assign the average rank.
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        const double avg = 0.5 * (static_cast<double>(i)
                                  + static_cast<double>(j)) + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            r[order[k]] = avg;
        i = j + 1;
    }
    return r;
}

double
spearman(std::span<const double> xs, std::span<const double> ys)
{
    const auto rx = ranks(xs);
    const auto ry = ranks(ys);
    return pearson(rx, ry);
}

double
percentile(std::span<const double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    BT_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos
        = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

} // namespace bt
