/**
 * @file
 * Structured trace timeline for pipeline executions (paper Sec. 3.4's
 * BT-Implementer, made observable).
 *
 * Every backend of the unified runtime records one TraceEvent per stage
 * execution: which task, stage, chunk and PU ran, how long the token
 * waited in front of the dispatcher, when the stage started and ended
 * in the backend's own time domain (virtual seconds for the DES, wall
 * seconds for the host), and which other PUs were busy at the moment it
 * started (the instantaneous co-runner set the interference model - and
 * D-Shim-style contention analyses - care about).
 *
 * The timeline exports to the Chrome chrome://tracing JSON format and
 * derives occupancy / pipeline-bubble / interference statistics plus a
 * PU x PU co-residency matrix.
 */

#ifndef BT_RUNTIME_TRACE_HPP
#define BT_RUNTIME_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bt::runtime {

/**
 * What a TraceEvent records: a stage execution (the default, and the
 * only kind fault-free runs emit) or one of the fault-injection /
 * recovery incidents of the fault-tolerant runtime.
 */
enum class TraceEventKind
{
    Stage,     ///< one stage execution on one PU
    Transient, ///< injected transient failure of an attempt
    Timeout,   ///< attempt exceeded its timeout budget and was aborted
    Straggler, ///< attempt inflated by a straggler factor (completed)
    Retry,     ///< failed attempt re-dispatched after backoff
    Remap,     ///< chunk failed over to the profiled next-best PU
    Dropout,   ///< PU removed from service at a timestamp
    Replan,    ///< remaining schedule re-optimized on surviving PUs
    Abandon,   ///< retries exhausted; task marked unrecovered
};

/** Stable lowercase name of a TraceEventKind ("stage", "retry", ...). */
const char* traceEventKindName(TraceEventKind kind);

struct TraceEvent;

/** Convenience constructor for a typed recovery incident. */
TraceEvent makeFaultEvent(TraceEventKind kind, std::int64_t task,
                          int stage, int chunk, int pu, double t0,
                          double t1, std::string note = {});

/** One stage execution on one PU. */
struct TraceEvent
{
    std::int64_t task = -1; ///< streaming input index
    int stage = -1;         ///< stage index within the application
    int chunk = -1;         ///< dispatcher index (= PU for greedy runs)
    int pu = -1;            ///< PU class that executed the stage

    /** Ready/enqueue to start: time the token waited for this chunk. */
    double queueWaitSeconds = 0.0;
    double startSeconds = 0.0;
    double endSeconds = 0.0;

    /** Other PUs busy when this execution started. */
    std::vector<int> coRunners;

    /** Stage for ordinary executions; a recovery incident otherwise.
     *  (Appended after the original fields so existing aggregate
     *  initializers keep meaning what they meant.) */
    TraceEventKind kind = TraceEventKind::Stage;

    /** Free-form detail for recovery incidents ("pu 2 -> 0", ...). */
    std::string note;

    /**
     * Concurrent-serving session that produced this event, or -1 for
     * single-pipeline runs. Stamped at record time from the timeline's
     * session id, preserved across TraceTimeline::merge so events from
     * co-scheduled sessions stay distinguishable.
     */
    int session = -1;

    /**
     * Index into the merged timeline's per-merge stage-name tables, or
     * -1 for events whose names resolve through the timeline's own
     * stage names. Maintained by TraceTimeline::merge; callers never
     * set it.
     */
    int nameTable = -1;

    double durationSeconds() const { return endSeconds - startSeconds; }
    bool isStage() const { return kind == TraceEventKind::Stage; }
};

/** Per-PU aggregate over a timeline. */
struct PuTraceStats
{
    double busySeconds = 0.0;
    double occupancy = 0.0; ///< busySeconds / makespan
    int events = 0;
};

/** Derived whole-timeline statistics. */
struct TraceStats
{
    double makespanSeconds = 0.0; ///< latest event end
    double busySeconds = 0.0;     ///< total stage-execution time
    int events = 0;               ///< stage executions only

    /** Non-Stage events (faults, retries, remaps, ...). */
    int recoveryEvents = 0;

    /** Idle time on PUs that executed at least one stage. */
    double bubbleSeconds = 0.0;
    /** bubbleSeconds / (used PUs * makespan); 0 = perfectly packed. */
    double bubbleFraction = 0.0;

    /** Fraction of busy time that started with >= 1 co-runner. */
    double interferedFraction = 0.0;

    double meanQueueWaitSeconds = 0.0;

    std::vector<PuTraceStats> perPu;

    /**
     * Seconds PU a and PU b were simultaneously busy, row-major
     * (numPus * numPus); the diagonal holds each PU's busy time.
     */
    std::vector<double> coResidencySeconds;

    double coResidency(int a, int b) const;
};

/** Ordered record of every stage execution in one pipeline run. */
class TraceTimeline
{
  public:
    TraceTimeline() = default;
    TraceTimeline(std::string backend, int num_pus,
                  std::vector<std::string> pu_names,
                  std::vector<std::string> stage_names);

    /** Backend that produced the timeline ("virtual" or "host"). */
    const std::string& backend() const { return backend_; }

    /**
     * Tag this timeline as belonging to serving session @p id (>= 0).
     * Subsequently recorded events are stamped with the id, and the
     * Chrome export prefixes event names with "s<id>:" so merged
     * multi-session traces stay readable. -1 (the default) leaves the
     * single-pipeline export format unchanged.
     */
    void setSessionId(int id) { sessionId_ = id; }
    int sessionId() const { return sessionId_; }

    /**
     * Fold another session's timeline into this one: every event of
     * @p other is appended, shifted by @p time_offset seconds (so
     * callers can place independently-clocked sessions on one shared
     * service clock) and stamped with other.sessionId() if not already
     * session-tagged. other's stage-name tables travel with its events
     * (one table per merged run), so merged events keep resolving to
     * the right names even when one session's requests span several
     * applications. Both timelines must describe the same SoC (same PU
     * count); an empty default-constructed target adopts other's PU
     * geometry. Call sortByStart() after the last merge.
     */
    void merge(const TraceTimeline& other, double time_offset = 0.0);

    int numPus() const { return numPus_; }
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<TraceEvent>& events() const { return events_; }

    /** Append one stage execution (callers serialize access). */
    void record(TraceEvent event);

    /** Order events by start time (host backends record concurrently). */
    void sortByStart();

    /** Derive occupancy / bubble / interference statistics. */
    TraceStats stats() const;

    /**
     * Write the timeline as a Chrome trace-event JSON object
     * (chrome://tracing / Perfetto "JSON Array Format" with metadata).
     * Times are exported in microseconds, one row per PU.
     */
    void writeChromeJson(std::ostream& os) const;

    /** writeChromeJson into a string. */
    std::string chromeJson() const;

  private:
    /** Display name of @p e's stage, session-aware after merges. */
    std::string stageNameOf(const TraceEvent& e) const;

    std::string backend_ = "none";
    int numPus_ = 0;
    int sessionId_ = -1;
    std::vector<std::string> puNames_;
    std::vector<std::string> stageNames_;

    /** Stage-name tables of merged runs, indexed by event.nameTable. */
    std::vector<std::vector<std::string>> mergedStageNames_;

    std::vector<TraceEvent> events_;
};

} // namespace bt::runtime

#endif // BT_RUNTIME_TRACE_HPP
