#include "runtime/recovery.hpp"

#include <limits>
#include <vector>

#include "common/logging.hpp"
#include "core/optimizer.hpp"

namespace bt::runtime {

int
nextBestPu(const platform::PerfModel& model,
           const core::Application& app, int first_stage,
           int last_stage, const std::vector<bool>& alive, int exclude)
{
    const int num_pus = model.soc().numPus();
    BT_ASSERT(alive.size() == static_cast<std::size_t>(num_pus));
    int best = -1;
    double best_time = std::numeric_limits<double>::infinity();
    for (int p = 0; p < num_pus; ++p) {
        if (p == exclude || !alive[static_cast<std::size_t>(p)])
            continue;
        double t = 0.0;
        for (int s = first_stage; s <= last_stage; ++s)
            t += model.interferenceHeavyTime(app.stage(s).work(), p);
        if (t < best_time) {
            best_time = t;
            best = p;
        }
    }
    return best;
}

core::ProfilingTable
modelTable(const platform::PerfModel& model,
           const core::Application& app)
{
    std::vector<std::string> stage_names;
    for (const auto& s : app.stages())
        stage_names.push_back(s.name());
    std::vector<std::string> pu_labels;
    for (const auto& p : model.soc().pus)
        pu_labels.push_back(p.label);

    core::ProfilingTable table(std::move(stage_names),
                               std::move(pu_labels));
    for (int s = 0; s < app.numStages(); ++s)
        for (int p = 0; p < model.soc().numPus(); ++p)
            table.set(s, p,
                      model.interferenceHeavyTime(app.stage(s).work(),
                                                  p));
    return table;
}

namespace {

/** The planner spec every degradation replan uses. */
core::PlannerSpec
replanConfig(const platform::SocDescription& soc,
             const std::vector<bool>& alive)
{
    BT_ASSERT(alive.size() == static_cast<std::size_t>(soc.numPus()));
    core::PlannerSpec cfg;
    cfg.numCandidates = 1;
    cfg.engine = core::PlannerEngine::Exhaustive;
    for (int p = 0; p < soc.numPus(); ++p)
        if (alive[static_cast<std::size_t>(p)])
            cfg.allowedPus.push_back(p);
    BT_ASSERT(!cfg.allowedPus.empty(),
              "cannot re-plan: every PU has dropped out");
    return cfg;
}

core::Schedule
bestOnSurvivors(core::Optimizer& optimizer)
{
    const auto candidates = optimizer.optimize();
    BT_ASSERT(!candidates.empty(),
              "optimizer found no schedule on surviving PUs");
    return candidates.front().schedule;
}

} // namespace

core::Schedule
replanOnSurvivors(const platform::PerfModel& model,
                  const core::Application& app,
                  const std::vector<bool>& alive)
{
    const auto& soc = model.soc();
    const auto table = modelTable(model, app);
    core::Optimizer optimizer(soc, table, replanConfig(soc, alive));
    return bestOnSurvivors(optimizer);
}

core::Schedule
ReplanPlanner::replan(const std::vector<bool>& alive)
{
    const auto& soc = model_.soc();
    if (!table_.has_value()) {
        table_.emplace(modelTable(model_, app_));
        // The power model only reads the SoC description, so the run's
        // own PerfModel serves; predictions are identical to the ones
        // a throwaway Optimizer would compute.
        eval_ = std::make_unique<core::ScheduleEvaluator>(soc, *table_,
                                                          model_);
    }
    core::PlannerSpec spec = replanConfig(soc, alive);
    spec.sharedEvaluator = eval_.get();
    core::Optimizer optimizer(soc, *table_, std::move(spec));
    return bestOnSurvivors(optimizer);
}

} // namespace bt::runtime
