/**
 * @file
 * HostTimeBackend: the wall-clock time domain of the unified runtime.
 *
 * Executes a pipeline schedule with real host threads, exactly as paper
 * Sec. 3.4 describes - one long-lived dispatcher thread per chunk,
 * lock-free SPSC queues passing tokens, the session's recycled
 * multi-buffer pool, per-chunk thread teams bound with
 * sched_setaffinity, and wall-clock measurement.
 *
 * On the simulated paper devices the VirtualTimeBackend provides
 * timing; this backend provides a real concurrent implementation for
 * functional validation and for running pipelines on the local host
 * (the platform::nativeHost() description).
 */

#ifndef BT_RUNTIME_HOST_BACKEND_HPP
#define BT_RUNTIME_HOST_BACKEND_HPP

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "platform/soc.hpp"
#include "runtime/run_types.hpp"

namespace bt::runtime {

/** Wall-clock execution of static pipeline schedules. */
class HostTimeBackend
{
  public:
    explicit HostTimeBackend(const platform::SocDescription& soc);

    const platform::SocDescription& soc() const { return soc_; }

    /** Execute @p app under @p schedule with real dispatcher threads.
     *  Kernels always run functionally (ignores cfg.runKernels). */
    RunResult run(const core::Application& app,
                  const core::Schedule& schedule,
                  const RunConfig& cfg) const;

  private:
    const platform::SocDescription& soc_;
};

} // namespace bt::runtime

#endif // BT_RUNTIME_HOST_BACKEND_HPP
