/**
 * @file
 * Greedy dynamic-dispatch policy on the virtual time backend.
 *
 * The contrast case to static pipelining (paper Sec. 6): every
 * (task, stage) is dispatched at runtime to the PU with the best
 * predicted completion time, StarPU-style, paying a per-dispatch
 * overhead. Runs on the same DES substrate, interference model, noise
 * derivation, and energy meter as the static-pipeline policy, and
 * reports the same RunResult with the same structured TraceTimeline -
 * so static-vs-dynamic comparisons are apples to apples.
 */

#ifndef BT_RUNTIME_GREEDY_RUNTIME_HPP
#define BT_RUNTIME_GREEDY_RUNTIME_HPP

#include "core/application.hpp"
#include "core/profiling_table.hpp"
#include "platform/perf_model.hpp"
#include "runtime/run_types.hpp"

namespace bt::runtime {

/** Knobs specific to the greedy policy. */
struct GreedyParams
{
    int tasksInFlight = 0; ///< 0 = one per PU class plus one

    /** Runtime cost charged per dispatch decision (queue locks, cost
     *  model lookup, kernel argument marshalling). */
    double dispatchOverheadUs = 50.0;
};

/**
 * Greedy earliest-finish dynamic scheduling in virtual time. Uses
 * @p table (normally the interference-aware profiling table) as its
 * cost model when ranking PUs for a ready stage.
 */
class GreedyRuntime
{
  public:
    GreedyRuntime(const platform::PerfModel& model,
                  const core::ProfilingTable& table);

    /** Execute @p app dynamically and measure it. */
    RunResult run(const core::Application& app, const RunConfig& cfg,
                  const GreedyParams& params) const;

  private:
    const platform::PerfModel& model_;
    const core::ProfilingTable& table_;
};

} // namespace bt::runtime

#endif // BT_RUNTIME_GREEDY_RUNTIME_HPP
