/**
 * @file
 * The unified runtime's configuration and result types.
 *
 * Every BT-Implementer execution - virtual-time (DES), host threads, or
 * the greedy dynamic baseline - is configured by one RunConfig and
 * reports one RunResult, so results from different backends are
 * directly comparable (the isolated-vs-pipelined comparisons of the
 * paper's Fig. 5/6 hinge on exactly this). RunResult merges what used
 * to be two divergent structs (ExecutionResult / NativeResult) and
 * always carries the structured TraceTimeline of what actually ran.
 */

#ifndef BT_RUNTIME_RUN_TYPES_HPP
#define BT_RUNTIME_RUN_TYPES_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/fault_plan.hpp"
#include "runtime/trace.hpp"

namespace bt::runtime {

/** Execution knobs common to every pipeline backend. */
struct RunConfig
{
    /** Streaming inputs to process (the paper measures runs of 30). */
    int numTasks = 30;

    /** TaskObjects in flight; 0 = one per chunk plus one. */
    int numBuffers = 0;

    /** Virtual backends: also run kernels functionally. (The host
     *  backend always executes kernels - it has no other notion of
     *  running a stage.) */
    bool runKernels = false;

    /** Validate outputs per task when kernels run. */
    bool validate = true;

    /** Extra seed folded into measurement noise (0 = device seed). */
    std::uint64_t noiseSalt = 0;

    /** Warmup tasks excluded from the steady-state interval metric. */
    int warmupTasks = 3;

    /** Host backend: bounded SPSC queue capacity (raised to the buffer
     *  count when smaller, so the free pool always fits). */
    int queueCapacity = 4;

    /** Record the TraceTimeline of the run. */
    bool recordTrace = true;

    /**
     * Serving-session id stamped on the recorded TraceTimeline and
     * every one of its events, so a multi-tenant front end (bt::Service)
     * can merge concurrent sessions' traces while keeping them
     * distinguishable. -1 = untagged single-pipeline run (the export
     * format is unchanged).
     */
    int sessionId = -1;

    /**
     * DRAM bandwidth demand (GB/s) of co-runners outside this pipeline
     * - other tenants sharing the SoC. The virtual backends fold it
     * into every stage time exactly like the planner's ambient bucket;
     * the host backend sleeps out the model's predicted stretch. 0 is
     * bit-identical to a single-tenant run.
     */
    double ambientBandwidthGbps = 0.0;

    /** Faults to inject (empty = none; the fault-free fast path is
     *  bit-identical to a build without the fault layer). */
    FaultPlan faults;

    /** How the dispatchers react to injected faults. */
    RecoveryPolicy recovery;

    /**
     * The paper's "one TaskObject per chunk plus one" multi-buffering
     * default: @p requested buffers, or slots + 1 when requested <= 0.
     */
    static int resolveBuffers(int requested, int slots);

    /** resolveBuffers applied to this config's numBuffers. */
    int resolveBuffers(int num_chunks) const;
};

/** Measured outcome of one pipeline execution, any backend. */
struct RunResult
{
    int tasks = 0;
    double makespanSeconds = 0.0;     ///< first start to last finish
    double taskIntervalSeconds = 0.0; ///< steady-state per-task interval
    double meanLatencySeconds = 0.0;  ///< mean end-to-end task latency
    double energyJoules = 0.0;        ///< integrated SoC energy (virtual)
    std::vector<double> chunkBusyFraction; ///< utilization per dispatcher
    std::vector<std::string> validationErrors;
    bool affinityApplied = true; ///< all chunk teams pinned successfully

    /** What actually ran when (empty if recording was disabled). */
    TraceTimeline trace;

    /** Faults survived and the price paid (all zero on clean runs). */
    RecoveryStats recovery;

    /** Average SoC power over the run (watts). */
    double
    averagePowerW() const
    {
        return makespanSeconds > 0.0 ? energyJoules / makespanSeconds
                                     : 0.0;
    }

    /** Energy per streaming input (joules). */
    double
    energyPerTaskJ() const
    {
        return tasks > 0 ? energyJoules / tasks : 0.0;
    }

    /** The paper's headline metric: per-task latency in milliseconds. */
    double latencyMs() const { return taskIntervalSeconds * 1e3; }

    bool valid() const { return validationErrors.empty(); }
};

/**
 * Shared accounting: steady-state interval over the post-warmup
 * completion stream (sorted first when the backend completes tasks out
 * of order), mean end-to-end latency, and per-dispatcher busy
 * fractions. Used identically by every backend.
 */
void finalizeTiming(RunResult& result,
                    std::span<const double> inject_time,
                    std::span<const double> complete_time,
                    int warmup_tasks, bool sort_completions);

/** Fill chunkBusyFraction = busy / makespan per dispatcher. */
void finalizeBusyFractions(RunResult& result,
                           std::span<const double> busy_seconds);

} // namespace bt::runtime

#endif // BT_RUNTIME_RUN_TYPES_HPP
