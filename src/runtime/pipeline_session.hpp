/**
 * @file
 * PipelineSession: the BT-Implementer's dispatcher core, owned once.
 *
 * Paper Sec. 3.4 describes one runtime - a dispatcher per chunk popping
 * TaskObjects from a bounded queue, running its contiguous stages, and
 * handing the token downstream, with a recycled multi-buffer pool
 * closing the loop. This class holds every piece of that machinery that
 * is independent of *how time passes*: chunk geometry, the TaskObject
 * pool, token -> task binding, injection/refresh at the head chunk,
 * completion/validation at the tail chunk, trace recording, and the
 * shared result accounting. Time backends (virtual DES or real host
 * threads) drive it from their own time domain and contribute only the
 * domain-specific parts: how a queue hand-off waits and how long a
 * stage takes.
 *
 * Threading contract: inject() is called only by the head dispatcher,
 * complete() only by the tail dispatcher, runStage() by the owning
 * chunk's dispatcher; recordEvent() may be called from any dispatcher
 * and is internally synchronized.
 */

#ifndef BT_RUNTIME_PIPELINE_SESSION_HPP
#define BT_RUNTIME_PIPELINE_SESSION_HPP

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "platform/soc.hpp"
#include "runtime/run_types.hpp"

namespace bt::runtime {

/** One chunk of the static schedule, as the dispatchers see it. */
struct ChunkSpec
{
    int index = 0;
    int firstStage = 0; ///< inclusive
    int lastStage = 0;  ///< inclusive
    int pu = 0;         ///< PU class executing this chunk
};

/** Shared dispatcher state for one static-schedule pipeline run. */
class PipelineSession
{
  public:
    /**
     * @param functional whether TaskObjects exist and stage kernels
     *        actually run (host backend: always; virtual backend: the
     *        runKernels knob).
     */
    PipelineSession(const core::Application& app,
                    const core::Schedule& schedule,
                    const platform::SocDescription& soc,
                    const RunConfig& cfg, std::string backend_name,
                    bool functional);

    int numChunks() const { return static_cast<int>(chunks_.size()); }
    int numBuffers() const { return numBuffers_; }
    const ChunkSpec&
    chunk(int c) const
    {
        return chunks_[static_cast<std::size_t>(c)];
    }
    const RunConfig& config() const { return cfg_; }
    bool functional() const { return functional_; }

    /** Whether every task has already been injected at the head. */
    bool exhausted() const { return nextTask_ >= cfg_.numTasks; }
    int tasksInjected() const { return static_cast<int>(nextTask_); }

    /**
     * Head-chunk acquisition: bind @p token to the next streaming input,
     * record its injection time, and (functional runs) refresh the
     * recycled TaskObject for the new index. Pre: !exhausted().
     * @return the task index now carried by the token.
     */
    std::int64_t inject(int token, double now);

    /** Task index currently carried by @p token. */
    std::int64_t
    taskOf(int token) const
    {
        return tokenTask_[static_cast<std::size_t>(token)];
    }

    /**
     * Run one stage's kernel on @p token (functional runs only).
     * @p pu_override selects the kernel flavor when recovery has
     * remapped the chunk away from its deployed PU (-1 = deployed).
     */
    void runStage(int chunk_index, int stage, int token,
                  sched::ThreadPool* team, int pu_override = -1) const;

    /**
     * Record an unrecovered stage (retries exhausted, no failover
     * target): counts as a validation error so RunResult::valid() is
     * false. Thread-safe; bounded like kernel validation errors.
     */
    void recordFailure(std::int64_t task, int stage);

    /**
     * Tail-chunk completion: record the completion time of the task
     * carried by @p token and validate its outputs (functional runs,
     * bounded error collection).
     */
    void complete(int token, double now);

    /** Append a stage execution to the timeline (thread-safe). */
    void recordEvent(TraceEvent event);

    /**
     * Assemble the unified RunResult: makespan, steady-state interval,
     * latencies, per-chunk utilization, validation errors, and the
     * recorded timeline.
     */
    RunResult finish(double makespan_seconds,
                     std::span<const double> chunk_busy_seconds,
                     bool affinity_applied);

  private:
    const core::Application& app_;
    const platform::SocDescription& soc_;
    RunConfig cfg_;
    bool functional_;

    std::vector<ChunkSpec> chunks_;
    int numBuffers_;

    /** Recycled multi-buffer pool (empty when not functional). */
    std::vector<std::unique_ptr<core::TaskObject>> pool_;

    std::vector<std::int64_t> tokenTask_;
    std::int64_t nextTask_ = 0;
    std::vector<double> injectTime_;
    std::vector<double> completeTime_;
    std::vector<std::string> validationErrors_;
    std::mutex errorMutex_;

    TraceTimeline trace_;
    std::mutex traceMutex_;
};

/** PU and stage name lists for timeline construction. */
std::vector<std::string> puNames(const platform::SocDescription& soc);
std::vector<std::string> stageNames(const core::Application& app);

} // namespace bt::runtime

#endif // BT_RUNTIME_PIPELINE_SESSION_HPP
