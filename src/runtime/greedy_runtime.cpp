#include "runtime/greedy_runtime.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>

#include "common/logging.hpp"
#include "runtime/pipeline_session.hpp"
#include "runtime/virtual_backend.hpp"
#include "sim/engine.hpp"

namespace bt::runtime {

namespace {

/** What a PU class is doing right now. */
enum class PuState { Idle, Dispatching, Running };

/** A (task, stage) pair waiting for a PU. */
struct ReadyItem
{
    std::int64_t task;
    int stage;
    double readyAt; ///< when it entered the ready set
};

} // namespace

GreedyRuntime::GreedyRuntime(const platform::PerfModel& model,
                             const core::ProfilingTable& table)
    : model_(model), table_(table)
{
}

RunResult
GreedyRuntime::run(const core::Application& app, const RunConfig& cfg,
                   const GreedyParams& params) const
{
    const auto& soc = model_.soc();
    BT_ASSERT(cfg.numTasks > 0);
    BT_ASSERT(params.dispatchOverheadUs >= 0.0);
    BT_ASSERT(table_.numStages() == app.numStages()
                  && table_.numPus() == soc.numPus(),
              "cost table does not match application/device");

    const int num_pus = soc.numPus();
    const int in_flight_cap
        = RunConfig::resolveBuffers(params.tasksInFlight, num_pus);

    RunResult result;
    result.tasks = cfg.numTasks;

    TraceTimeline trace;
    if (cfg.recordTrace) {
        trace = TraceTimeline("greedy", num_pus, puNames(soc),
                              stageNames(app));
        trace.setSessionId(cfg.sessionId);
    }

    std::vector<PuState> pu_state(static_cast<std::size_t>(num_pus),
                                  PuState::Idle);
    std::vector<ReadyItem> pu_item(static_cast<std::size_t>(num_pus));
    std::vector<double> pu_busy(static_cast<std::size_t>(num_pus),
                                0.0);
    std::vector<double> pu_started(static_cast<std::size_t>(num_pus),
                                   0.0);
    std::vector<TraceEvent> pu_pending(
        static_cast<std::size_t>(num_pus));
    std::deque<ReadyItem> ready;
    std::int64_t next_task = 0;
    int in_flight = 0;

    std::vector<double> inject_time(static_cast<std::size_t>(
        cfg.numTasks), 0.0);
    std::vector<double> complete_time(static_cast<std::size_t>(
        cfg.numTasks), 0.0);

    sim::Engine engine([&](std::span<const sim::ActiveTask> active,
                           std::span<double> rates) {
        std::vector<platform::Load> loads(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
            const int pu = static_cast<int>(active[i].tag);
            BT_ASSERT(pu_state[static_cast<std::size_t>(pu)]
                      == PuState::Running);
            loads[i] = platform::Load{
                &app.stage(pu_item[static_cast<std::size_t>(pu)].stage)
                     .work(),
                pu};
        }
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0
                / model_.timeOf(i, loads, {},
                                cfg.ambientBandwidthGbps);
    });

    EnergyMeter meter(model_, [&](std::vector<bool>& active) {
        for (int p = 0; p < num_pus; ++p)
            if (pu_state[static_cast<std::size_t>(p)]
                == PuState::Running)
                active[static_cast<std::size_t>(p)] = true;
    });
    meter.attach(engine);

    auto coRunnersOf = [&](int self) {
        std::vector<int> pus;
        for (int p = 0; p < num_pus; ++p)
            if (p != self
                && pu_state[static_cast<std::size_t>(p)]
                    == PuState::Running)
                pus.push_back(p);
        return pus;
    };

    // HEFT-style earliest-completion dispatch: every ready item is
    // assigned to the PU minimizing (estimated availability + cost),
    // which may mean queueing behind a busy fast PU rather than
    // running immediately on a slow idle one. Each PU drains its own
    // FIFO of assigned items.
    std::vector<std::deque<ReadyItem>> pu_queue(
        static_cast<std::size_t>(num_pus));
    std::vector<double> pu_available(static_cast<std::size_t>(num_pus),
                                     0.0);

    std::function<void(int)> tryStartPu = [&](int p) {
        const auto pi = static_cast<std::size_t>(p);
        if (pu_state[pi] != PuState::Idle || pu_queue[pi].empty())
            return;
        pu_state[pi] = PuState::Dispatching;
        pu_item[pi] = pu_queue[pi].front();
        pu_queue[pi].pop_front();
        pu_started[pi] = engine.now();
        engine.scheduleAt(
            engine.now() + params.dispatchOverheadUs * 1e-6, [&, p] {
                const auto pj = static_cast<std::size_t>(p);
                pu_state[pj] = PuState::Running;
                pu_pending[pj] = TraceEvent{
                    pu_item[pj].task,
                    pu_item[pj].stage,
                    p, // no chunks here: dispatch slot = PU
                    p,
                    engine.now() - pu_item[pj].readyAt,
                    engine.now(),
                    0.0,
                    coRunnersOf(p),
                    TraceEventKind::Stage,
                    {}};
                engine.startTask(
                    static_cast<std::uint64_t>(p),
                    VirtualTimeBackend::noiseFactor(
                        soc, cfg.noiseSalt, 0xd12a, pu_item[pj].task,
                        pu_item[pj].stage));
            });
    };

    std::function<void()> schedule = [&] {
        // Admit new tasks up to the in-flight cap.
        while (in_flight < in_flight_cap && next_task < cfg.numTasks) {
            inject_time[static_cast<std::size_t>(next_task)]
                = engine.now();
            ready.push_back(ReadyItem{next_task, 0, engine.now()});
            ++next_task;
            ++in_flight;
        }
        while (!ready.empty()) {
            const ReadyItem item = ready.front();
            ready.pop_front();
            int best_pu = 0;
            double best_finish
                = std::numeric_limits<double>::infinity();
            for (int p = 0; p < num_pus; ++p) {
                const auto pi = static_cast<std::size_t>(p);
                const double avail
                    = std::max(pu_available[pi], engine.now());
                const double finish
                    = avail + table_.at(item.stage, p)
                    + params.dispatchOverheadUs * 1e-6;
                if (finish < best_finish) {
                    best_finish = finish;
                    best_pu = p;
                }
            }
            const auto pi = static_cast<std::size_t>(best_pu);
            pu_queue[pi].push_back(item);
            pu_available[pi] = best_finish;
            tryStartPu(best_pu);
        }
    };

    engine.onComplete([&](sim::TaskId, std::uint64_t tag) {
        const auto pi = static_cast<std::size_t>(tag);
        const ReadyItem done = pu_item[pi];
        pu_busy[pi] += engine.now() - pu_started[pi];
        pu_state[pi] = PuState::Idle;
        if (cfg.recordTrace) {
            pu_pending[pi].endSeconds = engine.now();
            trace.record(pu_pending[pi]);
        }

        if (done.stage + 1 < app.numStages()) {
            ready.push_back(
                ReadyItem{done.task, done.stage + 1, engine.now()});
        } else {
            complete_time[static_cast<std::size_t>(done.task)]
                = engine.now();
            --in_flight;
        }
        // Estimates drift from reality; re-anchor this PU's clock.
        pu_available[pi] = engine.now();
        schedule();
        tryStartPu(static_cast<int>(pi));
    });

    schedule();
    engine.run();
    BT_ASSERT(next_task == cfg.numTasks && in_flight == 0,
              "dynamic run stalled");

    result.makespanSeconds = engine.now();
    result.energyJoules = meter.joules();
    // Dynamic dispatch may complete tasks out of order; the steady
    // state interval is taken over the sorted completion times.
    finalizeTiming(result, inject_time, complete_time, cfg.warmupTasks,
                   /*sort_completions=*/true);
    finalizeBusyFractions(result, pu_busy);
    if (cfg.recordTrace) {
        trace.sortByStart();
        result.trace = std::move(trace);
    }
    return result;
}

} // namespace bt::runtime
