#include "runtime/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <initializer_list>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace bt::runtime {

namespace {

/** Domain tags keeping the fault streams independent of each other and
 *  of the measurement-noise stream (which uses small domain ids). */
constexpr std::uint64_t kTransientDomain = 0xfa17'0001ull;
constexpr std::uint64_t kStragglerDomain = 0xfa17'0002ull;

double
faultDraw(std::uint64_t seed, std::uint64_t domain, std::int64_t task,
          int stage, int attempt)
{
    const std::uint64_t key = hashCombine(
        hashCombine(hashCombine(seed ^ domain,
                                static_cast<std::uint64_t>(task)),
                    static_cast<std::uint64_t>(stage)),
        static_cast<std::uint64_t>(attempt));
    return Rng(key).nextDouble();
}

/**
 * Minimal recursive-descent JSON reader for fault plans: one top-level
 * object whose members are either numbers or arrays of flat objects
 * with numeric fields. Anything else is a parse error.
 */
class PlanReader
{
  public:
    explicit PlanReader(std::istream& is)
    {
        std::ostringstream buf;
        buf << is.rdbuf();
        text_ = buf.str();
    }

    /** Parse the whole document into section -> list of field maps.
     *  Scalar top-level members land in @p scalars. */
    bool
    parse(std::map<std::string,
                   std::vector<std::map<std::string, double>>>& sections,
          std::map<std::string, double>& scalars)
    {
        pos_ = 0;
        ws();
        if (!expect('{'))
            return false;
        ws();
        if (peek() == '}')
            return ++pos_, tail();
        while (true) {
            std::string key;
            if (!string(key))
                return false;
            ws();
            if (!expect(':'))
                return false;
            ws();
            if (peek() == '[') {
                std::vector<std::map<std::string, double>> rows;
                if (!rowArray(rows))
                    return false;
                sections[key] = std::move(rows);
            } else {
                double v = 0.0;
                if (!number(v))
                    return false;
                scalars[key] = v;
            }
            ws();
            if (peek() == ',') {
                ++pos_;
                ws();
                continue;
            }
            break;
        }
        return expect('}') && tail();
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    ws()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    tail()
    {
        ws();
        return pos_ == text_.size();
    }

    bool
    string(std::string& out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"')
            out += text_[pos_++];
        return expect('"');
    }

    bool
    number(double& out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return false;
        try {
            out = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return false;
        }
        return true;
    }

    bool
    rowArray(std::vector<std::map<std::string, double>>& rows)
    {
        if (!expect('['))
            return false;
        ws();
        if (peek() == ']')
            return ++pos_, true;
        while (true) {
            std::map<std::string, double> row;
            if (!object(row))
                return false;
            rows.push_back(std::move(row));
            ws();
            if (peek() == ',') {
                ++pos_;
                ws();
                continue;
            }
            break;
        }
        return expect(']');
    }

    bool
    object(std::map<std::string, double>& fields)
    {
        ws();
        if (!expect('{'))
            return false;
        ws();
        if (peek() == '}')
            return ++pos_, true;
        while (true) {
            std::string key;
            if (!string(key))
                return false;
            ws();
            if (!expect(':'))
                return false;
            ws();
            double v = 0.0;
            if (!number(v))
                return false;
            fields[key] = v;
            ws();
            if (peek() == ',') {
                ++pos_;
                ws();
                continue;
            }
            break;
        }
        return expect('}');
    }

    std::string text_;
    std::size_t pos_ = 0;
};

double
field(const std::map<std::string, double>& row, const char* name,
      double fallback)
{
    const auto it = row.find(name);
    return it == row.end() ? fallback : it->second;
}

bool
contains(std::initializer_list<const char*> names,
         const std::string& name)
{
    for (const char* n : names)
        if (name == n)
            return true;
    return false;
}

/**
 * Strict row shape check: every field in @p required must be present,
 * and every field present must be in @p required or @p optional.
 */
/** "<section>[<index>].<name>" / "<section>[<index>]" (no name). */
std::string
rowRef(const char* section, std::size_t index, const char* name)
{
    std::string ref(section);
    ref += '[';
    ref += std::to_string(index);
    ref += ']';
    if (name != nullptr) {
        ref += '.';
        ref += name;
    }
    return ref;
}

bool
checkRow(const std::map<std::string, double>& row, const char* section,
         std::size_t index, std::initializer_list<const char*> required,
         std::initializer_list<const char*> optional,
         PlanParseError& err)
{
    for (const char* name : required) {
        if (row.count(name) == 0) {
            err.kind = PlanParseErrorKind::MissingField;
            err.message = rowRef(section, index, nullptr);
            err.message += " is missing required field \"";
            err.message += name;
            err.message += '"';
            return false;
        }
    }
    for (const auto& [name, value] : row) {
        (void)value;
        if (!contains(required, name) && !contains(optional, name)) {
            err.kind = PlanParseErrorKind::UnknownField;
            err.message = rowRef(section, index, nullptr);
            err.message += " has unknown field \"";
            err.message += name;
            err.message += '"';
            return false;
        }
    }
    return true;
}

/** A PU / stage id field must be a whole number >= @p floor - 1.5 or
 *  -3 as a PU id is a plan bug, not a cast. */
bool
checkId(double v, int floor, const char* section, std::size_t index,
        const char* name, PlanParseError& err)
{
    if (v != static_cast<double>(static_cast<int>(v))
        || static_cast<int>(v) < floor) {
        err.kind = PlanParseErrorKind::Range;
        err.message = rowRef(section, index, name);
        err.message += " must be a whole number >= ";
        err.message += std::to_string(floor);
        return false;
    }
    return true;
}

bool
rangeError(const char* section, std::size_t index, const char* name,
           const char* domain, PlanParseError& err)
{
    err.kind = PlanParseErrorKind::Range;
    err.message = rowRef(section, index, name);
    err.message += " must be ";
    err.message += domain;
    return false;
}

} // namespace

std::string_view
planParseErrorKindName(PlanParseErrorKind kind)
{
    switch (kind) {
      case PlanParseErrorKind::Syntax: return "syntax";
      case PlanParseErrorKind::UnknownSection: return "unknown_section";
      case PlanParseErrorKind::UnknownField: return "unknown_field";
      case PlanParseErrorKind::MissingField: return "missing_field";
      case PlanParseErrorKind::Range: return "range";
      case PlanParseErrorKind::Overlap: return "overlap";
    }
    return "?";
}

std::string
PlanParseError::toString() const
{
    std::string text("[");
    text += planParseErrorKindName(kind);
    text += "] ";
    text += message;
    return text;
}

void
FaultPlan::validate(int num_pus) const
{
    for (const auto& w : slowdowns) {
        BT_ASSERT(w.pu >= 0 && w.pu < num_pus,
                  "slowdown window on unknown PU ", w.pu);
        BT_ASSERT(w.endSeconds > w.startSeconds,
                  "slowdown window must have positive length");
        BT_ASSERT(w.clockFactor > 0.0 && w.clockFactor <= 1.0,
                  "clockFactor must be in (0, 1], got ", w.clockFactor);
    }
    for (const auto& t : transients) {
        BT_ASSERT(t.pu < num_pus, "transient rule on unknown PU ", t.pu);
        BT_ASSERT(t.probability >= 0.0 && t.probability <= 1.0,
                  "transient probability out of [0, 1]");
    }
    for (const auto& s : stragglers) {
        BT_ASSERT(s.probability >= 0.0 && s.probability <= 1.0,
                  "straggler probability out of [0, 1]");
        BT_ASSERT(s.factor >= 1.0, "straggler factor must be >= 1");
    }
    for (const auto& d : dropouts) {
        BT_ASSERT(d.pu >= 0 && d.pu < num_pus,
                  "dropout of unknown PU ", d.pu);
        BT_ASSERT(d.atSeconds >= 0.0, "dropout in the past");
    }
}

std::optional<FaultPlan>
FaultPlan::fromJson(std::istream& is, PlanParseError& err)
{
    PlanReader reader(is);
    std::map<std::string, std::vector<std::map<std::string, double>>>
        sections;
    std::map<std::string, double> scalars;
    if (!reader.parse(sections, scalars)) {
        err.kind = PlanParseErrorKind::Syntax;
        err.message = "not the documented fault-plan JSON subset (one "
                      "object of numeric scalars and arrays of flat "
                      "numeric objects)";
        return std::nullopt;
    }
    for (const auto& [name, rows] : sections) {
        (void)rows;
        if (!contains({"slowdowns", "transients", "stragglers",
                       "dropouts"},
                      name)) {
            err.kind = PlanParseErrorKind::UnknownSection;
            err.message = "unknown section \"";
            err.message += name;
            err.message += '"';
            return std::nullopt;
        }
    }
    for (const auto& [name, value] : scalars) {
        (void)value;
        if (name != "faultSeed") {
            err.kind = PlanParseErrorKind::UnknownSection;
            err.message = "unknown scalar member \"";
            err.message += name;
            err.message += '"';
            return std::nullopt;
        }
    }

    FaultPlan plan;
    std::size_t i = 0;
    for (const auto& row : sections["slowdowns"]) {
        if (!checkRow(row, "slowdowns", i, {"pu", "start", "end"},
                      {"clockFactor"}, err))
            return std::nullopt;
        SlowdownWindow w;
        if (!checkId(field(row, "pu", 0), 0, "slowdowns", i, "pu", err))
            return std::nullopt;
        w.pu = static_cast<int>(field(row, "pu", 0));
        w.startSeconds = field(row, "start", 0.0);
        w.endSeconds = field(row, "end", 0.0);
        w.clockFactor = field(row, "clockFactor", 0.5);
        if (w.startSeconds < 0.0 || w.endSeconds <= w.startSeconds) {
            rangeError("slowdowns", i, "start/end",
                       "a non-empty window with start >= 0", err);
            return std::nullopt;
        }
        if (w.clockFactor <= 0.0 || w.clockFactor > 1.0) {
            rangeError("slowdowns", i, "clockFactor", "in (0, 1]",
                       err);
            return std::nullopt;
        }
        plan.slowdowns.push_back(w);
        ++i;
    }
    i = 0;
    for (const auto& row : sections["transients"]) {
        if (!checkRow(row, "transients", i, {"probability"},
                      {"stage", "pu"}, err))
            return std::nullopt;
        TransientFaultRule t;
        if (!checkId(field(row, "stage", -1), -1, "transients", i,
                     "stage", err)
            || !checkId(field(row, "pu", -1), -1, "transients", i,
                        "pu", err))
            return std::nullopt;
        t.stage = static_cast<int>(field(row, "stage", -1));
        t.pu = static_cast<int>(field(row, "pu", -1));
        t.probability = field(row, "probability", 0.0);
        if (t.probability < 0.0 || t.probability > 1.0) {
            rangeError("transients", i, "probability", "in [0, 1]",
                       err);
            return std::nullopt;
        }
        plan.transients.push_back(t);
        ++i;
    }
    i = 0;
    for (const auto& row : sections["stragglers"]) {
        if (!checkRow(row, "stragglers", i, {"probability"},
                      {"stage", "factor"}, err))
            return std::nullopt;
        StragglerRule s;
        if (!checkId(field(row, "stage", -1), -1, "stragglers", i,
                     "stage", err))
            return std::nullopt;
        s.stage = static_cast<int>(field(row, "stage", -1));
        s.probability = field(row, "probability", 0.0);
        s.factor = field(row, "factor", 8.0);
        if (s.probability < 0.0 || s.probability > 1.0) {
            rangeError("stragglers", i, "probability", "in [0, 1]",
                       err);
            return std::nullopt;
        }
        if (s.factor < 1.0) {
            rangeError("stragglers", i, "factor", ">= 1", err);
            return std::nullopt;
        }
        plan.stragglers.push_back(s);
        ++i;
    }
    i = 0;
    for (const auto& row : sections["dropouts"]) {
        if (!checkRow(row, "dropouts", i, {"pu", "at"}, {}, err))
            return std::nullopt;
        PuDropout d;
        if (!checkId(field(row, "pu", 0), 0, "dropouts", i, "pu", err))
            return std::nullopt;
        d.pu = static_cast<int>(field(row, "pu", 0));
        d.atSeconds = field(row, "at", 0.0);
        if (d.atSeconds < 0.0) {
            rangeError("dropouts", i, "at", ">= 0", err);
            return std::nullopt;
        }
        plan.dropouts.push_back(d);
        ++i;
    }

    // Same-PU overlapping windows compound multiplicatively at run
    // time, which is nearly always an authoring mistake - reject at
    // parse time where the plan can still be fixed.
    for (std::size_t a = 0; a < plan.slowdowns.size(); ++a) {
        for (std::size_t b = a + 1; b < plan.slowdowns.size(); ++b) {
            const auto& wa = plan.slowdowns[a];
            const auto& wb = plan.slowdowns[b];
            if (wa.pu == wb.pu && wa.startSeconds < wb.endSeconds
                && wb.startSeconds < wa.endSeconds) {
                err.kind = PlanParseErrorKind::Overlap;
                err.message = rowRef("slowdowns", a, nullptr);
                err.message += " and ";
                err.message += rowRef("slowdowns", b, nullptr);
                err.message += " overlap on pu ";
                err.message += std::to_string(wa.pu);
                return std::nullopt;
            }
        }
    }

    const auto seed = scalars.find("faultSeed");
    if (seed != scalars.end()) {
        if (seed->second < 0.0) {
            err.kind = PlanParseErrorKind::Range;
            err.message = "faultSeed must be >= 0";
            return std::nullopt;
        }
        plan.faultSeed = static_cast<std::uint64_t>(seed->second);
    }
    return plan;
}

std::optional<FaultPlan>
FaultPlan::fromJson(std::istream& is)
{
    PlanParseError err;
    return fromJson(is, err);
}

void
FaultPlan::toJson(std::ostream& os) const
{
    os.precision(17);
    os << "{";
    os << "\"slowdowns\":[";
    for (std::size_t i = 0; i < slowdowns.size(); ++i) {
        const auto& w = slowdowns[i];
        os << (i ? "," : "") << "{\"pu\":" << w.pu
           << ",\"start\":" << w.startSeconds
           << ",\"end\":" << w.endSeconds
           << ",\"clockFactor\":" << w.clockFactor << "}";
    }
    os << "],\"transients\":[";
    for (std::size_t i = 0; i < transients.size(); ++i) {
        const auto& t = transients[i];
        os << (i ? "," : "") << "{\"stage\":" << t.stage
           << ",\"pu\":" << t.pu
           << ",\"probability\":" << t.probability << "}";
    }
    os << "],\"stragglers\":[";
    for (std::size_t i = 0; i < stragglers.size(); ++i) {
        const auto& s = stragglers[i];
        os << (i ? "," : "") << "{\"stage\":" << s.stage
           << ",\"probability\":" << s.probability
           << ",\"factor\":" << s.factor << "}";
    }
    os << "],\"dropouts\":[";
    for (std::size_t i = 0; i < dropouts.size(); ++i) {
        const auto& d = dropouts[i];
        os << (i ? "," : "") << "{\"pu\":" << d.pu
           << ",\"at\":" << d.atSeconds << "}";
    }
    os << "],\"faultSeed\":" << faultSeed << "}";
}

void
RecoveryStats::add(const RecoveryStats& other)
{
    transientFaults += other.transientFaults;
    timeouts += other.timeouts;
    stragglers += other.stragglers;
    retries += other.retries;
    remaps += other.remaps;
    dropouts += other.dropouts;
    replans += other.replans;
    unrecovered += other.unrecovered;
    backoffSeconds += other.backoffSeconds;
}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             std::uint64_t mixed_seed)
    : plan_(plan), seed_(mixed_seed ^ plan.faultSeed)
{
}

bool
FaultInjector::transientFailure(std::int64_t task, int stage, int pu,
                                int attempt) const
{
    double p = 0.0;
    for (const auto& rule : plan_.transients) {
        if (rule.stage >= 0 && rule.stage != stage)
            continue;
        if (rule.pu >= 0 && rule.pu != pu)
            continue;
        p = std::max(p, rule.probability);
    }
    if (p <= 0.0)
        return false;
    // Fold the PU into the draw: after a failover remap the same
    // (task, stage, attempt) coordinates must redraw on the new PU, or
    // an attempt sequence that exhausted its retries would replay the
    // identical failures there and failover could never succeed.
    return faultDraw(seed_ ^ (0x9e3779b97f4a7c15ull
                              * static_cast<std::uint64_t>(pu + 1)),
                     kTransientDomain, task, stage, attempt)
        < p;
}

double
FaultInjector::stragglerFactor(std::int64_t task, int stage,
                               int attempt) const
{
    double factor = 1.0;
    for (const auto& rule : plan_.stragglers) {
        if (rule.stage >= 0 && rule.stage != stage)
            continue;
        if (rule.probability <= 0.0)
            continue;
        if (faultDraw(seed_, kStragglerDomain, task, stage, attempt)
            < rule.probability)
            factor = std::max(factor, rule.factor);
    }
    return factor;
}

double
FaultInjector::slowdownFactor(int pu, double now) const
{
    double factor = 1.0;
    for (const auto& w : plan_.slowdowns)
        if (w.pu == pu && now >= w.startSeconds && now < w.endSeconds)
            factor *= w.clockFactor;
    return factor;
}

double
FaultInjector::nextSlowdownBoundary(double now) const
{
    double next = std::numeric_limits<double>::infinity();
    for (const auto& w : plan_.slowdowns) {
        if (w.startSeconds > now)
            next = std::min(next, w.startSeconds);
        if (w.endSeconds > now)
            next = std::min(next, w.endSeconds);
    }
    return next;
}

} // namespace bt::runtime
