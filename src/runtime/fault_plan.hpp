/**
 * @file
 * Declarative fault model for pipeline executions (robustness layer).
 *
 * The paper's BT-Implementer assumes PUs behave exactly as profiled, but
 * the phenomena its model captures — DVFS throttling, contention spikes,
 * co-runner interference — are precisely what makes real SoC deployments
 * flaky. A FaultPlan declares, ahead of a run, which misbehaviors to
 * inject: per-PU slowdown windows emulating thermal throttling, transient
 * stage failures, straggler stage executions, and hard PU dropout at a
 * timestamp. Both time backends honor the same plan in their own time
 * domain (virtual seconds for the DES, wall seconds for host threads).
 *
 * All stochastic decisions are derived from seeded hashes of
 * (task, stage, attempt), so a fixed (plan, device seed, noiseSalt)
 * triple reproduces every fault — and every recovery decision —
 * bit-identically. An empty plan disables the entire fault machinery;
 * that path is regression-tested to be bit-identical to fault-free runs.
 *
 * RecoveryPolicy declares how the runtime responds: per-stage timeout
 * with bounded retry and exponential backoff, failover remapping of a
 * failed chunk to the profiled next-best PU, and graceful degradation
 * that re-plans the remaining schedule on surviving PUs. RecoveryStats
 * summarizes what actually happened and rides along in RunResult.
 */

#ifndef BT_RUNTIME_FAULT_PLAN_HPP
#define BT_RUNTIME_FAULT_PLAN_HPP

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bt::runtime {

/** Why a fault plan failed to parse (FaultPlan::fromJson). */
enum class PlanParseErrorKind
{
    Syntax,         ///< not the documented JSON subset
    UnknownSection, ///< top-level member that is not a plan section
    UnknownField,   ///< row field no rule of that section defines
    MissingField,   ///< required row field absent
    Range,          ///< field value outside its documented domain
    Overlap,        ///< same-PU slowdown windows overlap in time
};

/** Stable snake_case name of @p kind ("unknown_field", ...). */
std::string_view planParseErrorKindName(PlanParseErrorKind kind);

/** Typed parse failure: what went wrong, and where, in one line. */
struct PlanParseError
{
    PlanParseErrorKind kind = PlanParseErrorKind::Syntax;
    std::string message;

    /** "[<kind>] <message>" - what drivers print. */
    std::string toString() const;
};

/**
 * Clock throttling of one PU class over a time window (thermal
 * throttling / DVFS capping emulation). clockFactor scales the PU's
 * effective frequency: 0.5 = half clock, so compute-bound stages take
 * twice as long while the window is open.
 */
struct SlowdownWindow
{
    int pu = 0;
    double startSeconds = 0.0;
    double endSeconds = 0.0;
    double clockFactor = 0.5; ///< in (0, 1]: 1 = no throttling
};

/**
 * Transient stage failures: each matching stage execution attempt fails
 * with @p probability, decided by a seeded hash of (task, stage,
 * attempt). A failed attempt burns its execution time but commits no
 * kernel side effects, so a retry is always safe.
 */
struct TransientFaultRule
{
    int stage = -1; ///< -1 = any stage
    int pu = -1;    ///< -1 = any PU
    double probability = 0.0;
};

/**
 * Straggler executions: a matching stage execution occasionally takes
 * @p factor times longer (contention spike, page fault storm, co-runner
 * burst). Stragglers interact with the timeout policy: a large enough
 * factor trips the per-stage timeout and the attempt is retried.
 */
struct StragglerRule
{
    int stage = -1; ///< -1 = any stage
    double probability = 0.0;
    double factor = 8.0; ///< duration multiplier when triggered
};

/** Hard dropout of one PU class at an absolute run timestamp. */
struct PuDropout
{
    int pu = 0;
    double atSeconds = 0.0;
};

/** Everything to inject into one run. Empty = no fault machinery. */
struct FaultPlan
{
    std::vector<SlowdownWindow> slowdowns;
    std::vector<TransientFaultRule> transients;
    std::vector<StragglerRule> stragglers;
    std::vector<PuDropout> dropouts;

    /** Extra seed folded into every fault decision (on top of the
     *  device seed and the run's noiseSalt). */
    std::uint64_t faultSeed = 0;

    bool
    empty() const
    {
        return slowdowns.empty() && transients.empty()
            && stragglers.empty() && dropouts.empty();
    }

    /** Panics unless PU indices / windows / probabilities are sane. */
    void validate(int num_pus) const;

    /**
     * Parse a plan from JSON, e.g.
     * {"slowdowns":[{"pu":1,"start":0.1,"end":0.5,"clockFactor":0.4}],
     *  "transients":[{"stage":2,"probability":0.05}],
     *  "stragglers":[{"probability":0.01,"factor":10}],
     *  "dropouts":[{"pu":3,"at":0.2}], "faultSeed":7}
     *
     * Parsing is strict: unknown sections or fields, missing required
     * fields (slowdowns need pu/start/end, transients and stragglers
     * need probability, dropouts need pu/at), out-of-domain values
     * (negative or fractional PU ids, clockFactor outside (0, 1],
     * probabilities outside [0, 1], empty windows), and same-PU
     * overlapping slowdown windows are all typed errors - never UB or
     * a silent default.
     *
     * @return the plan, or std::nullopt with @p err filled in.
     */
    static std::optional<FaultPlan> fromJson(std::istream& is,
                                             PlanParseError& err);

    /** As above, discarding the error detail. */
    static std::optional<FaultPlan> fromJson(std::istream& is);

    /** Serialize in the format fromJson accepts. */
    void toJson(std::ostream& os) const;
};

/** How the runtime responds to faults. */
struct RecoveryPolicy
{
    /**
     * Per-stage timeout budget as a multiple of the stage's profiled
     * isolated time on its PU. Attempts exceeding the budget are
     * aborted and retried (virtual backend; the host backend detects
     * overruns at stage end). <= 0 disables timeouts.
     */
    double timeoutFactor = 16.0;

    /** Retries per stage execution before failing over. */
    int maxRetries = 3;

    /** Backoff before retry r: base * multiplier^r. */
    double backoffBaseSeconds = 1e-4;
    double backoffMultiplier = 2.0;

    /** Remap a chunk whose retries are exhausted (or whose PU died) to
     *  the profiled next-best surviving PU. */
    bool failover = true;

    /** On PU dropout, re-plan the remaining schedule on surviving PUs
     *  with the Optimizer instead of per-chunk next-best failover. */
    bool degrade = true;
};

/** What the recovery machinery actually did during one run. */
struct RecoveryStats
{
    int transientFaults = 0; ///< injected failures that manifested
    int timeouts = 0;        ///< attempts aborted over budget
    int stragglers = 0;      ///< straggler injections applied
    int retries = 0;         ///< re-attempts after fault or timeout
    int remaps = 0;          ///< chunk-to-PU failover remappings
    int dropouts = 0;        ///< PU classes lost mid-run
    int replans = 0;         ///< Optimizer degradations after dropout
    int unrecovered = 0;     ///< stage executions abandoned for good
    double backoffSeconds = 0.0; ///< total backoff delay served

    int
    faultsInjected() const
    {
        return transientFaults + timeouts + stragglers + dropouts;
    }

    bool
    cleanRun() const
    {
        return faultsInjected() == 0 && retries == 0 && remaps == 0
            && replans == 0 && unrecovered == 0;
    }

    void add(const RecoveryStats& other);
};

/**
 * Deterministic oracle over one FaultPlan: every query is a pure
 * function of the plan, the mixed seed, and the coordinates of the
 * execution attempt, so both time backends (and reruns) see the same
 * faults.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan& plan, std::uint64_t mixed_seed);

    const FaultPlan& plan() const { return plan_; }
    bool enabled() const { return !plan_.empty(); }

    /** Does this attempt suffer an injected transient failure? */
    bool transientFailure(std::int64_t task, int stage, int pu,
                          int attempt) const;

    /** Duration multiplier for this attempt (1.0 = no straggler). */
    double stragglerFactor(std::int64_t task, int stage,
                           int attempt) const;

    /** Combined clock factor of @p pu at time @p now (product of all
     *  open slowdown windows; 1.0 = nominal). */
    double slowdownFactor(int pu, double now) const;

    /** Earliest slowdown-window boundary strictly after @p now, or
     *  +infinity — where the DES must re-evaluate rates. */
    double nextSlowdownBoundary(double now) const;

    const std::vector<PuDropout>& dropouts() const
    {
        return plan_.dropouts;
    }

  private:
    FaultPlan plan_;
    std::uint64_t seed_;
};

} // namespace bt::runtime

#endif // BT_RUNTIME_FAULT_PLAN_HPP
