#include "runtime/run_types.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace bt::runtime {

int
RunConfig::resolveBuffers(int requested, int slots)
{
    BT_ASSERT(slots > 0);
    return requested > 0 ? requested : slots + 1;
}

int
RunConfig::resolveBuffers(int num_chunks) const
{
    return resolveBuffers(numBuffers, num_chunks);
}

void
finalizeTiming(RunResult& result, std::span<const double> inject_time,
               std::span<const double> complete_time, int warmup_tasks,
               bool sort_completions)
{
    const int n = result.tasks;
    BT_ASSERT(n > 0
              && complete_time.size() == static_cast<std::size_t>(n));

    std::vector<double> completions(complete_time.begin(),
                                    complete_time.end());
    if (sort_completions)
        std::sort(completions.begin(), completions.end());

    const int w = std::min(warmup_tasks, n - 1);
    if (n - w >= 2) {
        result.taskIntervalSeconds
            = (completions[static_cast<std::size_t>(n - 1)]
               - completions[static_cast<std::size_t>(w)])
            / static_cast<double>(n - 1 - w);
    } else {
        result.taskIntervalSeconds
            = result.makespanSeconds / static_cast<double>(n);
    }

    std::vector<double> latencies(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        latencies[static_cast<std::size_t>(t)]
            = complete_time[static_cast<std::size_t>(t)]
            - inject_time[static_cast<std::size_t>(t)];
    result.meanLatencySeconds = mean(latencies);
}

void
finalizeBusyFractions(RunResult& result,
                      std::span<const double> busy_seconds)
{
    result.chunkBusyFraction.resize(busy_seconds.size());
    for (std::size_t c = 0; c < busy_seconds.size(); ++c)
        result.chunkBusyFraction[c] = result.makespanSeconds > 0.0
            ? busy_seconds[c] / result.makespanSeconds
            : 0.0;
}

} // namespace bt::runtime
