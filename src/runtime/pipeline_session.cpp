#include "runtime/pipeline_session.hpp"

#include "common/logging.hpp"

namespace bt::runtime {

std::vector<std::string>
puNames(const platform::SocDescription& soc)
{
    std::vector<std::string> names;
    names.reserve(soc.pus.size());
    for (const auto& p : soc.pus)
        names.push_back(p.label);
    return names;
}

std::vector<std::string>
stageNames(const core::Application& app)
{
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(app.numStages()));
    for (const auto& s : app.stages())
        names.push_back(s.name());
    return names;
}

PipelineSession::PipelineSession(const core::Application& app,
                                 const core::Schedule& schedule,
                                 const platform::SocDescription& soc,
                                 const RunConfig& cfg,
                                 std::string backend_name,
                                 bool functional)
    : app_(app), soc_(soc), cfg_(cfg), functional_(functional)
{
    BT_ASSERT(cfg_.numTasks > 0);
    BT_ASSERT(cfg_.warmupTasks >= 0);
    BT_ASSERT(schedule.valid(app.numStages(), soc.numPus()),
              "schedule does not fit application/device");

    const int num_chunks = schedule.numChunks();
    chunks_.reserve(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c) {
        const core::Chunk& ch
            = schedule.chunks()[static_cast<std::size_t>(c)];
        chunks_.push_back(
            ChunkSpec{c, ch.firstStage, ch.lastStage, ch.pu});
    }
    numBuffers_ = cfg_.resolveBuffers(num_chunks);

    if (functional_) {
        pool_.reserve(static_cast<std::size_t>(numBuffers_));
        for (int b = 0; b < numBuffers_; ++b)
            pool_.push_back(app_.makeTask(0, soc_.seed));
    }
    tokenTask_.assign(static_cast<std::size_t>(numBuffers_), -1);
    injectTime_.assign(static_cast<std::size_t>(cfg_.numTasks), 0.0);
    completeTime_.assign(static_cast<std::size_t>(cfg_.numTasks), 0.0);

    if (cfg_.recordTrace) {
        trace_ = TraceTimeline(std::move(backend_name), soc.numPus(),
                               puNames(soc), stageNames(app));
        trace_.setSessionId(cfg_.sessionId);
    }
}

std::int64_t
PipelineSession::inject(int token, double now)
{
    BT_ASSERT(!exhausted(), "inject past the input stream");
    const std::int64_t task = nextTask_++;
    tokenTask_[static_cast<std::size_t>(token)] = task;
    injectTime_[static_cast<std::size_t>(task)] = now;
    if (functional_)
        app_.refreshTask(*pool_[static_cast<std::size_t>(token)], task,
                         soc_.seed);
    return task;
}

void
PipelineSession::runStage(int chunk_index, int stage, int token,
                          sched::ThreadPool* team,
                          int pu_override) const
{
    if (!functional_)
        return;
    core::KernelCtx ctx{*pool_[static_cast<std::size_t>(token)], team};
    const int pu
        = pu_override >= 0 ? pu_override : chunk(chunk_index).pu;
    app_.stage(stage).run(ctx, soc_.pu(pu).kind);
}

void
PipelineSession::recordFailure(std::int64_t task, int stage)
{
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (validationErrors_.size() < 8)
        validationErrors_.push_back(
            "task " + std::to_string(task) + ": stage "
            + std::to_string(stage) + " abandoned after retries");
}

void
PipelineSession::complete(int token, double now)
{
    const std::int64_t task
        = tokenTask_[static_cast<std::size_t>(token)];
    BT_ASSERT(task >= 0, "completing an unbound token");
    completeTime_[static_cast<std::size_t>(task)] = now;
    if (functional_ && cfg_.validate) {
        const std::string err
            = app_.validate(*pool_[static_cast<std::size_t>(token)]);
        if (!err.empty()) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (validationErrors_.size() < 8)
                validationErrors_.push_back(
                    "task " + std::to_string(task) + ": " + err);
        }
    }
}

void
PipelineSession::recordEvent(TraceEvent event)
{
    if (!cfg_.recordTrace)
        return;
    std::lock_guard<std::mutex> lock(traceMutex_);
    trace_.record(std::move(event));
}

RunResult
PipelineSession::finish(double makespan_seconds,
                        std::span<const double> chunk_busy_seconds,
                        bool affinity_applied)
{
    BT_ASSERT(nextTask_ == cfg_.numTasks,
              "pipeline stalled: only ", nextTask_, " of ",
              cfg_.numTasks, " tasks injected");

    RunResult result;
    result.tasks = cfg_.numTasks;
    result.makespanSeconds = makespan_seconds;
    result.affinityApplied = affinity_applied;
    result.validationErrors = std::move(validationErrors_);
    finalizeTiming(result, injectTime_, completeTime_, cfg_.warmupTasks,
                   /*sort_completions=*/false);
    finalizeBusyFractions(result, chunk_busy_seconds);
    if (cfg_.recordTrace) {
        trace_.sortByStart();
        result.trace = std::move(trace_);
    }
    return result;
}

} // namespace bt::runtime
