/**
 * @file
 * Recovery decision helpers shared by the time backends: where a failed
 * chunk fails over to, and how the remaining schedule degrades when a
 * PU drops out.
 *
 * Failover ranks surviving PUs by the same quantity the BT-Profiler
 * measures (the interference-heavy stage time of the performance
 * model), so "profiled next-best PU" means exactly what it would on a
 * real device with a cached profiling table. Graceful degradation goes
 * further: it rebuilds that table restricted to surviving PUs and asks
 * the existing Optimizer for the best remaining schedule, then rebinds
 * the dead chunks of the deployed geometry to the PUs the new plan
 * assigns their stages (chunk boundaries are frozen at deployment —
 * the multi-buffer pool is already allocated against them).
 */

#ifndef BT_RUNTIME_RECOVERY_HPP
#define BT_RUNTIME_RECOVERY_HPP

#include <memory>
#include <optional>
#include <vector>

#include "core/application.hpp"
#include "core/profiling_table.hpp"
#include "core/schedule.hpp"
#include "core/schedule_eval.hpp"
#include "platform/perf_model.hpp"

namespace bt::runtime {

/**
 * Profiled next-best surviving PU for stages [first, last]: the alive
 * PU (excluding @p exclude) minimizing the summed interference-heavy
 * stage time. @return -1 when no alive PU remains.
 */
int nextBestPu(const platform::PerfModel& model,
               const core::Application& app, int first_stage,
               int last_stage, const std::vector<bool>& alive,
               int exclude);

/**
 * The noiseless profiled table recovery decisions rank against: one
 * interference-heavy model query per (stage, PU) — the mean the
 * BT-Profiler's 30 noisy repetitions converge to.
 */
core::ProfilingTable modelTable(const platform::PerfModel& model,
                                const core::Application& app);

/**
 * Graceful degradation: run the Optimizer over @p app restricted to
 * the surviving PUs and return its best schedule. Panics if no PU
 * survives.
 */
core::Schedule replanOnSurvivors(const platform::PerfModel& model,
                                 const core::Application& app,
                                 const std::vector<bool>& alive);

/**
 * Replan cache for graceful degradation (the re-plan hot path): one
 * lazily-built model table and one warm ScheduleEvaluator shared across
 * every replan of a run, so a second dropout pays neither the table
 * rebuild nor re-prediction of schedules the first replan already
 * scored. replan() returns exactly the schedule replanOnSurvivors would
 * (same table contents, same optimizer configuration).
 *
 * Not thread-safe: callers serialize replans (the host backend replans
 * under its fault-state mutex; the virtual backend is single-threaded).
 * Constructing the planner is free until the first replan.
 */
class ReplanPlanner
{
  public:
    ReplanPlanner(const platform::PerfModel& model,
                  const core::Application& app)
        : model_(model), app_(app)
    {
    }

    /** Best schedule over the surviving PUs. Panics if none survive. */
    core::Schedule replan(const std::vector<bool>& alive);

  private:
    const platform::PerfModel& model_;
    const core::Application& app_;
    std::optional<core::ProfilingTable> table_;
    std::unique_ptr<core::ScheduleEvaluator> eval_;
};

} // namespace bt::runtime

#endif // BT_RUNTIME_RECOVERY_HPP
