#include "runtime/host_backend.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/logging.hpp"
#include "runtime/pipeline_session.hpp"
#include "sched/spsc_queue.hpp"
#include "sched/thread_pool.hpp"

namespace bt::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Buffer id + enqueue timestamp travelling through the queues. */
struct Token
{
    int token = -1;
    double enqueuedAt = 0.0;
};

} // namespace

HostTimeBackend::HostTimeBackend(const platform::SocDescription& soc)
    : soc_(soc)
{
}

RunResult
HostTimeBackend::run(const core::Application& app,
                     const core::Schedule& schedule,
                     const RunConfig& cfg) const
{
    BT_ASSERT(cfg.queueCapacity > 0);

    PipelineSession session(app, schedule, soc_, cfg, "host",
                            /*functional=*/true);
    const int num_chunks = session.numChunks();
    const int num_buffers = session.numBuffers();
    const std::size_t qcap = static_cast<std::size_t>(
        std::max(cfg.queueCapacity, num_buffers));

    // queues[c] feeds chunk c; the extra last queue recycles to chunk 0.
    std::vector<std::unique_ptr<sched::SpscQueue<Token>>> queues;
    for (int c = 0; c <= num_chunks; ++c)
        queues.push_back(
            std::make_unique<sched::SpscQueue<Token>>(qcap));
    for (int b = 0; b < num_buffers; ++b)
        BT_ASSERT(queues[0]->tryPush(Token{b, 0.0}),
                  "free pool exceeds queue capacity");

    std::atomic<bool> affinity_ok{true};
    std::vector<double> busy(static_cast<std::size_t>(num_chunks),
                             0.0);
    // Which PU each chunk is executing on right now (-1 = idle), for
    // the timeline's co-runner snapshots. Relaxed is fine: snapshots
    // are advisory.
    auto running = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        running[static_cast<std::size_t>(c)].store(
            -1, std::memory_order_relaxed);

    const auto t0 = Clock::now();

    auto coRunnersOf = [&](int self) {
        std::vector<int> pus;
        for (int c = 0; c < num_chunks; ++c) {
            if (c == self)
                continue;
            const int pu = running[static_cast<std::size_t>(c)].load(
                std::memory_order_relaxed);
            if (pu >= 0)
                pus.push_back(pu);
        }
        return pus;
    };

    auto dispatcher = [&](int c) {
        const ChunkSpec& ch = session.chunk(c);
        const platform::PuModel& pu = soc_.pu(ch.pu);

        // Per-chunk worker team bound to this PU's cores. GPU chunks get
        // no team: kernels run through the SIMT layer on the dispatcher.
        std::unique_ptr<sched::ThreadPool> team;
        if (pu.kind == platform::PuKind::Cpu) {
            team = std::make_unique<sched::ThreadPool>(pu.cores,
                                                       pu.coreIds);
            if (!pu.coreIds.empty() && !team->affinityApplied())
                affinity_ok.store(false, std::memory_order_relaxed);
        }

        auto& in = *queues[static_cast<std::size_t>(c)];
        auto& out = *queues[static_cast<std::size_t>(c + 1)];

        for (int processed = 0; processed < cfg.numTasks;) {
            auto token = in.tryPop();
            if (!token) {
                std::this_thread::yield();
                continue;
            }
            const double popped = secondsSince(t0);
            const double queue_wait = popped - token->enqueuedAt;
            if (c == 0)
                session.inject(token->token, popped);
            const std::int64_t task = session.taskOf(token->token);

            running[static_cast<std::size_t>(c)].store(
                ch.pu, std::memory_order_relaxed);
            for (int s = ch.firstStage; s <= ch.lastStage; ++s) {
                const double start = secondsSince(t0);
                const std::vector<int> co = coRunnersOf(c);
                session.runStage(c, s, token->token, team.get());
                const double end = secondsSince(t0);
                session.recordEvent(TraceEvent{
                    task, s, c, ch.pu,
                    s == ch.firstStage ? queue_wait : 0.0, start, end,
                    co});
            }
            running[static_cast<std::size_t>(c)].store(
                -1, std::memory_order_relaxed);
            const double done = secondsSince(t0);
            busy[static_cast<std::size_t>(c)] += done - popped;

            if (c == num_chunks - 1)
                session.complete(token->token, done);
            token->enqueuedAt = done;
            while (!out.tryPush(*token))
                std::this_thread::yield();
            ++processed;
        }
    };

    // Recycler: moves finished tokens from the last queue back to the
    // front queue (keeps every queue strictly SPSC).
    std::thread recycler([&] {
        auto& from = *queues[static_cast<std::size_t>(num_chunks)];
        auto& to = *queues[0];
        for (int moved = 0; moved < cfg.numTasks;) {
            auto token = from.tryPop();
            if (!token) {
                std::this_thread::yield();
                continue;
            }
            while (!to.tryPush(*token))
                std::this_thread::yield();
            ++moved;
        }
    });

    std::vector<std::thread> dispatchers;
    dispatchers.reserve(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        dispatchers.emplace_back(dispatcher, c);
    for (auto& t : dispatchers)
        t.join();
    recycler.join();

    return session.finish(
        secondsSince(t0), busy,
        affinity_ok.load(std::memory_order_relaxed));
}

} // namespace bt::runtime
