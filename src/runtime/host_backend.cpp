#include "runtime/host_backend.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "platform/perf_model.hpp"
#include "runtime/pipeline_session.hpp"
#include "runtime/recovery.hpp"
#include "sched/spsc_queue.hpp"
#include "sched/thread_pool.hpp"

namespace bt::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Buffer id + enqueue timestamp travelling through the queues. */
struct Token
{
    int token = -1;
    double enqueuedAt = 0.0;
};

void
sleepSeconds(double s)
{
    if (s > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/**
 * Recovery state the dispatcher threads share. One mutex serializes all
 * fault decisions: faults are rare events by construction, so the lock
 * is far off the fault-free hot path (which never takes it).
 *
 * Host-backend fault semantics (wall time cannot be rewound):
 *  - slowdown windows stretch a stage by sleeping elapsed*(1/f - 1);
 *  - transient failures skip the kernel and retry after a real backoff
 *    sleep;
 *  - dropouts apply when the first dispatcher observes the deadline;
 *  - per-stage timeouts are not emulated (aborting a host kernel
 *    mid-flight is not safe) - the virtual backend covers that path.
 */
struct HostFaultState
{
    std::mutex mutex;
    std::vector<bool> puAlive;
    std::vector<int> chunkPu;
    std::vector<bool> dropoutDone;
    RecoveryStats stats;
};

} // namespace

HostTimeBackend::HostTimeBackend(const platform::SocDescription& soc)
    : soc_(soc)
{
}

RunResult
HostTimeBackend::run(const core::Application& app,
                     const core::Schedule& schedule,
                     const RunConfig& cfg) const
{
    BT_ASSERT(cfg.queueCapacity > 0);
    cfg.faults.validate(soc_.numPus());

    PipelineSession session(app, schedule, soc_, cfg, "host",
                            /*functional=*/true);
    const int num_chunks = session.numChunks();
    const int num_buffers = session.numBuffers();
    const std::size_t qcap = static_cast<std::size_t>(
        std::max(cfg.queueCapacity, num_buffers));

    // queues[c] feeds chunk c; the extra last queue recycles to chunk 0.
    std::vector<std::unique_ptr<sched::SpscQueue<Token>>> queues;
    for (int c = 0; c <= num_chunks; ++c)
        queues.push_back(
            std::make_unique<sched::SpscQueue<Token>>(qcap));
    for (int b = 0; b < num_buffers; ++b)
        BT_ASSERT(queues[0]->tryPush(Token{b, 0.0}),
                  "free pool exceeds queue capacity");

    std::atomic<bool> affinity_ok{true};
    std::vector<double> busy(static_cast<std::size_t>(num_chunks),
                             0.0);
    // Which PU each chunk is executing on right now (-1 = idle), for
    // the timeline's co-runner snapshots. Relaxed is fine: snapshots
    // are advisory.
    auto running = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        running[static_cast<std::size_t>(c)].store(
            -1, std::memory_order_relaxed);

    // --- fault layer (inert on fault-free runs) ------------------------
    const platform::PerfModel model(soc_);
    const FaultInjector injector(cfg.faults, soc_.seed ^ cfg.noiseSalt);
    const bool faulty = injector.enabled();
    // Degradation replans share one table + prediction cache per run;
    // only ever touched under fs.mutex (applyDueDropouts).
    ReplanPlanner replanner(model, app);
    HostFaultState fs;
    if (faulty) {
        fs.puAlive.assign(static_cast<std::size_t>(soc_.numPus()),
                          true);
        fs.chunkPu.resize(static_cast<std::size_t>(num_chunks));
        for (int c = 0; c < num_chunks; ++c)
            fs.chunkPu[static_cast<std::size_t>(c)]
                = session.chunk(c).pu;
        fs.dropoutDone.assign(injector.dropouts().size(), false);
    }

    const auto t0 = Clock::now();

    // Apply every dropout whose deadline has passed. Caller holds
    // fs.mutex.
    auto applyDueDropouts = [&](double now) {
        const auto& drops = injector.dropouts();
        for (std::size_t i = 0; i < drops.size(); ++i) {
            if (fs.dropoutDone[i] || now < drops[i].atSeconds)
                continue;
            fs.dropoutDone[i] = true;
            const int dead = drops[i].pu;
            if (!fs.puAlive[static_cast<std::size_t>(dead)])
                continue;
            fs.puAlive[static_cast<std::size_t>(dead)] = false;
            fs.stats.dropouts += 1;
            session.recordEvent(makeFaultEvent(TraceEventKind::Dropout,
                                               -1, -1, -1, dead, now,
                                               now));

            std::vector<int> affected;
            for (int c = 0; c < num_chunks; ++c)
                if (fs.chunkPu[static_cast<std::size_t>(c)] == dead)
                    affected.push_back(c);
            if (affected.empty())
                continue;

            if (cfg.recovery.degrade) {
                const core::Schedule plan
                    = replanner.replan(fs.puAlive);
                fs.stats.replans += 1;
                session.recordEvent(makeFaultEvent(
                    TraceEventKind::Replan, -1, -1, -1, dead, now,
                    now));
                const auto assign = plan.toAssignment();
                for (const int c : affected) {
                    const int target = assign[static_cast<std::size_t>(
                        session.chunk(c).firstStage)];
                    fs.chunkPu[static_cast<std::size_t>(c)] = target;
                    fs.stats.remaps += 1;
                    session.recordEvent(makeFaultEvent(
                        TraceEventKind::Remap, -1, -1, c, target, now,
                        now,
                        "pu " + std::to_string(dead) + " -> "
                            + std::to_string(target)));
                }
            } else {
                for (const int c : affected) {
                    const ChunkSpec& spec = session.chunk(c);
                    const int target = nextBestPu(
                        model, app, spec.firstStage, spec.lastStage,
                        fs.puAlive,
                        fs.chunkPu[static_cast<std::size_t>(c)]);
                    if (target < 0)
                        continue;
                    fs.chunkPu[static_cast<std::size_t>(c)] = target;
                    fs.stats.remaps += 1;
                    session.recordEvent(makeFaultEvent(
                        TraceEventKind::Remap, -1, -1, c, target, now,
                        now,
                        "pu " + std::to_string(dead) + " -> "
                            + std::to_string(target)));
                }
            }
        }
    };

    auto coRunnersOf = [&](int self) {
        std::vector<int> pus;
        for (int c = 0; c < num_chunks; ++c) {
            if (c == self)
                continue;
            const int pu = running[static_cast<std::size_t>(c)].load(
                std::memory_order_relaxed);
            if (pu >= 0)
                pus.push_back(pu);
        }
        return pus;
    };

    auto dispatcher = [&](int c) {
        const ChunkSpec& ch = session.chunk(c);
        const platform::PuModel& pu = soc_.pu(ch.pu);

        // Per-chunk worker team bound to this PU's cores. GPU chunks get
        // no team: kernels run through the SIMT layer on the dispatcher.
        std::unique_ptr<sched::ThreadPool> team;
        if (pu.kind == platform::PuKind::Cpu) {
            team = std::make_unique<sched::ThreadPool>(pu.cores,
                                                       pu.coreIds);
            if (!pu.coreIds.empty() && !team->affinityApplied())
                affinity_ok.store(false, std::memory_order_relaxed);
        }

        auto& in = *queues[static_cast<std::size_t>(c)];
        auto& out = *queues[static_cast<std::size_t>(c + 1)];

        for (int processed = 0; processed < cfg.numTasks;) {
            auto token = in.tryPop();
            if (!token) {
                std::this_thread::yield();
                continue;
            }
            const double popped = secondsSince(t0);
            const double queue_wait = popped - token->enqueuedAt;
            if (c == 0)
                session.inject(token->token, popped);
            const std::int64_t task = session.taskOf(token->token);

            running[static_cast<std::size_t>(c)].store(
                ch.pu, std::memory_order_relaxed);
            for (int s = ch.firstStage; s <= ch.lastStage; ++s) {
                int attempt = 0;
                bool remapped = false;
                for (;;) {
                    int cur_pu = ch.pu;
                    if (faulty) {
                        std::lock_guard<std::mutex> lock(fs.mutex);
                        applyDueDropouts(secondsSince(t0));
                        cur_pu = fs.chunkPu[static_cast<std::size_t>(c)];
                        running[static_cast<std::size_t>(c)].store(
                            cur_pu, std::memory_order_relaxed);
                    }
                    const bool will_fail = faulty
                        && injector.transientFailure(task, s, cur_pu,
                                                     attempt);
                    const double start = secondsSince(t0);
                    const std::vector<int> co = coRunnersOf(c);
                    if (!will_fail)
                        session.runStage(c, s, token->token,
                                         cur_pu == ch.pu ? team.get()
                                                     : nullptr,
                                         cur_pu);
                    double end = secondsSince(t0);

                    if (!will_fail) {
                        if (faulty) {
                            // Straggler inflation and throttle windows
                            // stretch the stage by sleeping out the
                            // extra wall time.
                            double stretch = injector.stragglerFactor(
                                task, s, attempt);
                            if (stretch > 1.0) {
                                std::lock_guard<std::mutex> lock(
                                    fs.mutex);
                                fs.stats.stragglers += 1;
                                session.recordEvent(makeFaultEvent(
                                    TraceEventKind::Straggler, task, s,
                                    c, cur_pu, start, end));
                            }
                            const double f
                                = injector.slowdownFactor(cur_pu, start);
                            stretch /= f;
                            if (stretch > 1.0) {
                                sleepSeconds((end - start)
                                             * (stretch - 1.0));
                                end = secondsSince(t0);
                            }
                        }
                        if (cfg.ambientBandwidthGbps > 0.0) {
                            // Cross-tenant co-runners: sleep out the
                            // contention model's predicted slowdown of
                            // this stage under the ambient demand, so
                            // native makespans track the planner's
                            // stretched predictions.
                            const auto& w = app.stage(s).work();
                            const double ambient_stretch
                                = model.interferenceHeavyTime(
                                      w, cur_pu,
                                      cfg.ambientBandwidthGbps)
                                / model.interferenceHeavyTime(w,
                                                              cur_pu);
                            if (ambient_stretch > 1.0) {
                                sleepSeconds((end - start)
                                             * (ambient_stretch - 1.0));
                                end = secondsSince(t0);
                            }
                        }
                        session.recordEvent(TraceEvent{
                            task, s, c, cur_pu,
                            s == ch.firstStage && attempt == 0
                                    && !remapped
                                ? queue_wait
                                : 0.0,
                            start, end, co, TraceEventKind::Stage,
                            {}});
                        break;
                    }

                    // Transient failure: the kernel never ran, so a
                    // retry is always side-effect free.
                    {
                        std::lock_guard<std::mutex> lock(fs.mutex);
                        fs.stats.transientFaults += 1;
                        session.recordEvent(makeFaultEvent(
                            TraceEventKind::Transient, task, s, c, cur_pu,
                            start, end));
                    }
                    ++attempt;
                    if (attempt <= cfg.recovery.maxRetries) {
                        const double backoff
                            = cfg.recovery.backoffBaseSeconds
                            * std::pow(cfg.recovery.backoffMultiplier,
                                       attempt - 1);
                        {
                            std::lock_guard<std::mutex> lock(fs.mutex);
                            fs.stats.retries += 1;
                            fs.stats.backoffSeconds += backoff;
                            session.recordEvent(makeFaultEvent(
                                TraceEventKind::Retry, task, s, c, cur_pu,
                                end, end,
                                "attempt " + std::to_string(attempt)));
                        }
                        sleepSeconds(backoff);
                        continue;
                    }
                    bool abandoned = true;
                    if (cfg.recovery.failover && !remapped) {
                        std::lock_guard<std::mutex> lock(fs.mutex);
                        const int target = nextBestPu(
                            model, app, ch.firstStage, ch.lastStage,
                            fs.puAlive, cur_pu);
                        if (target >= 0) {
                            fs.chunkPu[static_cast<std::size_t>(c)]
                                = target;
                            fs.stats.remaps += 1;
                            session.recordEvent(makeFaultEvent(
                                TraceEventKind::Remap, task, s, c,
                                target, end, end,
                                "cur_pu " + std::to_string(cur_pu) + " -> "
                                    + std::to_string(target)));
                            remapped = true;
                            attempt = 0;
                            abandoned = false;
                        }
                    }
                    if (abandoned) {
                        {
                            std::lock_guard<std::mutex> lock(fs.mutex);
                            fs.stats.unrecovered += 1;
                            session.recordEvent(makeFaultEvent(
                                TraceEventKind::Abandon, task, s, c,
                                cur_pu, end, end));
                        }
                        session.recordFailure(task, s);
                        break;
                    }
                }
            }
            running[static_cast<std::size_t>(c)].store(
                -1, std::memory_order_relaxed);
            const double done = secondsSince(t0);
            busy[static_cast<std::size_t>(c)] += done - popped;

            if (c == num_chunks - 1)
                session.complete(token->token, done);
            token->enqueuedAt = done;
            while (!out.tryPush(*token))
                std::this_thread::yield();
            ++processed;
        }
    };

    // Recycler: moves finished tokens from the last queue back to the
    // front queue (keeps every queue strictly SPSC).
    std::thread recycler([&] {
        auto& from = *queues[static_cast<std::size_t>(num_chunks)];
        auto& to = *queues[0];
        for (int moved = 0; moved < cfg.numTasks;) {
            auto token = from.tryPop();
            if (!token) {
                std::this_thread::yield();
                continue;
            }
            while (!to.tryPush(*token))
                std::this_thread::yield();
            ++moved;
        }
    });

    std::vector<std::thread> dispatchers;
    dispatchers.reserve(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        dispatchers.emplace_back(dispatcher, c);
    for (auto& t : dispatchers)
        t.join();
    recycler.join();

    RunResult result = session.finish(
        secondsSince(t0), busy,
        affinity_ok.load(std::memory_order_relaxed));
    result.recovery = fs.stats;
    return result;
}

} // namespace bt::runtime
