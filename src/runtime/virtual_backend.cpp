#include "runtime/virtual_backend.hpp"

#include <algorithm>
#include <deque>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "runtime/pipeline_session.hpp"
#include "sim/engine.hpp"

namespace bt::runtime {

namespace {

/** Event-driven dispatcher state for one chunk. */
struct ChunkRuntime
{
    bool busy = false;
    int curStage = -1;      ///< stage currently "executing"
    int curToken = -1;      ///< buffer id being processed
    std::int64_t curTask = -1;
    double stageStart = 0.0;
    double busyAccum = 0.0;
    TraceEvent pending;     ///< stage execution being recorded
};

} // namespace

EnergyMeter::EnergyMeter(
    const platform::PerfModel& model,
    std::function<void(std::vector<bool>&)> fill_active)
    : model_(model), fillActive_(std::move(fill_active)),
      scratch_(static_cast<std::size_t>(model.soc().numPus()), false)
{
}

void
EnergyMeter::attach(sim::Engine& engine)
{
    engine.onAdvance([this](double t0, double t1) {
        std::fill(scratch_.begin(), scratch_.end(), false);
        fillActive_(scratch_);
        joules_ += (t1 - t0) * model_.systemPowerW(scratch_);
    });
}

VirtualTimeBackend::VirtualTimeBackend(const platform::PerfModel& model)
    : model_(model)
{
}

double
VirtualTimeBackend::noiseFactor(const platform::SocDescription& soc,
                                std::uint64_t salt,
                                std::uint64_t domain, std::int64_t task,
                                int stage)
{
    const std::uint64_t key = hashCombine(
        hashCombine(soc.seed ^ salt ^ domain,
                    static_cast<std::uint64_t>(task)),
        static_cast<std::uint64_t>(stage));
    Rng rng(key);
    return soc.noiseSigma > 0.0
        ? rng.nextLogNormalFactor(soc.noiseSigma)
        : 1.0;
}

RunResult
VirtualTimeBackend::run(const core::Application& app,
                        const core::Schedule& schedule,
                        const RunConfig& cfg) const
{
    const auto& soc = model_.soc();
    PipelineSession session(app, schedule, soc, cfg, "virtual",
                            cfg.runKernels);

    const int num_chunks = session.numChunks();
    const int num_buffers = session.numBuffers();

    // --- dispatcher state ---------------------------------------------
    std::vector<ChunkRuntime> chunks(
        static_cast<std::size_t>(num_chunks));

    // queues[c] feeds chunk c; the last queue recycles into queue 0.
    std::vector<std::deque<int>> queues(
        static_cast<std::size_t>(num_chunks));
    // enqueueTime[c][token]: when the token entered queue c (for the
    // timeline's queue-wait attribution).
    std::vector<std::vector<double>> enqueue_time(
        static_cast<std::size_t>(num_chunks),
        std::vector<double>(static_cast<std::size_t>(num_buffers),
                            0.0));
    for (int b = 0; b < num_buffers; ++b)
        queues[0].push_back(b);

    // --- virtual-time engine ------------------------------------------
    // Tag = chunk index; each chunk executes at most one stage at a time,
    // so the chunk's runtime state identifies the running stage.
    sim::Engine engine([&](std::span<const sim::ActiveTask> active,
                           std::span<double> rates) {
        std::vector<platform::Load> loads(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
            const auto& rt = chunks[static_cast<std::size_t>(
                active[i].tag)];
            BT_ASSERT(rt.busy && rt.curStage >= 0,
                      "active task on idle chunk");
            loads[i] = platform::Load{
                &app.stage(rt.curStage).work(),
                session.chunk(static_cast<int>(active[i].tag)).pu};
        }
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0 / model_.timeOf(i, loads);
    });

    EnergyMeter meter(model_, [&](std::vector<bool>& active) {
        for (int c = 0; c < num_chunks; ++c)
            if (chunks[static_cast<std::size_t>(c)].busy)
                active[static_cast<std::size_t>(session.chunk(c).pu)]
                    = true;
    });
    meter.attach(engine);

    auto coRunnersOf = [&](int self) {
        std::vector<int> pus;
        for (int c = 0; c < num_chunks; ++c)
            if (c != self && chunks[static_cast<std::size_t>(c)].busy)
                pus.push_back(session.chunk(c).pu);
        return pus;
    };

    auto startStage = [&](int c, int stage, double queue_wait) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        rt.curStage = stage;
        rt.stageStart = engine.now();
        rt.pending = TraceEvent{rt.curTask,
                                stage,
                                c,
                                session.chunk(c).pu,
                                queue_wait,
                                engine.now(),
                                0.0,
                                coRunnersOf(c)};
        session.runStage(c, stage, rt.curToken, nullptr);
        engine.startTask(static_cast<std::uint64_t>(c),
                         noiseFactor(soc, cfg.noiseSalt, 0, rt.curTask,
                                     stage));
    };

    // Forward declaration via std::function for mutual recursion.
    std::function<void(int)> tryStart = [&](int c) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        if (rt.busy)
            return;
        auto& q = queues[static_cast<std::size_t>(c)];
        if (q.empty())
            return;
        if (c == 0 && session.exhausted())
            return; // input stream exhausted
        const int token = q.front();
        q.pop_front();
        rt.busy = true;
        rt.curToken = token;
        if (c == 0)
            session.inject(token, engine.now());
        rt.curTask = session.taskOf(token);
        startStage(c, session.chunk(c).firstStage,
                   engine.now()
                       - enqueue_time[static_cast<std::size_t>(c)]
                                     [static_cast<std::size_t>(token)]);
    };

    engine.onComplete([&](sim::TaskId, std::uint64_t tag) {
        const int c = static_cast<int>(tag);
        auto& rt = chunks[static_cast<std::size_t>(c)];
        rt.busyAccum += engine.now() - rt.stageStart;
        rt.pending.endSeconds = engine.now();
        session.recordEvent(rt.pending);
        if (rt.curStage < session.chunk(c).lastStage) {
            startStage(c, rt.curStage + 1, 0.0);
            return;
        }
        // Chunk finished: hand the token downstream (or recycle).
        const int token = rt.curToken;
        rt.busy = false;
        rt.curStage = -1;
        rt.curToken = -1;
        rt.curTask = -1;

        if (c + 1 < num_chunks) {
            enqueue_time[static_cast<std::size_t>(c + 1)]
                        [static_cast<std::size_t>(token)]
                = engine.now();
            queues[static_cast<std::size_t>(c + 1)].push_back(token);
            tryStart(c + 1);
        } else {
            session.complete(token, engine.now());
            enqueue_time[0][static_cast<std::size_t>(token)]
                = engine.now();
            queues[0].push_back(token);
            tryStart(0);
        }
        tryStart(c); // pull the next token into this chunk
    });

    // Prime the pipeline and run to completion.
    tryStart(0);
    engine.run();

    std::vector<double> busy(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        busy[static_cast<std::size_t>(c)]
            = chunks[static_cast<std::size_t>(c)].busyAccum;

    RunResult result = session.finish(engine.now(), busy,
                                      /*affinity_applied=*/true);
    result.energyJoules = meter.joules();
    return result;
}

} // namespace bt::runtime
