#include "runtime/virtual_backend.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "runtime/pipeline_session.hpp"
#include "runtime/recovery.hpp"
#include "sim/engine.hpp"

namespace bt::runtime {

namespace {

/** Event-driven dispatcher state for one chunk. */
struct ChunkRuntime
{
    bool busy = false;
    int curStage = -1;      ///< stage currently "executing"
    int curToken = -1;      ///< buffer id being processed
    std::int64_t curTask = -1;
    double stageStart = 0.0;
    double busyAccum = 0.0;
    TraceEvent pending;     ///< stage execution being recorded

    // --- fault-layer state (untouched on fault-free runs) ---
    int attempt = 0;          ///< retry count of the current stage
    bool willFail = false;    ///< this attempt was drawn as a transient
    bool remapped = false;    ///< already failed over once this stage
    std::uint64_t seq = 0;    ///< invalidates stale timeout/retry timers
    sim::TaskId simId = -1;   ///< engine task of the in-flight attempt
};

} // namespace

EnergyMeter::EnergyMeter(
    const platform::PerfModel& model,
    std::function<void(std::vector<bool>&)> fill_active)
    : model_(model), fillActive_(std::move(fill_active)),
      scratch_(static_cast<std::size_t>(model.soc().numPus()), false)
{
}

void
EnergyMeter::attach(sim::Engine& engine)
{
    engine.onAdvance([this](double t0, double t1) {
        std::fill(scratch_.begin(), scratch_.end(), false);
        fillActive_(scratch_);
        joules_ += (t1 - t0) * model_.systemPowerW(scratch_);
    });
}

VirtualTimeBackend::VirtualTimeBackend(const platform::PerfModel& model)
    : model_(model)
{
}

double
VirtualTimeBackend::noiseFactor(const platform::SocDescription& soc,
                                std::uint64_t salt,
                                std::uint64_t domain, std::int64_t task,
                                int stage)
{
    const std::uint64_t key = hashCombine(
        hashCombine(soc.seed ^ salt ^ domain,
                    static_cast<std::uint64_t>(task)),
        static_cast<std::uint64_t>(stage));
    Rng rng(key);
    return soc.noiseSigma > 0.0
        ? rng.nextLogNormalFactor(soc.noiseSigma)
        : 1.0;
}

RunResult
VirtualTimeBackend::run(const core::Application& app,
                        const core::Schedule& schedule,
                        const RunConfig& cfg) const
{
    const auto& soc = model_.soc();
    const int num_pus = soc.numPus();
    cfg.faults.validate(num_pus);
    PipelineSession session(app, schedule, soc, cfg, "virtual",
                            cfg.runKernels);

    const int num_chunks = session.numChunks();
    const int num_buffers = session.numBuffers();

    // --- dispatcher state ---------------------------------------------
    std::vector<ChunkRuntime> chunks(
        static_cast<std::size_t>(num_chunks));

    // --- fault layer ---------------------------------------------------
    // Everything below is inert on fault-free runs: chunkPu mirrors the
    // deployed bindings, clockScale stays empty (the performance model
    // short-circuits an empty span), and no timer is ever armed - the
    // event sequence is bit-identical to a build without this layer.
    const FaultInjector injector(cfg.faults, soc.seed ^ cfg.noiseSalt);
    const bool faulty = injector.enabled();
    // Degradation replans share one table + prediction cache per run;
    // free until the first dropout actually replans.
    ReplanPlanner replanner(model_, app);
    RecoveryStats stats;
    std::vector<int> chunk_pu(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        chunk_pu[static_cast<std::size_t>(c)] = session.chunk(c).pu;
    std::vector<bool> pu_alive(static_cast<std::size_t>(num_pus), true);
    std::vector<double> clock_scale; // empty = no throttling anywhere
    if (faulty)
        clock_scale.assign(static_cast<std::size_t>(num_pus), 1.0);
    int completed_tasks = 0;
    bool done = false;

    // queues[c] feeds chunk c; the last queue recycles into queue 0.
    std::vector<std::deque<int>> queues(
        static_cast<std::size_t>(num_chunks));
    // enqueueTime[c][token]: when the token entered queue c (for the
    // timeline's queue-wait attribution).
    std::vector<std::vector<double>> enqueue_time(
        static_cast<std::size_t>(num_chunks),
        std::vector<double>(static_cast<std::size_t>(num_buffers),
                            0.0));
    for (int b = 0; b < num_buffers; ++b)
        queues[0].push_back(b);

    // --- virtual-time engine ------------------------------------------
    // Tag = chunk index; each chunk executes at most one stage at a time,
    // so the chunk's runtime state identifies the running stage.
    std::vector<platform::Load> loads; // reused across rate refreshes
    sim::Engine engine([&](std::span<const sim::ActiveTask> active,
                           std::span<double> rates) {
        loads.resize(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
            const auto& rt = chunks[static_cast<std::size_t>(
                active[i].tag)];
            BT_ASSERT(rt.busy && rt.curStage >= 0,
                      "active task on idle chunk");
            loads[i] = platform::Load{
                &app.stage(rt.curStage).work(),
                chunk_pu[static_cast<std::size_t>(active[i].tag)]};
        }
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0
                / model_.timeOf(i, loads, clock_scale,
                                cfg.ambientBandwidthGbps);
    });

    EnergyMeter meter(model_, [&](std::vector<bool>& active) {
        for (int c = 0; c < num_chunks; ++c)
            if (chunks[static_cast<std::size_t>(c)].busy)
                active[static_cast<std::size_t>(
                    chunk_pu[static_cast<std::size_t>(c)])]
                    = true;
    });
    meter.attach(engine);

    auto coRunnersOf = [&](int self) {
        std::vector<int> pus;
        for (int c = 0; c < num_chunks; ++c)
            if (c != self && chunks[static_cast<std::size_t>(c)].busy)
                pus.push_back(chunk_pu[static_cast<std::size_t>(c)]);
        return pus;
    };
    auto puOf = [&](int c) {
        return chunk_pu[static_cast<std::size_t>(c)];
    };

    // Mutual recursion across the dispatch/recovery state machine.
    std::function<void(int)> tryStart;
    std::function<void(int, int, double)> startAttempt;
    std::function<void(int, TraceEventKind)> handleFailure;
    std::function<void(int)> advanceChunk;

    /** Begin one attempt of (chunk c, stage). On fault-free runs this
     *  is exactly the old startStage: one engine task whose work is the
     *  seeded noise factor. */
    startAttempt = [&](int c, int stage, double queue_wait) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        rt.curStage = stage;
        rt.stageStart = engine.now();
        rt.pending = TraceEvent{rt.curTask,
                                stage,
                                c,
                                puOf(c),
                                queue_wait,
                                engine.now(),
                                0.0,
                                coRunnersOf(c),
                                TraceEventKind::Stage,
                                {}};
        double work = noiseFactor(soc, cfg.noiseSalt, 0, rt.curTask,
                                  stage);
        if (faulty) {
            rt.willFail = injector.transientFailure(rt.curTask, stage,
                                                    puOf(c), rt.attempt);
            const double straggle
                = injector.stragglerFactor(rt.curTask, stage,
                                           rt.attempt);
            if (straggle > 1.0) {
                stats.stragglers += 1;
                session.recordEvent(makeFaultEvent(
                    TraceEventKind::Straggler, rt.curTask, stage, c,
                    puOf(c), engine.now(), engine.now(),
                    "x" + std::to_string(straggle)));
                work *= straggle;
            }
            // Arm the watchdog: abort the attempt when it exceeds its
            // share-agnostic budget. The seq guard retires the timer if
            // the attempt finishes (or is re-dispatched) first.
            const std::uint64_t seq = ++rt.seq;
            const double budget = cfg.recovery.timeoutFactor
                * model_.isolatedTime(app.stage(stage).work(), puOf(c));
            engine.scheduleAt(engine.now() + budget, [&, c, seq] {
                auto& w = chunks[static_cast<std::size_t>(c)];
                if (w.seq != seq || !w.busy)
                    return;
                if (engine.cancelTask(w.simId))
                    w.busyAccum += engine.now() - w.stageStart;
                stats.timeouts += 1;
                handleFailure(c, TraceEventKind::Timeout);
            });
        }
        rt.simId = engine.startTask(static_cast<std::uint64_t>(c), work);
    };

    /** Stage done (or abandoned): move to the next stage or hand the
     *  token downstream / recycle it. */
    advanceChunk = [&](int c) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        if (rt.curStage < session.chunk(c).lastStage) {
            rt.attempt = 0;
            rt.remapped = false;
            startAttempt(c, rt.curStage + 1, 0.0);
            return;
        }
        // Chunk finished: hand the token downstream (or recycle).
        const int token = rt.curToken;
        rt.busy = false;
        rt.curStage = -1;
        rt.curToken = -1;
        rt.curTask = -1;
        rt.attempt = 0;
        rt.remapped = false;

        if (c + 1 < num_chunks) {
            enqueue_time[static_cast<std::size_t>(c + 1)]
                        [static_cast<std::size_t>(token)]
                = engine.now();
            queues[static_cast<std::size_t>(c + 1)].push_back(token);
            tryStart(c + 1);
        } else {
            session.complete(token, engine.now());
            if (++completed_tasks == cfg.numTasks)
                done = true;
            enqueue_time[0][static_cast<std::size_t>(token)]
                = engine.now();
            queues[0].push_back(token);
            tryStart(0);
        }
        tryStart(c); // pull the next token into this chunk
    };

    /** One attempt failed (transient or timeout): retry with backoff,
     *  then fail over to the profiled next-best PU, then abandon. */
    handleFailure = [&](int c, TraceEventKind kind) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        session.recordEvent(makeFaultEvent(kind, rt.curTask, rt.curStage, c,
                                       puOf(c), rt.stageStart,
                                       engine.now()));
        rt.attempt += 1;
        if (rt.attempt <= cfg.recovery.maxRetries) {
            const double backoff = cfg.recovery.backoffBaseSeconds
                * std::pow(cfg.recovery.backoffMultiplier,
                           rt.attempt - 1);
            stats.retries += 1;
            stats.backoffSeconds += backoff;
            const std::uint64_t seq = ++rt.seq;
            engine.scheduleAt(engine.now() + backoff, [&, c, seq] {
                auto& w = chunks[static_cast<std::size_t>(c)];
                if (w.seq != seq)
                    return; // superseded (e.g. dropout re-dispatch)
                session.recordEvent(makeFaultEvent(
                    TraceEventKind::Retry, w.curTask, w.curStage, c,
                    puOf(c), engine.now(), engine.now(),
                    "attempt " + std::to_string(w.attempt)));
                startAttempt(c, w.curStage, 0.0);
            });
            return;
        }
        const ChunkSpec& spec = session.chunk(c);
        if (cfg.recovery.failover && !rt.remapped) {
            const int target
                = nextBestPu(model_, app, spec.firstStage,
                             spec.lastStage, pu_alive, puOf(c));
            if (target >= 0) {
                session.recordEvent(makeFaultEvent(
                    TraceEventKind::Remap, rt.curTask, rt.curStage, c,
                    target, engine.now(), engine.now(),
                    "pu " + std::to_string(puOf(c)) + " -> "
                        + std::to_string(target)));
                stats.remaps += 1;
                chunk_pu[static_cast<std::size_t>(c)] = target;
                rt.remapped = true;
                rt.attempt = 0;
                startAttempt(c, rt.curStage, 0.0);
                return;
            }
        }
        // Out of options: surface the loss and keep the stream moving.
        stats.unrecovered += 1;
        session.recordEvent(makeFaultEvent(TraceEventKind::Abandon,
                                       rt.curTask, rt.curStage, c,
                                       puOf(c), engine.now(),
                                       engine.now()));
        session.recordFailure(rt.curTask, rt.curStage);
        advanceChunk(c);
    };

    tryStart = [&](int c) {
        auto& rt = chunks[static_cast<std::size_t>(c)];
        if (rt.busy)
            return;
        auto& q = queues[static_cast<std::size_t>(c)];
        if (q.empty())
            return;
        if (c == 0 && session.exhausted())
            return; // input stream exhausted
        const int token = q.front();
        q.pop_front();
        rt.busy = true;
        rt.curToken = token;
        if (c == 0)
            session.inject(token, engine.now());
        rt.curTask = session.taskOf(token);
        rt.attempt = 0;
        rt.remapped = false;
        startAttempt(c, session.chunk(c).firstStage,
                     engine.now()
                         - enqueue_time[static_cast<std::size_t>(c)]
                                       [static_cast<std::size_t>(
                                           token)]);
    };

    engine.onComplete([&](sim::TaskId, std::uint64_t tag) {
        const int c = static_cast<int>(tag);
        auto& rt = chunks[static_cast<std::size_t>(c)];
        ++rt.seq; // retire the attempt's watchdog
        rt.busyAccum += engine.now() - rt.stageStart;
        if (faulty && rt.willFail) {
            rt.willFail = false;
            stats.transientFaults += 1;
            handleFailure(c, TraceEventKind::Transient);
            return;
        }
        rt.pending.endSeconds = engine.now();
        session.recordEvent(rt.pending);
        // Kernels run at stage completion, not dispatch: a failed or
        // aborted attempt must commit no side effects, or a retry would
        // re-apply an in-place stage mutation.
        session.runStage(c, rt.curStage, rt.curToken, nullptr, puOf(c));
        advanceChunk(c);
    });

    // --- scheduled fault sources (throttle windows, dropouts) ----------
    std::function<void()> armSlowdown = [&] {
        const double next = injector.nextSlowdownBoundary(engine.now());
        if (!std::isfinite(next))
            return;
        engine.scheduleAt(next, [&] {
            for (int p = 0; p < num_pus; ++p)
                clock_scale[static_cast<std::size_t>(p)]
                    = injector.slowdownFactor(p, engine.now());
            // The active set is untouched but the rate inputs changed:
            // force a re-read before the next event.
            engine.invalidateRates();
            armSlowdown();
        });
    };
    if (faulty) {
        for (int p = 0; p < num_pus; ++p)
            clock_scale[static_cast<std::size_t>(p)]
                = injector.slowdownFactor(p, 0.0);
        armSlowdown();

        for (const auto& d : injector.dropouts()) {
            engine.scheduleAt(d.atSeconds, [&, d] {
                if (!pu_alive[static_cast<std::size_t>(d.pu)])
                    return;
                pu_alive[static_cast<std::size_t>(d.pu)] = false;
                stats.dropouts += 1;
                session.recordEvent(makeFaultEvent(
                    TraceEventKind::Dropout, -1, -1, -1, d.pu,
                    engine.now(), engine.now()));

                std::vector<int> affected;
                for (int c = 0; c < num_chunks; ++c)
                    if (puOf(c) == d.pu)
                        affected.push_back(c);
                if (affected.empty())
                    return;

                // Rebind the dead chunks: degrade re-plans the whole
                // remaining schedule on the survivors; otherwise each
                // chunk just fails over individually.
                if (cfg.recovery.degrade) {
                    const core::Schedule plan
                        = replanner.replan(pu_alive);
                    stats.replans += 1;
                    session.recordEvent(makeFaultEvent(
                        TraceEventKind::Replan, -1, -1, -1, d.pu,
                        engine.now(), engine.now()));
                    const auto assign = plan.toAssignment();
                    for (const int c : affected) {
                        const int target = assign[static_cast<
                            std::size_t>(session.chunk(c).firstStage)];
                        session.recordEvent(makeFaultEvent(
                            TraceEventKind::Remap, -1, -1, c, target,
                            engine.now(), engine.now(),
                            "pu " + std::to_string(d.pu) + " -> "
                                + std::to_string(target)));
                        stats.remaps += 1;
                        chunk_pu[static_cast<std::size_t>(c)] = target;
                    }
                } else {
                    for (const int c : affected) {
                        const ChunkSpec& spec = session.chunk(c);
                        const int target
                            = nextBestPu(model_, app, spec.firstStage,
                                         spec.lastStage, pu_alive,
                                         puOf(c));
                        if (target < 0)
                            continue; // nothing left; attempts abandon
                        session.recordEvent(makeFaultEvent(
                            TraceEventKind::Remap, -1, -1, c, target,
                            engine.now(), engine.now(),
                            "pu " + std::to_string(d.pu) + " -> "
                                + std::to_string(target)));
                        stats.remaps += 1;
                        chunk_pu[static_cast<std::size_t>(c)] = target;
                    }
                }

                // Re-dispatch attempts that were in flight on the dead
                // PU (also cancels pending retries via the seq bump).
                for (const int c : affected) {
                    auto& rt = chunks[static_cast<std::size_t>(c)];
                    if (!rt.busy)
                        continue;
                    if (engine.cancelTask(rt.simId))
                        rt.busyAccum += engine.now() - rt.stageStart;
                    ++rt.seq;
                    rt.willFail = false;
                    rt.attempt = 0;
                    rt.remapped = false;
                    startAttempt(c, rt.curStage, 0.0);
                }
            });
        }
    }

    // Prime the pipeline and run to completion. Fault plans may leave
    // timers scheduled past the last completion (a dropout that never
    // came, the tail of a throttle window), so the faulty path steps
    // until the stream drains instead of draining the timer queue.
    tryStart(0);
    if (faulty) {
        while (!done && engine.step()) {
        }
    } else {
        engine.run();
    }

    std::vector<double> busy(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        busy[static_cast<std::size_t>(c)]
            = chunks[static_cast<std::size_t>(c)].busyAccum;

    RunResult result = session.finish(engine.now(), busy,
                                      /*affinity_applied=*/true);
    result.energyJoules = meter.joules();
    result.recovery = stats;
    return result;
}

} // namespace bt::runtime
