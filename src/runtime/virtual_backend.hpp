/**
 * @file
 * VirtualTimeBackend: the DES time domain of the unified runtime.
 *
 * Time passes on the discrete-event engine; a stage's duration comes
 * from the interference-aware performance model evaluated against the
 * *instantaneous* set of co-running stages, scaled by deterministic
 * seeded measurement noise. Because that set varies over the pipeline's
 * execution (ramp-up, bubbles, chunk imbalance), the measured latency
 * deviates from any static prediction in exactly the way real hardware
 * does - which is what makes the Fig. 5/6 accuracy experiments and the
 * autotuning level meaningful.
 *
 * Optionally, every stage's kernel is also executed functionally on the
 * host so output correctness under any schedule can be validated.
 *
 * The file also hosts the shared virtual-time utilities - the uniform
 * noise-factor derivation and the piecewise-constant energy meter -
 * used by both the static-pipeline policy here and the greedy policy in
 * greedy_runtime.
 */

#ifndef BT_RUNTIME_VIRTUAL_BACKEND_HPP
#define BT_RUNTIME_VIRTUAL_BACKEND_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "core/application.hpp"
#include "core/schedule.hpp"
#include "platform/perf_model.hpp"
#include "runtime/run_types.hpp"

namespace bt::sim {
class Engine;
}

namespace bt::runtime {

/**
 * Integrates SoC energy over a virtual-time run: between engine events
 * the set of active PU classes is constant, so power is piecewise
 * constant and integration is exact.
 */
class EnergyMeter
{
  public:
    /** @param fill_active writes which PU classes are busy right now. */
    EnergyMeter(const platform::PerfModel& model,
                std::function<void(std::vector<bool>&)> fill_active);

    /** Register on @p engine's interval observer. */
    void attach(sim::Engine& engine);

    double joules() const { return joules_; }

  private:
    const platform::PerfModel& model_;
    std::function<void(std::vector<bool>&)> fillActive_;
    std::vector<bool> scratch_;
    double joules_ = 0.0;
};

/** Virtual-time execution of static pipeline schedules. */
class VirtualTimeBackend
{
  public:
    explicit VirtualTimeBackend(const platform::PerfModel& model);

    const platform::PerfModel& model() const { return model_; }

    /** Execute @p app under @p schedule in virtual time. */
    RunResult run(const core::Application& app,
                  const core::Schedule& schedule,
                  const RunConfig& cfg) const;

    /**
     * Deterministic measurement-noise factor for one stage execution,
     * uniform across every virtual-time policy: the device seed, the
     * run's noiseSalt, and a per-policy @p domain tag select a seeded
     * log-normal stream keyed by (task, stage).
     */
    static double noiseFactor(const platform::SocDescription& soc,
                              std::uint64_t salt, std::uint64_t domain,
                              std::int64_t task, int stage);

  private:
    const platform::PerfModel& model_;
};

} // namespace bt::runtime

#endif // BT_RUNTIME_VIRTUAL_BACKEND_HPP
