#include "runtime/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace bt::runtime {

namespace {

/**
 * JSON string escaping per RFC 8259: quote, backslash, the common
 * control-character shorthands, and \u00XX for the rest of the C0
 * range. Stage names are normally plain identifiers, but nothing
 * enforces that - a hostile name must not corrupt the trace file.
 */
std::string
escape(const std::string& s)
{
    static const char* hex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += "\\u00";
                out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
                out += hex[static_cast<unsigned char>(c) & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char*
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Stage:
        return "stage";
      case TraceEventKind::Transient:
        return "transient";
      case TraceEventKind::Timeout:
        return "timeout";
      case TraceEventKind::Straggler:
        return "straggler";
      case TraceEventKind::Retry:
        return "retry";
      case TraceEventKind::Remap:
        return "remap";
      case TraceEventKind::Dropout:
        return "dropout";
      case TraceEventKind::Replan:
        return "replan";
      case TraceEventKind::Abandon:
        return "abandon";
    }
    return "unknown";
}

TraceEvent
makeFaultEvent(TraceEventKind kind, std::int64_t task, int stage,
               int chunk, int pu, double t0, double t1,
               std::string note)
{
    TraceEvent e;
    e.task = task;
    e.stage = stage;
    e.chunk = chunk;
    e.pu = pu;
    e.startSeconds = t0;
    e.endSeconds = t1;
    e.kind = kind;
    e.note = std::move(note);
    return e;
}

double
TraceStats::coResidency(int a, int b) const
{
    const int n = static_cast<int>(perPu.size());
    BT_ASSERT(a >= 0 && a < n && b >= 0 && b < n);
    return coResidencySeconds[static_cast<std::size_t>(a * n + b)];
}

TraceTimeline::TraceTimeline(std::string backend, int num_pus,
                             std::vector<std::string> pu_names,
                             std::vector<std::string> stage_names)
    : backend_(std::move(backend)), numPus_(num_pus),
      puNames_(std::move(pu_names)), stageNames_(std::move(stage_names))
{
    BT_ASSERT(numPus_ > 0);
}

void
TraceTimeline::record(TraceEvent event)
{
    if (event.session < 0)
        event.session = sessionId_;
    events_.push_back(std::move(event));
}

void
TraceTimeline::merge(const TraceTimeline& other, double time_offset)
{
    if (numPus_ == 0) {
        // Default-constructed target: adopt the PU geometry.
        numPus_ = other.numPus_;
        puNames_ = other.puNames_;
        if (backend_ == "none")
            backend_ = "merged";
    }
    BT_ASSERT(other.numPus_ == numPus_,
              "merging timelines of different SoCs (", other.numPus_,
              " vs ", numPus_, " PU classes)");

    // other's name tables travel with its events: its merged tables
    // are appended wholesale, and its own stage names become one more
    // table that other's un-retargeted events are pointed at. A
    // session may therefore span several applications - each merged
    // run keeps resolving against the names it ran with.
    const int tableBase = static_cast<int>(mergedStageNames_.size());
    mergedStageNames_.insert(mergedStageNames_.end(),
                             other.mergedStageNames_.begin(),
                             other.mergedStageNames_.end());
    mergedStageNames_.push_back(other.stageNames_);
    const int ownTable
        = tableBase + static_cast<int>(other.mergedStageNames_.size());

    const int session = other.sessionId_;
    events_.reserve(events_.size() + other.events_.size());
    for (TraceEvent e : other.events_) {
        if (e.session < 0)
            e.session = session;
        e.nameTable = e.nameTable >= 0 ? e.nameTable + tableBase
                                       : ownTable;
        e.startSeconds += time_offset;
        e.endSeconds += time_offset;
        events_.push_back(std::move(e));
    }
}

void
TraceTimeline::sortByStart()
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.startSeconds < b.startSeconds;
                     });
}

TraceStats
TraceTimeline::stats() const
{
    TraceStats st;
    st.perPu.resize(static_cast<std::size_t>(numPus_));
    st.coResidencySeconds.assign(
        static_cast<std::size_t>(numPus_ * numPus_), 0.0);
    if (events_.empty())
        return st;

    double interfered = 0.0;
    double wait = 0.0;
    for (const auto& e : events_) {
        if (!e.isStage()) {
            st.recoveryEvents += 1;
            continue;
        }
        BT_ASSERT(e.pu >= 0 && e.pu < numPus_, "event with bad PU");
        st.events += 1;
        const double d = e.durationSeconds();
        st.makespanSeconds = std::max(st.makespanSeconds, e.endSeconds);
        st.busySeconds += d;
        auto& pu = st.perPu[static_cast<std::size_t>(e.pu)];
        pu.busySeconds += d;
        pu.events += 1;
        if (!e.coRunners.empty())
            interfered += d;
        wait += e.queueWaitSeconds;
    }
    st.interferedFraction
        = st.busySeconds > 0.0 ? interfered / st.busySeconds : 0.0;
    st.meanQueueWaitSeconds
        = st.events > 0 ? wait / static_cast<double>(st.events) : 0.0;

    int used_pus = 0;
    for (auto& pu : st.perPu) {
        if (pu.events == 0)
            continue;
        ++used_pus;
        pu.occupancy = st.makespanSeconds > 0.0
            ? pu.busySeconds / st.makespanSeconds
            : 0.0;
        st.bubbleSeconds += st.makespanSeconds - pu.busySeconds;
    }
    st.bubbleFraction = used_pus > 0 && st.makespanSeconds > 0.0
        ? st.bubbleSeconds / (used_pus * st.makespanSeconds)
        : 0.0;

    // Co-residency: sweep the event boundaries; between consecutive
    // boundaries the busy set is constant.
    std::vector<double> bounds;
    bounds.reserve(events_.size() * 2);
    for (const auto& e : events_) {
        if (!e.isStage())
            continue;
        bounds.push_back(e.startSeconds);
        bounds.push_back(e.endSeconds);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());
    std::vector<double> pu_busy(static_cast<std::size_t>(numPus_));
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        const double t0 = bounds[i];
        const double t1 = bounds[i + 1];
        std::fill(pu_busy.begin(), pu_busy.end(), 0.0);
        for (const auto& e : events_)
            if (e.isStage() && e.startSeconds <= t0
                && e.endSeconds >= t1)
                pu_busy[static_cast<std::size_t>(e.pu)] = 1.0;
        for (int a = 0; a < numPus_; ++a) {
            if (pu_busy[static_cast<std::size_t>(a)] == 0.0)
                continue;
            for (int b = 0; b < numPus_; ++b)
                if (pu_busy[static_cast<std::size_t>(b)] > 0.0)
                    st.coResidencySeconds[static_cast<std::size_t>(
                        a * numPus_ + b)]
                        += t1 - t0;
        }
    }
    return st;
}

std::string
TraceTimeline::stageNameOf(const TraceEvent& e) const
{
    const std::vector<std::string>* names = &stageNames_;
    if (e.nameTable >= 0
        && e.nameTable < static_cast<int>(mergedStageNames_.size()))
        names = &mergedStageNames_[static_cast<std::size_t>(e.nameTable)];
    std::string name
        = e.stage >= 0 && e.stage < static_cast<int>(names->size())
        ? (*names)[static_cast<std::size_t>(e.stage)]
        : "stage" + std::to_string(e.stage);
    if (e.session >= 0)
        name = "s" + std::to_string(e.session) + ":" + name;
    return name;
}

void
TraceTimeline::writeChromeJson(std::ostream& os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"backend\":\""
       << escape(backend_) << "\",\"numPus\":" << numPus_
       << ",\"events\":" << events_.size() << "},\"traceEvents\":[";

    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
    };

    // Name one chrome "thread" per PU class.
    for (int p = 0; p < numPus_; ++p) {
        sep();
        const std::string name
            = p < static_cast<int>(puNames_.size())
            ? puNames_[static_cast<std::size_t>(p)]
            : "pu" + std::to_string(p);
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << p << ",\"args\":{\"name\":\""
           << escape(name) << "\"}}";
    }

    os.precision(17);
    for (const auto& e : events_) {
        sep();
        if (!e.isStage()) {
            // Recovery incidents export as process-scoped instants so
            // they show up as markers above the PU rows.
            os << "{\"name\":\"" << traceEventKindName(e.kind)
               << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\","
               << "\"pid\":0,\"tid\":" << std::max(e.pu, 0)
               << ",\"ts\":" << e.startSeconds * 1e6
               << ",\"args\":{\"task\":" << e.task
               << ",\"stage\":" << e.stage << ",\"chunk\":" << e.chunk
               << ",\"pu\":" << e.pu;
            if (e.session >= 0)
                os << ",\"session\":" << e.session;
            os << ",\"note\":\"" << escape(e.note) << "\"}}";
            continue;
        }
        os << "{\"name\":\"" << escape(stageNameOf(e))
           << "\",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":0,\"tid\":"
           << e.pu << ",\"ts\":" << e.startSeconds * 1e6
           << ",\"dur\":" << e.durationSeconds() * 1e6
           << ",\"args\":{\"task\":" << e.task
           << ",\"stage\":" << e.stage << ",\"chunk\":" << e.chunk;
        if (e.session >= 0)
            os << ",\"session\":" << e.session;
        os << ",\"queue_wait_us\":" << e.queueWaitSeconds * 1e6
           << ",\"co_runners\":[";
        for (std::size_t i = 0; i < e.coRunners.size(); ++i) {
            if (i > 0)
                os << ",";
            os << e.coRunners[i];
        }
        os << "]}}";
    }
    os << "]}";
}

std::string
TraceTimeline::chromeJson() const
{
    std::ostringstream os;
    writeChromeJson(os);
    return os.str();
}

} // namespace bt::runtime
