/**
 * @file
 * Sparse 3x3 convolution over CSR weights (AlexNet-sparse).
 *
 * The weight tensor of each layer is flattened to a CSR matrix of shape
 * outC x (inC*9); each output element gathers input values through the
 * row's column indices (implicit im2col). This is the irregular-access
 * computation the paper contrasts with the dense variant.
 */

#ifndef BT_KERNELS_SPARSE_CONV_HPP
#define BT_KERNELS_SPARSE_CONV_HPP

#include <span>

#include "kernels/csr.hpp"
#include "kernels/exec.hpp"
#include "kernels/tensor.hpp"

namespace bt::kernels {

/**
 * out = relu(sparse_conv3x3(in) + bias), stride 1, padding 1.
 * @param weights CSR of shape outC x (inC*9); column k encodes
 *        (ic, ky, kx) = (k / 9, (k % 9) / 3, k % 3).
 */
void sparseConvCpu(const CpuExec& exec, const ConvShape& shape,
                   std::span<const float> in, const CsrMatrix& weights,
                   std::span<const float> bias, std::span<float> out);

void sparseConvGpu(const GpuExec& exec, const ConvShape& shape,
                   std::span<const float> in, const CsrMatrix& weights,
                   std::span<const float> bias, std::span<float> out);

void sparseConvReference(const ConvShape& shape,
                         std::span<const float> in,
                         const CsrMatrix& weights,
                         std::span<const float> bias,
                         std::span<float> out);

} // namespace bt::kernels

#endif // BT_KERNELS_SPARSE_CONV_HPP
