/**
 * @file
 * Query layer over a built octree: the consumer side of the Octree
 * pipeline (OctoMap-style occupancy lookups, paper Sec. 4.1 motivates
 * the workload with 3-D reconstruction / scene representation).
 *
 * The pipeline's octree stores parent links and child masks; queries
 * need child *navigation*, so OctreeIndex builds a (level, prefix) ->
 * node lookup once per octree and then answers point/cell queries in
 * O(depth).
 */

#ifndef BT_KERNELS_OCTREE_QUERY_HPP
#define BT_KERNELS_OCTREE_QUERY_HPP

#include <array>
#include <cstdint>
#include <unordered_map>

#include "kernels/octree.hpp"

namespace bt::kernels {

/** Immutable query accelerator over one octree. */
class OctreeIndex
{
  public:
    /** Build from a pipeline-produced octree (O(nodes)). */
    OctreeIndex(const OctreeView& tree, std::int64_t num_nodes);

    std::int64_t numNodes() const { return nodes; }

    /** Node index of the cell (level, prefix), or -1 if absent. */
    std::int32_t findCell(int level, std::uint32_t prefix) const;

    /**
     * Deepest existing node whose cell contains @p code; always
     * succeeds (the root contains everything).
     */
    std::int32_t locate(std::uint32_t code) const;

    /** Whether @p code is stored: its max-depth leaf cell exists. */
    bool contains(std::uint32_t code) const;

    /** Whether the point (in [0,1)^3) falls in an occupied leaf. */
    bool containsPoint(float x, float y, float z) const;

    /** Number of nodes at @p level. */
    std::int64_t nodesAtLevel(int level) const;

    /**
     * Count stored codes inside the cell (level, prefix); zero if the
     * cell does not exist.
     */
    std::int64_t codesInCell(int level, std::uint32_t prefix) const;

  private:
    static std::uint64_t
    key(int level, std::uint32_t prefix)
    {
        return (static_cast<std::uint64_t>(level) << 32) | prefix;
    }

    OctreeView tree; // by value: callers often pass a temporary view
    std::int64_t nodes;
    std::unordered_map<std::uint64_t, std::int32_t> cells;
    std::array<std::int64_t, kMaxOctreeLevel + 1> levelCounts{};
};

} // namespace bt::kernels

#endif // BT_KERNELS_OCTREE_QUERY_HPP
