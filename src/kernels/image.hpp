/**
 * @file
 * Image-processing kernels for the feature-extraction case-study
 * application (an ORB-like corner detector): separable Gaussian blur,
 * Sobel gradients, Harris corner response, non-maximum suppression,
 * and BRIEF-style binary descriptors. Every kernel has a CPU
 * (thread-team) and a GPU (SIMT) backend plus a single-threaded
 * reference, like the paper workloads' kernels.
 *
 * Images are single-channel float, row-major, with clamped borders.
 */

#ifndef BT_KERNELS_IMAGE_HPP
#define BT_KERNELS_IMAGE_HPP

#include <cstdint>
#include <span>

#include "kernels/exec.hpp"

namespace bt::kernels {

/** Image geometry. */
struct ImageShape
{
    int w = 0;
    int h = 0;

    std::int64_t
    pixels() const
    {
        return static_cast<std::int64_t>(w) * h;
    }
};

/** 5-tap binomial blur along rows (1 4 6 4 1)/16, clamped borders. */
void blurHCpu(const CpuExec& exec, const ImageShape& shape,
              std::span<const float> in, std::span<float> out);
void blurHGpu(const GpuExec& exec, const ImageShape& shape,
              std::span<const float> in, std::span<float> out);

/** 5-tap binomial blur along columns. */
void blurVCpu(const CpuExec& exec, const ImageShape& shape,
              std::span<const float> in, std::span<float> out);
void blurVGpu(const GpuExec& exec, const ImageShape& shape,
              std::span<const float> in, std::span<float> out);

/**
 * Sobel gradients: writes gx and gy (each pixels() floats).
 */
void sobelCpu(const CpuExec& exec, const ImageShape& shape,
              std::span<const float> in, std::span<float> gx,
              std::span<float> gy);
void sobelGpu(const GpuExec& exec, const ImageShape& shape,
              std::span<const float> in, std::span<float> gx,
              std::span<float> gy);

/**
 * Harris corner response over a 3x3 structure-tensor window:
 * det(M) - kappa * trace(M)^2 with kappa = 0.04.
 */
void harrisCpu(const CpuExec& exec, const ImageShape& shape,
               std::span<const float> gx, std::span<const float> gy,
               std::span<float> response);
void harrisGpu(const GpuExec& exec, const ImageShape& shape,
               std::span<const float> gx, std::span<const float> gy,
               std::span<float> response);

/**
 * Non-maximum suppression: flags[i] = 1 iff response[i] exceeds
 * @p threshold and strictly dominates its 3x3 neighbourhood (border
 * pixels never qualify).
 */
void nmsCpu(const CpuExec& exec, const ImageShape& shape,
            std::span<const float> response, float threshold,
            std::span<std::uint32_t> flags);
void nmsGpu(const GpuExec& exec, const ImageShape& shape,
            std::span<const float> response, float threshold,
            std::span<std::uint32_t> flags);

/** Descriptor size in 32-bit words (128-bit BRIEF-style). */
constexpr int kDescriptorWords = 4;

/**
 * BRIEF-style descriptors: for each corner pixel index in
 * @p corner_idx, compare kDescriptorWords*32 seeded pixel pairs around
 * the corner (clamped) and pack the sign bits.
 */
void briefCpu(const CpuExec& exec, const ImageShape& shape,
              std::span<const float> image,
              std::span<const std::uint32_t> corner_idx,
              std::int64_t num_corners,
              std::span<std::uint32_t> descriptors);
void briefGpu(const GpuExec& exec, const ImageShape& shape,
              std::span<const float> image,
              std::span<const std::uint32_t> corner_idx,
              std::int64_t num_corners,
              std::span<std::uint32_t> descriptors);

/** Single-threaded references for the test suite. */
void blurHReference(const ImageShape& shape, std::span<const float> in,
                    std::span<float> out);
void blurVReference(const ImageShape& shape, std::span<const float> in,
                    std::span<float> out);
void sobelReference(const ImageShape& shape, std::span<const float> in,
                    std::span<float> gx, std::span<float> gy);
void harrisReference(const ImageShape& shape,
                     std::span<const float> gx,
                     std::span<const float> gy,
                     std::span<float> response);
void nmsReference(const ImageShape& shape,
                  std::span<const float> response, float threshold,
                  std::span<std::uint32_t> flags);

} // namespace bt::kernels

#endif // BT_KERNELS_IMAGE_HPP
