#include "kernels/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bt::kernels {

double
CsrMatrix::density() const
{
    const std::int64_t total
        = static_cast<std::int64_t>(rows) * cols;
    return total > 0 ? static_cast<double>(nnz()) / total : 0.0;
}

bool
CsrMatrix::wellFormed() const
{
    if (rows < 0 || cols < 0)
        return false;
    if (rowPtr.size() != static_cast<std::size_t>(rows) + 1)
        return false;
    if (rowPtr.front() != 0
        || rowPtr.back() != static_cast<std::uint32_t>(nnz()))
        return false;
    if (colIdx.size() != values.size())
        return false;
    for (int r = 0; r < rows; ++r) {
        const std::uint32_t lo = rowPtr[static_cast<std::size_t>(r)];
        const std::uint32_t hi = rowPtr[static_cast<std::size_t>(r) + 1];
        if (lo > hi)
            return false;
        for (std::uint32_t k = lo; k < hi; ++k) {
            if (colIdx[k] >= static_cast<std::uint32_t>(cols))
                return false;
            if (k > lo && colIdx[k] <= colIdx[k - 1])
                return false; // columns must be strictly increasing
        }
    }
    return true;
}

CsrMatrix
pruneToCsr(std::span<const float> dense, int rows, int cols,
           double target_density)
{
    BT_ASSERT(rows > 0 && cols > 0);
    BT_ASSERT(target_density > 0.0 && target_density <= 1.0);
    const std::size_t total = static_cast<std::size_t>(rows)
        * static_cast<std::size_t>(cols);
    BT_ASSERT(dense.size() >= total);

    // Find the magnitude threshold keeping ~target_density entries.
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(total) * target_density)));
    std::vector<float> magnitudes(total);
    for (std::size_t i = 0; i < total; ++i)
        magnitudes[i] = std::fabs(dense[i]);
    std::vector<float> sorted = magnitudes;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(
                         total - keep),
                     sorted.end());
    const float threshold = sorted[total - keep];

    // Entries strictly above the threshold are always kept; entries at
    // the threshold fill the remaining budget in scan order (makes tie
    // handling deterministic without dropping larger weights).
    std::size_t above = 0;
    for (std::size_t i = 0; i < total; ++i)
        if (magnitudes[i] > threshold)
            ++above;
    std::size_t tie_budget = keep > above ? keep - above : 0;

    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.resize(static_cast<std::size_t>(rows) + 1, 0);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const std::size_t i = static_cast<std::size_t>(r)
                * static_cast<std::size_t>(cols)
                + static_cast<std::size_t>(c);
            bool keep_it = magnitudes[i] > threshold;
            if (!keep_it && magnitudes[i] == threshold
                && tie_budget > 0) {
                keep_it = true;
                --tie_budget;
            }
            if (keep_it) {
                m.colIdx.push_back(static_cast<std::uint32_t>(c));
                m.values.push_back(dense[i]);
            }
        }
        m.rowPtr[static_cast<std::size_t>(r) + 1]
            = static_cast<std::uint32_t>(m.values.size());
    }
    return m;
}

std::vector<float>
csrToDense(const CsrMatrix& m)
{
    std::vector<float> dense(static_cast<std::size_t>(m.rows)
                             * static_cast<std::size_t>(m.cols), 0.0f);
    for (int r = 0; r < m.rows; ++r) {
        for (std::uint32_t k = m.rowPtr[static_cast<std::size_t>(r)];
             k < m.rowPtr[static_cast<std::size_t>(r) + 1]; ++k) {
            dense[static_cast<std::size_t>(r)
                  * static_cast<std::size_t>(m.cols) + m.colIdx[k]]
                = m.values[k];
        }
    }
    return dense;
}

} // namespace bt::kernels
