#include "kernels/octree.hpp"

#include "common/logging.hpp"

namespace bt::kernels {

namespace {

/** Octree level (depth) reached by a radix node's prefix. */
inline int
levelOf(int prefix_bits)
{
    return prefix_bits / 3;
}

/** Octree level of the radix parent of entity @p node (internal). */
template <typename TreeV>
inline int
parentLevel(const TreeV& tree, std::int32_t parent)
{
    if (parent < 0)
        return 0; // conceptual root prefix is empty
    return levelOf(tree.prefixLen[static_cast<std::size_t>(parent)]);
}

/** Count for internal node i. */
template <typename TreeV>
inline std::uint32_t
internalCount(const TreeV& tree, std::int64_t i)
{
    const auto idx = static_cast<std::size_t>(i);
    const int own = levelOf(tree.prefixLen[idx]);
    const int up = parentLevel(tree, tree.parent[idx]);
    return static_cast<std::uint32_t>(own - up);
}

/** Count for leaf j: extend to the maximum octree depth. */
template <typename TreeV>
inline std::uint32_t
leafCount(const TreeV& tree, std::int64_t j)
{
    const int up = parentLevel(
        tree, tree.leafParent[static_cast<std::size_t>(j)]);
    return static_cast<std::uint32_t>(kMaxOctreeLevel - up);
}

template <typename CountsV>
void
checkCountSizes(std::int64_t k, const CountsV& counts)
{
    BT_ASSERT(k >= 1);
    BT_ASSERT(counts.size() >= static_cast<std::size_t>(2 * k - 1),
              "counts needs 2k-1 entries");
}

template <typename Exec, typename TreeV, typename CountsV>
void
countOctreeNodes(const Exec& exec, const TreeV& tree,
                 std::int64_t k, const CountsV& counts)
{
    checkCountSizes(k, counts);
    // Entities: internal nodes [0, k-1), leaves [k-1, 2k-1).
    exec.forEach(2 * k - 1, [&](std::int64_t e) {
        counts[static_cast<std::size_t>(e)] = e < k - 1
            ? internalCount(tree, e)
            : leafCount(tree, e - (k - 1));
    });
}

/**
 * Octree node index of the deepest cell owned by radix entity @p e, or
 * the root (0) after walking past every zero-count ancestor.
 */
template <typename TreeV, typename CountsV, typename OffsetsV>
inline std::int32_t
octreeNodeOf(const TreeV& tree, const CountsV& counts,
             const OffsetsV& offsets, std::int64_t k,
             std::int32_t radix_parent)
{
    std::int32_t p = radix_parent;
    (void)k;
    while (p >= 0 && counts[static_cast<std::size_t>(p)] == 0)
        p = tree.parent[static_cast<std::size_t>(p)];
    if (p < 0)
        return 0; // synthetic octree root
    return static_cast<std::int32_t>(
        1 + offsets[static_cast<std::size_t>(p)]
        + counts[static_cast<std::size_t>(p)] - 1);
}

template <typename Exec, typename CodesV, typename TreeV,
          typename CountsV, typename OffsetsV, typename OutV>
std::int64_t
buildOctree(const Exec& exec, const CodesV& codes,
            std::int64_t k, const TreeV& tree, const CountsV& counts,
            const OffsetsV& offsets, std::uint64_t total,
            const OutV& out)
{
    const std::int64_t num_nodes = static_cast<std::int64_t>(total) + 1;
    BT_ASSERT(out.prefix.size() >= static_cast<std::size_t>(num_nodes),
              "octree buffers too small");
    BT_ASSERT(out.level.size() >= static_cast<std::size_t>(num_nodes));
    BT_ASSERT(out.parent.size() >= static_cast<std::size_t>(num_nodes));
    BT_ASSERT(out.childMask.size()
              >= static_cast<std::size_t>(num_nodes));
    BT_ASSERT(out.firstCode.size()
              >= static_cast<std::size_t>(num_nodes));
    BT_ASSERT(out.codeCount.size()
              >= static_cast<std::size_t>(num_nodes));

    // Synthetic root covers everything.
    out.prefix[0] = 0;
    out.level[0] = 0;
    out.parent[0] = -1;
    out.childMask[0] = 0;
    out.firstCode[0] = 0;
    out.codeCount[0] = static_cast<std::int32_t>(k);

    // Emit each entity's chain of cells.
    exec.forEach(2 * k - 1, [&](std::int64_t e) {
        const std::uint32_t c = counts[static_cast<std::size_t>(e)];
        if (c == 0)
            return;
        const bool is_leaf = e >= k - 1;
        const std::int64_t leaf = e - (k - 1);
        const std::int32_t radix_parent = is_leaf
            ? tree.leafParent[static_cast<std::size_t>(leaf)]
            : tree.parent[static_cast<std::size_t>(e)];
        const int base_level = parentLevel(tree, radix_parent);
        const std::int64_t lo = is_leaf
            ? leaf
            : tree.first[static_cast<std::size_t>(e)];
        const std::int64_t hi = is_leaf
            ? leaf
            : tree.last[static_cast<std::size_t>(e)];
        const std::uint32_t code
            = codes[static_cast<std::size_t>(lo)];

        std::int32_t up = octreeNodeOf(tree, counts, offsets, k,
                                       radix_parent);
        for (std::uint32_t t = 0; t < c; ++t) {
            const std::int64_t idx = 1
                + static_cast<std::int64_t>(
                    offsets[static_cast<std::size_t>(e)])
                + t;
            const int level = base_level + static_cast<int>(t) + 1;
            const auto i = static_cast<std::size_t>(idx);
            out.prefix[i] = code >> (kMortonBits - 3 * level);
            out.level[i] = level;
            out.parent[i] = up;
            out.childMask[i] = 0;
            out.firstCode[i] = static_cast<std::int32_t>(lo);
            out.codeCount[i] = static_cast<std::int32_t>(hi - lo + 1);
            up = static_cast<std::int32_t>(idx);
        }
    });

    // Child masks: every non-root cell sets its digit bit in its parent.
    exec.forEach(num_nodes - 1, [&](std::int64_t n) {
        const auto i = static_cast<std::size_t>(n + 1);
        const std::uint32_t digit = out.prefix[i] & 7u;
        const auto p = static_cast<std::size_t>(out.parent[i]);
        simt::atomicFetchOr(out.childMask, p, 1u << digit);
    });
    return num_nodes;
}

} // namespace

std::int64_t
maxOctreeNodes(std::int64_t k)
{
    BT_ASSERT(k >= 1);
    // Root + at most kMaxOctreeLevel cells per radix entity.
    return 1 + (2 * k - 1) * kMaxOctreeLevel;
}

void
countOctreeNodesCpu(const CpuExec& exec, const RadixTreeView& tree,
                    std::int64_t k, std::span<std::uint32_t> counts)
{
    countOctreeNodes(exec, tree, k, counts);
}

namespace {

/** Read-only tracked view of the radix tree for the octree stages. */
RadixTreeViewT<simt::TrackedSpan<const std::int32_t>>
trackRadixTree(const RadixTreeView& tree, std::int64_t k,
               simt::LaunchObserver& obs)
{
    const auto internal = static_cast<std::size_t>(k > 1 ? k - 1 : 0);
    auto ro = [&](std::span<const std::int32_t> s, std::size_t n,
                  std::string_view name) {
        return simt::tracked(s.first(n), obs, name);
    };
    return {ro(tree.left, internal, "tree.left"),
            ro(tree.right, internal, "tree.right"),
            ro(tree.parent, internal, "tree.parent"),
            ro(tree.leafParent, static_cast<std::size_t>(k),
               "tree.leaf_parent"),
            ro(tree.prefixLen, internal, "tree.prefix_len"),
            ro(tree.first, internal, "tree.first"),
            ro(tree.last, internal, "tree.last")};
}

} // namespace

void
countOctreeNodesGpu(const GpuExec& exec, const RadixTreeView& tree,
                    std::int64_t k, std::span<std::uint32_t> counts)
{
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "count_octree");
        checkCountSizes(k, counts);
        countOctreeNodes(
            exec, trackRadixTree(tree, k, obs), k,
            simt::tracked(
                counts.first(static_cast<std::size_t>(2 * k - 1)), obs,
                "counts"));
        return;
    }
    countOctreeNodes(exec, tree, k, counts);
}

std::int64_t
buildOctreeCpu(const CpuExec& exec, std::span<const std::uint32_t> codes,
               std::int64_t k, const RadixTreeView& tree,
               std::span<const std::uint32_t> counts,
               std::span<const std::uint32_t> offsets,
               std::uint64_t total, const OctreeView& out)
{
    return buildOctree(exec, codes, k, tree, counts, offsets, total,
                       out);
}

std::int64_t
buildOctreeGpu(const GpuExec& exec, std::span<const std::uint32_t> codes,
               std::int64_t k, const RadixTreeView& tree,
               std::span<const std::uint32_t> counts,
               std::span<const std::uint32_t> offsets,
               std::uint64_t total, const OctreeView& out)
{
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "build_octree");
        const auto entities = static_cast<std::size_t>(2 * k - 1);
        const auto nn
            = static_cast<std::size_t>(total) + 1; // incl. root
        auto u32 = [&](std::span<std::uint32_t> s,
                       std::string_view name) {
            BT_ASSERT(s.size() >= nn, "octree buffers too small");
            return simt::tracked(s.first(nn), obs, name);
        };
        auto i32 = [&](std::span<std::int32_t> s,
                       std::string_view name) {
            BT_ASSERT(s.size() >= nn, "octree buffers too small");
            return simt::tracked(s.first(nn), obs, name);
        };
        const OctreeViewT<simt::TrackedSpan<std::uint32_t>,
                          simt::TrackedSpan<std::int32_t>>
            tracked_out{u32(out.prefix, "octree.prefix"),
                        i32(out.level, "octree.level"),
                        i32(out.parent, "octree.parent"),
                        u32(out.childMask, "octree.child_mask"),
                        i32(out.firstCode, "octree.first_code"),
                        i32(out.codeCount, "octree.code_count")};
        return buildOctree(
            exec,
            simt::tracked(codes.first(static_cast<std::size_t>(k)), obs,
                          "codes"),
            k, trackRadixTree(tree, k, obs),
            simt::tracked(counts.first(entities), obs, "counts"),
            simt::tracked(offsets.first(entities), obs, "offsets"),
            total, tracked_out);
    }
    return buildOctree(exec, codes, k, tree, counts, offsets, total,
                       out);
}

std::string
validateOctree(std::span<const std::uint32_t> codes, std::int64_t k,
               const OctreeView& tree, std::int64_t num_nodes)
{
    if (num_nodes < 1)
        return "no nodes";
    if (tree.level[0] != 0 || tree.parent[0] != -1
        || tree.prefix[0] != 0)
        return "malformed root";

    std::int64_t leaf_code_total = 0;
    for (std::int64_t n = 0; n < num_nodes; ++n) {
        const auto i = static_cast<std::size_t>(n);
        const int level = tree.level[i];
        if (level < 0 || level > kMaxOctreeLevel)
            return "level out of range at node " + std::to_string(n);

        if (n > 0) {
            // Parent indices are not ordered (Karras numbering is
            // positional); levels decreasing by one rules out cycles.
            const std::int32_t p = tree.parent[i];
            if (p < 0 || p >= num_nodes || p == n)
                return "bad parent at node " + std::to_string(n);
            const auto pi = static_cast<std::size_t>(p);
            if (tree.level[pi] != level - 1)
                return "parent level mismatch at node "
                    + std::to_string(n);
            if ((tree.prefix[i] >> 3) != tree.prefix[pi])
                return "parent prefix mismatch at node "
                    + std::to_string(n);
            if (!(tree.childMask[pi]
                  & (1u << (tree.prefix[i] & 7u))))
                return "child mask missing at node "
                    + std::to_string(n);
        }

        // Every covered code must live inside this cell.
        const std::int32_t lo = tree.firstCode[i];
        const std::int32_t cnt = tree.codeCount[i];
        if (lo < 0 || cnt <= 0 || lo + cnt > k)
            return "bad code range at node " + std::to_string(n);
        if (level > 0) {
            const int shift = kMortonBits - 3 * level;
            for (std::int32_t c = lo; c < lo + cnt; ++c)
                if ((codes[static_cast<std::size_t>(c)] >> shift)
                    != tree.prefix[i])
                    return "code outside cell at node "
                        + std::to_string(n);
        }

        if (tree.childMask[i] == 0) {
            // Leaf cells sit at max depth and hold exactly one code.
            if (level != kMaxOctreeLevel)
                return "shallow leaf at node " + std::to_string(n);
            if (cnt != 1)
                return "multi-code leaf at node " + std::to_string(n);
            leaf_code_total += cnt;
        }
    }
    if (leaf_code_total != k)
        return "leaves cover " + std::to_string(leaf_code_total)
            + " of " + std::to_string(k) + " codes";
    return "";
}

} // namespace bt::kernels
