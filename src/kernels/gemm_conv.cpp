#include "kernels/gemm_conv.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "kernels/simd_ops.hpp"

namespace bt::kernels {

void
im2col(const CpuExec& exec, const Shape3& in_shape,
       std::span<const float> in, std::span<float> cols)
{
    const std::int64_t pixels
        = static_cast<std::int64_t>(in_shape.h) * in_shape.w;
    const std::int64_t rows
        = static_cast<std::int64_t>(in_shape.c) * 9;
    BT_ASSERT(in.size() >= static_cast<std::size_t>(in_shape.elems()));
    BT_ASSERT(cols.size() >= static_cast<std::size_t>(rows * pixels));

    if (const detail::SimdOps* ops = detail::simdOps()) {
        ops->im2col(exec, in_shape, in.data(), cols.data());
        return;
    }
    exec.forEach(rows, [&](std::int64_t r) {
        const int ic = static_cast<int>(r / 9);
        const int ky = static_cast<int>((r % 9) / 3);
        const int kx = static_cast<int>(r % 3);
        float* dst = &cols[static_cast<std::size_t>(r * pixels)];
        for (int y = 0; y < in_shape.h; ++y) {
            const int iy = y + ky - 1;
            for (int x = 0; x < in_shape.w; ++x) {
                const int ix = x + kx - 1;
                const bool pad = iy < 0 || iy >= in_shape.h || ix < 0
                    || ix >= in_shape.w;
                dst[y * in_shape.w + x] = pad
                    ? 0.0f
                    : in[static_cast<std::size_t>(
                          in_shape.at(ic, iy, ix))];
            }
        }
    });
}

namespace {

/// Register-blocking factors: MR rows of A are held in scalar registers
/// while NR accumulators per row live in vector registers, so each loaded
/// B strip is reused MR times (the classic GEMM micro-kernel shape).
constexpr int kGemmMr = 4;
constexpr int kGemmNr = 16;

/** Full MR x NR tile: fixed trip counts so the inner loops vectorize. */
inline void
gemmMicroKernel(int n, int k, const float* a0, int lda, const float* b0,
                float* c0)
{
    float acc[kGemmMr][kGemmNr] = {};
    for (int kk = 0; kk < k; ++kk) {
        const float* brow = b0 + static_cast<std::int64_t>(kk) * n;
        for (int mr = 0; mr < kGemmMr; ++mr) {
            const float av = a0[static_cast<std::int64_t>(mr) * lda + kk];
            for (int j = 0; j < kGemmNr; ++j)
                acc[mr][j] += av * brow[j];
        }
    }
    for (int mr = 0; mr < kGemmMr; ++mr) {
        float* crow = c0 + static_cast<std::int64_t>(mr) * n;
        for (int j = 0; j < kGemmNr; ++j)
            crow[j] = acc[mr][j];
    }
}

/** Edge tile with runtime bounds rows x cols (rows <= MR, cols <= NR). */
inline void
gemmEdgeKernel(int n, int k, int rows, int cols, const float* a0, int lda,
               const float* b0, float* c0)
{
    float acc[kGemmMr][kGemmNr] = {};
    for (int kk = 0; kk < k; ++kk) {
        const float* brow = b0 + static_cast<std::int64_t>(kk) * n;
        for (int mr = 0; mr < rows; ++mr) {
            const float av = a0[static_cast<std::int64_t>(mr) * lda + kk];
            for (int j = 0; j < cols; ++j)
                acc[mr][j] += av * brow[j];
        }
    }
    for (int mr = 0; mr < rows; ++mr) {
        float* crow = c0 + static_cast<std::int64_t>(mr) * n;
        for (int j = 0; j < cols; ++j)
            crow[j] = acc[mr][j];
    }
}

} // namespace

void
gemmCpu(const CpuExec& exec, int m, int n, int k,
        std::span<const float> a, std::span<const float> b,
        std::span<float> c)
{
    BT_ASSERT(m > 0 && n > 0 && k > 0);
    BT_ASSERT(a.size() >= static_cast<std::size_t>(m)
                  * static_cast<std::size_t>(k));
    BT_ASSERT(b.size() >= static_cast<std::size_t>(k)
                  * static_cast<std::size_t>(n));
    BT_ASSERT(c.size() >= static_cast<std::size_t>(m)
                  * static_cast<std::size_t>(n));

    if (const detail::SimdOps* ops = detail::simdOps()) {
        ops->gemm(exec, m, n, k, a.data(), b.data(), c.data());
        return;
    }
    // Parallelize over the full (MR-row tile x NR-column strip) grid:
    // each tile still streams B strip-by-strip and reuses every strip MR
    // times, but small-M/large-N shapes (the im2col conv layout) now
    // spread over the team instead of serializing on a handful of row
    // tiles. Output elements are independent, so the decomposition
    // change cannot affect results.
    const std::int64_t tiles = (m + kGemmMr - 1) / kGemmMr;
    const std::int64_t strips = (n + kGemmNr - 1) / kGemmNr;
    exec.forEachBlock(tiles * strips, [&](std::int64_t lo,
                                          std::int64_t hi) {
        for (std::int64_t u = lo; u < hi; ++u) {
            const int r0 = static_cast<int>(u / strips) * kGemmMr;
            const int nc = static_cast<int>(u % strips) * kGemmNr;
            const int rows = std::min(kGemmMr, m - r0);
            const int cols = std::min(kGemmNr, n - nc);
            const float* a0 = &a[static_cast<std::size_t>(r0)
                                 * static_cast<std::size_t>(k)];
            float* c0 = &c[static_cast<std::size_t>(r0)
                               * static_cast<std::size_t>(n)
                           + static_cast<std::size_t>(nc)];
            if (rows == kGemmMr && cols == kGemmNr)
                gemmMicroKernel(n, k, a0, k, b.data() + nc, c0);
            else
                gemmEdgeKernel(n, k, rows, cols, a0, k, b.data() + nc,
                               c0);
        }
    });
}

void
conv2dGemmCpu(const CpuExec& exec, const ConvShape& shape,
              std::span<const float> in, std::span<const float> weights,
              std::span<const float> bias, std::span<float> cols_scratch,
              std::span<float> out)
{
    const std::int64_t pixels
        = static_cast<std::int64_t>(shape.in.h) * shape.in.w;
    const int k = shape.in.c * 9;
    BT_ASSERT(cols_scratch.size()
              >= static_cast<std::size_t>(k) * pixels);
    BT_ASSERT(out.size() >= static_cast<std::size_t>(
        shape.out().elems()));

    im2col(exec, shape.in, in, cols_scratch);
    // weights is exactly the outC x (inC*9) row-major matrix.
    gemmCpu(exec, shape.outC, static_cast<int>(pixels), k, weights,
            cols_scratch, out);

    if (const detail::SimdOps* ops = detail::simdOps()) {
        ops->biasRelu(exec, shape.outC, pixels, bias.data(), out.data());
        return;
    }
    // Bias + ReLU epilogue: track the channel incrementally instead of
    // dividing per element.
    exec.forEachBlock(shape.out().elems(),
                      [&](std::int64_t lo, std::int64_t hi) {
                          int oc = static_cast<int>(lo / pixels);
                          std::int64_t next = (oc + 1) * pixels;
                          for (std::int64_t i = lo; i < hi; ++i) {
                              if (i == next) {
                                  ++oc;
                                  next += pixels;
                              }
                              const float v
                                  = out[static_cast<std::size_t>(i)]
                                  + bias[static_cast<std::size_t>(oc)];
                              out[static_cast<std::size_t>(i)]
                                  = std::max(v, 0.0f);
                          }
                      });
}

} // namespace bt::kernels
