#include "kernels/gemm_conv.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::kernels {

void
im2col(const CpuExec& exec, const Shape3& in_shape,
       std::span<const float> in, std::span<float> cols)
{
    const std::int64_t pixels
        = static_cast<std::int64_t>(in_shape.h) * in_shape.w;
    const std::int64_t rows
        = static_cast<std::int64_t>(in_shape.c) * 9;
    BT_ASSERT(in.size() >= static_cast<std::size_t>(in_shape.elems()));
    BT_ASSERT(cols.size() >= static_cast<std::size_t>(rows * pixels));

    exec.forEach(rows, [&](std::int64_t r) {
        const int ic = static_cast<int>(r / 9);
        const int ky = static_cast<int>((r % 9) / 3);
        const int kx = static_cast<int>(r % 3);
        float* dst = &cols[static_cast<std::size_t>(r * pixels)];
        for (int y = 0; y < in_shape.h; ++y) {
            const int iy = y + ky - 1;
            for (int x = 0; x < in_shape.w; ++x) {
                const int ix = x + kx - 1;
                const bool pad = iy < 0 || iy >= in_shape.h || ix < 0
                    || ix >= in_shape.w;
                dst[y * in_shape.w + x] = pad
                    ? 0.0f
                    : in[static_cast<std::size_t>(
                          in_shape.at(ic, iy, ix))];
            }
        }
    });
}

void
gemmCpu(const CpuExec& exec, int m, int n, int k,
        std::span<const float> a, std::span<const float> b,
        std::span<float> c)
{
    BT_ASSERT(m > 0 && n > 0 && k > 0);
    BT_ASSERT(a.size() >= static_cast<std::size_t>(m)
                  * static_cast<std::size_t>(k));
    BT_ASSERT(b.size() >= static_cast<std::size_t>(k)
                  * static_cast<std::size_t>(n));
    BT_ASSERT(c.size() >= static_cast<std::size_t>(m)
                  * static_cast<std::size_t>(n));

    exec.forEach(m, [&](std::int64_t row) {
        float* crow = &c[static_cast<std::size_t>(row)
                         * static_cast<std::size_t>(n)];
        std::fill(crow, crow + n, 0.0f);
        const float* arow = &a[static_cast<std::size_t>(row)
                               * static_cast<std::size_t>(k)];
        // ikj order: streams B row-wise so the inner loop vectorizes.
        for (int kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float* brow = &b[static_cast<std::size_t>(kk)
                                   * static_cast<std::size_t>(n)];
            for (int col = 0; col < n; ++col)
                crow[col] += av * brow[col];
        }
    });
}

void
conv2dGemmCpu(const CpuExec& exec, const ConvShape& shape,
              std::span<const float> in, std::span<const float> weights,
              std::span<const float> bias, std::span<float> cols_scratch,
              std::span<float> out)
{
    const std::int64_t pixels
        = static_cast<std::int64_t>(shape.in.h) * shape.in.w;
    const int k = shape.in.c * 9;
    BT_ASSERT(cols_scratch.size()
              >= static_cast<std::size_t>(k) * pixels);
    BT_ASSERT(out.size() >= static_cast<std::size_t>(
        shape.out().elems()));

    im2col(exec, shape.in, in, cols_scratch);
    // weights is exactly the outC x (inC*9) row-major matrix.
    gemmCpu(exec, shape.outC, static_cast<int>(pixels), k, weights,
            cols_scratch, out);

    // Bias + ReLU epilogue.
    exec.forEach(shape.out().elems(), [&](std::int64_t i) {
        const int oc = static_cast<int>(i / pixels);
        const float v = out[static_cast<std::size_t>(i)]
            + bias[static_cast<std::size_t>(oc)];
        out[static_cast<std::size_t>(i)] = std::max(v, 0.0f);
    });
}

} // namespace bt::kernels
