/**
 * @file
 * Backend execution adapters for compute kernels.
 *
 * Every stage kernel in this library is written twice, as in the paper's
 * Fig. 3: a host version parallelized over a thread-pool team (the
 * OpenMP stand-in) and a device version written against the SIMT layer
 * (the CUDA/Vulkan stand-in). Map-style kernels share their body via
 * these adapters; cooperative kernels (sort, scan, compaction) have
 * genuinely different host and device algorithms.
 *
 * Both adapters run on the statically-dispatched (templated) tier of the
 * SIMT and thread-pool layers: the kernel body inlines into the block
 * loop and no std::function is constructed on the hot path. GpuExec can
 * additionally be pointed at the erased tier or a shuffled block order,
 * which the dispatch-equivalence tests and microbenchmarks use to prove
 * and price the two tiers against each other.
 */

#ifndef BT_KERNELS_EXEC_HPP
#define BT_KERNELS_EXEC_HPP

#include <cstdint>

#include "sched/thread_pool.hpp"
#include "simt/instrument.hpp"
#include "simt/simt.hpp"

namespace bt::kernels {

/** Host-side data-parallel execution over a (possibly null) team. */
struct CpuExec
{
    sched::ThreadPool* pool = nullptr;

    /** fn(i) for every i in [0, n). */
    template <typename Fn>
    void
    forEach(std::int64_t n, Fn&& fn) const
    {
        if (pool && n > 1) {
            pool->parallelForBlocks(
                0, n, [&fn](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        fn(i);
                });
        } else {
            for (std::int64_t i = 0; i < n; ++i)
                fn(i);
        }
    }

    /** fn(lo, hi) once per contiguous chunk of [0, n). */
    template <typename Fn>
    void
    forEachBlock(std::int64_t n, Fn&& fn) const
    {
        if (pool && n > 1) {
            pool->parallelForBlocks(0, n, std::forward<Fn>(fn));
        } else if (n > 0) {
            fn(std::int64_t{0}, n);
        }
    }
};

/**
 * Device-side data-parallel execution: grid-stride SIMT launch.
 *
 * The default configuration is the fast path: templated serial launch in
 * block order. The remaining knobs select other dispatch strategies with
 * identical results for race-free kernels:
 *  - `pool`    distributes blocks over a host team (functional speed-up);
 *  - `order`   Shuffled visits blocks in a seeded pseudo-random order
 *              (debug: exposes inter-block ordering bugs);
 *  - `erased`  routes through the type-erased simt::Kernel tier, paying
 *              one indirect call per SIMT thread (measurement baseline
 *              and ABI-stable fallback).
 *  - `observer` non-null opts this executor into checked execution
 *              (bt::check): launches run serially under instrumentation
 *              and are re-executed under shuffled block orders, ignoring
 *              the pool/order/erased knobs. Kernels that see a non-null
 *              observer must hand it tracked views of their buffers.
 */
struct GpuExec
{
    enum class Order { Sequential, Shuffled };

    int blockDim = 64;
    int maxGrid = 256;
    sched::ThreadPool* pool = nullptr;
    Order order = Order::Sequential;
    std::uint64_t shuffleSeed = 0;
    bool erased = false;
    simt::LaunchObserver* observer = nullptr;

    template <typename Fn>
    void
    forEach(std::int64_t n, Fn&& fn) const
    {
        if (n <= 0)
            return;
        const auto cfg = simt::LaunchConfig::cover(n, blockDim, maxGrid);
        auto body = [&](const simt::WorkItem& item) {
            simt::gridStride(item, n, fn);
        };
        if (observer) {
            simt::launchChecked(cfg, body, *observer, n,
                                simt::GeometryStyle::GridStride);
            return;
        }
        if (erased) {
            const simt::Kernel kernel = body;
            dispatch(cfg, kernel);
        } else {
            dispatch(cfg, body);
        }
    }

  private:
    template <typename K>
    void
    dispatch(const simt::LaunchConfig& cfg, const K& kernel) const
    {
        if (order == Order::Shuffled)
            simt::launchShuffled(cfg, kernel, shuffleSeed);
        else if (pool)
            simt::launch(*pool, cfg, kernel);
        else
            simt::launch(cfg, kernel);
    }
};

} // namespace bt::kernels

#endif // BT_KERNELS_EXEC_HPP
