/**
 * @file
 * Backend execution adapters for compute kernels.
 *
 * Every stage kernel in this library is written twice, as in the paper's
 * Fig. 3: a host version parallelized over a thread-pool team (the
 * OpenMP stand-in) and a device version written against the SIMT layer
 * (the CUDA/Vulkan stand-in). Map-style kernels share their body via
 * these adapters; cooperative kernels (sort, scan, compaction) have
 * genuinely different host and device algorithms.
 */

#ifndef BT_KERNELS_EXEC_HPP
#define BT_KERNELS_EXEC_HPP

#include <cstdint>

#include "sched/thread_pool.hpp"
#include "simt/simt.hpp"

namespace bt::kernels {

/** Host-side data-parallel execution over a (possibly null) team. */
struct CpuExec
{
    sched::ThreadPool* pool = nullptr;

    /** fn(i) for every i in [0, n). */
    template <typename Fn>
    void
    forEach(std::int64_t n, Fn&& fn) const
    {
        if (pool && n > 1) {
            pool->parallelForBlocks(
                0, n, [&fn](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        fn(i);
                });
        } else {
            for (std::int64_t i = 0; i < n; ++i)
                fn(i);
        }
    }

    /** fn(lo, hi) once per contiguous block (team-sized decomposition). */
    template <typename Fn>
    void
    forEachBlock(std::int64_t n, Fn&& fn) const
    {
        if (pool && n > 1) {
            pool->parallelForBlocks(0, n, std::forward<Fn>(fn));
        } else if (n > 0) {
            fn(std::int64_t{0}, n);
        }
    }
};

/** Device-side data-parallel execution: grid-stride SIMT launch. */
struct GpuExec
{
    int blockDim = 64;
    int maxGrid = 256;

    template <typename Fn>
    void
    forEach(std::int64_t n, Fn&& fn) const
    {
        if (n <= 0)
            return;
        const auto cfg = simt::LaunchConfig::cover(n, blockDim, maxGrid);
        simt::launch(cfg, [&](const simt::WorkItem& item) {
            simt::gridStride(item, n, fn);
        });
    }
};

} // namespace bt::kernels

#endif // BT_KERNELS_EXEC_HPP
