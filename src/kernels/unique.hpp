/**
 * @file
 * Duplicate removal over sorted Morton codes: stage 3 of the Octree
 * pipeline. Both backends use the standard parallel formulation:
 * boundary flags, exclusive scan, compaction scatter.
 */

#ifndef BT_KERNELS_UNIQUE_HPP
#define BT_KERNELS_UNIQUE_HPP

#include <cstdint>
#include <span>

#include "kernels/exec.hpp"

namespace bt::kernels {

/**
 * Compact sorted @p in into @p out, dropping adjacent duplicates.
 * @param flags scratch of at least in.size() entries.
 * @return number of unique codes written.
 */
std::int64_t uniqueCpu(const CpuExec& exec,
                       std::span<const std::uint32_t> in,
                       std::span<std::uint32_t> out,
                       std::span<std::uint32_t> flags);

/** @param observer non-null runs the compaction under bt::check. */
std::int64_t uniqueGpu(std::span<const std::uint32_t> in,
                       std::span<std::uint32_t> out,
                       std::span<std::uint32_t> flags,
                       simt::LaunchObserver* observer = nullptr);

} // namespace bt::kernels

#endif // BT_KERNELS_UNIQUE_HPP
