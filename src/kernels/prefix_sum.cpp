#include "kernels/prefix_sum.hpp"

#include <vector>

#include "common/logging.hpp"
#include "simt/algorithms.hpp"

namespace bt::kernels {

namespace {
constexpr int kCpuBlocks = 16;
} // namespace

std::uint64_t
exclusiveScanCpu(const CpuExec& exec, std::span<const std::uint32_t> in,
                 std::span<std::uint32_t> out)
{
    BT_ASSERT(out.size() >= in.size(), "scan output too small");
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    if (n == 0)
        return 0;

    auto blockRange = [n](int b) {
        return std::pair<std::int64_t, std::int64_t>{
            n * b / kCpuBlocks, n * (b + 1) / kCpuBlocks};
    };

    // Phase 1: per-block sums.
    std::vector<std::uint64_t> partial(kCpuBlocks, 0);
    exec.forEach(kCpuBlocks, [&](std::int64_t b) {
        const auto [lo, hi] = blockRange(static_cast<int>(b));
        std::uint64_t acc = 0;
        for (std::int64_t i = lo; i < hi; ++i)
            acc += in[static_cast<std::size_t>(i)];
        partial[static_cast<std::size_t>(b)] = acc;
    });

    // Phase 2: scan of the block sums (serial, 16 cells).
    std::uint64_t total = 0;
    for (auto& p : partial) {
        const std::uint64_t v = p;
        p = total;
        total += v;
    }

    // Phase 3: per-block rescan with offsets.
    exec.forEach(kCpuBlocks, [&](std::int64_t b) {
        const auto [lo, hi] = blockRange(static_cast<int>(b));
        std::uint64_t run = partial[static_cast<std::size_t>(b)];
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t v = in[static_cast<std::size_t>(i)];
            out[static_cast<std::size_t>(i)]
                = static_cast<std::uint32_t>(run);
            run += v;
        }
    });
    return total;
}

std::uint64_t
exclusiveScanGpu(std::span<const std::uint32_t> in,
                 std::span<std::uint32_t> out,
                 simt::LaunchObserver* observer)
{
    if (observer) {
        const simt::KernelScope scope(*observer, "exclusive_scan");
        return simt::deviceExclusiveScan(
            simt::tracked(in, *observer, "in"),
            simt::tracked(out.first(in.size()), *observer, "out"),
            *observer);
    }
    return simt::deviceExclusiveScan(in, out);
}

} // namespace bt::kernels
