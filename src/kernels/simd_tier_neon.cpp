/**
 * @file
 * NEON kernel tier: the shared bodies instantiated over VecNeon.
 * NEON is the aarch64 baseline, so no extra compile flags; on other
 * targets this TU compiles to the nullptr stub.
 */

#include "kernels/simd_ops.hpp"

#if defined(__ARM_NEON)

#include "common/simd_neon.hpp"
#include "kernels/simd_body.hpp"

namespace bt::kernels::detail {

const SimdOps*
neonOps()
{
    static const SimdOps ops
        = makeSimdOps<simd::VecNeon>(simd::Isa::Neon);
    return &ops;
}

} // namespace bt::kernels::detail

#else

namespace bt::kernels::detail {

const SimdOps*
neonOps()
{
    return nullptr;
}

} // namespace bt::kernels::detail

#endif
