#include "kernels/octree_query.hpp"

#include "common/logging.hpp"
#include "kernels/morton.hpp"

namespace bt::kernels {

OctreeIndex::OctreeIndex(const OctreeView& tree_,
                         std::int64_t num_nodes)
    : tree(tree_), nodes(num_nodes)
{
    BT_ASSERT(num_nodes >= 1, "empty octree");
    cells.reserve(static_cast<std::size_t>(num_nodes) * 2);
    for (std::int64_t n = 0; n < num_nodes; ++n) {
        const auto i = static_cast<std::size_t>(n);
        const int level = tree.level[i];
        BT_ASSERT(level >= 0 && level <= kMaxOctreeLevel);
        const bool inserted
            = cells.emplace(key(level, tree.prefix[i]),
                            static_cast<std::int32_t>(n))
                  .second;
        BT_ASSERT(inserted, "duplicate octree cell at node ", n);
        ++levelCounts[static_cast<std::size_t>(level)];
    }
}

std::int32_t
OctreeIndex::findCell(int level, std::uint32_t prefix) const
{
    if (level < 0 || level > kMaxOctreeLevel)
        return -1;
    const auto it = cells.find(key(level, prefix));
    return it == cells.end() ? -1 : it->second;
}

std::int32_t
OctreeIndex::locate(std::uint32_t code) const
{
    std::int32_t best = 0; // the root always contains the code
    for (int level = 1; level <= kMaxOctreeLevel; ++level) {
        const std::uint32_t prefix
            = code >> (kMortonBits - 3 * level);
        const std::int32_t node = findCell(level, prefix);
        if (node < 0)
            break;
        best = node;
    }
    return best;
}

bool
OctreeIndex::contains(std::uint32_t code) const
{
    return findCell(kMaxOctreeLevel, code) >= 0;
}

bool
OctreeIndex::containsPoint(float x, float y, float z) const
{
    return contains(morton32(x, y, z));
}

std::int64_t
OctreeIndex::nodesAtLevel(int level) const
{
    if (level < 0 || level > kMaxOctreeLevel)
        return 0;
    return levelCounts[static_cast<std::size_t>(level)];
}

std::int64_t
OctreeIndex::codesInCell(int level, std::uint32_t prefix) const
{
    const std::int32_t node = findCell(level, prefix);
    if (node < 0)
        return 0;
    return tree.codeCount[static_cast<std::size_t>(node)];
}

} // namespace bt::kernels
