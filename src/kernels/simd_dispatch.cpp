#include "kernels/simd_ops.hpp"

#include "common/logging.hpp"

namespace bt::kernels {

namespace {

using detail::SimdOps;

const SimdOps*
opsFor(simd::Isa isa)
{
    switch (isa) {
    case simd::Isa::Sse2:
        return detail::sse2Ops();
    case simd::Isa::Avx2:
        return detail::avx2Ops();
    case simd::Isa::Neon:
        return detail::neonOps();
    case simd::Isa::Scalar:
        break;
    }
    return nullptr;
}

bool
tierAvailable(simd::Isa isa)
{
    return isa == simd::Isa::Scalar
        || (simd::cpuSupports(isa) && opsFor(isa) != nullptr);
}

/** Walk the fallback chain until a tier is runnable here. */
simd::Isa
clampToAvailable(simd::Isa want)
{
    simd::Isa got = want;
    while (!tierAvailable(got))
        got = simd::fallbackIsa(got);
    if (got != want) {
        warn("SIMD tier ", simd::isaName(want),
             " unavailable on this host/build; falling back to ",
             simd::isaName(got));
    }
    return got;
}

struct ActiveTier
{
    simd::Isa isa;
    bool forced;
};

ActiveTier
resolveTier()
{
    const simd::SimdRequest req = simd::simdRequestFromEnv();
    const simd::Isa want = req.forced ? req.isa : simd::bestCpuIsa();
    return {clampToAvailable(want), req.forced};
}

ActiveTier&
activeTier()
{
    static ActiveTier tier = resolveTier();
    return tier;
}

} // namespace

SimdTier
simdTier()
{
    const ActiveTier& tier = activeTier();
    return {tier.isa, simd::isaLanes(tier.isa), tier.forced};
}

bool
simdTierAvailable(simd::Isa isa)
{
    return tierAvailable(isa);
}

void
setSimdIsaForTesting(simd::Isa isa)
{
    BT_ASSERT(tierAvailable(isa), "requested SIMD tier not available");
    activeTier() = {isa, true};
}

void
resetSimdIsaForTesting()
{
    activeTier() = resolveTier();
}

namespace detail {

const SimdOps*
simdOps()
{
    return opsFor(activeTier().isa);
}

} // namespace detail

} // namespace bt::kernels
