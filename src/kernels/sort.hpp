/**
 * @file
 * Radix sort of 32-bit Morton codes: stage 2 of the Octree pipeline.
 * The CPU backend is a team-parallel LSD radix sort (per-block digit
 * histograms + stable scatter); the GPU backend is the SIMT device-wide
 * radix sort. This is the stage the paper highlights as pathological on
 * mobile GPUs (Fig. 1).
 */

#ifndef BT_KERNELS_SORT_HPP
#define BT_KERNELS_SORT_HPP

#include <cstdint>
#include <span>

#include "kernels/exec.hpp"

namespace bt::kernels {

/**
 * Sort @p keys ascending (stable). @p scratch needs keys.size() slots.
 */
void radixSortCpu(const CpuExec& exec, std::span<std::uint32_t> keys,
                  std::span<std::uint32_t> scratch);

/** @param observer non-null runs the sort under bt::check. */
void radixSortGpu(std::span<std::uint32_t> keys,
                  std::span<std::uint32_t> scratch,
                  simt::LaunchObserver* observer = nullptr);

} // namespace bt::kernels

#endif // BT_KERNELS_SORT_HPP
