#include "kernels/sort.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "simt/algorithms.hpp"

namespace bt::kernels {

namespace {

constexpr int kRadixBits = 8;
constexpr std::uint32_t kBuckets = 1u << kRadixBits;
constexpr std::uint32_t kMask = kBuckets - 1;

/** Number of parallel blocks the CPU sort decomposes into. */
constexpr int kCpuBlocks = 16;

/**
 * One stable LSD pass on the host: per-block histograms, a bucket-major
 * scan giving each block's scatter base per digit, then an in-order
 * scatter per block.
 */
void
cpuRadixPass(const CpuExec& exec, std::span<const std::uint32_t> in,
             std::span<std::uint32_t> out, int shift)
{
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    std::vector<std::uint32_t> hist(
        static_cast<std::size_t>(kCpuBlocks) * kBuckets, 0);

    auto blockRange = [n](int b) {
        return std::pair<std::int64_t, std::int64_t>{
            n * b / kCpuBlocks, n * (b + 1) / kCpuBlocks};
    };

    // Histogram phase.
    exec.forEach(kCpuBlocks, [&](std::int64_t b) {
        const auto [lo, hi] = blockRange(static_cast<int>(b));
        std::uint32_t* mine
            = &hist[static_cast<std::size_t>(b) * kBuckets];
        for (std::int64_t i = lo; i < hi; ++i)
            ++mine[(in[static_cast<std::size_t>(i)] >> shift) & kMask];
    });

    // Bucket-major exclusive scan (serial; 4096 cells).
    std::uint32_t run = 0;
    for (std::uint32_t d = 0; d < kBuckets; ++d) {
        for (int b = 0; b < kCpuBlocks; ++b) {
            auto& cell
                = hist[static_cast<std::size_t>(b) * kBuckets + d];
            const std::uint32_t v = cell;
            cell = run;
            run += v;
        }
    }

    // Scatter phase: block-local order preserved => stable.
    exec.forEach(kCpuBlocks, [&](std::int64_t b) {
        const auto [lo, hi] = blockRange(static_cast<int>(b));
        std::uint32_t* mine
            = &hist[static_cast<std::size_t>(b) * kBuckets];
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t key = in[static_cast<std::size_t>(i)];
            out[mine[(key >> shift) & kMask]++] = key;
        }
    });
}

} // namespace

void
radixSortCpu(const CpuExec& exec, std::span<std::uint32_t> keys,
             std::span<std::uint32_t> scratch)
{
    BT_ASSERT(scratch.size() >= keys.size(), "sort scratch too small");
    if (keys.size() <= 1)
        return;
    std::span<std::uint32_t> src = keys;
    std::span<std::uint32_t> dst = scratch.subspan(0, keys.size());
    for (int shift = 0; shift < 32; shift += kRadixBits) {
        cpuRadixPass(exec, src, dst, shift);
        std::swap(src, dst);
    }
    // Four passes of 8 bits: result ends back in `keys`.
    static_assert(32 / kRadixBits % 2 == 0,
                  "odd pass count would leave the result in scratch");
}

void
radixSortGpu(std::span<std::uint32_t> keys,
             std::span<std::uint32_t> scratch,
             simt::LaunchObserver* observer)
{
    BT_ASSERT(scratch.size() >= keys.size(), "sort scratch too small");
    if (keys.size() <= 1)
        return;
    if (observer) {
        const simt::KernelScope scope(*observer, "radix_sort");
        simt::deviceRadixSort(
            simt::tracked(keys, *observer, "keys"),
            simt::tracked(scratch.first(keys.size()), *observer,
                          "scratch"),
            *observer, kRadixBits);
        return;
    }
    simt::deviceRadixSort(keys, scratch, kRadixBits);
}

} // namespace bt::kernels
