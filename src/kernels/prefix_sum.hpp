/**
 * @file
 * Exclusive prefix sum: stage 6 of the Octree pipeline (child-offset
 * computation) and a building block of unique/compaction. CPU backend
 * is a block-parallel three-phase scan; GPU backend is the SIMT
 * device-wide scan.
 */

#ifndef BT_KERNELS_PREFIX_SUM_HPP
#define BT_KERNELS_PREFIX_SUM_HPP

#include <cstdint>
#include <span>

#include "kernels/exec.hpp"

namespace bt::kernels {

/**
 * out[i] = sum of in[0..i); in and out may alias.
 * @return the total sum.
 */
std::uint64_t exclusiveScanCpu(const CpuExec& exec,
                               std::span<const std::uint32_t> in,
                               std::span<std::uint32_t> out);

/** @param observer non-null runs the scan under bt::check. */
std::uint64_t exclusiveScanGpu(std::span<const std::uint32_t> in,
                               std::span<std::uint32_t> out,
                               simt::LaunchObserver* observer = nullptr);

} // namespace bt::kernels

#endif // BT_KERNELS_PREFIX_SUM_HPP
