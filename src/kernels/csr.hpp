/**
 * @file
 * Compressed Sparse Row weight matrices for AlexNet-sparse.
 *
 * The paper prunes the convolutional layers with Condensa and stores
 * them in CSR; here magnitude pruning to a target density plays that
 * role (the resulting computation pattern - irregular gathers driven by
 * column indices - is identical, which is what matters for scheduling).
 */

#ifndef BT_KERNELS_CSR_HPP
#define BT_KERNELS_CSR_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace bt::kernels {

/** CSR matrix with 32-bit indices. */
struct CsrMatrix
{
    int rows = 0;
    int cols = 0;
    std::vector<std::uint32_t> rowPtr; ///< rows + 1 entries
    std::vector<std::uint32_t> colIdx; ///< nnz entries
    std::vector<float> values;         ///< nnz entries

    std::int64_t nnz() const
    {
        return static_cast<std::int64_t>(values.size());
    }

    /** Fraction of nonzero entries. */
    double density() const;

    /** Structural sanity: monotone rowPtr, in-range sorted columns. */
    bool wellFormed() const;
};

/**
 * Magnitude-prune @p dense (row-major rows x cols) to approximately
 * @p target_density by zeroing the smallest-magnitude entries, then
 * compress to CSR. Deterministic: ties keep the earlier element.
 */
CsrMatrix pruneToCsr(std::span<const float> dense, int rows, int cols,
                     double target_density);

/** Expand back to a dense row-major matrix (test helper). */
std::vector<float> csrToDense(const CsrMatrix& m);

} // namespace bt::kernels

#endif // BT_KERNELS_CSR_HPP
