/**
 * @file
 * AVX2 kernel tier: the shared bodies instantiated over VecAvx2.
 *
 * This is the only TU built with -mavx2 (see src/kernels/CMakeLists.txt
 * and the BT_ENABLE_AVX2 option); runtime dispatch guarantees it is
 * only entered on CPUs with AVX2. It is deliberately NOT built with
 * -mfma: the bit-identity contract requires unfused multiply+add, and
 * keeping FMA out of the ISA makes contraction impossible rather than
 * merely disabled.
 */

#include "kernels/simd_ops.hpp"

#if defined(__AVX2__)

#include "common/simd_x86.hpp"
#include "kernels/simd_body.hpp"

namespace bt::kernels::detail {

const SimdOps*
avx2Ops()
{
    static const SimdOps ops
        = makeSimdOps<simd::VecAvx2>(simd::Isa::Avx2);
    return &ops;
}

} // namespace bt::kernels::detail

#else

namespace bt::kernels::detail {

const SimdOps*
avx2Ops()
{
    return nullptr;
}

} // namespace bt::kernels::detail

#endif
