#include "kernels/linear.hpp"

#include "common/logging.hpp"
#include "kernels/simd_ops.hpp"

namespace bt::kernels {

namespace {

template <typename InV, typename WV, typename BV>
inline float
dotRow(int in_features, const InV& in, const WV& weights, const BV& bias,
       std::int64_t row)
{
    float acc = bias[static_cast<std::size_t>(row)];
    const std::int64_t base = row * in_features;
    for (int i = 0; i < in_features; ++i)
        acc += weights[static_cast<std::size_t>(base + i)]
            * in[static_cast<std::size_t>(i)];
    return acc;
}

void
checkSizes(int in_features, int out_features, std::span<const float> in,
           std::span<const float> weights, std::span<const float> bias,
           std::span<float> out)
{
    BT_ASSERT(in_features > 0 && out_features > 0);
    BT_ASSERT(in.size() >= static_cast<std::size_t>(in_features));
    BT_ASSERT(weights.size() >= static_cast<std::size_t>(in_features)
                  * static_cast<std::size_t>(out_features));
    BT_ASSERT(bias.size() >= static_cast<std::size_t>(out_features));
    BT_ASSERT(out.size() >= static_cast<std::size_t>(out_features));
}

} // namespace

void
linearCpu(const CpuExec& exec, int in_features, int out_features,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(in_features, out_features, in, weights, bias, out);
    if (const detail::SimdOps* ops = detail::simdOps()) {
        ops->linear(exec, in_features, out_features, in.data(),
                    weights.data(), bias.data(), out.data());
        return;
    }
    exec.forEachBlock(out_features,
                      [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t row = lo; row < hi; ++row)
                              out[static_cast<std::size_t>(row)]
                                  = dotRow(in_features, in, weights, bias,
                                           row);
                      });
}

namespace {

template <typename InV, typename WV, typename BV, typename OutV>
void
linearGpuImpl(const GpuExec& exec, int in_features, int out_features,
              const InV& in, const WV& weights, const BV& bias,
              const OutV& out)
{
    exec.forEach(out_features, [&](std::int64_t row) {
        out[static_cast<std::size_t>(row)]
            = dotRow(in_features, in, weights, bias, row);
    });
}

} // namespace

void
linearGpu(const GpuExec& exec, int in_features, int out_features,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(in_features, out_features, in, weights, bias, out);
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "linear");
        const auto inf = static_cast<std::size_t>(in_features);
        const auto outf = static_cast<std::size_t>(out_features);
        linearGpuImpl(exec, in_features, out_features,
                      simt::tracked(in.first(inf), obs, "in"),
                      simt::tracked(weights.first(inf * outf), obs,
                                    "weights"),
                      simt::tracked(bias.first(outf), obs, "bias"),
                      simt::tracked(out.first(outf), obs, "out"));
        return;
    }
    linearGpuImpl(exec, in_features, out_features, in, weights, bias, out);
}

void
linearReference(int in_features, int out_features,
                std::span<const float> in, std::span<const float> weights,
                std::span<const float> bias, std::span<float> out)
{
    checkSizes(in_features, out_features, in, weights, bias, out);
    for (std::int64_t row = 0; row < out_features; ++row)
        out[static_cast<std::size_t>(row)]
            = dotRow(in_features, in, weights, bias, row);
}

} // namespace bt::kernels
