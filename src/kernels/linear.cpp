#include "kernels/linear.hpp"

#include "common/logging.hpp"

namespace bt::kernels {

namespace {

inline float
dotRow(int in_features, std::span<const float> in,
       std::span<const float> weights, std::span<const float> bias,
       std::int64_t row)
{
    float acc = bias[static_cast<std::size_t>(row)];
    const std::int64_t base = row * in_features;
    for (int i = 0; i < in_features; ++i)
        acc += weights[static_cast<std::size_t>(base + i)]
            * in[static_cast<std::size_t>(i)];
    return acc;
}

void
checkSizes(int in_features, int out_features, std::span<const float> in,
           std::span<const float> weights, std::span<const float> bias,
           std::span<float> out)
{
    BT_ASSERT(in_features > 0 && out_features > 0);
    BT_ASSERT(in.size() >= static_cast<std::size_t>(in_features));
    BT_ASSERT(weights.size() >= static_cast<std::size_t>(in_features)
                  * static_cast<std::size_t>(out_features));
    BT_ASSERT(bias.size() >= static_cast<std::size_t>(out_features));
    BT_ASSERT(out.size() >= static_cast<std::size_t>(out_features));
}

} // namespace

void
linearCpu(const CpuExec& exec, int in_features, int out_features,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(in_features, out_features, in, weights, bias, out);
    exec.forEachBlock(out_features,
                      [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t row = lo; row < hi; ++row)
                              out[static_cast<std::size_t>(row)]
                                  = dotRow(in_features, in, weights, bias,
                                           row);
                      });
}

void
linearGpu(const GpuExec& exec, int in_features, int out_features,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(in_features, out_features, in, weights, bias, out);
    exec.forEach(out_features, [&](std::int64_t row) {
        out[static_cast<std::size_t>(row)]
            = dotRow(in_features, in, weights, bias, row);
    });
}

void
linearReference(int in_features, int out_features,
                std::span<const float> in, std::span<const float> weights,
                std::span<const float> bias, std::span<float> out)
{
    checkSizes(in_features, out_features, in, weights, bias, out);
    for (std::int64_t row = 0; row < out_features; ++row)
        out[static_cast<std::size_t>(row)]
            = dotRow(in_features, in, weights, bias, row);
}

} // namespace bt::kernels
