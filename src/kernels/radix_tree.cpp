#include "kernels/radix_tree.hpp"

#include <algorithm>
#include <bit>

#include "common/logging.hpp"

namespace bt::kernels {

int
commonPrefixBits(std::uint32_t a, std::uint32_t b)
{
    BT_ASSERT(a != b, "common prefix undefined for equal codes");
    // Codes occupy the low 30 bits; measure from bit 29 downwards.
    return std::countl_zero(a ^ b) - (32 - kMortonBits);
}

namespace {

/**
 * Karras delta operator: common prefix of codes[i] and codes[j], or -1
 * when j is out of range. Codes are unique, so no index tie-break is
 * needed.
 */
template <typename CodesV>
inline int
delta(const CodesV& codes, std::int64_t k,
      std::int64_t i, std::int64_t j)
{
    if (j < 0 || j >= k)
        return -1;
    return commonPrefixBits(codes[static_cast<std::size_t>(i)],
                            codes[static_cast<std::size_t>(j)]);
}

/** Construct internal node @p i (Karras Fig. 4 algorithm). */
template <typename CodesV, typename TreeV>
inline void
buildNode(const CodesV& codes, std::int64_t k,
          const TreeV& tree, std::int64_t i)
{
    const int d
        = delta(codes, k, i, i + 1) > delta(codes, k, i, i - 1) ? 1 : -1;

    // Upper bound on the range length in direction d.
    const int delta_min = delta(codes, k, i, i - d);
    std::int64_t lmax = 2;
    while (delta(codes, k, i, i + lmax * d) > delta_min)
        lmax <<= 1;

    // Binary-search the exact other end j.
    std::int64_t l = 0;
    for (std::int64_t t = lmax >> 1; t >= 1; t >>= 1)
        if (delta(codes, k, i, i + (l + t) * d) > delta_min)
            l += t;
    const std::int64_t j = i + l * d;
    const int delta_node = delta(codes, k, i, j);

    // Binary-search the split position (highest differing bit).
    std::int64_t s = 0;
    for (std::int64_t t = (l + 1) / 2; true; t = (t + 1) / 2) {
        if (delta(codes, k, i, i + (s + t) * d) > delta_node)
            s += t;
        if (t == 1)
            break;
    }
    const std::int64_t gamma = i + s * d + std::min(d, 0);

    const std::int64_t lo = std::min(i, j);
    const std::int64_t hi = std::max(i, j);
    const std::int32_t left_child = (lo == gamma)
        ? RadixTreeView::encodeLeaf(static_cast<std::int32_t>(gamma))
        : static_cast<std::int32_t>(gamma);
    const std::int32_t right_child = (hi == gamma + 1)
        ? RadixTreeView::encodeLeaf(static_cast<std::int32_t>(gamma + 1))
        : static_cast<std::int32_t>(gamma + 1);

    const std::size_t idx = static_cast<std::size_t>(i);
    tree.left[idx] = left_child;
    tree.right[idx] = right_child;
    tree.prefixLen[idx] = delta_node;
    tree.first[idx] = static_cast<std::int32_t>(lo);
    tree.last[idx] = static_cast<std::int32_t>(hi);

    // Each child has exactly one parent, so these writes are race-free.
    for (const std::int32_t child : {left_child, right_child}) {
        if (RadixTreeView::isLeaf(child))
            tree.leafParent[static_cast<std::size_t>(
                RadixTreeView::leafIndex(child))]
                = static_cast<std::int32_t>(i);
        else
            tree.parent[static_cast<std::size_t>(child)]
                = static_cast<std::int32_t>(i);
    }
}

template <typename CodesV, typename TreeV>
void
checkSizes(const CodesV& codes, std::int64_t k, const TreeV& tree)
{
    BT_ASSERT(k >= 1, "radix tree needs at least one code");
    BT_ASSERT(codes.size() >= static_cast<std::size_t>(k));
    const auto internal = static_cast<std::size_t>(k > 1 ? k - 1 : 0);
    BT_ASSERT(tree.left.size() >= internal);
    BT_ASSERT(tree.right.size() >= internal);
    BT_ASSERT(tree.parent.size() >= internal);
    BT_ASSERT(tree.prefixLen.size() >= internal);
    BT_ASSERT(tree.first.size() >= internal);
    BT_ASSERT(tree.last.size() >= internal);
    BT_ASSERT(tree.leafParent.size() >= static_cast<std::size_t>(k));
}

template <typename Exec, typename CodesV, typename TreeV>
void
buildRadixTree(const Exec& exec, const CodesV& codes,
               std::int64_t k, const TreeV& tree)
{
    checkSizes(codes, k, tree);
    if (k == 1) {
        tree.leafParent[0] = -1;
        return;
    }
    // The root has no parent; children overwrite the rest.
    tree.parent[0] = -1;
    exec.forEach(k - 1, [&](std::int64_t i) {
        buildNode(codes, k, tree, i);
    });
}

} // namespace

void
buildRadixTreeCpu(const CpuExec& exec,
                  std::span<const std::uint32_t> codes, std::int64_t k,
                  const RadixTreeView& tree)
{
    buildRadixTree(exec, codes, k, tree);
}

void
buildRadixTreeGpu(const GpuExec& exec,
                  std::span<const std::uint32_t> codes, std::int64_t k,
                  const RadixTreeView& tree)
{
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "radix_tree");
        checkSizes(codes, k, tree);
        const auto internal = static_cast<std::size_t>(k > 1 ? k - 1 : 0);
        const auto leaves = static_cast<std::size_t>(k);
        const RadixTreeViewT<simt::TrackedSpan<std::int32_t>> tracked{
            simt::tracked(tree.left.first(internal), obs, "tree.left"),
            simt::tracked(tree.right.first(internal), obs, "tree.right"),
            simt::tracked(tree.parent.first(internal), obs,
                          "tree.parent"),
            simt::tracked(tree.leafParent.first(leaves), obs,
                          "tree.leaf_parent"),
            simt::tracked(tree.prefixLen.first(internal), obs,
                          "tree.prefix_len"),
            simt::tracked(tree.first.first(internal), obs, "tree.first"),
            simt::tracked(tree.last.first(internal), obs, "tree.last")};
        buildRadixTree(exec,
                       simt::tracked(codes.first(leaves), obs, "codes"),
                       k, tracked);
        return;
    }
    buildRadixTree(exec, codes, k, tree);
}

std::string
validateRadixTree(std::span<const std::uint32_t> codes, std::int64_t k,
                  const RadixTreeView& tree)
{
    auto fail = [](const std::string& msg) { return msg; };
    if (k < 1)
        return fail("k < 1");
    if (k == 1)
        return tree.leafParent[0] == -1 ? "" : fail("single-leaf parent");

    for (std::int64_t i = 0; i + 1 < k; ++i)
        if (codes[static_cast<std::size_t>(i)]
            >= codes[static_cast<std::size_t>(i + 1)])
            return fail("codes not strictly increasing");

    const std::int64_t internal = k - 1;
    if (tree.parent[0] != -1)
        return fail("root parent not -1");

    for (std::int64_t i = 0; i < internal; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const std::int64_t lo = tree.first[idx];
        const std::int64_t hi = tree.last[idx];
        if (lo < 0 || hi >= k || lo >= hi)
            return fail("bad range on node " + std::to_string(i));

        // Prefix length must match the codes in the range.
        const int expect = commonPrefixBits(
            codes[static_cast<std::size_t>(lo)],
            codes[static_cast<std::size_t>(hi)]);
        if (tree.prefixLen[idx] != expect)
            return fail("prefix mismatch on node " + std::to_string(i));

        // Children must tile the range and point back to i.
        auto childRange = [&](std::int32_t child,
                              std::int64_t& clo, std::int64_t& chi,
                              std::int32_t& cparent) {
            if (RadixTreeView::isLeaf(child)) {
                const std::int32_t leaf
                    = RadixTreeView::leafIndex(child);
                clo = chi = leaf;
                cparent
                    = tree.leafParent[static_cast<std::size_t>(leaf)];
            } else {
                clo = tree.first[static_cast<std::size_t>(child)];
                chi = tree.last[static_cast<std::size_t>(child)];
                cparent = tree.parent[static_cast<std::size_t>(child)];
            }
        };
        std::int64_t llo, lhi, rlo, rhi;
        std::int32_t lpar, rpar;
        childRange(tree.left[idx], llo, lhi, lpar);
        childRange(tree.right[idx], rlo, rhi, rpar);
        if (llo != lo || rhi != hi || lhi + 1 != rlo)
            return fail("children do not tile node "
                        + std::to_string(i));
        if (lpar != i || rpar != i)
            return fail("child parent mismatch on node "
                        + std::to_string(i));

        // The split must separate at exactly prefixLen bits.
        const int split_cpl = commonPrefixBits(
            codes[static_cast<std::size_t>(lhi)],
            codes[static_cast<std::size_t>(rlo)]);
        if (split_cpl != tree.prefixLen[idx])
            return fail("split depth mismatch on node "
                        + std::to_string(i));
    }
    if (tree.first[0] != 0 || tree.last[0] != k - 1)
        return fail("root does not cover the full range");
    return "";
}

} // namespace bt::kernels
