/**
 * @file
 * Minimal CHW tensor geometry helpers for the CNN kernels. Data lives in
 * flat UsmBuffers; these structs only carry shapes and index math.
 */

#ifndef BT_KERNELS_TENSOR_HPP
#define BT_KERNELS_TENSOR_HPP

#include <cstdint>
#include <span>
#include <string_view>

#include "common/logging.hpp"
#include "simt/instrument.hpp"

namespace bt::kernels {

/** Channel-major 3-D activation shape. */
struct Shape3
{
    int c = 0;
    int h = 0;
    int w = 0;

    std::int64_t
    elems() const
    {
        return static_cast<std::int64_t>(c) * h * w;
    }

    /** Flat index of (channel, row, col). */
    std::int64_t
    at(int ch, int y, int x) const
    {
        return (static_cast<std::int64_t>(ch) * h + y) * w + x;
    }
};

/** 3x3 convolution geometry: stride 1, zero padding 1 (shape-preserving
 *  spatially), square kernels - the configuration AlexNet-for-CIFAR
 *  uses in every conv layer. */
struct ConvShape
{
    Shape3 in;   ///< input activation
    int outC = 0;

    Shape3
    out() const
    {
        return Shape3{outC, in.h, in.w};
    }

    /** Weight elements: outC x inC x 3 x 3. */
    std::int64_t
    weightElems() const
    {
        return static_cast<std::int64_t>(outC) * in.c * 9;
    }
};

/**
 * Checked accessor for a tensor buffer: a TrackedSpan clipped to the
 * tensor's true extent, so any access past @p shape.elems() - even
 * inside an oversized backing buffer - is reported as out-of-bounds
 * with the element index. Shape3::at() keeps doing the index math;
 * the tracked view does the policing.
 */
template <typename T>
inline simt::TrackedSpan<T>
checkedTensor(std::span<T> data, const Shape3& shape,
              simt::LaunchObserver& obs, std::string_view name)
{
    const auto elems = static_cast<std::size_t>(shape.elems());
    BT_ASSERT(data.size() >= elems, "tensor buffer smaller than shape");
    return simt::TrackedSpan<T>(data.subspan(0, elems), obs, name);
}

} // namespace bt::kernels

#endif // BT_KERNELS_TENSOR_HPP
