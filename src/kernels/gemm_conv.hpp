/**
 * @file
 * GEMM-based dense convolution: the classic im2col + matrix-multiply
 * lowering used by optimized CNN libraries, as an alternative backend
 * to the direct loops of conv2d.hpp. Included both as library
 * functionality and as the concrete illustration of the WorkProfile
 * cpuWorkScale knob: the direct host convolution wastes issue slots
 * that this lowering recovers (DESIGN.md, performance model section).
 */

#ifndef BT_KERNELS_GEMM_CONV_HPP
#define BT_KERNELS_GEMM_CONV_HPP

#include <span>

#include "kernels/exec.hpp"
#include "kernels/tensor.hpp"

namespace bt::kernels {

/**
 * Expand @p in (CHW) into the column matrix for 3x3/pad-1 convolution:
 * cols is (inC*9) x (H*W), row-major, with column index = output pixel
 * and row index = (ic*9 + ky*3 + kx). Out-of-bounds taps are zero.
 */
void im2col(const CpuExec& exec, const Shape3& in_shape,
            std::span<const float> in, std::span<float> cols);

/**
 * Row-major matrix multiply C = A * B with A: MxK, B: KxN, C: MxN,
 * parallel over rows of C.
 */
void gemmCpu(const CpuExec& exec, int m, int n, int k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

/**
 * Dense conv via im2col + GEMM (+ bias + ReLU); numerically equivalent
 * to conv2dCpu. @p cols_scratch needs inC*9*H*W floats.
 */
void conv2dGemmCpu(const CpuExec& exec, const ConvShape& shape,
                   std::span<const float> in,
                   std::span<const float> weights,
                   std::span<const float> bias,
                   std::span<float> cols_scratch, std::span<float> out);

} // namespace bt::kernels

#endif // BT_KERNELS_GEMM_CONV_HPP
