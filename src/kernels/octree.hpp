/**
 * @file
 * Octree generation from a radix tree (Karras 2012, Sec. 5): the last
 * three stages of the Octree pipeline.
 *
 *  - Stage 5, *Edge Counting*: each radix-tree node owns the octree
 *    cells whose 3-bit levels its prefix spans: count = floor(l/3) -
 *    floor(l_parent/3); radix leaves extend to the maximum depth (10).
 *  - Stage 6, *Prefix Sum*: exclusive scan of the counts gives each
 *    node's slot range in the output array (kernels/prefix_sum).
 *  - Stage 7, *Build Octree*: every node with a nonzero count emits its
 *    chain of cells and links to the nearest ancestor's deepest cell;
 *    child masks are filled with atomic ORs.
 *
 * The output is a parent-linked octree in structure-of-arrays form with
 * a synthetic root at index 0.
 */

#ifndef BT_KERNELS_OCTREE_HPP
#define BT_KERNELS_OCTREE_HPP

#include <cstdint>
#include <span>
#include <string>

#include "kernels/exec.hpp"
#include "kernels/radix_tree.hpp"

namespace bt::kernels {

/** Maximum octree depth with 30-bit Morton codes. */
constexpr int kMaxOctreeLevel = kMortonBits / 3;

/**
 * Structure-of-arrays octree; index 0 is the root. Templated over the
 * span types so the build kernels run over plain std::span (pooled
 * execution) or simt::TrackedSpan (bt::check instrumented runs).
 */
template <typename U32Span, typename I32Span>
struct OctreeViewT
{
    U32Span prefix;    ///< morton prefix, 3*level bits
    I32Span level;     ///< 0 = root
    I32Span parent;    ///< -1 for the root
    U32Span childMask; ///< bit d = has child digit d
    I32Span firstCode; ///< covered unique-code range
    I32Span codeCount;
};

using OctreeView
    = OctreeViewT<std::span<std::uint32_t>, std::span<std::int32_t>>;

/**
 * Upper bound on octree nodes for @p k unique codes; size the
 * OctreeView buffers with this.
 */
std::int64_t maxOctreeNodes(std::int64_t k);

/**
 * Stage 5: per-radix-node octree cell counts into @p counts
 * (2k-1 entries: internal node i at [i], leaf j at [k-1+j]).
 */
void countOctreeNodesCpu(const CpuExec& exec, const RadixTreeView& tree,
                         std::int64_t k,
                         std::span<std::uint32_t> counts);

void countOctreeNodesGpu(const GpuExec& exec, const RadixTreeView& tree,
                         std::int64_t k,
                         std::span<std::uint32_t> counts);

/**
 * Stage 7: emit octree nodes. @p offsets is the exclusive scan of the
 * stage-5 counts and @p total its sum.
 * @return total octree node count including the root (total + 1).
 */
std::int64_t buildOctreeCpu(const CpuExec& exec,
                            std::span<const std::uint32_t> codes,
                            std::int64_t k, const RadixTreeView& tree,
                            std::span<const std::uint32_t> counts,
                            std::span<const std::uint32_t> offsets,
                            std::uint64_t total, const OctreeView& out);

std::int64_t buildOctreeGpu(const GpuExec& exec,
                            std::span<const std::uint32_t> codes,
                            std::int64_t k, const RadixTreeView& tree,
                            std::span<const std::uint32_t> counts,
                            std::span<const std::uint32_t> offsets,
                            std::uint64_t total, const OctreeView& out);

/**
 * Structural validation: parent/child prefix and level consistency,
 * child-mask agreement, leaf coverage of every unique code.
 * @return empty string when valid.
 */
std::string validateOctree(std::span<const std::uint32_t> codes,
                           std::int64_t k, const OctreeView& tree,
                           std::int64_t num_nodes);

} // namespace bt::kernels

#endif // BT_KERNELS_OCTREE_HPP
