#include "kernels/image.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace bt::kernels {

namespace {

inline int
clampi(int v, int lo, int hi)
{
    return std::min(std::max(v, lo), hi);
}

inline float
at(const ImageShape& s, std::span<const float> img, int x, int y)
{
    x = clampi(x, 0, s.w - 1);
    y = clampi(y, 0, s.h - 1);
    return img[static_cast<std::size_t>(y) * static_cast<std::size_t>(
                   s.w)
               + static_cast<std::size_t>(x)];
}

constexpr float kBinomial[5] = {1.0f / 16, 4.0f / 16, 6.0f / 16,
                                4.0f / 16, 1.0f / 16};

inline float
blurHXY(const ImageShape& s, std::span<const float> in, int x, int y)
{
    float acc = 0.0f;
    for (int t = -2; t <= 2; ++t)
        acc += kBinomial[t + 2] * at(s, in, x + t, y);
    return acc;
}

inline float
blurHAt(const ImageShape& s, std::span<const float> in, std::int64_t i)
{
    return blurHXY(s, in, static_cast<int>(i % s.w),
                   static_cast<int>(i / s.w));
}

inline float
blurVXY(const ImageShape& s, std::span<const float> in, int x, int y)
{
    float acc = 0.0f;
    for (int t = -2; t <= 2; ++t)
        acc += kBinomial[t + 2] * at(s, in, x, y + t);
    return acc;
}

inline float
blurVAt(const ImageShape& s, std::span<const float> in, std::int64_t i)
{
    return blurVXY(s, in, static_cast<int>(i % s.w),
                   static_cast<int>(i / s.w));
}

inline void
sobelXY(const ImageShape& s, std::span<const float> in, int x, int y,
        float& gx, float& gy)
{
    const float tl = at(s, in, x - 1, y - 1);
    const float tc = at(s, in, x, y - 1);
    const float tr = at(s, in, x + 1, y - 1);
    const float ml = at(s, in, x - 1, y);
    const float mr = at(s, in, x + 1, y);
    const float bl = at(s, in, x - 1, y + 1);
    const float bc = at(s, in, x, y + 1);
    const float br = at(s, in, x + 1, y + 1);
    gx = (tr + 2.0f * mr + br) - (tl + 2.0f * ml + bl);
    gy = (bl + 2.0f * bc + br) - (tl + 2.0f * tc + tr);
}

inline void
sobelAt(const ImageShape& s, std::span<const float> in, std::int64_t i,
        float& gx, float& gy)
{
    sobelXY(s, in, static_cast<int>(i % s.w), static_cast<int>(i / s.w),
            gx, gy);
}

inline float
harrisXY(const ImageShape& s, std::span<const float> gx,
         std::span<const float> gy, int x, int y)
{
    float sxx = 0.0f, syy = 0.0f, sxy = 0.0f;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            const float vx = at(s, gx, x + dx, y + dy);
            const float vy = at(s, gy, x + dx, y + dy);
            sxx += vx * vx;
            syy += vy * vy;
            sxy += vx * vy;
        }
    }
    const float det = sxx * syy - sxy * sxy;
    const float trace = sxx + syy;
    return det - 0.04f * trace * trace;
}

inline float
harrisAt(const ImageShape& s, std::span<const float> gx,
         std::span<const float> gy, std::int64_t i)
{
    return harrisXY(s, gx, gy, static_cast<int>(i % s.w),
                    static_cast<int>(i / s.w));
}

inline std::uint32_t
nmsXY(const ImageShape& s, std::span<const float> response,
      float threshold, int x, int y)
{
    if (x < 1 || y < 1 || x >= s.w - 1 || y >= s.h - 1)
        return 0u;
    const float v = at(s, response, x, y);
    if (v <= threshold)
        return 0u;
    for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
            if ((dx || dy) && at(s, response, x + dx, y + dy) >= v)
                return 0u;
    return 1u;
}

inline std::uint32_t
nmsAt(const ImageShape& s, std::span<const float> response,
      float threshold, std::int64_t i)
{
    return nmsXY(s, response, threshold, static_cast<int>(i % s.w),
                 static_cast<int>(i / s.w));
}

/** Seeded BRIEF sampling pattern, identical on every backend. */
struct BriefPattern
{
    // dx/dy pairs for each bit: (p, q) offsets in [-7, 7].
    std::array<std::int8_t, kDescriptorWords * 32 * 4> offsets;

    BriefPattern()
    {
        Rng rng(0xb41ef);
        for (auto& v : offsets)
            v = static_cast<std::int8_t>(
                static_cast<int>(rng.nextBounded(15)) - 7);
    }
};

const BriefPattern&
pattern()
{
    static const BriefPattern p;
    return p;
}

inline void
briefAt(const ImageShape& s, std::span<const float> image,
        std::uint32_t corner, std::uint32_t* out_words)
{
    const int x = static_cast<int>(corner % static_cast<std::uint32_t>(
        s.w));
    const int y = static_cast<int>(corner / static_cast<std::uint32_t>(
        s.w));
    const auto& pat = pattern().offsets;
    for (int word = 0; word < kDescriptorWords; ++word) {
        std::uint32_t bits = 0;
        for (int b = 0; b < 32; ++b) {
            const std::size_t base = static_cast<std::size_t>(
                (word * 32 + b) * 4);
            const float p = at(s, image, x + pat[base],
                               y + pat[base + 1]);
            const float q = at(s, image, x + pat[base + 2],
                               y + pat[base + 3]);
            bits |= static_cast<std::uint32_t>(p < q) << b;
        }
        out_words[word] = bits;
    }
}

void
checkImage(const ImageShape& s, std::span<const float> in,
           std::span<float> out)
{
    BT_ASSERT(s.w >= 1 && s.h >= 1);
    BT_ASSERT(in.size() >= static_cast<std::size_t>(s.pixels()));
    BT_ASSERT(out.size() >= static_cast<std::size_t>(s.pixels()));
}

} // namespace

#define BT_IMAGE_MAP_KERNEL(NAME, BODY)                                \
    void NAME##Cpu(const CpuExec& exec, const ImageShape& shape,       \
                   std::span<const float> in, std::span<float> out)    \
    {                                                                  \
        checkImage(shape, in, out);                                    \
        exec.forEachBlock(                                             \
            shape.pixels(), [&](std::int64_t lo, std::int64_t hi) {    \
                int x = static_cast<int>(lo % shape.w);                \
                int y = static_cast<int>(lo / shape.w);                \
                for (std::int64_t i = lo; i < hi; ++i) {               \
                    out[static_cast<std::size_t>(i)]                   \
                        = BODY##XY(shape, in, x, y);                   \
                    if (++x == shape.w) {                              \
                        x = 0;                                         \
                        ++y;                                           \
                    }                                                  \
                }                                                      \
            });                                                        \
    }                                                                  \
    void NAME##Gpu(const GpuExec& exec, const ImageShape& shape,       \
                   std::span<const float> in, std::span<float> out)    \
    {                                                                  \
        checkImage(shape, in, out);                                    \
        exec.forEach(shape.pixels(), [&](std::int64_t i) {             \
            out[static_cast<std::size_t>(i)] = BODY##At(shape, in, i); \
        });                                                            \
    }                                                                  \
    void NAME##Reference(const ImageShape& shape,                      \
                         std::span<const float> in,                    \
                         std::span<float> out)                         \
    {                                                                  \
        checkImage(shape, in, out);                                    \
        for (std::int64_t i = 0; i < shape.pixels(); ++i)              \
            out[static_cast<std::size_t>(i)] = BODY##At(shape, in, i); \
    }

BT_IMAGE_MAP_KERNEL(blurH, blurH)
BT_IMAGE_MAP_KERNEL(blurV, blurV)

#undef BT_IMAGE_MAP_KERNEL

void
sobelCpu(const CpuExec& exec, const ImageShape& shape,
         std::span<const float> in, std::span<float> gx,
         std::span<float> gy)
{
    checkImage(shape, in, gx);
    checkImage(shape, in, gy);
    exec.forEachBlock(
        shape.pixels(), [&](std::int64_t lo, std::int64_t hi) {
            int x = static_cast<int>(lo % shape.w);
            int y = static_cast<int>(lo / shape.w);
            for (std::int64_t i = lo; i < hi; ++i) {
                sobelXY(shape, in, x, y,
                        gx[static_cast<std::size_t>(i)],
                        gy[static_cast<std::size_t>(i)]);
                if (++x == shape.w) {
                    x = 0;
                    ++y;
                }
            }
        });
}

void
sobelGpu(const GpuExec& exec, const ImageShape& shape,
         std::span<const float> in, std::span<float> gx,
         std::span<float> gy)
{
    checkImage(shape, in, gx);
    checkImage(shape, in, gy);
    exec.forEach(shape.pixels(), [&](std::int64_t i) {
        sobelAt(shape, in, i, gx[static_cast<std::size_t>(i)],
                gy[static_cast<std::size_t>(i)]);
    });
}

void
sobelReference(const ImageShape& shape, std::span<const float> in,
               std::span<float> gx, std::span<float> gy)
{
    checkImage(shape, in, gx);
    for (std::int64_t i = 0; i < shape.pixels(); ++i)
        sobelAt(shape, in, i, gx[static_cast<std::size_t>(i)],
                gy[static_cast<std::size_t>(i)]);
}

void
harrisCpu(const CpuExec& exec, const ImageShape& shape,
          std::span<const float> gx, std::span<const float> gy,
          std::span<float> response)
{
    checkImage(shape, gx, response);
    exec.forEachBlock(
        shape.pixels(), [&](std::int64_t lo, std::int64_t hi) {
            int x = static_cast<int>(lo % shape.w);
            int y = static_cast<int>(lo / shape.w);
            for (std::int64_t i = lo; i < hi; ++i) {
                response[static_cast<std::size_t>(i)]
                    = harrisXY(shape, gx, gy, x, y);
                if (++x == shape.w) {
                    x = 0;
                    ++y;
                }
            }
        });
}

void
harrisGpu(const GpuExec& exec, const ImageShape& shape,
          std::span<const float> gx, std::span<const float> gy,
          std::span<float> response)
{
    checkImage(shape, gx, response);
    exec.forEach(shape.pixels(), [&](std::int64_t i) {
        response[static_cast<std::size_t>(i)]
            = harrisAt(shape, gx, gy, i);
    });
}

void
harrisReference(const ImageShape& shape, std::span<const float> gx,
                std::span<const float> gy, std::span<float> response)
{
    checkImage(shape, gx, response);
    for (std::int64_t i = 0; i < shape.pixels(); ++i)
        response[static_cast<std::size_t>(i)]
            = harrisAt(shape, gx, gy, i);
}

void
nmsCpu(const CpuExec& exec, const ImageShape& shape,
       std::span<const float> response, float threshold,
       std::span<std::uint32_t> flags)
{
    BT_ASSERT(flags.size() >= static_cast<std::size_t>(shape.pixels()));
    exec.forEachBlock(
        shape.pixels(), [&](std::int64_t lo, std::int64_t hi) {
            int x = static_cast<int>(lo % shape.w);
            int y = static_cast<int>(lo / shape.w);
            for (std::int64_t i = lo; i < hi; ++i) {
                flags[static_cast<std::size_t>(i)]
                    = nmsXY(shape, response, threshold, x, y);
                if (++x == shape.w) {
                    x = 0;
                    ++y;
                }
            }
        });
}

void
nmsGpu(const GpuExec& exec, const ImageShape& shape,
       std::span<const float> response, float threshold,
       std::span<std::uint32_t> flags)
{
    BT_ASSERT(flags.size() >= static_cast<std::size_t>(shape.pixels()));
    exec.forEach(shape.pixels(), [&](std::int64_t i) {
        flags[static_cast<std::size_t>(i)]
            = nmsAt(shape, response, threshold, i);
    });
}

void
nmsReference(const ImageShape& shape, std::span<const float> response,
             float threshold, std::span<std::uint32_t> flags)
{
    BT_ASSERT(flags.size() >= static_cast<std::size_t>(shape.pixels()));
    for (std::int64_t i = 0; i < shape.pixels(); ++i)
        flags[static_cast<std::size_t>(i)]
            = nmsAt(shape, response, threshold, i);
}

void
briefCpu(const CpuExec& exec, const ImageShape& shape,
         std::span<const float> image,
         std::span<const std::uint32_t> corner_idx,
         std::int64_t num_corners, std::span<std::uint32_t> descriptors)
{
    BT_ASSERT(descriptors.size() >= static_cast<std::size_t>(
        num_corners * kDescriptorWords));
    exec.forEachBlock(
        num_corners, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t c = lo; c < hi; ++c)
                briefAt(shape, image,
                        corner_idx[static_cast<std::size_t>(c)],
                        &descriptors[static_cast<std::size_t>(
                            c * kDescriptorWords)]);
        });
}

void
briefGpu(const GpuExec& exec, const ImageShape& shape,
         std::span<const float> image,
         std::span<const std::uint32_t> corner_idx,
         std::int64_t num_corners, std::span<std::uint32_t> descriptors)
{
    BT_ASSERT(descriptors.size() >= static_cast<std::size_t>(
        num_corners * kDescriptorWords));
    exec.forEach(num_corners, [&](std::int64_t c) {
        briefAt(shape, image, corner_idx[static_cast<std::size_t>(c)],
                &descriptors[static_cast<std::size_t>(
                    c * kDescriptorWords)]);
    });
}

} // namespace bt::kernels
