/**
 * @file
 * Binary radix tree over sorted unique Morton codes, per Karras 2012
 * ("Maximizing parallelism in the construction of BVHs, octrees, and
 * k-d trees") - stage 4 of the Octree pipeline. Every internal node is
 * constructed independently (in parallel) from the code array via
 * longest-common-prefix comparisons.
 */

#ifndef BT_KERNELS_RADIX_TREE_HPP
#define BT_KERNELS_RADIX_TREE_HPP

#include <cstdint>
#include <span>
#include <string>

#include "kernels/exec.hpp"

namespace bt::kernels {

/**
 * Structure-of-arrays view of a radix tree over K unique codes:
 * K-1 internal nodes (node 0 is the root) and K leaves (the codes).
 * Children encode leaves as ~leafIndex (negative values).
 *
 * Templated over the span type so the same construction kernels run
 * over plain std::span (pooled execution) or simt::TrackedSpan
 * (bt::check instrumented runs).
 */
template <typename I32Span>
struct RadixTreeViewT
{
    I32Span left;       ///< K-1: left child
    I32Span right;      ///< K-1: right child
    I32Span parent;     ///< K-1: internal parent, -1 root
    I32Span leafParent; ///< K: internal parent of leaf
    I32Span prefixLen;  ///< K-1: common prefix bits 0..30
    I32Span first;      ///< K-1: range begin (leaf index)
    I32Span last;       ///< K-1: range end, inclusive

    /** Encode / decode leaf children. */
    static std::int32_t encodeLeaf(std::int32_t leaf) { return ~leaf; }
    static bool isLeaf(std::int32_t child) { return child < 0; }
    static std::int32_t leafIndex(std::int32_t child) { return ~child; }
};

using RadixTreeView = RadixTreeViewT<std::span<std::int32_t>>;

/** Bits in a Morton code (10 octree levels). */
constexpr int kMortonBits = 30;

/**
 * Longest common prefix (in code bits, 0..30) of two 30-bit codes;
 * the codes must be distinct.
 */
int commonPrefixBits(std::uint32_t a, std::uint32_t b);

/**
 * Build the tree over @p codes (sorted, strictly increasing, K >= 1).
 * With K == 1 there are no internal nodes and leafParent[0] = -1.
 * All view spans must be sized as documented on RadixTreeView.
 */
void buildRadixTreeCpu(const CpuExec& exec,
                       std::span<const std::uint32_t> codes,
                       std::int64_t k, const RadixTreeView& tree);

void buildRadixTreeGpu(const GpuExec& exec,
                       std::span<const std::uint32_t> codes,
                       std::int64_t k, const RadixTreeView& tree);

/**
 * Structural validation for tests and application validators: parent /
 * child consistency, range partition, prefix-length agreement with the
 * codes. @return empty string when the tree is well formed.
 */
std::string validateRadixTree(std::span<const std::uint32_t> codes,
                              std::int64_t k, const RadixTreeView& tree);

} // namespace bt::kernels

#endif // BT_KERNELS_RADIX_TREE_HPP
