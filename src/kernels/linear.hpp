/**
 * @file
 * Fully connected (linear) layer: the final classifier stage of both
 * AlexNet variants. out = W x + b, no activation.
 */

#ifndef BT_KERNELS_LINEAR_HPP
#define BT_KERNELS_LINEAR_HPP

#include <span>

#include "kernels/exec.hpp"

namespace bt::kernels {

/**
 * @param weights out_features x in_features, row-major.
 */
void linearCpu(const CpuExec& exec, int in_features, int out_features,
               std::span<const float> in, std::span<const float> weights,
               std::span<const float> bias, std::span<float> out);

void linearGpu(const GpuExec& exec, int in_features, int out_features,
               std::span<const float> in, std::span<const float> weights,
               std::span<const float> bias, std::span<float> out);

void linearReference(int in_features, int out_features,
                     std::span<const float> in,
                     std::span<const float> weights,
                     std::span<const float> bias, std::span<float> out);

} // namespace bt::kernels

#endif // BT_KERNELS_LINEAR_HPP
