/**
 * @file
 * Runtime SIMD dispatch for the host kernel bodies.
 *
 * Each ISA tier is a translation unit compiling the shared templated
 * bodies (simd_body.hpp) against one vector type and exporting a
 * function-pointer table. simdOps() returns the table for the active
 * tier, resolved once from CPU detection and the BT_SIMD environment
 * override (scalar|sse2|avx2|neon|native); nullptr means "run the
 * scalar bodies", which remain in the kernel .cpp files as the
 * fallback and the reference the tests compare against bit-for-bit.
 *
 * The instrumented path (bt::check) is untouched by this table: the
 * checker observes GpuExec launches, whose per-element bodies are the
 * scalar dual instantiation — SIMD dispatch only applies to CpuExec
 * host kernels, so checker coverage is independent of the tier.
 */

#ifndef BT_KERNELS_SIMD_OPS_HPP
#define BT_KERNELS_SIMD_OPS_HPP

#include <cstdint>

#include "common/simd.hpp"
#include "kernels/csr.hpp"
#include "kernels/exec.hpp"
#include "kernels/tensor.hpp"

namespace bt::kernels {

/** The SIMD tier host kernels currently dispatch to. */
struct SimdTier
{
    simd::Isa isa = simd::Isa::Scalar;
    int lanes = 1;
    /** True when BT_SIMD pinned the tier (vs runtime detection). */
    bool forced = false;
};

/** Active tier (stamped into benchmark context, shown by tooling). */
SimdTier simdTier();

/** True when @p isa can run here (CPU support + tier compiled in). */
bool simdTierAvailable(simd::Isa isa);

/**
 * Pin the dispatch tier for in-process comparisons (bit-identity tests,
 * tier benchmarks). Requires simdTierAvailable(isa); not thread-safe —
 * call only while no kernel is executing.
 */
void setSimdIsaForTesting(simd::Isa isa);

/** Restore the tier chosen by BT_SIMD / CPU detection. */
void resetSimdIsaForTesting();

namespace detail {

/** Per-tier kernel entry points over raw pointers. */
struct SimdOps
{
    simd::Isa isa = simd::Isa::Scalar;
    void (*gemm)(const CpuExec&, int m, int n, int k, const float* a,
                 const float* b, float* c) = nullptr;
    void (*conv2d)(const CpuExec&, const ConvShape&, const float* in,
                   const float* weights, const float* bias,
                   float* out) = nullptr;
    void (*sparseConv)(const CpuExec&, const ConvShape&, const float* in,
                       const CsrMatrix& weights, const float* bias,
                       float* out) = nullptr;
    void (*maxpool)(const CpuExec&, const Shape3& in_shape,
                    const float* in, float* out) = nullptr;
    void (*im2col)(const CpuExec&, const Shape3& in_shape,
                   const float* in, float* cols) = nullptr;
    void (*linear)(const CpuExec&, int in_features, int out_features,
                   const float* in, const float* weights,
                   const float* bias, float* out) = nullptr;
    /** out[p*plane + i] = max(out[p*plane + i] + bias[p], 0). */
    void (*biasRelu)(const CpuExec&, int planes, std::int64_t plane,
                     const float* bias, float* out) = nullptr;
};

/** Ops for the active tier; nullptr selects the scalar bodies. */
const SimdOps* simdOps();

/** Per-tier tables; nullptr when not compiled for this target. */
const SimdOps* sse2Ops();
const SimdOps* avx2Ops();
const SimdOps* neonOps();

} // namespace detail

} // namespace bt::kernels

#endif // BT_KERNELS_SIMD_OPS_HPP
