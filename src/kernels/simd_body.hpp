/**
 * @file
 * Vectorized host kernel bodies, templated over a Vec implementation
 * (common/simd.hpp). Included only by the per-ISA tier TUs
 * (simd_tier_*.cpp); everything here is an implementation detail of
 * the SimdOps dispatch table.
 *
 * Bit-identity discipline (tested exhaustively in tests/test_simd.cpp):
 * every kernel vectorizes across *independent output elements* — W
 * adjacent pixels of a row saxpy, W output rows of a linear layer, W
 * C-matrix columns of a GEMM register tile — so each output element
 * accumulates exactly the scalar body's terms in exactly the scalar
 * order. Combined with Vec's unfused mulAdd and std::max-semantics max
 * (see simd.hpp), outputs are bit-identical to the scalar fallback at
 * any tier, thread count, and shape.
 *
 * The GEMM additionally cache-blocks over K (kGemmKc panels): panel
 * results accumulate into C memory, and since float loads/stores are
 * exact, splitting the k loop across panels preserves the per-element
 * ascending-k accumulation order.
 */

#ifndef BT_KERNELS_SIMD_BODY_HPP
#define BT_KERNELS_SIMD_BODY_HPP

#include <algorithm>
#include <cstdint>

#include "kernels/simd_ops.hpp"

namespace bt::kernels::detail {

// ---------------------------------------------------------------- rows
//
// Tails: masked partials when the ISA has them in registers
// (V::fastPartial), otherwise a plain scalar remainder — the emulated
// partials bounce through a stack buffer and eat a store-forwarding
// stall per call, which dominates short rows. Both tails compute the
// identical per-element expression, so outputs match bit-for-bit.

template <typename V>
inline void
fillRow(float* dst, float value, std::int64_t n)
{
    const V b = V::broadcast(value);
    std::int64_t i = 0;
    for (; i + V::width <= n; i += V::width)
        b.storeu(dst + i);
    if constexpr (V::fastPartial) {
        if (i < n)
            b.storePartial(dst + i, static_cast<int>(n - i));
    } else {
        for (; i < n; ++i)
            dst[i] = value;
    }
}

template <typename V>
inline void
copyRow(float* dst, const float* src, std::int64_t n)
{
    std::int64_t i = 0;
    for (; i + V::width <= n; i += V::width)
        V::loadu(src + i).storeu(dst + i);
    if constexpr (V::fastPartial) {
        if (i < n) {
            const int r = static_cast<int>(n - i);
            V::loadPartial(src + i, r).storePartial(dst + i, r);
        }
    } else {
        for (; i < n; ++i)
            dst[i] = src[i];
    }
}

/** dst[i] += w * src[i] — the shifted-tap inner loop of both convs. */
template <typename V>
inline void
saxpyRow(float* dst, const float* src, float w, std::int64_t n)
{
    const V vw = V::broadcast(w);
    std::int64_t i = 0;
    // Two accumulator streams per iteration: a row is a chain of
    // independent loads/stores, and the extra stream keeps the FP add
    // port busy while the first iteration's store retires.
    for (; i + 2 * V::width <= n; i += 2 * V::width) {
        V::mulAdd(vw, V::loadu(src + i), V::loadu(dst + i))
            .storeu(dst + i);
        V::mulAdd(vw, V::loadu(src + i + V::width),
                  V::loadu(dst + i + V::width))
            .storeu(dst + i + V::width);
    }
    for (; i + V::width <= n; i += V::width) {
        V::mulAdd(vw, V::loadu(src + i), V::loadu(dst + i))
            .storeu(dst + i);
    }
    if constexpr (V::fastPartial) {
        if (i < n) {
            const int r = static_cast<int>(n - i);
            V::mulAdd(vw, V::loadPartial(src + i, r),
                      V::loadPartial(dst + i, r))
                .storePartial(dst + i, r);
        }
    } else {
        for (; i < n; ++i) {
            const float prod = w * src[i];
            dst[i] = prod + dst[i];
        }
    }
}

/** dst[i] = max(dst[i], 0) — the ReLU epilogue. */
template <typename V>
inline void
reluRow(float* dst, std::int64_t n)
{
    const V z = V::zero();
    std::int64_t i = 0;
    for (; i + V::width <= n; i += V::width)
        V::max(V::loadu(dst + i), z).storeu(dst + i);
    if constexpr (V::fastPartial) {
        if (i < n) {
            const int r = static_cast<int>(n - i);
            V::max(V::loadPartial(dst + i, r), z)
                .storePartial(dst + i, r);
        }
    } else {
        for (; i < n; ++i)
            dst[i] = dst[i] < 0.0f ? 0.0f : dst[i];
    }
}

// ---------------------------------------------------------------- conv

template <typename V>
void
conv2dCpuV(const CpuExec& exec, const ConvShape& shape, const float* in,
           const float* weights, const float* bias, float* out)
{
    const int h = shape.in.h;
    const int w = shape.in.w;
    const std::int64_t plane = static_cast<std::int64_t>(h) * w;
    exec.forEachBlock(shape.outC, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t oc = lo; oc < hi; ++oc) {
            float* dst_plane = out + oc * plane;
            fillRow<V>(dst_plane, bias[oc], plane);
            const float* wrow = weights
                + oc * static_cast<std::int64_t>(shape.in.c) * 9;
            for (int ic = 0; ic < shape.in.c; ++ic, wrow += 9) {
                const float* src_plane = in + ic * plane;
                for (int ky = 0; ky < 3; ++ky) {
                    const int dy = ky - 1;
                    const int y0 = dy < 0 ? -dy : 0;
                    const int y1 = dy > 0 ? h - dy : h;
                    for (int kx = 0; kx < 3; ++kx) {
                        const int dx = kx - 1;
                        const int x0 = dx < 0 ? -dx : 0;
                        const int x1 = dx > 0 ? w - dx : w;
                        const float wv = wrow[ky * 3 + kx];
                        for (int y = y0; y < y1; ++y) {
                            const float* src = src_plane
                                + static_cast<std::int64_t>(y + dy) * w
                                + dx;
                            float* dst = dst_plane
                                + static_cast<std::int64_t>(y) * w;
                            saxpyRow<V>(dst + x0, src + x0, wv, x1 - x0);
                        }
                    }
                }
            }
            reluRow<V>(dst_plane, plane);
        }
    });
}

template <typename V>
void
sparseConvCpuV(const CpuExec& exec, const ConvShape& shape,
               const float* in, const CsrMatrix& weights,
               const float* bias, float* out)
{
    const int h = shape.in.h;
    const int w = shape.in.w;
    const std::int64_t plane = static_cast<std::int64_t>(h) * w;
    exec.forEachBlock(shape.outC, [&](std::int64_t lo_oc,
                                      std::int64_t hi_oc) {
        for (std::int64_t oc = lo_oc; oc < hi_oc; ++oc) {
            float* dst_plane = out + oc * plane;
            fillRow<V>(dst_plane, bias[oc], plane);
            const std::uint32_t lo
                = weights.rowPtr[static_cast<std::size_t>(oc)];
            const std::uint32_t hi
                = weights.rowPtr[static_cast<std::size_t>(oc) + 1];
            for (std::uint32_t k = lo; k < hi; ++k) {
                const std::uint32_t col = weights.colIdx[k];
                const int ic = static_cast<int>(col / 9);
                const int dy = static_cast<int>((col % 9) / 3) - 1;
                const int dx = static_cast<int>(col % 3) - 1;
                const float wv = weights.values[k];
                const float* src_plane = in + ic * plane;
                const int y0 = dy < 0 ? -dy : 0;
                const int y1 = dy > 0 ? h - dy : h;
                const int x0 = dx < 0 ? -dx : 0;
                const int x1 = dx > 0 ? w - dx : w;
                for (int y = y0; y < y1; ++y) {
                    const float* src = src_plane
                        + static_cast<std::int64_t>(y + dy) * w + dx;
                    float* dst = dst_plane
                        + static_cast<std::int64_t>(y) * w;
                    saxpyRow<V>(dst + x0, src + x0, wv, x1 - x0);
                }
            }
            reluRow<V>(dst_plane, plane);
        }
    });
}

// ------------------------------------------------------------- maxpool

template <typename V>
void
maxpoolCpuV(const CpuExec& exec, const Shape3& in_shape, const float* in,
            float* out)
{
    const int oh = in_shape.h / 2;
    const int ow = in_shape.w / 2;
    const std::int64_t rows = static_cast<std::int64_t>(in_shape.c) * oh;
    exec.forEachBlock(rows, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t r = lo; r < hi; ++r) {
            const std::int64_t c = r / oh;
            const std::int64_t y = r - c * oh;
            const float* row0 = in
                + (c * in_shape.h + 2 * y) * in_shape.w;
            const float* row1 = row0 + in_shape.w;
            float* dst = out + r * ow;
            int x = 0;
            for (; x + V::width <= ow; x += V::width) {
                V e0;
                V o0;
                V e1;
                V o1;
                V::deinterleave2(row0 + 2 * x, e0, o0);
                V::deinterleave2(row1 + 2 * x, e1, o1);
                V::max(V::max(e0, o0), V::max(e1, o1)).storeu(dst + x);
            }
            for (; x < ow; ++x) {
                const float a
                    = row0[2 * x] < row0[2 * x + 1] ? row0[2 * x + 1]
                                                    : row0[2 * x];
                const float b
                    = row1[2 * x] < row1[2 * x + 1] ? row1[2 * x + 1]
                                                    : row1[2 * x];
                dst[x] = a < b ? b : a;
            }
        }
    });
}

// -------------------------------------------------------------- im2col

template <typename V>
void
im2colV(const CpuExec& exec, const Shape3& in_shape, const float* in,
        float* cols)
{
    const int h = in_shape.h;
    const int w = in_shape.w;
    const std::int64_t pixels = static_cast<std::int64_t>(h) * w;
    const std::int64_t rows = static_cast<std::int64_t>(in_shape.c) * 9;
    exec.forEach(rows, [&](std::int64_t r) {
        const int ic = static_cast<int>(r / 9);
        const int dy = static_cast<int>((r % 9) / 3) - 1;
        const int dx = static_cast<int>(r % 3) - 1;
        const int x0 = dx < 0 ? -dx : 0;
        const int x1 = dx > 0 ? w - dx : w;
        float* dst = cols + r * pixels;
        const float* src_plane = in + static_cast<std::int64_t>(ic) * pixels;
        for (int y = 0; y < h; ++y) {
            float* drow = dst + static_cast<std::int64_t>(y) * w;
            const int iy = y + dy;
            if (iy < 0 || iy >= h) {
                fillRow<V>(drow, 0.0f, w);
                continue;
            }
            const float* srow = src_plane
                + static_cast<std::int64_t>(iy) * w + dx;
            for (int x = 0; x < x0; ++x)
                drow[x] = 0.0f;
            copyRow<V>(drow + x0, srow + x0, x1 - x0);
            for (int x = x1; x < w; ++x)
                drow[x] = 0.0f;
        }
    });
}

// -------------------------------------------------------------- linear

template <typename V>
void
linearCpuV(const CpuExec& exec, int in_features, int out_features,
           const float* in, const float* weights, const float* bias,
           float* out)
{
    exec.forEachBlock(out_features, [&](std::int64_t lo,
                                        std::int64_t hi) {
        std::int64_t row = lo;
        // W output rows at a time: acc lane r is exactly the scalar
        // dotRow for row+r (bias start, ascending i, unfused ops).
        for (; row + V::width <= hi; row += V::width) {
            V acc = V::loadu(bias + row);
            const float* wbase = weights + row * in_features;
            for (int i = 0; i < in_features; ++i) {
                acc = V::mulAdd(V::gatherStride(wbase + i, in_features),
                                V::broadcast(in[i]), acc);
            }
            acc.storeu(out + row);
        }
        for (; row < hi; ++row) {
            float acc = bias[row];
            const float* wrow = weights + row * in_features;
            for (int i = 0; i < in_features; ++i) {
                acc += wrow[i] * in[i];
            }
            out[row] = acc;
        }
    });
}

// ------------------------------------------------------- bias epilogue

template <typename V>
void
biasReluPlanesV(const CpuExec& exec, int planes, std::int64_t plane,
                const float* bias, float* out)
{
    exec.forEachBlock(planes, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
            const V vb = V::broadcast(bias[p]);
            const V z = V::zero();
            float* dst = out + p * plane;
            std::int64_t i = 0;
            for (; i + V::width <= plane; i += V::width) {
                V::max(V::add(V::loadu(dst + i), vb), z)
                    .storeu(dst + i);
            }
            if constexpr (V::fastPartial) {
                if (i < plane) {
                    const int r = static_cast<int>(plane - i);
                    V::max(V::add(V::loadPartial(dst + i, r), vb), z)
                        .storePartial(dst + i, r);
                }
            } else {
                for (; i < plane; ++i) {
                    const float s = dst[i] + bias[p];
                    dst[i] = s < 0.0f ? 0.0f : s;
                }
            }
        }
    });
}

// ---------------------------------------------------------------- gemm

/// Register tile: kGemmVMr rows of C, 2 vectors (2*W columns) per row.
inline constexpr int kGemmVMr = 4;
/// K cache-block: one packed A/B panel's K extent (fits L1/L2 streams).
inline constexpr int kGemmKc = 256;

/**
 * Scalar remainder tile for the columns right of the last full vector
 * strip (cols < 2*W <= 16). `first` selects fresh accumulators vs
 * continuing from the previous K panel's partial sums in C.
 */
inline void
gemmPanelEdge(std::int64_t n, int kblk, int rows, int cols,
              const float* a0, std::int64_t lda, const float* b0,
              float* c0, bool first)
{
    float acc[kGemmVMr][16];
    for (int mr = 0; mr < rows; ++mr) {
        for (int j = 0; j < cols; ++j)
            acc[mr][j] = first ? 0.0f : c0[mr * n + j];
    }
    for (int kk = 0; kk < kblk; ++kk) {
        const float* brow = b0 + static_cast<std::int64_t>(kk) * n;
        for (int mr = 0; mr < rows; ++mr) {
            const float av = a0[mr * lda + kk];
            for (int j = 0; j < cols; ++j)
                acc[mr][j] += av * brow[j];
        }
    }
    for (int mr = 0; mr < rows; ++mr) {
        for (int j = 0; j < cols; ++j)
            c0[mr * n + j] = acc[mr][j];
    }
}

/**
 * Full MR x 2W register tile over a packed A tile ([kk][MR], aligned)
 * and packed B strip ([kk][2W], aligned).
 */
template <typename V, int MR>
inline void
gemmMicroPacked(int kblk, const float* ap, const float* bp, float* c0,
                std::int64_t n, bool first)
{
    constexpr int W = V::width;
    V acc0[MR];
    V acc1[MR];
    for (int mr = 0; mr < MR; ++mr) {
        if (first) {
            acc0[mr] = V::zero();
            acc1[mr] = V::zero();
        } else {
            acc0[mr] = V::loadu(c0 + mr * n);
            acc1[mr] = V::loadu(c0 + mr * n + W);
        }
    }
    for (int kk = 0; kk < kblk; ++kk) {
        const float* bk = bp + static_cast<std::int64_t>(kk) * 2 * W;
        const V b0 = V::load(bk);
        const V b1 = V::load(bk + W);
        const float* ak = ap + static_cast<std::int64_t>(kk) * MR;
        for (int mr = 0; mr < MR; ++mr) {
            const V av = V::broadcast(ak[mr]);
            acc0[mr] = V::mulAdd(av, b0, acc0[mr]);
            acc1[mr] = V::mulAdd(av, b1, acc1[mr]);
        }
    }
    for (int mr = 0; mr < MR; ++mr) {
        acc0[mr].storeu(c0 + mr * n);
        acc1[mr].storeu(c0 + mr * n + W);
    }
}

/** Last row tile (rows < MR): same kernel with runtime row bound. */
template <typename V>
inline void
gemmMicroPackedRows(int rows, int kblk, const float* ap, const float* bp,
                    float* c0, std::int64_t n, bool first)
{
    constexpr int W = V::width;
    V acc0[kGemmVMr];
    V acc1[kGemmVMr];
    for (int mr = 0; mr < rows; ++mr) {
        if (first) {
            acc0[mr] = V::zero();
            acc1[mr] = V::zero();
        } else {
            acc0[mr] = V::loadu(c0 + mr * n);
            acc1[mr] = V::loadu(c0 + mr * n + W);
        }
    }
    for (int kk = 0; kk < kblk; ++kk) {
        const float* bk = bp + static_cast<std::int64_t>(kk) * 2 * W;
        const V b0 = V::load(bk);
        const V b1 = V::load(bk + W);
        const float* ak = ap + static_cast<std::int64_t>(kk) * kGemmVMr;
        for (int mr = 0; mr < rows; ++mr) {
            const V av = V::broadcast(ak[mr]);
            acc0[mr] = V::mulAdd(av, b0, acc0[mr]);
            acc1[mr] = V::mulAdd(av, b1, acc1[mr]);
        }
    }
    for (int mr = 0; mr < rows; ++mr) {
        acc0[mr].storeu(c0 + mr * n);
        acc1[mr].storeu(c0 + mr * n + W);
    }
}

/** Pack A rows [0, m) x K panel [k0, k0+kblk) as [tile][kk][MR],
 *  zero-padding the last tile's missing rows. */
inline void
packGemmA(int m, int k0, int kblk, const float* a, std::int64_t lda,
          float* pa)
{
    const int tiles = (m + kGemmVMr - 1) / kGemmVMr;
    for (int t = 0; t < tiles; ++t) {
        const int r0 = t * kGemmVMr;
        const int rows = std::min(kGemmVMr, m - r0);
        float* dst = pa
            + static_cast<std::int64_t>(t) * kblk * kGemmVMr;
        for (int kk = 0; kk < kblk; ++kk) {
            for (int mr = 0; mr < kGemmVMr; ++mr) {
                dst[static_cast<std::int64_t>(kk) * kGemmVMr + mr]
                    = mr < rows
                    ? a[static_cast<std::int64_t>(r0 + mr) * lda + k0
                        + kk]
                    : 0.0f;
            }
        }
    }
}

/** Pack B's full vector strips of the K panel as [strip][kk][NR]. */
template <typename V>
inline void
packGemmB(int strips, int k0, int kblk, const float* b, std::int64_t n,
          float* pb)
{
    constexpr int NR = 2 * V::width;
    for (int s = 0; s < strips; ++s) {
        const float* src = b + static_cast<std::int64_t>(k0) * n
            + static_cast<std::int64_t>(s) * NR;
        float* dst = pb + static_cast<std::int64_t>(s) * kblk * NR;
        for (int kk = 0; kk < kblk; ++kk) {
            const float* srow = src + static_cast<std::int64_t>(kk) * n;
            float* drow = dst + static_cast<std::int64_t>(kk) * NR;
            V::loadu(srow).store(drow);
            V::loadu(srow + V::width).store(drow + V::width);
        }
    }
}

/**
 * Packed-panel GEMM: C = A * B, K blocked into kGemmKc panels whose
 * A tiles / B strips are packed for unit-stride aligned streams, with
 * an MR x 2W vector register tile. Work is parallelized over the full
 * (row tile x column strip) grid, so small-M/large-N shapes (the
 * im2col conv layout) still spread across the team.
 */
template <typename V>
void
gemmCpuV(const CpuExec& exec, int m, int n, int k, const float* a,
         const float* b, float* c)
{
    constexpr int NR = 2 * V::width;
    const int tiles = (m + kGemmVMr - 1) / kGemmVMr;
    const int strips = n / NR;
    const int remCols = n - strips * NR;
    const int unitsPerTile = strips + (remCols != 0 ? 1 : 0);
    thread_local simd::AlignedVector<float> packedA;
    thread_local simd::AlignedVector<float> packedB;
    for (int k0 = 0; k0 < k; k0 += kGemmKc) {
        const int kblk = std::min(kGemmKc, k - k0);
        const bool first = k0 == 0;
        packedA.resize(static_cast<std::size_t>(tiles) * kblk * kGemmVMr);
        packedB.resize(static_cast<std::size_t>(strips) * kblk * NR);
        packGemmA(m, k0, kblk, a, k, packedA.data());
        packGemmB<V>(strips, k0, kblk, b, n, packedB.data());
        const float* pa = packedA.data();
        const float* pb = packedB.data();
        exec.forEachBlock(
            static_cast<std::int64_t>(tiles) * unitsPerTile,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t u = lo; u < hi; ++u) {
                    const int t = static_cast<int>(u / unitsPerTile);
                    const int s = static_cast<int>(u % unitsPerTile);
                    const int r0 = t * kGemmVMr;
                    const int rows = std::min(kGemmVMr, m - r0);
                    float* c0 = c + static_cast<std::int64_t>(r0) * n;
                    if (s < strips) {
                        const float* ap = pa
                            + static_cast<std::int64_t>(t) * kblk
                                * kGemmVMr;
                        const float* bp = pb
                            + static_cast<std::int64_t>(s) * kblk * NR;
                        float* ct = c0 + static_cast<std::int64_t>(s) * NR;
                        if (rows == kGemmVMr) {
                            gemmMicroPacked<V, kGemmVMr>(kblk, ap, bp, ct,
                                                         n, first);
                        } else {
                            gemmMicroPackedRows<V>(rows, kblk, ap, bp, ct,
                                                   n, first);
                        }
                    } else {
                        gemmPanelEdge(
                            n, kblk, rows, remCols,
                            a + static_cast<std::int64_t>(r0) * k + k0, k,
                            b + static_cast<std::int64_t>(k0) * n
                                + static_cast<std::int64_t>(strips) * NR,
                            c0 + static_cast<std::int64_t>(strips) * NR,
                            first);
                    }
                }
            });
    }
}

// ------------------------------------------------------------ factory

template <typename V>
SimdOps
makeSimdOps(simd::Isa isa)
{
    SimdOps ops;
    ops.isa = isa;
    ops.gemm = &gemmCpuV<V>;
    ops.conv2d = &conv2dCpuV<V>;
    ops.sparseConv = &sparseConvCpuV<V>;
    ops.maxpool = &maxpoolCpuV<V>;
    ops.im2col = &im2colV<V>;
    ops.linear = &linearCpuV<V>;
    ops.biasRelu = &biasReluPlanesV<V>;
    return ops;
}

} // namespace bt::kernels::detail

#endif // BT_KERNELS_SIMD_BODY_HPP
