#include "kernels/unique.hpp"

#include "common/logging.hpp"
#include "kernels/prefix_sum.hpp"
#include "simt/algorithms.hpp"

namespace bt::kernels {

namespace {

void
checkSizes(std::span<const std::uint32_t> in,
           std::span<std::uint32_t> out, std::span<std::uint32_t> flags)
{
    BT_ASSERT(out.size() >= in.size(), "unique output too small");
    BT_ASSERT(flags.size() >= in.size(), "unique scratch too small");
}

} // namespace

std::int64_t
uniqueCpu(const CpuExec& exec, std::span<const std::uint32_t> in,
          std::span<std::uint32_t> out, std::span<std::uint32_t> flags)
{
    checkSizes(in, out, flags);
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    if (n == 0)
        return 0;

    // Boundary flags: 1 where a new value starts.
    exec.forEachBlock(n, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            flags[static_cast<std::size_t>(i)]
                = (i == 0
                   || in[static_cast<std::size_t>(i)]
                       != in[static_cast<std::size_t>(i - 1)])
                ? 1u
                : 0u;
    });

    // Scan flags in place -> scatter offsets.
    const std::uint64_t count
        = exclusiveScanCpu(exec, flags.subspan(0, in.size()),
                           flags.subspan(0, in.size()));

    // Scatter: an element is unique iff its offset differs from the
    // next one (or it is the boundary-flagged first of a run).
    exec.forEachBlock(n, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint32_t off = flags[static_cast<std::size_t>(i)];
            // After the exclusive scan, position i started a run iff the
            // scanned value increases right after it (total acts as the
            // value "one past the end" for the last element).
            const bool is_boundary = (i + 1 < n)
                ? flags[static_cast<std::size_t>(i + 1)] != off
                : static_cast<std::uint64_t>(off) + 1 == count;
            if (is_boundary)
                out[off] = in[static_cast<std::size_t>(i)];
        }
    });
    return static_cast<std::int64_t>(count);
}

namespace {

/** Shared device body; @p scan runs the exclusive scan of the flags. */
template <typename InV, typename OutV, typename FlagV, typename Scan>
std::int64_t
uniqueGpuImpl(const GpuExec& exec, const InV& in, const OutV& out,
              const FlagV& flags, std::int64_t n, const Scan& scan)
{
    exec.forEach(n, [&](std::int64_t i) {
        flags[static_cast<std::size_t>(i)]
            = (i == 0
               || in[static_cast<std::size_t>(i)]
                   != in[static_cast<std::size_t>(i - 1)])
            ? 1u
            : 0u;
    });

    const std::uint64_t count = scan();

    exec.forEach(n, [&](std::int64_t i) {
        const std::uint32_t off = flags[static_cast<std::size_t>(i)];
        const bool is_boundary = (i + 1 < n)
            ? flags[static_cast<std::size_t>(i + 1)] != off
            : static_cast<std::uint64_t>(off) + 1 == count;
        if (is_boundary)
            out[off] = in[static_cast<std::size_t>(i)];
    });
    return static_cast<std::int64_t>(count);
}

} // namespace

std::int64_t
uniqueGpu(std::span<const std::uint32_t> in, std::span<std::uint32_t> out,
          std::span<std::uint32_t> flags, simt::LaunchObserver* observer)
{
    checkSizes(in, out, flags);
    const std::int64_t n = static_cast<std::int64_t>(in.size());
    if (n == 0)
        return 0;

    GpuExec exec;
    exec.observer = observer;
    if (observer) {
        auto& obs = *observer;
        const simt::KernelScope scope(obs, "unique");
        auto tin = simt::tracked(in, obs, "in");
        auto tout = simt::tracked(out.first(in.size()), obs, "out");
        // The scan reads and writes the same flags region in place; the
        // tracked span registers it once so the aliasing is explicit.
        auto tflags = simt::tracked(flags.first(in.size()), obs, "flags");
        return uniqueGpuImpl(exec, tin, tout, tflags, n, [&] {
            return simt::deviceExclusiveScan(
                simt::TrackedSpan<const std::uint32_t>(tflags), tflags,
                obs);
        });
    }
    return uniqueGpuImpl(exec, in, out, flags, n, [&] {
        return simt::deviceExclusiveScan(flags.subspan(0, in.size()),
                                         flags.subspan(0, in.size()));
    });
}

} // namespace bt::kernels
