#include "kernels/sparse_conv.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "kernels/simd_ops.hpp"

namespace bt::kernels {

namespace {

/**
 * Span-level view of a CsrMatrix so the device body can template over
 * the access type: raw spans on the hot path, tracked spans under the
 * checker.
 */
template <typename U32V, typename F32V>
struct CsrView
{
    U32V rowPtr;
    U32V colIdx;
    F32V values;
};

template <typename InV, typename CsrV, typename BV>
inline float
sparseConvElementXY(const ConvShape& shape, const InV& in,
                    const CsrV& weights, const BV& bias, int oc, int y,
                    int x)
{
    float acc = bias[static_cast<std::size_t>(oc)];
    const std::uint32_t lo
        = weights.rowPtr[static_cast<std::size_t>(oc)];
    const std::uint32_t hi
        = weights.rowPtr[static_cast<std::size_t>(oc) + 1];
    for (std::uint32_t k = lo; k < hi; ++k) {
        const std::uint32_t col = weights.colIdx[k];
        const int ic = static_cast<int>(col / 9);
        const int ky = static_cast<int>((col % 9) / 3);
        const int kx = static_cast<int>(col % 3);
        const int iy = y + ky - 1;
        const int ix = x + kx - 1;
        if (iy < 0 || iy >= shape.in.h || ix < 0 || ix >= shape.in.w)
            continue;
        acc += weights.values[k]
            * in[static_cast<std::size_t>(shape.in.at(ic, iy, ix))];
    }
    return std::max(acc, 0.0f);
}

/** Flat-index wrapper for grid-stride (device) and reference callers. */
template <typename InV, typename CsrV, typename BV>
inline float
sparseConvElement(const ConvShape& shape, const InV& in,
                  const CsrV& weights, const BV& bias, std::int64_t idx)
{
    const Shape3 os = shape.out();
    const int x = static_cast<int>(idx % os.w);
    const int y = static_cast<int>((idx / os.w) % os.h);
    const int oc = static_cast<int>(idx / (static_cast<std::int64_t>(
        os.w) * os.h));
    return sparseConvElementXY(shape, in, weights, bias, oc, y, x);
}

void
checkSizes(const ConvShape& shape, std::span<const float> in,
           const CsrMatrix& weights, std::span<const float> bias,
           std::span<float> out)
{
    BT_ASSERT(weights.rows == shape.outC, "CSR rows != outC");
    BT_ASSERT(weights.cols == shape.in.c * 9, "CSR cols != inC*9");
    BT_ASSERT(in.size() >= static_cast<std::size_t>(shape.in.elems()));
    BT_ASSERT(bias.size() >= static_cast<std::size_t>(shape.outC));
    BT_ASSERT(out.size() >= static_cast<std::size_t>(
        shape.out().elems()));
}

} // namespace

void
sparseConvCpu(const CpuExec& exec, const ConvShape& shape,
              std::span<const float> in, const CsrMatrix& weights,
              std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    if (const detail::SimdOps* ops = detail::simdOps()) {
        ops->sparseConv(exec, shape, in.data(), weights, bias.data(),
                        out.data());
        return;
    }
    const int h = shape.in.h;
    const int w = shape.in.w;
    const std::int64_t plane = static_cast<std::int64_t>(h) * w;
    // Host path: one output plane per unit of work. Each CSR entry is
    // decoded once (the per-element body re-derives (ic, ky, kx) with
    // divisions for every pixel) and applied as a shifted row saxpy.
    // Taps run in CSR row order, so every output pixel accumulates its
    // terms in the reference order and results stay bit-identical.
    exec.forEachBlock(shape.outC, [&](std::int64_t lo_oc,
                                      std::int64_t hi_oc) {
        for (std::int64_t oc = lo_oc; oc < hi_oc; ++oc) {
            float* dst_plane = out.data() + oc * plane;
            const float b = bias[static_cast<std::size_t>(oc)];
            for (std::int64_t i = 0; i < plane; ++i)
                dst_plane[i] = b;
            const std::uint32_t lo
                = weights.rowPtr[static_cast<std::size_t>(oc)];
            const std::uint32_t hi
                = weights.rowPtr[static_cast<std::size_t>(oc) + 1];
            for (std::uint32_t k = lo; k < hi; ++k) {
                const std::uint32_t col = weights.colIdx[k];
                const int ic = static_cast<int>(col / 9);
                const int dy = static_cast<int>((col % 9) / 3) - 1;
                const int dx = static_cast<int>(col % 3) - 1;
                const float wv = weights.values[k];
                const float* src_plane = in.data() + ic * plane;
                const int y0 = dy < 0 ? -dy : 0;
                const int y1 = dy > 0 ? h - dy : h;
                const int x0 = dx < 0 ? -dx : 0;
                const int x1 = dx > 0 ? w - dx : w;
                for (int y = y0; y < y1; ++y) {
                    const float* src = src_plane
                        + static_cast<std::int64_t>(y + dy) * w + dx;
                    float* dst = dst_plane
                        + static_cast<std::int64_t>(y) * w;
                    for (int x = x0; x < x1; ++x)
                        dst[x] += wv * src[x];
                }
            }
            for (std::int64_t i = 0; i < plane; ++i)
                dst_plane[i] = std::max(dst_plane[i], 0.0f);
        }
    });
}

namespace {

template <typename InV, typename CsrV, typename BV, typename OutV>
void
sparseConvGpuImpl(const GpuExec& exec, const ConvShape& shape,
                  const InV& in, const CsrV& weights, const BV& bias,
                  const OutV& out)
{
    exec.forEach(shape.out().elems(), [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)]
            = sparseConvElement(shape, in, weights, bias, i);
    });
}

} // namespace

void
sparseConvGpu(const GpuExec& exec, const ConvShape& shape,
              std::span<const float> in, const CsrMatrix& weights,
              std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "sparse_conv");
        using U32V = simt::TrackedSpan<const std::uint32_t>;
        using F32V = simt::TrackedSpan<const float>;
        const CsrView<U32V, F32V> csr{
            simt::tracked(std::span<const std::uint32_t>(weights.rowPtr),
                          obs, "csr.row_ptr"),
            simt::tracked(std::span<const std::uint32_t>(weights.colIdx),
                          obs, "csr.col_idx"),
            simt::tracked(std::span<const float>(weights.values), obs,
                          "csr.values")};
        sparseConvGpuImpl(
            exec, shape, checkedTensor(in, shape.in, obs, "in"), csr,
            simt::tracked(bias.first(static_cast<std::size_t>(shape.outC)),
                          obs, "bias"),
            checkedTensor(out, shape.out(), obs, "out"));
        return;
    }
    sparseConvGpuImpl(exec, shape, in, weights, bias, out);
}

void
sparseConvReference(const ConvShape& shape, std::span<const float> in,
                    const CsrMatrix& weights, std::span<const float> bias,
                    std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    for (std::int64_t i = 0; i < shape.out().elems(); ++i)
        out[static_cast<std::size_t>(i)]
            = sparseConvElement(shape, in, weights, bias, i);
}

} // namespace bt::kernels
