/**
 * @file
 * SSE2 kernel tier: the shared bodies instantiated over VecSse2. SSE2
 * is the x86-64 baseline, so this TU needs no extra compile flags and
 * is the tier every x86 build can fall back to.
 */

#include "kernels/simd_ops.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include "common/simd_x86.hpp"
#include "kernels/simd_body.hpp"

namespace bt::kernels::detail {

const SimdOps*
sse2Ops()
{
    static const SimdOps ops
        = makeSimdOps<simd::VecSse2>(simd::Isa::Sse2);
    return &ops;
}

} // namespace bt::kernels::detail

#else

namespace bt::kernels::detail {

const SimdOps*
sse2Ops()
{
    return nullptr;
}

} // namespace bt::kernels::detail

#endif
