/**
 * @file
 * Dense 3x3 convolution with bias and ReLU, the workhorse of
 * AlexNet-dense. CPU and GPU (SIMT) backends over CHW tensors; batch is
 * handled by calling per image (the stage wrappers loop the batch).
 */

#ifndef BT_KERNELS_CONV2D_HPP
#define BT_KERNELS_CONV2D_HPP

#include <span>

#include "kernels/exec.hpp"
#include "kernels/tensor.hpp"

namespace bt::kernels {

/**
 * out = relu(conv3x3(in, weights) + bias), stride 1, zero padding 1.
 *
 * @param weights outC*inC*3*3 elements, [oc][ic][ky][kx] layout.
 * @param bias outC elements.
 */
void conv2dCpu(const CpuExec& exec, const ConvShape& shape,
               std::span<const float> in, std::span<const float> weights,
               std::span<const float> bias, std::span<float> out);

/** Device version: one SIMT thread per output element (grid-stride). */
void conv2dGpu(const GpuExec& exec, const ConvShape& shape,
               std::span<const float> in, std::span<const float> weights,
               std::span<const float> bias, std::span<float> out);

/** Single-threaded reference used by the test suite. */
void conv2dReference(const ConvShape& shape, std::span<const float> in,
                     std::span<const float> weights,
                     std::span<const float> bias, std::span<float> out);

} // namespace bt::kernels

#endif // BT_KERNELS_CONV2D_HPP
