/**
 * @file
 * Morton (Z-order) encoding of 3-D points: stage 1 of the Octree
 * pipeline and the example kernel of the paper's Fig. 3. Points in
 * [0,1)^3 quantize to 10 bits per axis, interleaved into a 30-bit code.
 */

#ifndef BT_KERNELS_MORTON_HPP
#define BT_KERNELS_MORTON_HPP

#include <cstdint>
#include <span>

#include "kernels/exec.hpp"

namespace bt::kernels {

/** Spread the low 10 bits of @p v so consecutive bits are 3 apart. */
std::uint32_t expandBits3(std::uint32_t v);

/** 30-bit Morton code of one point; coordinates clamped to [0,1). */
std::uint32_t morton32(float x, float y, float z);

/**
 * Encode @p n points (xyz interleaved, 3 floats each) into @p codes.
 */
void mortonEncodeCpu(const CpuExec& exec, std::span<const float> points,
                     std::span<std::uint32_t> codes, std::int64_t n);

void mortonEncodeGpu(const GpuExec& exec, std::span<const float> points,
                     std::span<std::uint32_t> codes, std::int64_t n);

} // namespace bt::kernels

#endif // BT_KERNELS_MORTON_HPP
