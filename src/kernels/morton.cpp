#include "kernels/morton.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bt::kernels {

std::uint32_t
expandBits3(std::uint32_t v)
{
    // Classic bit-spreading sequence (Karras 2012).
    v = (v * 0x00010001u) & 0xFF0000FFu;
    v = (v * 0x00000101u) & 0x0F00F00Fu;
    v = (v * 0x00000011u) & 0xC30C30C3u;
    v = (v * 0x00000005u) & 0x49249249u;
    return v;
}

std::uint32_t
morton32(float x, float y, float z)
{
    auto quantize = [](float f) {
        const float scaled = f * 1024.0f;
        const float clamped = std::min(std::max(scaled, 0.0f), 1023.0f);
        return static_cast<std::uint32_t>(clamped);
    };
    return (expandBits3(quantize(x)) << 2)
        | (expandBits3(quantize(y)) << 1) | expandBits3(quantize(z));
}

namespace {

void
checkSizes(std::span<const float> points, std::span<std::uint32_t> codes,
           std::int64_t n)
{
    BT_ASSERT(n >= 0);
    BT_ASSERT(points.size() >= static_cast<std::size_t>(3 * n));
    BT_ASSERT(codes.size() >= static_cast<std::size_t>(n));
}

} // namespace

void
mortonEncodeCpu(const CpuExec& exec, std::span<const float> points,
                std::span<std::uint32_t> codes, std::int64_t n)
{
    checkSizes(points, codes, n);
    exec.forEachBlock(n, [&](std::int64_t lo, std::int64_t hi) {
        const float* p = points.data() + 3 * lo;
        for (std::int64_t i = lo; i < hi; ++i, p += 3)
            codes[static_cast<std::size_t>(i)]
                = morton32(p[0], p[1], p[2]);
    });
}

namespace {

template <typename PtsV, typename CodeV>
void
mortonEncodeGpuImpl(const GpuExec& exec, const PtsV& points,
                    const CodeV& codes, std::int64_t n)
{
    exec.forEach(n, [&](std::int64_t i) {
        codes[static_cast<std::size_t>(i)]
            = morton32(points[static_cast<std::size_t>(3 * i)],
                       points[static_cast<std::size_t>(3 * i + 1)],
                       points[static_cast<std::size_t>(3 * i + 2)]);
    });
}

} // namespace

void
mortonEncodeGpu(const GpuExec& exec, std::span<const float> points,
                std::span<std::uint32_t> codes, std::int64_t n)
{
    checkSizes(points, codes, n);
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "morton_encode");
        mortonEncodeGpuImpl(
            exec,
            simt::tracked(points.first(static_cast<std::size_t>(3 * n)),
                          obs, "points"),
            simt::tracked(codes.first(static_cast<std::size_t>(n)), obs,
                          "codes"),
            n);
        return;
    }
    mortonEncodeGpuImpl(exec, points, codes, n);
}

} // namespace bt::kernels
