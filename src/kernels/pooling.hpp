/**
 * @file
 * 2x2 stride-2 max pooling (the lightweight stage following every conv
 * layer in AlexNet-for-CIFAR). CPU and SIMT backends.
 */

#ifndef BT_KERNELS_POOLING_HPP
#define BT_KERNELS_POOLING_HPP

#include <span>

#include "kernels/exec.hpp"
#include "kernels/tensor.hpp"

namespace bt::kernels {

/** Output shape of 2x2/2 pooling over @p in (floor semantics). */
Shape3 pooledShape(const Shape3& in);

/** out[c][y][x] = max of the 2x2 input window. */
void maxpoolCpu(const CpuExec& exec, const Shape3& in_shape,
                std::span<const float> in, std::span<float> out);

void maxpoolGpu(const GpuExec& exec, const Shape3& in_shape,
                std::span<const float> in, std::span<float> out);

/** Single-threaded reference. */
void maxpoolReference(const Shape3& in_shape, std::span<const float> in,
                      std::span<float> out);

} // namespace bt::kernels

#endif // BT_KERNELS_POOLING_HPP
