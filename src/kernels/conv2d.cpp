#include "kernels/conv2d.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "kernels/simd_ops.hpp"

namespace bt::kernels {

namespace {

/** Shared element body: compute output element (oc, y, x). Templated
 *  over the view types so the checked path (TrackedSpans) instantiates
 *  the same code the raw-span hot path does. */
template <typename InV, typename WV, typename BV>
inline float
convElementXY(const ConvShape& shape, const InV& in, const WV& weights,
              const BV& bias, int oc, int y, int x)
{
    float acc = bias[static_cast<std::size_t>(oc)];
    const std::int64_t wbase
        = static_cast<std::int64_t>(oc) * shape.in.c * 9;
    for (int ic = 0; ic < shape.in.c; ++ic) {
        const std::int64_t wrow = wbase + static_cast<std::int64_t>(ic)
            * 9;
        for (int ky = 0; ky < 3; ++ky) {
            const int iy = y + ky - 1;
            if (iy < 0 || iy >= shape.in.h)
                continue;
            for (int kx = 0; kx < 3; ++kx) {
                const int ix = x + kx - 1;
                if (ix < 0 || ix >= shape.in.w)
                    continue;
                acc += weights[static_cast<std::size_t>(
                           wrow + ky * 3 + kx)]
                    * in[static_cast<std::size_t>(
                        shape.in.at(ic, iy, ix))];
            }
        }
    }
    return std::max(acc, 0.0f);
}

/** Flat-index wrapper for grid-stride (device) and reference callers. */
template <typename InV, typename WV, typename BV>
inline float
convElement(const ConvShape& shape, const InV& in, const WV& weights,
            const BV& bias, std::int64_t idx)
{
    const Shape3 os = shape.out();
    const int x = static_cast<int>(idx % os.w);
    const int y = static_cast<int>((idx / os.w) % os.h);
    const int oc = static_cast<int>(idx / (static_cast<std::int64_t>(
        os.w) * os.h));
    return convElementXY(shape, in, weights, bias, oc, y, x);
}

void
checkSizes(const ConvShape& shape, std::span<const float> in,
           std::span<const float> weights, std::span<const float> bias,
           std::span<float> out)
{
    BT_ASSERT(in.size() >= static_cast<std::size_t>(shape.in.elems()));
    BT_ASSERT(weights.size() >= static_cast<std::size_t>(
        shape.weightElems()));
    BT_ASSERT(bias.size() >= static_cast<std::size_t>(shape.outC));
    BT_ASSERT(out.size() >= static_cast<std::size_t>(
        shape.out().elems()));
}

} // namespace

void
conv2dCpu(const CpuExec& exec, const ConvShape& shape,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    if (const detail::SimdOps* ops = detail::simdOps()) {
        ops->conv2d(exec, shape, in.data(), weights.data(), bias.data(),
                    out.data());
        return;
    }
    const int h = shape.in.h;
    const int w = shape.in.w;
    const std::int64_t plane = static_cast<std::int64_t>(h) * w;
    // Host path: one output plane per unit of work, each tap applied as
    // a shifted row saxpy over the plane. Taps are visited in the same
    // (ic, ky, kx) order as the per-element body, so every output pixel
    // accumulates in the reference order and results stay bit-identical.
    exec.forEachBlock(shape.outC, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t oc = lo; oc < hi; ++oc) {
            float* dst_plane = out.data() + oc * plane;
            const float b = bias[static_cast<std::size_t>(oc)];
            for (std::int64_t i = 0; i < plane; ++i)
                dst_plane[i] = b;
            const float* wrow = weights.data()
                + oc * static_cast<std::int64_t>(shape.in.c) * 9;
            for (int ic = 0; ic < shape.in.c; ++ic, wrow += 9) {
                const float* src_plane = in.data() + ic * plane;
                for (int ky = 0; ky < 3; ++ky) {
                    const int dy = ky - 1;
                    const int y0 = dy < 0 ? -dy : 0;
                    const int y1 = dy > 0 ? h - dy : h;
                    for (int kx = 0; kx < 3; ++kx) {
                        const int dx = kx - 1;
                        const int x0 = dx < 0 ? -dx : 0;
                        const int x1 = dx > 0 ? w - dx : w;
                        const float wv = wrow[ky * 3 + kx];
                        for (int y = y0; y < y1; ++y) {
                            const float* src = src_plane
                                + static_cast<std::int64_t>(y + dy) * w
                                + dx;
                            float* dst = dst_plane
                                + static_cast<std::int64_t>(y) * w;
                            for (int x = x0; x < x1; ++x)
                                dst[x] += wv * src[x];
                        }
                    }
                }
            }
            for (std::int64_t i = 0; i < plane; ++i)
                dst_plane[i] = std::max(dst_plane[i], 0.0f);
        }
    });
}

namespace {

template <typename InV, typename WV, typename BV, typename OutV>
void
conv2dGpuImpl(const GpuExec& exec, const ConvShape& shape, const InV& in,
              const WV& weights, const BV& bias, const OutV& out)
{
    exec.forEach(shape.out().elems(), [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)]
            = convElement(shape, in, weights, bias, i);
    });
}

} // namespace

void
conv2dGpu(const GpuExec& exec, const ConvShape& shape,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "conv2d");
        conv2dGpuImpl(
            exec, shape, checkedTensor(in, shape.in, obs, "in"),
            simt::tracked(weights.first(static_cast<std::size_t>(
                              shape.weightElems())),
                          obs, "weights"),
            simt::tracked(bias.first(static_cast<std::size_t>(shape.outC)),
                          obs, "bias"),
            checkedTensor(out, shape.out(), obs, "out"));
        return;
    }
    conv2dGpuImpl(exec, shape, in, weights, bias, out);
}

void
conv2dReference(const ConvShape& shape, std::span<const float> in,
                std::span<const float> weights,
                std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    for (std::int64_t i = 0; i < shape.out().elems(); ++i)
        out[static_cast<std::size_t>(i)]
            = convElement(shape, in, weights, bias, i);
}

} // namespace bt::kernels
