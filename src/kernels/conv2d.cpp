#include "kernels/conv2d.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bt::kernels {

namespace {

/** Shared element body: compute output element @p idx. */
inline float
convElement(const ConvShape& shape, std::span<const float> in,
            std::span<const float> weights, std::span<const float> bias,
            std::int64_t idx)
{
    const Shape3 os = shape.out();
    const int x = static_cast<int>(idx % os.w);
    const int y = static_cast<int>((idx / os.w) % os.h);
    const int oc = static_cast<int>(idx / (static_cast<std::int64_t>(
        os.w) * os.h));

    float acc = bias[static_cast<std::size_t>(oc)];
    const std::int64_t wbase
        = static_cast<std::int64_t>(oc) * shape.in.c * 9;
    for (int ic = 0; ic < shape.in.c; ++ic) {
        const std::int64_t wrow = wbase + static_cast<std::int64_t>(ic)
            * 9;
        for (int ky = 0; ky < 3; ++ky) {
            const int iy = y + ky - 1;
            if (iy < 0 || iy >= shape.in.h)
                continue;
            for (int kx = 0; kx < 3; ++kx) {
                const int ix = x + kx - 1;
                if (ix < 0 || ix >= shape.in.w)
                    continue;
                acc += weights[static_cast<std::size_t>(
                           wrow + ky * 3 + kx)]
                    * in[static_cast<std::size_t>(
                        shape.in.at(ic, iy, ix))];
            }
        }
    }
    return std::max(acc, 0.0f);
}

void
checkSizes(const ConvShape& shape, std::span<const float> in,
           std::span<const float> weights, std::span<const float> bias,
           std::span<float> out)
{
    BT_ASSERT(in.size() >= static_cast<std::size_t>(shape.in.elems()));
    BT_ASSERT(weights.size() >= static_cast<std::size_t>(
        shape.weightElems()));
    BT_ASSERT(bias.size() >= static_cast<std::size_t>(shape.outC));
    BT_ASSERT(out.size() >= static_cast<std::size_t>(
        shape.out().elems()));
}

} // namespace

void
conv2dCpu(const CpuExec& exec, const ConvShape& shape,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    exec.forEach(shape.out().elems(), [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)]
            = convElement(shape, in, weights, bias, i);
    });
}

void
conv2dGpu(const GpuExec& exec, const ConvShape& shape,
          std::span<const float> in, std::span<const float> weights,
          std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    exec.forEach(shape.out().elems(), [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)]
            = convElement(shape, in, weights, bias, i);
    });
}

void
conv2dReference(const ConvShape& shape, std::span<const float> in,
                std::span<const float> weights,
                std::span<const float> bias, std::span<float> out)
{
    checkSizes(shape, in, weights, bias, out);
    for (std::int64_t i = 0; i < shape.out().elems(); ++i)
        out[static_cast<std::size_t>(i)]
            = convElement(shape, in, weights, bias, i);
}

} // namespace bt::kernels
