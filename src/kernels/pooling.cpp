#include "kernels/pooling.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "kernels/simd_ops.hpp"

namespace bt::kernels {

Shape3
pooledShape(const Shape3& in)
{
    return Shape3{in.c, in.h / 2, in.w / 2};
}

namespace {

template <typename InV>
inline float
poolElementXY(const Shape3& is, const InV& in, int c, int y, int x)
{
    const int iy = y * 2;
    const int ix = x * 2;
    const float a = in[static_cast<std::size_t>(is.at(c, iy, ix))];
    const float b = in[static_cast<std::size_t>(is.at(c, iy, ix + 1))];
    const float d = in[static_cast<std::size_t>(is.at(c, iy + 1, ix))];
    const float e = in[static_cast<std::size_t>(is.at(c, iy + 1,
                                                      ix + 1))];
    return std::max(std::max(a, b), std::max(d, e));
}

/** Flat-index wrapper for grid-stride (device) and reference callers. */
template <typename InV>
inline float
poolElement(const Shape3& is, const InV& in, std::int64_t idx)
{
    const Shape3 os = pooledShape(is);
    const int x = static_cast<int>(idx % os.w);
    const int y = static_cast<int>((idx / os.w) % os.h);
    const int c = static_cast<int>(idx / (static_cast<std::int64_t>(
        os.w) * os.h));
    return poolElementXY(is, in, c, y, x);
}

void
checkSizes(const Shape3& is, std::span<const float> in,
           std::span<float> out)
{
    BT_ASSERT(is.h >= 2 && is.w >= 2, "pooling needs a 2x2 window");
    BT_ASSERT(in.size() >= static_cast<std::size_t>(is.elems()));
    BT_ASSERT(out.size() >= static_cast<std::size_t>(
        pooledShape(is).elems()));
}

} // namespace

void
maxpoolCpu(const CpuExec& exec, const Shape3& in_shape,
           std::span<const float> in, std::span<float> out)
{
    checkSizes(in_shape, in, out);
    if (const detail::SimdOps* ops = detail::simdOps()) {
        ops->maxpool(exec, in_shape, in.data(), out.data());
        return;
    }
    const Shape3 os = pooledShape(in_shape);
    const std::int64_t rows = static_cast<std::int64_t>(os.c) * os.h;
    // Host path: one output row per unit of work, walking the two input
    // rows with pointers instead of re-deriving (c, y, x) per element.
    exec.forEachBlock(rows, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t r = lo; r < hi; ++r) {
            const std::int64_t c = r / os.h;
            const std::int64_t y = r - c * os.h;
            const float* row0 = in.data()
                + (c * in_shape.h + 2 * y) * in_shape.w;
            const float* row1 = row0 + in_shape.w;
            float* dst = out.data() + r * os.w;
            for (int x = 0; x < os.w; ++x)
                dst[x] = std::max(std::max(row0[2 * x], row0[2 * x + 1]),
                                  std::max(row1[2 * x], row1[2 * x + 1]));
        }
    });
}

namespace {

template <typename InV, typename OutV>
void
maxpoolGpuImpl(const GpuExec& exec, const Shape3& in_shape, const InV& in,
               const OutV& out)
{
    exec.forEach(pooledShape(in_shape).elems(), [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)] = poolElement(in_shape, in, i);
    });
}

} // namespace

void
maxpoolGpu(const GpuExec& exec, const Shape3& in_shape,
           std::span<const float> in, std::span<float> out)
{
    checkSizes(in_shape, in, out);
    if (exec.observer) {
        auto& obs = *exec.observer;
        const simt::KernelScope scope(obs, "maxpool");
        maxpoolGpuImpl(exec, in_shape,
                       checkedTensor(in, in_shape, obs, "in"),
                       checkedTensor(out, pooledShape(in_shape), obs,
                                     "out"));
        return;
    }
    maxpoolGpuImpl(exec, in_shape, in, out);
}

void
maxpoolReference(const Shape3& in_shape, std::span<const float> in,
                 std::span<float> out)
{
    checkSizes(in_shape, in, out);
    for (std::int64_t i = 0; i < pooledShape(in_shape).elems(); ++i)
        out[static_cast<std::size_t>(i)] = poolElement(in_shape, in, i);
}

} // namespace bt::kernels
