/**
 * @file
 * Quickstart: define a small custom streaming application (three image
 * stages, each with a CPU and a GPU kernel), then let bt::Framework
 * profile it, generate a pipeline schedule, autotune, and report the
 * speedup over the homogeneous baselines on a simulated Google Pixel
 * 7a - the paper's Fig. 2 flow behind one umbrella header and one
 * config object. Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bt.hpp"
#include "common/rng.hpp"
#include "kernels/exec.hpp"

using namespace bt;

namespace {

constexpr std::int64_t kPixels = 512 * 512;

/** Stage 1: gamma correction (dense, embarrassingly parallel). */
void
gammaStage(core::KernelCtx& ctx, bool gpu)
{
    auto img = ctx.task.view<float>("image");
    auto body = [&](std::int64_t i) {
        const float v = img[static_cast<std::size_t>(i)];
        img[static_cast<std::size_t>(i)] = v * v; // gamma 2.0
    };
    if (gpu)
        kernels::GpuExec{}.forEach(kPixels, body);
    else
        kernels::CpuExec{ctx.pool}.forEach(kPixels, body);
}

/** Stage 2: 3-tap horizontal blur (memory bound). */
void
blurStage(core::KernelCtx& ctx, bool gpu)
{
    const auto src = ctx.task.view<const float>("image");
    auto dst = ctx.task.view<float>("blurred");
    auto body = [&](std::int64_t i) {
        const auto u = static_cast<std::size_t>(i);
        float acc = src[u];
        if (i > 0)
            acc += src[u - 1];
        if (i + 1 < kPixels)
            acc += src[u + 1];
        dst[u] = acc / 3.0f;
    };
    if (gpu)
        kernels::GpuExec{}.forEach(kPixels, body);
    else
        kernels::CpuExec{ctx.pool}.forEach(kPixels, body);
}

/** Stage 3: histogram (irregular scatter - GPUs hate this). */
void
histogramStage(core::KernelCtx& ctx, bool gpu)
{
    const auto src = ctx.task.view<const float>("blurred");
    auto hist = ctx.task.view<std::uint32_t>("histogram");
    std::fill(hist.begin(), hist.end(), 0u);
    auto body = [&](std::int64_t i) {
        const float v = src[static_cast<std::size_t>(i)];
        const auto bin = static_cast<std::size_t>(
            std::min(255.0f, std::max(0.0f, v * 255.0f)));
        // Sequential SIMT execution makes this increment safe on the
        // emulated device; the CPU path runs it serially per block.
        ++hist[bin];
    };
    // Scatter with conflicts: keep it serial per backend for clarity.
    (void)gpu;
    for (std::int64_t i = 0; i < kPixels; ++i)
        body(i);
    (void)ctx;
}

core::Application
makeApp()
{
    core::Application app("ImagePipe", "Image", "Demo");

    // Declared IO makes the pipeline statically checkable: the
    // Framework lints these declarations before profiling anything.
    const auto imageBytes
        = static_cast<std::int64_t>(kPixels * sizeof(float));
    app.declareBuffer({"image", imageBytes, /*input=*/true});
    app.declareBuffer({"blurred", imageBytes});
    app.declareBuffer(
        {"histogram",
         static_cast<std::int64_t>(256 * sizeof(std::uint32_t)), false,
         /*output=*/true});

    platform::WorkProfile gamma{2.0 * kPixels, 8.0 * kPixels, 0.999,
                                platform::Pattern::Dense};
    platform::WorkProfile blur{4.0 * kPixels, 12.0 * kPixels, 0.99,
                               platform::Pattern::Dense};
    platform::WorkProfile hist{3.0 * kPixels, 8.0 * kPixels, 0.2,
                               platform::Pattern::Irregular};

    core::Stage gamma_stage(
        "gamma", gamma,
        [](core::KernelCtx& c) { gammaStage(c, false); },
        [](core::KernelCtx& c) { gammaStage(c, true); });
    gamma_stage.setIo(
        {{{"image", imageBytes}}, {{"image", imageBytes}}});
    app.addStage(std::move(gamma_stage));
    core::Stage blur_stage(
        "blur", blur, [](core::KernelCtx& c) { blurStage(c, false); },
        [](core::KernelCtx& c) { blurStage(c, true); });
    blur_stage.setIo(
        {{{"image", imageBytes}}, {{"blurred", imageBytes}}});
    app.addStage(std::move(blur_stage));
    core::Stage hist_stage(
        "histogram", hist,
        [](core::KernelCtx& c) { histogramStage(c, false); },
        [](core::KernelCtx& c) { histogramStage(c, true); });
    hist_stage.setIo(
        {{{"blurred", imageBytes}},
         {{"histogram",
           static_cast<std::int64_t>(256 * sizeof(std::uint32_t))}}});
    app.addStage(std::move(hist_stage));

    app.setTaskFactory([](std::int64_t index, std::uint64_t seed) {
        auto task = std::make_unique<core::TaskObject>();
        task->addBuffer("image", kPixels * sizeof(float));
        task->addBuffer("blurred", kPixels * sizeof(float));
        task->addBuffer("histogram", 256 * sizeof(std::uint32_t));
        Rng rng(hashCombine(seed, static_cast<std::uint64_t>(index)));
        for (auto& px : task->view<float>("image"))
            px = static_cast<float>(rng.nextDouble());
        return task;
    });
    app.setTaskRefresher([](core::TaskObject& task, std::int64_t index,
                            std::uint64_t seed) {
        Rng rng(hashCombine(seed, static_cast<std::uint64_t>(index)));
        for (auto& px : task.view<float>("image"))
            px = static_cast<float>(rng.nextDouble());
    });
    return app;
}

} // namespace

int
main()
{
    std::printf("BetterTogether quickstart: 3-stage image pipeline on "
                "a simulated Pixel 7a\n\n");

    const auto soc = platform::pixel7a();
    const auto app = makeApp();

    // One config drives the whole flow; per-component knobs (profiler
    // repetitions, optimizer candidate count, deployment fault plan)
    // all hang off it.
    FrameworkConfig cfg;
    cfg.run.numTasks = 30;

    const Framework framework(soc, cfg);
    const auto report = framework.run(app);

    std::printf("Interference-aware profiling table (ms):\n");
    report.profile.interference.print(std::cout);

    std::vector<std::string> names;
    for (const auto& s : app.stages())
        names.push_back(s.name());
    std::printf("\nBest schedule: %s\n",
                report.bestSchedule.toString(soc, names).c_str());
    std::printf("BetterTogether latency: %.3f ms/task\n",
                report.bestLatencySeconds * 1e3);
    std::printf("CPU-only baseline:      %.3f ms/task (%s)\n",
                report.cpuBaselineSeconds * 1e3,
                soc.pu(report.cpuBaselinePu).label.c_str());
    std::printf("GPU-only baseline:      %.3f ms/task\n",
                report.gpuBaselineSeconds * 1e3);
    std::printf("Speedup over best homogeneous: %.2fx\n",
                report.speedupOverBestBaseline());
    return 0;
}
