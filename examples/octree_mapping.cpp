/**
 * @file
 * Stage-to-PU mapping exploration for the Octree workload: profiles the
 * seven stages on every simulated device, prints the per-PU latency
 * tables (the Fig. 1 story), and shows which schedule BetterTogether
 * picks on each device - illustrating that schedules are not portable
 * across SoCs (paper Sec. 1, "Heterogeneous Parallelism").
 */

#include <cstdio>
#include <iostream>

#include "apps/octree_app.hpp"
#include "core/pipeline.hpp"
#include "platform/devices.hpp"

using namespace bt;

int
main()
{
    const auto app = apps::octreeApp();
    std::vector<std::string> names;
    for (const auto& s : app.stages())
        names.push_back(s.name());

    for (const auto& soc : platform::paperDevices()) {
        std::printf("=== %s ===\n", soc.name.c_str());

        const core::BetterTogether bt_flow(soc);
        const auto report = bt_flow.run(app);

        std::printf("Interference-aware stage latencies (ms):\n");
        report.profile.interference.print(std::cout);

        std::printf("\nChosen schedule: %s\n",
                    report.bestSchedule.toString(soc, names).c_str());
        std::printf("Pipeline: %.3f ms/task | CPU-only %.3f | "
                    "GPU-only %.3f | speedup %.2fx\n\n",
                    report.bestLatencySeconds * 1e3,
                    report.cpuBaselineSeconds * 1e3,
                    report.gpuBaselineSeconds * 1e3,
                    report.speedupOverBestBaseline());
    }

    std::printf("Note how the same application maps differently on "
                "each device: schedules are not portable, which is why "
                "the profile -> optimize flow runs per device.\n");
    return 0;
}
