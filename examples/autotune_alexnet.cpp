/**
 * @file
 * The three optimization levels in slow motion, on AlexNet-sparse /
 * Google Pixel 7a: (1) the latency/utilization feasibility class, (2)
 * the K = 20 diverse candidates with their performance tiers, (3) the
 * autotuning pass that reranks candidates by actual measurement and
 * recovers the model's residual error (paper Sec. 3.3 and Table 4).
 */

#include <cstdio>

#include "apps/alexnet.hpp"
#include "core/autotuner.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"

using namespace bt;

int
main()
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();

    // Level 0: interference-aware profiling.
    const core::Profiler profiler(model);
    const auto profile = profiler.profile(app);
    std::printf("Profiling done: %d stages x %d PUs, virtual cost "
                "%.0f s (paper reports ~6 min per device/app)\n\n",
                profile.interference.numStages(),
                profile.interference.numPus(),
                profile.profilingCostSeconds);

    // Levels 1+2: candidate generation.
    core::Optimizer optimizer(soc, profile.interference);
    const auto candidates = optimizer.optimize();
    const auto& st = optimizer.stats();
    std::printf("Level 1: unrestricted latency optimum %.3f ms; "
                "accepted bound %.3f ms; utilization: %d PU classes; "
                "minimal gapness %.3f ms\n",
                st.unrestrictedLatency * 1e3, st.latencyBound * 1e3,
                st.requiredPus, st.minimalGapness * 1e3);
    std::printf("Level 2: %zu candidates (%llu solver nodes)\n\n",
                candidates.size(),
                static_cast<unsigned long long>(st.solverNodes));

    // Level 3: autotuning.
    const core::SimExecutor executor(model);
    const core::AutoTuner tuner(executor);
    const auto report = tuner.tune(app, candidates);

    std::printf("%-4s %-12s %-12s %-10s %s\n", "#", "predicted",
                "measured", "meas.rank", "schedule");
    std::vector<const core::TunedCandidate*> by_rank(
        report.all.size());
    for (const auto& tc : report.all)
        by_rank[static_cast<std::size_t>(tc.rankPredicted)] = &tc;
    for (std::size_t i = 0; i < by_rank.size(); ++i) {
        int meas_rank = 0;
        for (std::size_t j = 0; j < report.all.size(); ++j)
            if (&report.all[j] == by_rank[i])
                meas_rank = static_cast<int>(j) + 1;
        std::printf("%-4zu %-12.3f %-12.3f %-10d %s\n", i + 1,
                    by_rank[i]->candidate.predictedLatency * 1e3,
                    by_rank[i]->measuredLatency * 1e3, meas_rank,
                    by_rank[i]->candidate.schedule.compactString()
                        .c_str());
    }

    std::printf("\nAutotuning gain over predicted-best: %.2fx "
                "(paper observed 1.35x on this workload)\n",
                report.autotuningGain());
    std::printf("Campaign virtual cost: %.1f s (paper: ~200 s)\n",
                report.campaignCostSeconds);
    return 0;
}
